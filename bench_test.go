package mdspec

// One benchmark per table/figure of the paper: each regenerates the
// experiment over the full 18-benchmark suite at a reduced instruction
// budget and reports its headline quantities via b.ReportMetric, so
// `go test -bench=.` doubles as a fast end-to-end reproduction run. Use
// cmd/mdexp for the full paper-style tables at larger budgets.

import (
	"context"
	"testing"

	"mdspec/internal/ckpt"
	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/experiments"
	"mdspec/internal/parsim"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

// benchInsts is the per-(benchmark, config) budget used by the
// experiment benchmarks; large enough for stable shapes, small enough to
// keep -bench=. pleasant.
const benchInsts = 20_000

// bg is the context for benchmark sweeps (never canceled).
var bg = context.Background()

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Insts: benchInsts})
}

func intFPMeans(b *testing.B, metric func(bench string) float64) (float64, float64) {
	b.Helper()
	var iv, fv []float64
	for _, n := range workload.IntNames() {
		iv = append(iv, metric(n))
	}
	for _, n := range workload.FPNames() {
		fv = append(fv, metric(n))
	}
	return stats.Mean(iv), stats.Mean(fv)
}

// BenchmarkFigure1 regenerates Figure 1 (§3.2): NAS/NO vs NAS/ORACLE at
// 64- and 128-entry windows.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rows, err := experiments.Figure1(bg, r)
		if err != nil {
			b.Fatal(err)
		}
		by := rowMap(rows, func(x experiments.Figure1Row) (string, float64) { return x.Bench, x.Speedup128 })
		im, fm := intFPMeans(b, func(n string) float64 { return by[n] })
		b.ReportMetric(100*im, "int-spdup128-%")
		b.ReportMetric(100*fm, "fp-spdup128-%")
	}
}

// BenchmarkTable3 regenerates Table 3: false-dependence fraction and
// resolution latency under the 128-entry NAS/NO machine.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var fd, rl []float64
		for _, r := range rows {
			fd = append(fd, r.FD)
			rl = append(rl, r.RL)
		}
		b.ReportMetric(100*stats.Mean(fd), "mean-FD-%")
		b.ReportMetric(stats.Mean(rl), "mean-RL-cycles")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (§3.3): NAS/NO, NAS/ORACLE,
// NAS/NAV.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		by := rowMap(rows, func(x experiments.Figure2Row) (string, float64) { return x.Bench, x.Naive/x.NO - 1 })
		im, fm := intFPMeans(b, func(n string) float64 { return by[n] })
		b.ReportMetric(100*im, "int-NAVvsNO-%")
		b.ReportMetric(100*fm, "fp-NAVvsNO-%")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (§3.4): AS/NAV vs AS/NO at
// scheduler latencies 0, 1, 2.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var r0, r2 []float64
		for _, r := range rows {
			r0 = append(r0, r.Rel[0])
			r2 = append(r2, r.Rel[2])
		}
		b.ReportMetric(100*stats.Mean(r0), "rel@0-%")
		b.ReportMetric(100*stats.Mean(r2), "rel@2-%")
	}
}

// BenchmarkFigure4 regenerates Figure 4 (§3.4.1): NAS/ORACLE and
// AS/NAV(0/1/2) relative to 0-cycle AS/NO.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var oracle, nav0 []float64
		for _, r := range rows {
			oracle = append(oracle, r.Oracle)
			nav0 = append(nav0, r.Nav[0])
		}
		b.ReportMetric(100*stats.Mean(oracle), "oracle-rel-%")
		b.ReportMetric(100*stats.Mean(nav0), "asnav0-rel-%")
	}
}

// BenchmarkFigure5 regenerates Figure 5 (§3.5): selective and
// store-barrier speculation relative to naive.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var sel, store []float64
		for _, r := range rows {
			sel = append(sel, r.Sel)
			store = append(store, r.Store)
		}
		b.ReportMetric(100*stats.Mean(sel), "sel-rel-%")
		b.ReportMetric(100*stats.Mean(store), "store-rel-%")
	}
}

// BenchmarkFigure6 regenerates Figure 6 (§3.6): speculation/
// synchronization relative to naive speculation.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		by := rowMap(rows, func(x experiments.Figure6Row) (string, float64) { return x.Bench, x.SyncRel })
		im, fm := intFPMeans(b, func(n string) float64 { return by[n] })
		b.ReportMetric(100*im, "int-SYNCvsNAV-%")
		b.ReportMetric(100*fm, "fp-SYNCvsNAV-%")
	}
}

// BenchmarkTable4 regenerates Table 4: misspeculation rates under NAV
// and SYNC.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var nav, sync []float64
		for _, r := range rows {
			nav = append(nav, r.NavMisspec)
			sync = append(sync, r.SyncMisspec)
		}
		b.ReportMetric(100*stats.Mean(nav), "NAV-misspec-%")
		b.ReportMetric(100*stats.Mean(sync), "SYNC-misspec-%")
	}
}

// BenchmarkFigure7 regenerates the §3.7 split-vs-continuous comparison.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var cont, split []float64
		for _, r := range rows {
			cont = append(cont, r.ContASMisspec)
			split = append(split, r.SplitASMisspec)
		}
		b.ReportMetric(100*stats.Mean(cont), "ASNAV-cont-misspec-%")
		b.ReportMetric(100*stats.Mean(split), "ASNAV-split-misspec-%")
	}
}

// BenchmarkSummary regenerates the §4 average-speedup findings.
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Summary(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Finding {
			case "NAS/ORACLE over NAS/NO":
				b.ReportMetric(100*r.IntMeasured, "oracle-int-%")
				b.ReportMetric(100*r.FPMeasured, "oracle-fp-%")
			case "NAS/SYNC over NAS/NAV":
				b.ReportMetric(100*r.IntMeasured, "sync-int-%")
				b.ReportMetric(100*r.FPMeasured, "sync-fp-%")
			}
		}
	}
}

// BenchmarkAblationMDPTSize sweeps the MDPT capacity for NAS/SYNC.
func BenchmarkAblationMDPTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMDPTSize(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var small, big []float64
		for _, r := range rows {
			if r.Entries == 256 {
				small = append(small, r.IPC)
			}
			if r.Entries == 16384 {
				big = append(big, r.IPC)
			}
		}
		b.ReportMetric(stats.Mean(small), "IPC@256")
		b.ReportMetric(stats.Mean(big), "IPC@16K")
	}
}

// BenchmarkAblationFlush sweeps the MDPT flush interval.
func BenchmarkAblationFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFlush(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var never, fast []float64
		for _, r := range rows {
			switch r.Interval {
			case 0:
				never = append(never, r.IPC)
			case 10_000:
				fast = append(fast, r.IPC)
			}
		}
		b.ReportMetric(stats.Mean(fast), "IPC@10k-flush")
		b.ReportMetric(stats.Mean(never), "IPC@never-flush")
	}
}

// BenchmarkAblationWindow sweeps the window size 32..256 (§3.2's claim
// that load/store parallelism matters more as the window grows).
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWindow(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		gain := map[int][]float64{}
		for _, r := range rows {
			gain[r.Window] = append(gain[r.Window], r.Oracle/r.NO-1)
		}
		b.ReportMetric(100*stats.Mean(gain[32]), "oracle-gain@32-%")
		b.ReportMetric(100*stats.Mean(gain[256]), "oracle-gain@256-%")
	}
}

// BenchmarkAblationStoreSets compares the store-set predictor with the
// paper's MDPT.
func BenchmarkAblationStoreSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStoreSets(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var sync, sset []float64
		for _, r := range rows {
			sync = append(sync, r.SyncIPC)
			sset = append(sset, r.StoreSetIPC)
		}
		b.ReportMetric(stats.Mean(sync), "SYNC-IPC")
		b.ReportMetric(stats.Mean(sset), "SSET-IPC")
	}
}

// BenchmarkAblationRecovery compares squash vs selective invalidation.
func BenchmarkAblationRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRecovery(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var sq, sel []float64
		for _, r := range rows {
			sq = append(sq, r.SquashIPC)
			sel = append(sel, r.SelectiveIPC)
		}
		b.ReportMetric(stats.Mean(sq), "squash-IPC")
		b.ReportMetric(stats.Mean(sel), "selinv-IPC")
	}
}

// BenchmarkAblationBPred sweeps the branch predictor kinds.
func BenchmarkAblationBPred(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBPred(bg, benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		var combined, static []float64
		for _, r := range rows {
			switch r.Kind {
			case "combined":
				combined = append(combined, r.OracleRel)
			case "static-taken":
				static = append(static, r.OracleRel)
			}
		}
		b.ReportMetric(100*stats.Mean(combined), "oracle-rel-combined-%")
		b.ReportMetric(100*stats.Mean(static), "oracle-rel-static-%")
	}
}

// BenchmarkSimulatorSpeed measures raw simulation throughput
// (simulated instructions per wall second) on the gcc analog across a
// small configuration matrix. All sub-benchmarks replay one shared
// recording of the dynamic instruction stream, the same way sweep
// configs share a per-benchmark recording through the runner cache, so
// the numbers reflect the timing core alone.
func BenchmarkSimulatorSpeed(b *testing.B) {
	rec := emu.NewRecording(emu.New(workload.MustBuild("126.gcc")))
	matrix := []struct {
		name string
		cfg  config.Machine
	}{
		{"NAS-NO", config.Default128().WithPolicy(config.NoSpec)},
		{"AS-NAV", config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1)},
		{"NAS-SYNC", config.Default128().WithPolicy(config.Sync)},
	}
	// Warm the recording once (untimed) over the full benchmark horizon —
	// committed budget plus the window's fetch-ahead — so no sub-benchmark
	// iteration ever pays recording extension beyond the warmed prefix.
	rec.Record(50_000 + int64(matrix[0].cfg.Window) + 4096)
	for _, m := range matrix {
		b.Run(m.name, func(b *testing.B) {
			var simulated int64
			for i := 0; i < b.N; i++ {
				pipe, err := core.New(m.cfg, rec.NewReplay())
				if err != nil {
					b.Fatal(err)
				}
				res, err := pipe.Run(50_000)
				if err != nil {
					b.Fatal(err)
				}
				simulated += res.Committed
			}
			b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "sim-insts/s")
			b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(simulated), "ns/committed-inst")
			b.ReportMetric(float64(rec.SizeBytes())/float64(rec.Len()), "bytes/inst")
		})
	}
}

// BenchmarkSampledParallel measures the interval-parallel sampled
// engine against serial RunSampled at the same sampling budget (the
// paper's 1:2 timing:functional ratio on the gcc analog). The serial
// and worker-count variants all simulate identical timing windows over
// one shared recording, so their sim-insts/s ratios are wall-clock
// speedups at equal work; the merged counters are bit-identical across
// all variants by construction.
//
// The par* variants resume each segment from a pre-captured warm-state
// checkpoint set, the way experiments.Runner runs production sweeps:
// the one-time capture pass (like the recording fill) is untimed, so
// the reported figure is steady-state throughput with the warm cache
// amortized across a sweep. par8-cold keeps the old methodology —
// every segment functionally fast-forwards from sequence zero — and
// quantifies exactly what checkpoints remove.
func BenchmarkSampledParallel(b *testing.B) {
	const total, tw, fw = 200_000, 5_000, 10_000
	prog := workload.MustBuild("126.gcc")
	rec := emu.NewRecording(emu.New(prog))
	cfg := config.Default128().WithPolicy(config.Sync)
	// Fill the recording once (untimed) over the full sampled stream —
	// the functional windows consume stream positions beyond the timing
	// budget — so no variant pays the one-time emulation.
	rec.Record(total/tw*(tw+fw) + int64(cfg.Window) + 4096)
	// Capture the warm-state checkpoint schedule once (untimed): one
	// frame at each segment's warm-up start, zero fast-forward residue.
	seqs := ckpt.Positions(total, tw, fw, parsim.DefaultSegmentPeriods, tw)
	set, err := ckpt.Build(cfg, rec, emu.ProgramFingerprint(prog), seqs)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("serial", func(b *testing.B) {
		var simulated int64
		for i := 0; i < b.N; i++ {
			pipe, err := core.New(cfg, rec.NewReplay())
			if err != nil {
				b.Fatal(err)
			}
			res, err := pipe.RunSampled(total, tw, fw)
			if err != nil {
				b.Fatal(err)
			}
			simulated += res.Committed
		}
		b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "sim-insts/s")
	})
	variants := []struct {
		name    string
		workers int
		ckpts   *ckpt.Set
	}{
		{"par1", 1, set},
		{"par8", 8, set},
		{"par8-cold", 8, nil},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var simulated int64
			for i := 0; i < b.N; i++ {
				res, err := parsim.Run(bg, cfg, rec, parsim.Options{
					TotalTiming: total, TimingInsts: tw, FunctionalInsts: fw,
					Workers: v.workers, Checkpoints: v.ckpts,
				})
				if err != nil {
					b.Fatal(err)
				}
				simulated += res.Committed
			}
			b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// rowMap builds a name->metric map from experiment rows.
func rowMap[T any](rows []T, f func(T) (string, float64)) map[string]float64 {
	out := make(map[string]float64, len(rows))
	for _, r := range rows {
		k, v := f(r)
		out[k] = v
	}
	return out
}
