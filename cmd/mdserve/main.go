// Command mdserve runs the simulator as a long-lived service.
//
// Usage:
//
//	mdserve [-addr host:port] [-n insts] [-sampled T:F] [-par N]
//	        [-workers N] [-sched N] [-queue N] [-journal dir]
//	        [-recdir dir] [-retries N] [-cell-budget d]
//	        [-drain d] [-drain-timeout d] [-quiet]
//
// The daemon accepts (benchmark, configuration) cell requests as JSON
// (POST /v1/runs) and whole sweeps as a cross product (POST
// /v1/sweeps, streamed back as NDJSON or SSE), and answers from a
// content-addressed cache keyed on the provenance tuple — config
// hash, benchmark, instruction budget, sampling windows, runner
// version. Identical cells requested by any number of concurrent
// clients cost one simulation; a bounded work queue refuses overload
// with 503 instead of queueing without limit.
//
// With -workers N the daemon becomes a fleet supervisor: it forks N
// copies of itself in -worker mode (each a full server on a private
// unix socket, sharing -journal and -recdir), dispatches cells to them
// with work stealing, restarts crashed or wedged workers under capped
// backoff, and degrades to in-process execution if the whole fleet is
// down (reported as degraded in /v1/healthz; per-worker liveness,
// steal, and restart counters in /v1/metrics). Each worker owns a
// lease-protected journal segment runs.<id>.journal; the supervisor
// merges every segment on restart.
//
// With -journal (single-process mode), every finished cell is
// checkpointed to <dir>/runs.journal and a restarted daemon re-primes
// its cache from it, so previously-computed cells are served without
// re-simulating across restarts. GET /v1/metrics exposes the runner's
// lifetime counters, per-endpoint request/latency accounting, and
// queue occupancy; GET /v1/options the provenance tuple (clients
// check it before sweeping — see mdexp -server).
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener closes,
// in-flight requests drain (bounded by -drain), queued cells finish
// and reach the journal, and only then does the process exit.
// -drain-timeout additionally bounds the queued-cell drain: a wedged
// in-flight cell cannot stall shutdown forever — on expiry the daemon
// reports a snapshot of the stuck cells and exits 1, with everything
// that did finish already journaled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdspec/internal/experiments"
	"mdspec/internal/fleet"
	"mdspec/internal/retry"
	"mdspec/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	insts := flag.Int64("n", 150_000, "committed instructions per (benchmark, config) run")
	sampled := flag.String("sampled", "", "sampled simulation with windows T:F instructions; -n becomes the total timing budget")
	par := flag.Int("par", 0, "max concurrent simulations (default: GOMAXPROCS)")
	procs := flag.Int("workers", 0, "worker processes to fork and supervise (0 = single-process)")
	sched := flag.Int("sched", 0, "scheduler worker pool size (default: -par)")
	queue := flag.Int("queue", server.DefaultQueueDepth, "bounded work-queue depth; beyond it requests get 503")
	journalDir := flag.String("journal", "", "checkpoint directory: journal finished cells and re-prime the cache from it on restart")
	recDir := flag.String("recdir", "", "recording and warm-state cache directory: mmap per-benchmark columnar recordings and share warmed checkpoint sets across server processes")
	phases := flag.Int("phases", 0, "with -sampled, simulate only this many phase-representative segments per benchmark (BBV k-means), weighted by cluster size; 0 = all segments")
	retries := flag.Int("retries", 0, "attempts per cell before a transient failure abandons it (default 3)")
	cellBudget := flag.Duration("cell-budget", 0, "with -workers, per-cell wall-clock budget on a worker; a worker exceeding it is presumed wedged and recycled (0 = unlimited)")
	drain := flag.Duration("drain", time.Minute, "maximum time to wait for in-flight requests on shutdown")
	drainTimeout := flag.Duration("drain-timeout", 0, "maximum time to wait for queued cells on shutdown; on expiry, report stuck cells and exit 1 (0 = wait forever)")
	quiet := flag.Bool("quiet", false, "suppress per-request lifecycle logging")
	workerMode := flag.Bool("worker", false, "run as a supervised fleet worker (internal; forked by -workers)")
	socket := flag.String("socket", "", "with -worker, the unix control socket to listen on")
	workerID := flag.String("worker-id", "", "with -worker, the journal segment id (lease owner)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mdserve: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *workerMode && (*socket == "" || *workerID == "") {
		fatal(fmt.Errorf("-worker requires -socket and -worker-id"))
	}

	prefix := "mdserve: "
	if *workerMode {
		prefix = fmt.Sprintf("mdserve[%s]: ", *workerID)
	}
	logger := log.New(os.Stderr, prefix, log.LstdFlags)

	opt := experiments.Options{Insts: *insts, Parallel: *par, Retry: retry.Policy{MaxAttempts: *retries}, RecordingDir: *recDir}
	if *sampled != "" {
		var tw, fw int64
		if _, err := fmt.Sscanf(*sampled, "%d:%d", &tw, &fw); err != nil {
			fatal(fmt.Errorf("bad -sampled %q (want T:F): %v", *sampled, err))
		}
		opt.Sampled = true
		opt.TimingWindow, opt.FunctionalWindow = tw, fw
	}
	if *phases > 0 {
		if !opt.Sampled {
			fatal(fmt.Errorf("-phases requires -sampled"))
		}
		opt.PhaseSampled = true
		opt.Phases = *phases
	}

	// The journal persists the cache across restarts. It must be opened
	// with the final options: its meta header is the provenance
	// fingerprint, so a dir journaled under different options is
	// detected and refused rather than silently serving foreign cells.
	//
	// Journal layout depends on the role: a single-process daemon owns
	// the legacy runs.journal; fleet processes (workers and the
	// supervisor alike) each own one lease-protected runs.<id>.journal
	// segment and re-prime from the merge of every segment in the dir.
	var journal *experiments.Journal
	var replayed []experiments.RunRecord
	if *journalDir != "" {
		var err error
		switch {
		case *workerMode:
			journal, replayed, err = experiments.OpenJournalSegment(*journalDir, *workerID, opt, experiments.DefaultLeaseTTL)
		case *procs > 0:
			journal, replayed, err = experiments.OpenJournalSegment(*journalDir, "sup", opt, experiments.DefaultLeaseTTL)
		default:
			journal, replayed, err = experiments.OpenJournal(*journalDir, opt)
		}
		if err != nil {
			fatal(err)
		}
		opt.Journal = journal
	}

	cfg := server.Config{Options: opt, Workers: *sched, QueueDepth: *queue}
	if !*quiet {
		cfg.Log = logger
	}
	srv := server.New(cfg)
	if n := srv.Runner().Prime(replayed); n > 0 {
		logger.Printf("re-primed %d finished cell(s) from %s", n, *journalDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fleet mode: fork the workers, mount the pool as the runner's
	// backend (cache, singleflight, and journaling stay in front of
	// it), and expose the pool's health through the API.
	var pool *fleet.Pool
	if *procs > 0 && !*workerMode {
		exe, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		sockDir, err := os.MkdirTemp("", "mdserve-fleet-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(sockDir)
		pool, err = fleet.Start(ctx, fleet.Config{
			Procs:      *procs,
			Exec:       exe,
			Args:       workerArgs(flag.CommandLine, *drain),
			Dir:        sockDir,
			JournalDir: *journalDir,
			Meta:       fingerprintPtr(opt),
			CellBudget: *cellBudget,
			Fallback:   srv.Runner().LocalSimulate,
			Log:        logger,
		})
		if err != nil {
			fatal(err)
		}
		srv.Runner().UseBackend(pool.Simulate)
		srv.AttachFleet(pool)
		logger.Printf("supervising %d worker process(es) in %s", *procs, sockDir)
	}

	// A worker heartbeats its journal lease so the supervisor (and any
	// segment reader) can tell a live owner from a dead one's remains.
	if journal != nil && (*workerMode || *procs > 0) {
		go heartbeatLease(ctx, journal, logger)
	}

	var ln net.Listener
	var err error
	if *workerMode {
		ln, err = net.Listen("unix", *socket)
	} else {
		ln, err = net.Listen("tcp", *addr)
	}
	if err != nil {
		fatal(err)
	}
	logger.Printf("serving %s on %s (sched=%d queue=%d)",
		opt.Fingerprint().Runner, ln.Addr(), srv.Workers(), *queue)

	httpSrv := &http.Server{Handler: srv, ErrorLog: logger}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Printf("signal received; draining (limit %s)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(shCtx)
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// Shutdown ordering matters: first the HTTP server stops accepting
	// and drains handlers (the queue's only submitters), then the
	// scheduler finishes queued cells — journaling each — and only then
	// does the journal close with a complete tail. -drain-timeout
	// bounds the scheduler stage: a wedged cell cannot hold the
	// process hostage, and everything that finished is already on disk.
	if err := <-shutdownErr; err != nil {
		logger.Printf("drain limit exceeded, abandoning open connections: %v", err)
	}
	stuck := srv.CloseTimeout(*drainTimeout)
	if pool != nil {
		if err := pool.Close(); err != nil {
			logger.Printf("closing fleet: %v", err)
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			logger.Printf("closing journal: %v", err)
		}
	}
	c := srv.Runner().Counters()
	if len(stuck) > 0 {
		snapshot, _ := json.Marshal(stuck)
		logger.Printf("drain timeout %s expired with %d cell(s) stuck (finished work is journaled): %s",
			*drainTimeout, len(stuck), snapshot)
		os.Exit(1)
	}
	logger.Printf("shut down cleanly: %d simulated, %d cache/dedup hits, %d replayed",
		c.JobsFinished, c.CacheHits, c.Replayed)
}

// workerArgs rebuilds this daemon's relevant flags as a worker argv:
// children inherit the provenance-defining options verbatim (same
// fingerprint, same journal dir) plus their identity flags. The
// supervisor-only flags (-workers, -addr, -drain-timeout) are not
// forwarded; -sched is left to default so each worker sizes its own
// pool from -par.
func workerArgs(fs *flag.FlagSet, drain time.Duration) func(slot int, socket string) []string {
	inherit := []string{"n", "sampled", "par", "queue", "journal", "recdir", "phases", "retries", "quiet"}
	var base []string
	for _, name := range inherit {
		f := fs.Lookup(name)
		if f == nil || f.Value.String() == f.DefValue {
			continue
		}
		base = append(base, "-"+name+"="+f.Value.String())
	}
	// Workers drain fast on SIGTERM: the supervisor escalates to
	// SIGKILL anyway, and their journals make any loss recoverable.
	base = append(base, "-drain="+drain.String())
	return func(slot int, socket string) []string {
		return append([]string{"-worker", "-socket", socket, "-worker-id", fleet.WorkerID(slot)}, base...)
	}
}

// heartbeatLease stamps the journal lease on a fraction of the TTL so
// a live owner is never mistaken for a dead one.
func heartbeatLease(ctx context.Context, j *experiments.Journal, logger *log.Logger) {
	t := time.NewTicker(experiments.DefaultLeaseTTL / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := j.Heartbeat(); err != nil {
				logger.Printf("lease heartbeat: %v", err)
			}
		}
	}
}

func fingerprintPtr(opt experiments.Options) *experiments.Fingerprint {
	fp := opt.Fingerprint()
	return &fp
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdserve:", err)
	os.Exit(1)
}
