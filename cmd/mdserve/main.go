// Command mdserve runs the simulator as a long-lived service.
//
// Usage:
//
//	mdserve [-addr host:port] [-n insts] [-sampled T:F] [-par N]
//	        [-workers N] [-queue N] [-journal dir] [-retries N]
//	        [-drain d] [-quiet]
//
// The daemon accepts (benchmark, configuration) cell requests as JSON
// (POST /v1/runs) and whole sweeps as a cross product (POST
// /v1/sweeps, streamed back as NDJSON or SSE), and answers from a
// content-addressed cache keyed on the provenance tuple — config
// hash, benchmark, instruction budget, sampling windows, runner
// version. Identical cells requested by any number of concurrent
// clients cost one simulation; a bounded work queue refuses overload
// with 503 instead of queueing without limit.
//
// With -journal, every finished cell is checkpointed to
// <dir>/runs.journal and a restarted daemon re-primes its cache from
// it, so previously-computed cells are served without re-simulating
// across restarts. GET /v1/metrics exposes the runner's lifetime
// counters, per-endpoint request/latency accounting, and queue
// occupancy; GET /v1/options the provenance tuple (clients check it
// before sweeping — see mdexp -server).
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener closes,
// in-flight requests drain (bounded by -drain), queued cells finish
// and reach the journal, and only then does the process exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdspec/internal/experiments"
	"mdspec/internal/retry"
	"mdspec/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	insts := flag.Int64("n", 150_000, "committed instructions per (benchmark, config) run")
	sampled := flag.String("sampled", "", "sampled simulation with windows T:F instructions; -n becomes the total timing budget")
	par := flag.Int("par", 0, "max concurrent simulations (default: GOMAXPROCS)")
	workers := flag.Int("workers", 0, "scheduler worker pool size (default: -par)")
	queue := flag.Int("queue", server.DefaultQueueDepth, "bounded work-queue depth; beyond it requests get 503")
	journalDir := flag.String("journal", "", "checkpoint directory: journal finished cells and re-prime the cache from it on restart")
	recDir := flag.String("recdir", "", "recording and warm-state cache directory: mmap per-benchmark columnar recordings and share warmed checkpoint sets across server processes")
	phases := flag.Int("phases", 0, "with -sampled, simulate only this many phase-representative segments per benchmark (BBV k-means), weighted by cluster size; 0 = all segments")
	retries := flag.Int("retries", 0, "attempts per cell before a transient failure abandons it (default 3)")
	drain := flag.Duration("drain", time.Minute, "maximum time to wait for in-flight requests on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-request lifecycle logging")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mdserve: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mdserve: ", log.LstdFlags)

	opt := experiments.Options{Insts: *insts, Parallel: *par, Retry: retry.Policy{MaxAttempts: *retries}, RecordingDir: *recDir}
	if *sampled != "" {
		var tw, fw int64
		if _, err := fmt.Sscanf(*sampled, "%d:%d", &tw, &fw); err != nil {
			fatal(fmt.Errorf("bad -sampled %q (want T:F): %v", *sampled, err))
		}
		opt.Sampled = true
		opt.TimingWindow, opt.FunctionalWindow = tw, fw
	}
	if *phases > 0 {
		if !opt.Sampled {
			fatal(fmt.Errorf("-phases requires -sampled"))
		}
		opt.PhaseSampled = true
		opt.Phases = *phases
	}

	// The journal persists the cache across restarts. It must be opened
	// with the final options: its meta header is the provenance
	// fingerprint, so a dir journaled under different options is
	// detected and refused rather than silently serving foreign cells.
	var journal *experiments.Journal
	var replayed []experiments.RunRecord
	if *journalDir != "" {
		j, recs, err := experiments.OpenJournal(*journalDir, opt)
		if err != nil {
			fatal(err)
		}
		journal = j
		opt.Journal = j
		replayed = recs
	}

	cfg := server.Config{Options: opt, Workers: *workers, QueueDepth: *queue}
	if !*quiet {
		cfg.Log = logger
	}
	srv := server.New(cfg)
	if n := srv.Runner().Prime(replayed); n > 0 {
		logger.Printf("re-primed %d finished cell(s) from %s", n, *journalDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Printf("serving %s on http://%s (workers=%d queue=%d)",
		opt.Fingerprint().Runner, ln.Addr(), srv.Workers(), *queue)

	httpSrv := &http.Server{Handler: srv, ErrorLog: logger}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Printf("signal received; draining (limit %s)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(shCtx)
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// Shutdown ordering matters: first the HTTP server stops accepting
	// and drains handlers (the queue's only submitters), then the
	// scheduler finishes queued cells — journaling each — and only then
	// does the journal close with a complete tail.
	if err := <-shutdownErr; err != nil {
		logger.Printf("drain limit exceeded, abandoning open connections: %v", err)
	}
	srv.Close()
	if journal != nil {
		if err := journal.Close(); err != nil {
			logger.Printf("closing journal: %v", err)
		}
	}
	c := srv.Runner().Counters()
	logger.Printf("shut down cleanly: %d simulated, %d cache/dedup hits, %d replayed",
		c.JobsFinished, c.CacheHits, c.Replayed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdserve:", err)
	os.Exit(1)
}
