// Command mdlint is the legacy project linter: the original analyzer
// trio guarding the simulator's determinism contract, the
// zero-allocation hot path, and the statistics artifact schema (see
// internal/analysis). It is kept as its own CI gate so a regression in
// the newer mdvet analyzers can never mask one here; cmd/mdvet runs
// the full suite.
//
// Usage:
//
//	go run ./cmd/mdlint [-list] [-only analyzer,...] [packages]
//
// Packages default to ./.... Findings print as
// `file:line:col: [analyzer] message`. Exit status: 0 clean, 1
// findings, 2 on a load or internal error.
package main

import (
	"os"

	"mdspec/internal/analysis"
)

func main() {
	os.Exit(analysis.Main("mdlint", analysis.Legacy(), os.Args[1:], os.Stdout, os.Stderr))
}
