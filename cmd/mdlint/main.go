// Command mdlint is the project linter: it applies the internal
// analyzers guarding the simulator's determinism contract, the
// zero-allocation hot path, and the statistics artifact schema (see
// internal/analysis). CI runs it over ./... and fails on any finding.
//
// Usage:
//
//	go run ./cmd/mdlint [-list] [packages]
//
// Packages default to ./.... Exit status: 0 clean, 1 findings, 2 on a
// load or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"mdspec/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(cwd, patterns, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
