// Command mdtrace inspects the synthetic workloads: it prints each
// benchmark's dynamic instruction mix (the analog of the paper's
// Table 1) and its dependence profile, or disassembles a prefix of a
// benchmark's dynamic trace.
//
// Usage:
//
//	mdtrace [-n insts] [-bench name] [-disasm N]
package main

import (
	"flag"
	"fmt"
	"os"

	"mdspec/internal/emu"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func main() {
	n := flag.Int64("n", 100_000, "instructions to measure per benchmark")
	bench := flag.String("bench", "", "single benchmark (default: the whole Table 1 suite)")
	disasm := flag.Int("disasm", 0, "disassemble the first N dynamic instructions instead")
	flag.Parse()

	if *disasm > 0 {
		name := *bench
		if name == "" {
			name = "126.gcc"
		}
		if err := disassemble(name, *disasm); err != nil {
			fmt.Fprintln(os.Stderr, "mdtrace:", err)
			os.Exit(1)
		}
		return
	}

	names := workload.Names()
	if *bench != "" {
		names = []string{*bench}
	}
	t := &stats.Table{Header: []string{"bench", "class", "loads", "(target)", "stores", "(target)",
		"cond-br", "near-dep loads", "ptr loads", "calls"}}
	for _, name := range names {
		pr, err := workload.ProfileByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdtrace:", err)
			os.Exit(1)
		}
		mix := workload.Measure(workload.MustBuild(pr.Name), *n)
		class := "int"
		if pr.FP {
			class = "fp"
		}
		t.Add(pr.Name, class,
			fmt.Sprintf("%.1f%%", 100*mix.LoadFrac()), fmt.Sprintf("%.1f%%", 100*pr.LoadFrac),
			fmt.Sprintf("%.1f%%", 100*mix.StoreFrac()), fmt.Sprintf("%.1f%%", 100*pr.StoreFrac),
			fmt.Sprintf("%.1f%%", 100*mix.BranchFrac()),
			fmt.Sprintf("%.1f%%", 100*mix.NearDepFrac()),
			fmt.Sprintf("%d", mix.PointerLoads), fmt.Sprintf("%d", mix.Calls))
	}
	fmt.Println("Workload suite dynamic mix (Table 1 analog); targets in parentheses")
	fmt.Print(t.String())
}

func disassemble(name string, n int) error {
	p, err := workload.Build(name)
	if err != nil {
		return err
	}
	m := emu.New(p)
	var d emu.DynInst
	for i := 0; i < n && m.Step(&d); i++ {
		extra := ""
		switch {
		case d.IsLoad():
			extra = fmt.Sprintf("  ; [%#x] -> %d (producer seq %d)", d.Addr, d.LoadVal, d.ProducerSeq)
		case d.IsStore():
			extra = fmt.Sprintf("  ; [%#x] <- %d (was %d)", d.Addr, d.StoreVal, d.OldVal)
		case d.IsBranch() && d.Taken:
			extra = fmt.Sprintf("  ; taken -> %#x", d.NextPC)
		}
		fmt.Printf("%6d  %08x  %-28s%s\n", d.Seq, d.PC, d.Inst.String(), extra)
	}
	return nil
}
