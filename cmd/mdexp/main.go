// Command mdexp reproduces the paper's tables and figures.
//
// Usage:
//
//	mdexp [-n insts] [-bench list] [-par N] <experiment>...
//
// Experiments: fig1 table3 fig2 fig3 fig4 fig5 fig6 table4 fig7 summary
// abl-mdpt abl-flush abl-window abl-storesets all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mdspec/internal/experiments"
)

var order = []string{"fig1", "table3", "fig2", "fig3", "fig4", "fig5", "fig6",
	"table4", "fig7", "summary", "abl-mdpt", "abl-flush", "abl-window",
	"abl-storesets", "abl-recovery", "abl-bpred"}

func main() {
	insts := flag.Int64("n", 150_000, "committed instructions per (benchmark, config) run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 18)")
	par := flag.Int("par", 0, "max concurrent simulations (default: GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdexp [flags] <experiment>...\nexperiments: %s all\n", strings.Join(order, " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt := experiments.Options{Insts: *insts, Parallel: *par}
	if *benchList != "" {
		opt.Benchmarks = strings.Split(*benchList, ",")
	}
	runner := experiments.NewRunner(opt)

	if len(names) == 1 && names[0] == "all" {
		names = order
	}
	for _, name := range names {
		start := time.Now()
		out, err := run(runner, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}

func run(r *experiments.Runner, name string) (string, error) {
	switch name {
	case "fig1":
		rows, err := experiments.Figure1(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure1(rows), nil
	case "table3":
		rows, err := experiments.Table3(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable3(rows), nil
	case "fig2":
		rows, err := experiments.Figure2(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure2(rows), nil
	case "fig3":
		rows, err := experiments.Figure3(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure3(rows), nil
	case "fig4":
		rows, err := experiments.Figure4(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure4(rows), nil
	case "fig5":
		rows, err := experiments.Figure5(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure5(rows), nil
	case "fig6":
		rows, err := experiments.Figure6(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure6(rows), nil
	case "table4":
		rows, err := experiments.Figure6(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable4(rows), nil
	case "fig7":
		rows, err := experiments.Figure7(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure7(rows), nil
	case "summary":
		rows, err := experiments.Summary(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderSummary(rows), nil
	case "abl-mdpt":
		rows, err := experiments.AblationMDPTSize(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderMDPTSize(rows), nil
	case "abl-flush":
		rows, err := experiments.AblationFlush(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderFlush(rows), nil
	case "abl-window":
		rows, err := experiments.AblationWindow(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderWindow(rows), nil
	case "abl-storesets":
		rows, err := experiments.AblationStoreSets(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderStoreSets(rows), nil
	case "abl-recovery":
		rows, err := experiments.AblationRecovery(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderRecovery(rows), nil
	case "abl-bpred":
		rows, err := experiments.AblationBPred(r)
		if err != nil {
			return "", err
		}
		return experiments.RenderBPred(rows), nil
	}
	return "", fmt.Errorf("unknown experiment %q", name)
}
