// Command mdexp reproduces the paper's tables and figures.
//
// Usage:
//
//	mdexp [-n insts] [-bench list] [-par N] [-sampled T:F] [-json|-csv]
//	      [-out file] [-resume dir] [-server addr] [-retries N] [-quiet]
//	      [-cpuprofile file] [-memprofile file] [-trace file]
//	      <experiment>...
//
// Flags and experiment names may be interleaved, so
// "mdexp -json -out results.json all -n 20000 -bench 126.gcc" works.
// The experiment list is defined by the registry below (run with no
// arguments to see it; it always matches what this binary supports):
// fig1 table3 fig2 fig3 fig4 fig5 fig6 table4 fig7 summary abl-mdpt
// abl-flush abl-window abl-storesets abl-recovery abl-bpred, or "all".
//
// A live progress line (jobs finished/started, cache hits, elapsed
// time) is written to stderr while sweeps run; -quiet suppresses it.
// SIGINT/SIGTERM cancel the sweep cleanly: in-flight simulations
// finish, queued ones are abandoned, and any artifact requested with
// -out is still written with the completed runs.
//
// With -json, a machine-readable Results envelope (typed rows per
// experiment plus one provenance-carrying record per simulation) is
// written to -out, or to stdout when -out is empty (suppressing the
// text tables). With -csv, the per-run records are written as flat CSV
// instead. See README.md for the artifact schema.
//
// With -resume <dir>, every finished (benchmark, config) cell is
// journaled to <dir>/runs.journal as it completes, and a restarted
// sweep pointed at the same directory replays the journal instead of
// re-simulating — resume after a crash or SIGKILL is bit-identical to
// an uninterrupted run. Transient cell failures (worker panics,
// watchdog deadlock reports) are retried up to -retries attempts with
// capped exponential backoff; a sampled cell that keeps failing falls
// back to one serial sampled pass, and a cell that cannot be completed
// at all is listed in the artifact's partial-results envelope instead
// of aborting the sweep. See README.md ("Robustness & operations").
//
// With -server <addr>, simulations are requested from a running
// mdserve daemon instead of executing locally: the daemon's
// content-addressed cache dedups cells across every connected client,
// and by the determinism contract the results are bit-identical to a
// local run. The daemon's provenance tuple (-n, -sampled) must match
// this invocation's; mdexp verifies that up front and fails fast with
// a descriptive message otherwise. -par then bounds concurrent
// requests, and -resume is refused — the daemon owns persistence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mdspec/internal/atomicio"
	"mdspec/internal/experiments"
	"mdspec/internal/profiling"
	"mdspec/internal/retry"
	"mdspec/internal/server"
	"mdspec/internal/workload"
)

// experiment binds a CLI name to a generator and its renderer; the
// usage text and the "all" order are derived from this registry, so the
// supported list cannot drift from the implementation.
type experiment struct {
	name string
	run  func(context.Context, *experiments.Runner) (rows any, text string, err error)
}

// exp adapts a typed (generator, renderer) pair to the registry shape.
func exp[T any](name string, gen func(context.Context, *experiments.Runner) ([]T, error), render func([]T) string) experiment {
	return experiment{name, func(ctx context.Context, r *experiments.Runner) (any, string, error) {
		rows, err := gen(ctx, r)
		if err != nil {
			return nil, "", err
		}
		return rows, render(rows), nil
	}}
}

var registry = []experiment{
	exp("fig1", experiments.Figure1, experiments.RenderFigure1),
	exp("table3", experiments.Table3, experiments.RenderTable3),
	exp("fig2", experiments.Figure2, experiments.RenderFigure2),
	exp("fig3", experiments.Figure3, experiments.RenderFigure3),
	exp("fig4", experiments.Figure4, experiments.RenderFigure4),
	exp("fig5", experiments.Figure5, experiments.RenderFigure5),
	exp("fig6", experiments.Figure6, experiments.RenderFigure6),
	exp("table4", experiments.Figure6, experiments.RenderTable4),
	exp("fig7", experiments.Figure7, experiments.RenderFigure7),
	exp("summary", experiments.Summary, experiments.RenderSummary),
	exp("abl-mdpt", experiments.AblationMDPTSize, experiments.RenderMDPTSize),
	exp("abl-flush", experiments.AblationFlush, experiments.RenderFlush),
	exp("abl-window", experiments.AblationWindow, experiments.RenderWindow),
	exp("abl-storesets", experiments.AblationStoreSets, experiments.RenderStoreSets),
	exp("abl-recovery", experiments.AblationRecovery, experiments.RenderRecovery),
	exp("abl-bpred", experiments.AblationBPred, experiments.RenderBPred),
}

func names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

func lookup(name string) (experiment, bool) {
	for _, e := range registry {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

func main() {
	insts := flag.Int64("n", 150_000, "committed instructions per (benchmark, config) run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 18)")
	par := flag.Int("par", 0, "max concurrent simulations (default: GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "write a JSON results artifact (to -out, or stdout)")
	csvOut := flag.Bool("csv", false, "write per-run records as CSV (to -out, or stdout)")
	outPath := flag.String("out", "", "artifact destination file (with -json/-csv; default stdout)")
	quiet := flag.Bool("quiet", false, "suppress the live stderr progress line")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	sampled := flag.String("sampled", "", "sampled simulation with windows T:F instructions (e.g. 5000:10000); -n becomes the total timing budget")
	resumeDir := flag.String("resume", "", "checkpoint directory: journal finished cells there and replay them on restart")
	recDir := flag.String("recdir", "", "recording and warm-state cache directory: reuse per-benchmark columnar recordings and warmed checkpoint sets across processes (shareable with mdserve)")
	phases := flag.Int("phases", 0, "with -sampled, simulate only this many phase-representative segments per benchmark (BBV k-means), weighted by cluster size; 0 = all segments")
	serverAddr := flag.String("server", "", "mdserve daemon address: request simulations from it instead of running locally")
	retries := flag.Int("retries", 0, "attempts per cell before a transient failure abandons it (default 3)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdexp [flags] <experiment>...\nexperiments: %s all\n",
			strings.Join(names(), " "))
		flag.PrintDefaults()
	}

	// The standard flag package stops at the first positional argument;
	// re-parse the remainder so flags and experiment names interleave
	// ("mdexp all -n 20000 -bench 126.gcc").
	var expNames []string
	args := os.Args[1:]
	for len(args) > 0 {
		if err := flag.CommandLine.Parse(args); err != nil {
			os.Exit(2)
		}
		args = flag.CommandLine.Args()
		if len(args) > 0 {
			expNames = append(expNames, args[0])
			args = args[1:]
		}
	}
	if len(expNames) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf, *tracePath)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()
	if *jsonOut && *csvOut {
		fatal(errors.New("-json and -csv are mutually exclusive"))
	}
	if len(expNames) == 1 && expNames[0] == "all" {
		expNames = names()
	}
	for _, name := range expNames {
		if _, ok := lookup(name); !ok {
			fatal(fmt.Errorf("unknown experiment %q (have: %s all)", name, strings.Join(names(), " ")))
		}
	}

	if *outPath != "" {
		// Fail before hours of simulation, not after: prove the artifact
		// destination is writable while the sweep is still cheap to abort.
		if err := atomicio.ProbeDir(filepath.Dir(*outPath)); err != nil {
			fatal(fmt.Errorf("-out %s: %w", *outPath, err))
		}
	}

	opt := experiments.Options{Insts: *insts, Parallel: *par, Retry: retry.Policy{MaxAttempts: *retries}, RecordingDir: *recDir}
	if *sampled != "" {
		var tw, fw int64
		if _, err := fmt.Sscanf(*sampled, "%d:%d", &tw, &fw); err != nil {
			fatal(fmt.Errorf("bad -sampled %q (want T:F): %v", *sampled, err))
		}
		opt.Sampled = true
		opt.TimingWindow, opt.FunctionalWindow = tw, fw
	}
	if *phases > 0 {
		if !opt.Sampled {
			fatal(errors.New("-phases requires -sampled"))
		}
		opt.PhaseSampled = true
		opt.Phases = *phases
	}
	if *benchList != "" {
		benches, err := workload.ParseNames(*benchList)
		if err != nil {
			fatal(err)
		}
		opt.Benchmarks = benches
	}
	var progress *experiments.Progress
	if !*quiet {
		progress = experiments.NewProgress(os.Stderr)
		opt.Hooks = progress.Hooks()
	}
	if *serverAddr != "" && *resumeDir != "" {
		fatal(errors.New("-server and -resume are mutually exclusive: the daemon owns the checkpoint journal"))
	}
	var replayed []experiments.RunRecord
	if *resumeDir != "" {
		j, recs, err := experiments.OpenJournal(*resumeDir, opt)
		if err != nil {
			fatal(err)
		}
		// The journal's durability comes from the per-entry fsyncs, but a
		// failing close can still mean lost buffered state on some
		// filesystems — surface it instead of dropping it.
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mdexp: closing journal: %v\n", err)
			}
		}()
		opt.Journal = j
		replayed = recs
	}
	runner := experiments.NewRunner(opt)
	if n := runner.Prime(replayed); n > 0 {
		fmt.Fprintf(os.Stderr, "mdexp: resumed %d finished cell(s) from %s\n", n, *resumeDir)
	}
	results := experiments.NewResults("mdexp", runner.Options())

	// Artifacts aimed at stdout own it; keep the human tables off it.
	artifactToStdout := (*jsonOut || *csvOut) && *outPath == ""
	printTables := !artifactToStdout

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serverAddr != "" {
		// Mount the daemon as this runner's backend: every cell request
		// goes over HTTP, everything else — memoization, hooks, artifact
		// records — is unchanged. Check the provenance tuple first so a
		// mismatched sweep fails here, not on its first cell.
		cl := server.NewClient(*serverAddr, opt)
		if err := cl.Check(ctx); err != nil {
			fatal(err)
		}
		runner.UseBackend(cl.Run)
		fmt.Fprintf(os.Stderr, "mdexp: simulating via mdserve at %s\n", *serverAddr)
	}

	var runErrs []error
	canceled := false
	for _, name := range expNames {
		e, _ := lookup(name)
		start := time.Now()
		rows, text, err := e.run(ctx, runner)
		elapsed := time.Since(start)
		if progress != nil {
			progress.Done()
		}
		if err != nil {
			results.AddFailedExperiment(name, rows, elapsed, err)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				canceled = true
				break
			}
			// A failing experiment no longer takes the rest of the sweep
			// down: record it in the envelope and keep going.
			runErrs = append(runErrs, fmt.Errorf("%s: %w", name, err))
			fmt.Fprintf(os.Stderr, "mdexp: %s failed (continuing): %v\n", name, err)
			continue
		}
		results.AddExperiment(name, rows, elapsed)
		if printTables {
			fmt.Println(text)
			fmt.Printf("[%s took %.1fs]\n\n", name, elapsed.Seconds())
		}
	}
	if progress != nil {
		progress.Done()
	}

	if *jsonOut || *csvOut {
		results.Attach(runner)
		if err := writeArtifact(results, *jsonOut, *outPath); err != nil {
			fatal(err)
		}
		if *outPath != "" {
			kind := "results"
			if results.Partial {
				kind = "PARTIAL results"
			}
			fmt.Fprintf(os.Stderr, "mdexp: wrote %s (%s)\n", *outPath, kind)
		}
	}
	if err := runner.JournalErr(); err != nil {
		fmt.Fprintf(os.Stderr, "mdexp: warning: checkpoint journal degraded (resume may re-run cells): %v\n", err)
	}
	if ab := runner.Abandoned(); len(ab) > 0 {
		fmt.Fprintf(os.Stderr, "mdexp: warning: %d cell(s) abandoned after retries:\n", len(ab))
		for _, c := range ab {
			fmt.Fprintf(os.Stderr, "  %s under %s (%d attempts)\n", c.Bench, c.Config, c.Attempts)
		}
	}
	if canceled {
		fmt.Fprintln(os.Stderr, "mdexp: interrupted")
		os.Exit(130)
	}
	if len(runErrs) > 0 {
		fatal(errors.Join(runErrs...))
	}
}

// writeArtifact writes the envelope as JSON (asJSON) or CSV to path, or
// to stdout when path is empty. File destinations are replaced
// atomically: a crash mid-write can never leave a truncated artifact
// where a previous (or partial) one was.
func writeArtifact(rs *experiments.Results, asJSON bool, path string) error {
	emit := func(w io.Writer) error {
		if asJSON {
			return rs.WriteJSON(w)
		}
		return rs.WriteCSV(w)
	}
	if path == "" {
		return emit(os.Stdout)
	}
	return atomicio.WriteFile(path, emit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdexp:", err)
	os.Exit(1)
}
