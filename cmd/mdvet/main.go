// Command mdvet is the whole-program project vetter: it applies every
// internal analyzer — the original determinism / hot-path-allocation /
// stats-schema guards plus the lock-discipline (guardedby), SoA
// column-parity (colparity), context-flow (ctxflow), and error-discard
// (errdiscard) checks — to the entire module, cmd/* included (see
// internal/analysis). CI runs it over ./... as its own gate and fails
// on any unwaived finding.
//
// Usage:
//
//	go run ./cmd/mdvet [-list] [-only analyzer,...] [packages]
//
// Packages default to ./.... Findings print as
// `file:line:col: [analyzer] message`. Exit status: 0 clean, 1
// findings, 2 on a load or internal error.
package main

import (
	"os"

	"mdspec/internal/analysis"
)

func main() {
	os.Exit(analysis.Main("mdvet", analysis.All(), os.Args[1:], os.Stdout, os.Stderr))
}
