// Command mdsim runs a single simulation: one benchmark (or named
// kernel) under one configuration, printing the full statistics.
//
// Usage:
//
//	mdsim [-n insts] [-w bench] [-policy NO|NAV|SEL|STORE|SYNC|ORACLE|SSET]
//	      [-as] [-aslat N] [-split N] [-window N] [-sample T:F] [-par N]
//	      [-json] [-out file] [-cpuprofile file] [-memprofile file]
//	      [-trace file]
//
// With -sample, -par shards the sampled run across N workers using the
// interval-parallel engine (0 = one per CPU core; default 1 = serial);
// the result is bit-identical for every N.
//
// With -json, a single provenance-carrying run record (config name and
// hash, instruction budget, wall time, runner version, raw counters) is
// written to -out or stdout instead of the human-readable report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mdspec/internal/atomicio"
	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/experiments"
	"mdspec/internal/parsim"
	"mdspec/internal/profiling"
	"mdspec/internal/prog"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func main() {
	n := flag.Int64("n", 200_000, "committed instructions to simulate")
	bench := flag.String("w", "126.gcc", "benchmark name (Table 1) or kernel: recurrence, stream, chase, taskboundary")
	profilePath := flag.String("profile", "", "JSON workload profile file (overrides -w)")
	policy := flag.String("policy", "NO", "memory dependence speculation policy")
	useAS := flag.Bool("as", false, "use an address-based load/store scheduler")
	asLat := flag.Int("aslat", 0, "address scheduler latency in cycles (with -as)")
	split := flag.Int("split", 0, "split the window into N units (0 = continuous)")
	window := flag.Int("window", 128, "instruction window size (64 selects the paper's small machine)")
	selinv := flag.Bool("selinv", false, "recover with selective invalidation instead of squashing")
	wrongPath := flag.Bool("wrongpath", false, "model wrong-path instruction fetch during mispredictions")
	sample := flag.String("sample", "", "sampled simulation as T:F instructions (e.g. 50000:100000)")
	par := flag.Int("par", 1, "workers for an interval-parallel sampled run (with -sample; 0 = one per core)")
	jsonOut := flag.Bool("json", false, "write a JSON run record instead of the text report")
	outPath := flag.String("out", "", "destination file for -json (default stdout)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf, *tracePath)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	pol, err := config.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	var cfg config.Machine
	if *window == 64 {
		cfg = config.Small64()
	} else {
		cfg = config.Default128()
		cfg.Window = *window
	}
	cfg = cfg.WithPolicy(pol)
	if *useAS {
		cfg = cfg.WithAddressScheduler(*asLat)
	}
	if *split > 0 {
		cfg = cfg.WithSplitWindow(*split)
	}
	if *selinv {
		cfg = cfg.WithRecovery(config.RecoverySelective)
	}
	cfg.WrongPathFetch = *wrongPath

	var p *prog.Program
	if *profilePath != "" {
		pr, err := workload.LoadProfile(*profilePath)
		if err != nil {
			fatal(err)
		}
		if p, err = workload.Generate(pr); err != nil {
			fatal(err)
		}
		*bench = pr.Name
	} else {
		var err error
		if p, err = buildWorkload(*bench); err != nil {
			fatal(err)
		}
	}
	var tw, fw int64
	if *sample != "" {
		if _, err := fmt.Sscanf(*sample, "%d:%d", &tw, &fw); err != nil {
			fatal(fmt.Errorf("bad -sample %q (want T:F): %v", *sample, err))
		}
	}
	var r *stats.Run
	start := time.Now()
	switch {
	case *sample != "" && *par != 1:
		// Interval-parallel sampled run over a shared recording.
		rec := emu.NewRecording(emu.New(p))
		r, err = parsim.Run(context.Background(), cfg, rec, parsim.Options{
			TotalTiming: *n, TimingInsts: tw, FunctionalInsts: fw, Workers: *par,
		})
		if err != nil {
			fatal(err)
		}
	case *sample != "":
		pl, err := core.New(cfg, emu.NewTrace(emu.New(p)))
		if err != nil {
			fatal(err)
		}
		if r, err = pl.RunSampled(*n, tw, fw); err != nil {
			fatal(err)
		}
	default:
		pl, err := core.New(cfg, emu.NewTrace(emu.New(p)))
		if err != nil {
			fatal(err)
		}
		if r, err = pl.Run(*n); err != nil {
			fatal(err)
		}
	}
	wall := time.Since(start)
	r.Workload = *bench

	if *jsonOut {
		if err := writeRecord(experiments.NewRunRecord(*bench, cfg, *n, wall, r), *outPath); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(r)
	fmt.Printf("  committed: %d insts (%d loads, %d stores) in %d cycles -> IPC %.3f\n",
		r.Committed, r.CommittedLoads, r.CommittedStores, r.Cycles, r.IPC())
	fmt.Printf("  misspeculations: %d (%.4f%% of loads), squashed insts: %d\n",
		r.Misspeculations, 100*r.MisspecRate(), r.SquashedInsts)
	fmt.Printf("  false deps: %.1f%% of loads, %.1f cycles mean resolution\n",
		100*r.FalseDepRate(), r.FalseDepLatency())
	fmt.Printf("  branches: %d (%.2f%% mispredicted)\n", r.Branches, 100*r.BranchMissRate())
	fmt.Printf("  D-cache: %d/%d misses (%.1f%%)  I-cache: %d/%d (%.1f%%)\n",
		r.DCacheMisses, r.DCacheAccesses, 100*missRate(r.DCacheMisses, r.DCacheAccesses),
		r.ICacheMisses, r.ICacheAccesses, 100*missRate(r.ICacheMisses, r.ICacheAccesses))
	fmt.Printf("  store-buffer forwards: %d, policy-delayed loads: %d\n", r.Forwards, r.SyncWaits)
	se, sm, sx := r.StallBreakdown()
	fmt.Printf("  zero-commit cycles: %.1f%% front-end, %.1f%% memory, %.1f%% execute\n",
		100*se, 100*sm, 100*sx)
	if r.Skipped > 0 {
		fmt.Printf("  sampling: %d instructions fast-forwarded functionally\n", r.Skipped)
	}
}

func buildWorkload(name string) (*prog.Program, error) {
	switch name {
	case "recurrence":
		return workload.KernelRecurrence(0), nil
	case "stream":
		return workload.KernelStream(0), nil
	case "chase":
		return workload.KernelPointerChase(1024, 0), nil
	case "taskboundary":
		return workload.KernelTaskBoundary(32, 1<<30), nil
	}
	return workload.Build(name)
}

// writeRecord writes one provenance-carrying run record as indented
// JSON to path (replaced atomically), or stdout when path is empty.
func writeRecord(rec experiments.RunRecord, path string) error {
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	if path == "" {
		return emit(os.Stdout)
	}
	return atomicio.WriteFile(path, emit)
}

func missRate(m, a uint64) float64 {
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdsim:", err)
	os.Exit(1)
}
