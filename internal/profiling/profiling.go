// Package profiling wires the standard pprof profilers and the runtime
// execution tracer into the command-line tools, so simulator hot spots
// can be inspected with `go tool pprof` — and scheduling/parallelism
// behavior with `go tool trace` — without any external dependencies.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling to cpuPath and execution tracing to
// tracePath (each when non-empty). The returned stop function ends the
// CPU profile and the trace and, when memPath is non-empty, writes an
// allocation (heap) profile taken after a final GC. Any path may be
// empty; with all empty Start is a no-op.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("start execution trace: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
