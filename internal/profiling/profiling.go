// Package profiling wires the standard pprof profilers and the runtime
// execution tracer into the command-line tools, so simulator hot spots
// can be inspected with `go tool pprof` — and scheduling/parallelism
// behavior with `go tool trace` — without any external dependencies.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling to cpuPath and execution tracing to
// tracePath (each when non-empty). The returned stop function ends the
// CPU profile and the trace and, when memPath is non-empty, writes an
// allocation (heap) profile taken after a final GC. Any path may be
// empty; with all empty Start is a no-op.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close() //md:errok cleanup on an already-failing start; nothing was profiled into the file
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close() //md:errok unwinding an already-failing Start; the partial CPU profile is abandoned
			}
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close() //md:errok cleanup on an already-failing trace start; nothing was traced into the file
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close() //md:errok unwinding an already-failing Start; the partial CPU profile is abandoned
			}
			return nil, fmt.Errorf("start execution trace: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close() //md:errok cleanup on an already-failing profile write; the write error is the one reported
				return fmt.Errorf("write heap profile: %w", err)
			}
			// The profile only exists once the close flushes cleanly; a
			// deferred-and-dropped close could hand back a truncated file.
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
