// Package profiling wires the standard pprof profilers into the
// command-line tools, so simulator hot spots can be inspected with
// `go tool pprof` without any external dependencies.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty). The returned
// stop function ends the CPU profile and, when memPath is non-empty,
// writes an allocation (heap) profile taken after a final GC. Either
// path may be empty; with both empty Start is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
