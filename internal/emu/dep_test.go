package emu

import (
	"testing"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

func TestRegisterDependenceTracking(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(isa.R1, 5)               // seq 0: writes r1
	b.Li(isa.R2, 7)               // seq 1: writes r2
	b.Add(isa.R3, isa.R1, isa.R2) // seq 2: reads r1 (0), r2 (1)
	b.Add(isa.R4, isa.R3, isa.R1) // seq 3: reads r3 (2), r1 (0)
	b.Halt()
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	if ds[2].Dep1Seq != 0 || ds[2].Dep2Seq != 1 {
		t.Errorf("add deps = %d, %d; want 0, 1", ds[2].Dep1Seq, ds[2].Dep2Seq)
	}
	if ds[3].Dep1Seq != 2 || ds[3].Dep2Seq != 0 {
		t.Errorf("second add deps = %d, %d; want 2, 0", ds[3].Dep1Seq, ds[3].Dep2Seq)
	}
	// First instruction has no producers.
	if ds[0].Dep1Seq != -1 || ds[0].Dep2Seq != -1 {
		t.Errorf("li deps = %d, %d; want -1, -1", ds[0].Dep1Seq, ds[0].Dep2Seq)
	}
}

func TestR0NeverADependence(t *testing.T) {
	b := prog.NewBuilder()
	b.Addi(isa.R0, isa.R0, 5)     // writes nothing
	b.Add(isa.R1, isa.R0, isa.R0) // reads r0 twice
	b.Halt()
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	if ds[1].Dep1Seq != -1 || ds[1].Dep2Seq != -1 {
		t.Errorf("r0 reads should have no producer: %d, %d", ds[1].Dep1Seq, ds[1].Dep2Seq)
	}
}

func TestHiLoDependences(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(isa.R1, 6)        // 0
	b.Li(isa.R2, 7)        // 1
	b.Mult(isa.R1, isa.R2) // 2: writes HI and LO
	b.Mfhi(isa.R3)         // 3: reads HI
	b.Mflo(isa.R4)         // 4: reads LO
	b.Halt()
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	if ds[3].Dep1Seq != 2 {
		t.Errorf("mfhi dep = %d, want 2", ds[3].Dep1Seq)
	}
	if ds[4].Dep1Seq != 2 {
		t.Errorf("mflo dep = %d, want 2", ds[4].Dep1Seq)
	}
}

func TestStoreDataAndBaseDeps(t *testing.T) {
	b := prog.NewBuilder()
	arr := b.Alloc(8)
	b.Li(isa.R1, int64(arr)) // 0: base
	b.Li(isa.R2, 42)         // 1: data
	b.Sw(isa.R2, isa.R1, 0)  // 2: base dep 0, data dep 1
	b.Halt()
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	if ds[2].Dep1Seq != 0 || ds[2].Dep2Seq != 1 {
		t.Errorf("store deps = %d, %d; want 0, 1", ds[2].Dep1Seq, ds[2].Dep2Seq)
	}
}

func TestJALWritesRADependence(t *testing.T) {
	b := prog.NewBuilder()
	b.Jal("fn") // 0: writes RA
	b.Halt()
	b.Label("fn")
	b.Jr(isa.RA) // reads RA written by the JAL
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	if len(ds) < 2 || ds[1].Inst.Op != isa.JR {
		t.Fatalf("unexpected trace: %v", ds)
	}
	if ds[1].Dep1Seq != 0 {
		t.Errorf("jr dep = %d, want 0 (the jal)", ds[1].Dep1Seq)
	}
}
