package emu

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// compareStreams replays both streams in lockstep and fails on the
// first differing record. It returns the common length.
func compareStreams(t *testing.T, label string, want, got Stream, limit int64) int64 {
	t.Helper()
	var n int64
	for ; limit <= 0 || n < limit; n++ {
		w := want.At(n)
		g := got.At(n)
		if (w == nil) != (g == nil) {
			t.Fatalf("%s: seq %d: want nil=%v, got nil=%v", label, n, w == nil, g == nil)
		}
		if w == nil {
			break
		}
		if !reflect.DeepEqual(*w, *g) {
			t.Fatalf("%s: seq %d:\nwant %+v\ngot  %+v", label, n, *w, *g)
		}
		want.Release(n - 64)
	}
	return n
}

// escapeProgram builds a stream whose register and memory dependences
// span more than 2^16 dynamic instructions, forcing the uint16 distance
// columns through the escape side table.
func escapeProgram() *prog.Program {
	b := prog.NewBuilder()
	arena := b.AllocAligned(8, 64)
	b.Li(isa.R1, int64(arena)) // R1 written once, read ~140k insts later
	b.Li(isa.R9, 7)
	b.Sw(isa.R9, isa.R1, 0) // producer store, ~140k insts before the load
	b.Li(isa.R2, 70_000)
	b.Label("spin")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "spin")
	b.Lw(isa.R3, isa.R1, 0) // Dep1Seq (R1) and ProducerSeq both escape
	b.Sw(isa.R3, isa.R1, 0) // Dep2Seq short, Dep1Seq (R1) escapes
	b.Halt()
	return b.MustProgram()
}

func TestColumnarEscapeDistances(t *testing.T) {
	p := escapeProgram()
	tr := NewTrace(New(p))
	rec := NewRecording(New(p))
	n := compareStreams(t, "escape", tr, rec.NewReplay(), 0)
	// The point of the program is to exercise the escape table; make
	// sure it actually did.
	var escapes int
	for _, c := range rec.chunks {
		escapes += len(c.escKey)
	}
	if escapes == 0 {
		t.Fatalf("escapeProgram recorded %d insts without touching the escape table", n)
	}
}

// recordToFile records the whole program and serializes it.
func recordToFile(t *testing.T, p *prog.Program, path string) *Recording {
	t.Helper()
	rec := NewRecording(New(p))
	if !rec.Complete(1 << 22) {
		t.Fatalf("program did not halt within the completion bound")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestRecordingFileRoundTrip serializes a complete recording, maps it
// back, and requires the mapped replay to match a direct Trace record
// for record — including the escape table and the frontier NextPC.
func TestRecordingFileRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *prog.Program
	}{
		{"loop", loopProgram(3000)},
		{"escape", escapeProgram()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.mdrec")
			rec := recordToFile(t, tc.prog, path)
			fr, err := OpenRecordingFile(path, tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			defer fr.Close()
			if fr.Len() != rec.Len() {
				t.Fatalf("mapped Len() = %d, recording has %d", fr.Len(), rec.Len())
			}
			n := compareStreams(t, tc.name, NewTrace(New(tc.prog)), fr.NewReplay(), 0)
			if n != rec.Len() {
				t.Fatalf("mapped replay ended at %d, want %d", n, rec.Len())
			}
			// The file deliberately beats the old 88 B/inst AoS layout.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if bpi := float64(st.Size()) / float64(n); bpi > 24 {
				t.Errorf("recording file costs %.1f bytes/inst, want <= 24", bpi)
			}
		})
	}
}

// TestRecordingFileRejectsDamage mirrors the journal's torn-tail
// handling: a truncated or bit-flipped recording file must fail to open
// with ErrCorruptRecording (never replay garbage), and a recording of a
// different program must be rejected as a mismatch.
func TestRecordingFileRejectsDamage(t *testing.T) {
	p := loopProgram(3000)
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.mdrec")
	recordToFile(t, p, path)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "damaged.mdrec")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("torn-tail", func(t *testing.T) {
		for _, keep := range []int{len(blob) - 1, len(blob) / 2, recHeaderSize + 4, recHeaderSize, 10, 0} {
			if _, err := OpenRecordingFile(write(t, blob[:keep]), p); !errors.Is(err, ErrCorruptRecording) {
				t.Errorf("truncated to %d bytes: err = %v, want ErrCorruptRecording", keep, err)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		for _, pos := range []int{recHeaderSize + 1, len(blob) / 2, len(blob) - 2} {
			mut := bytes.Clone(blob)
			mut[pos] ^= 0x40
			if _, err := OpenRecordingFile(write(t, mut), p); !errors.Is(err, ErrCorruptRecording) {
				t.Errorf("flip at %d: err = %v, want ErrCorruptRecording", pos, err)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		mut := bytes.Clone(blob)
		mut[0] = 'X'
		if _, err := OpenRecordingFile(write(t, mut), p); !errors.Is(err, ErrCorruptRecording) {
			t.Errorf("bad magic: err = %v, want ErrCorruptRecording", err)
		}
	})
	t.Run("wrong-program", func(t *testing.T) {
		other := loopProgram(2999)
		if _, err := OpenRecordingFile(path, other); !errors.Is(err, ErrRecordingMismatch) {
			t.Errorf("wrong program: err = %v, want ErrRecordingMismatch", err)
		}
	})
	t.Run("incomplete-refused", func(t *testing.T) {
		rec := NewRecording(New(loopProgram(3000)))
		rec.Record(100)
		if _, err := rec.WriteTo(bytes.NewBuffer(nil)); err == nil {
			t.Error("WriteTo accepted an incomplete recording")
		}
	})
}

// TestSealedPrefixRecording pins the sealed-prefix mode used by the
// runner's on-disk cache: a recording sealed mid-program replays
// identically inside the seal, and a read past the seal panics loudly
// instead of masquerading as the program's end.
func TestSealedPrefixRecording(t *testing.T) {
	p := loopProgram(100_000) // far longer than the sealed horizon
	rec := NewRecording(New(p))
	rec.Record(10_000)
	path := filepath.Join(t.TempDir(), "prefix.mdrec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WriteSealedTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenRecordingFile(path, p)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if !fr.Prefix() {
		t.Fatal("sealed file not marked as a prefix")
	}
	if fr.Len() < 10_000 {
		t.Fatalf("sealed at %d, want >= 10000", fr.Len())
	}
	compareStreams(t, "prefix", NewTrace(New(p)), fr.NewReplay(), fr.Len())

	defer func() {
		if recover() == nil {
			t.Error("reading past the seal should panic, not report end-of-program")
		}
	}()
	fr.NewReplay().At(fr.Len())
}
