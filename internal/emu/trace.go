package emu

// Stream is the dynamic-instruction source consumed by timing models.
// At returns the instruction with the given sequence number (nil once
// the program has halted before seq); Release declares that records
// below seq will never be requested again; Len reports the number of
// instructions generated so far (the exact program length once At has
// returned nil). Trace and Replay both satisfy it.
type Stream interface {
	At(seq int64) *DynInst
	Release(seq int64)
	Len() int64
}

// Trace is a lazily-extended buffer of dynamic instructions produced by a
// Machine. Timing models index it by sequence number: the fetch stage
// walks forward, squashes rewind to an earlier sequence number, and commit
// releases records that can no longer be referenced. A released prefix is
// reclaimed so memory stays proportional to the instruction window, not
// the run length.
type Trace struct {
	m    *Machine
	base int64
	buf  []DynInst
}

// NewTrace returns a Trace over m. The machine must not be stepped
// directly once it is owned by a Trace.
func NewTrace(m *Machine) *Trace {
	return &Trace{m: m, buf: make([]DynInst, 0, traceMinCap)}
}

// At returns the dynamic instruction with sequence number seq, extending
// the trace as necessary. It returns nil if the program halts before seq
// is reached. seq must be >= the last Release point.
//
// Each instruction is emulated and buffered exactly once, amortized
// across the cycles that replay it.
//
//md:allocok lazy materialization boundary, amortized once per instruction
func (t *Trace) At(seq int64) *DynInst {
	if seq < t.base {
		panic("emu: Trace.At before released prefix")
	}
	for seq >= t.base+int64(len(t.buf)) {
		var d DynInst
		if !t.m.Step(&d) {
			return nil
		}
		t.buf = append(t.buf, d)
	}
	return &t.buf[seq-t.base]
}

// Release declares that records with sequence numbers below seq will not
// be requested again, allowing their storage to be reclaimed.
func (t *Trace) Release(seq int64) {
	if seq <= t.base {
		return
	}
	n := seq - t.base
	if n > int64(len(t.buf)) {
		n = int64(len(t.buf))
		seq = t.base + n
	}
	// Compact only once a sizable prefix is dead, to amortize the copy.
	if n >= 4096 || int(n)*2 >= cap(t.buf) {
		remaining := copy(t.buf, t.buf[n:])
		t.buf = t.buf[:remaining]
		t.base = seq
		// A squash can leave a buffer grown far beyond the live window
		// (deep speculation followed by a rewind). Once the live suffix
		// drops below a quarter of a large capacity, reallocate at ~2×
		// the live size so memory tracks the window again.
		if c := cap(t.buf); c >= 4*traceMinCap && remaining*4 < c {
			newCap := 2 * remaining
			if newCap < traceMinCap {
				newCap = traceMinCap
			}
			//md:allocok shrink after release, bounded by releases of grown buffers
			shrunk := make([]DynInst, remaining, newCap)
			copy(shrunk, t.buf)
			t.buf = shrunk
		}
	}
}

// traceMinCap is the smallest buffer a shrink leaves behind; buffers at
// or below 4*traceMinCap never shrink, so a steady-state pipeline
// window (a few thousand entries) cannot thrash between grow and
// shrink.
const traceMinCap = 1024

// Len returns the number of instructions generated so far.
func (t *Trace) Len() int64 { return t.base + int64(len(t.buf)) }

// Machine returns the underlying machine (for architectural inspection).
func (t *Trace) Machine() *Machine { return t.m }
