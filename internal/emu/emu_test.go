package emu

import (
	"testing"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// run executes the program to completion (or max steps) and returns the
// machine and collected dynamic instructions.
func run(t *testing.T, p *prog.Program, max int) (*Machine, []DynInst) {
	t.Helper()
	m := New(p)
	var out []DynInst
	var d DynInst
	for i := 0; i < max && m.Step(&d); i++ {
		out = append(out, d)
	}
	return m, out
}

func TestArithmetic(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(isa.R1, 7)
	b.Li(isa.R2, 5)
	b.Add(isa.R3, isa.R1, isa.R2)
	b.Sub(isa.R4, isa.R1, isa.R2)
	b.Mult(isa.R1, isa.R2)
	b.Mflo(isa.R5)
	b.Div(isa.R1, isa.R2)
	b.Mflo(isa.R6)
	b.Mfhi(isa.R7)
	b.Slt(isa.R8, isa.R2, isa.R1)
	b.Halt()
	m, _ := run(t, b.MustProgram(), 100)
	cases := []struct {
		r    isa.Reg
		want int64
	}{
		{isa.R3, 12}, {isa.R4, 2}, {isa.R5, 35}, {isa.R6, 1}, {isa.R7, 2}, {isa.R8, 1},
	}
	for _, c := range cases {
		if got := m.Reg(c.r); got != c.want {
			t.Errorf("%v = %d, want %d", c.r, got, c.want)
		}
	}
	if !m.Halted() {
		t.Error("machine should have halted")
	}
}

func TestR0Hardwired(t *testing.T) {
	b := prog.NewBuilder()
	b.Addi(isa.R0, isa.R0, 99)
	b.Add(isa.R1, isa.R0, isa.R0)
	b.Halt()
	m, _ := run(t, b.MustProgram(), 10)
	if m.Reg(isa.R0) != 0 || m.Reg(isa.R1) != 0 {
		t.Errorf("r0 = %d, r1 = %d; want 0, 0", m.Reg(isa.R0), m.Reg(isa.R1))
	}
}

func TestLoadStoreAndProducer(t *testing.T) {
	b := prog.NewBuilder()
	arr := b.AllocInit(11, 22)
	b.Li(isa.R1, int64(arr))
	b.Lw(isa.R2, isa.R1, 0)              // loads 11, no producer
	b.Sw(isa.R2, isa.R1, prog.WordBytes) // stores 11 over 22
	b.Lw(isa.R3, isa.R1, prog.WordBytes) // loads 11, producer = the store
	b.Halt()
	m, ds := run(t, b.MustProgram(), 20)
	if m.Reg(isa.R3) != 11 {
		t.Errorf("r3 = %d, want 11", m.Reg(isa.R3))
	}
	var firstLoad, store, secondLoad *DynInst
	for i := range ds {
		d := &ds[i]
		switch {
		case d.IsLoad() && firstLoad == nil:
			firstLoad = d
		case d.IsStore():
			store = d
		case d.IsLoad():
			secondLoad = d
		}
	}
	if firstLoad == nil || store == nil || secondLoad == nil {
		t.Fatal("missing memory ops in trace")
	}
	if firstLoad.LoadVal != 11 || firstLoad.ProducerSeq != -1 {
		t.Errorf("first load val=%d producer=%d", firstLoad.LoadVal, firstLoad.ProducerSeq)
	}
	if store.StoreVal != 11 || store.OldVal != 22 {
		t.Errorf("store val=%d old=%d, want 11, 22", store.StoreVal, store.OldVal)
	}
	if secondLoad.LoadVal != 11 || secondLoad.ProducerSeq != store.Seq {
		t.Errorf("second load val=%d producer=%d, want 11, %d",
			secondLoad.LoadVal, secondLoad.ProducerSeq, store.Seq)
	}
	if firstLoad.Addr != arr || store.Addr != arr+prog.WordBytes {
		t.Errorf("addresses wrong: %#x %#x", firstLoad.Addr, store.Addr)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..5 with a loop.
	b := prog.NewBuilder()
	b.Li(isa.R1, 5) // n
	b.Li(isa.R2, 0) // sum
	b.Label("loop")
	b.Add(isa.R2, isa.R2, isa.R1)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, isa.R0, "loop")
	b.Halt()
	m, ds := run(t, b.MustProgram(), 100)
	if m.Reg(isa.R2) != 15 {
		t.Errorf("sum = %d, want 15", m.Reg(isa.R2))
	}
	taken, notTaken := 0, 0
	for i := range ds {
		if ds[i].Inst.Op == isa.BNE {
			if ds[i].Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 4 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 4, 1", taken, notTaken)
	}
}

func TestCallReturn(t *testing.T) {
	b := prog.NewBuilder()
	b.Jal("fn")
	b.Add(isa.R3, isa.R1, isa.R1) // after return: r3 = 2*r1
	b.Halt()
	b.Label("fn")
	b.Li(isa.R1, 21)
	b.Ret()
	m, ds := run(t, b.MustProgram(), 20)
	if m.Reg(isa.R3) != 42 {
		t.Errorf("r3 = %d, want 42", m.Reg(isa.R3))
	}
	// The JAL must record its fall-through as the RA value and jump.
	if ds[0].Inst.Op != isa.JAL || !ds[0].Taken {
		t.Fatal("first inst should be a taken JAL")
	}
	if want := prog.PCOf(3); ds[0].NextPC != want { // "fn" is the 4th instruction
		t.Errorf("JAL NextPC = %#x, want %#x", ds[0].NextPC, want)
	}
}

func TestStackPointerInitialized(t *testing.T) {
	b := prog.NewBuilder()
	b.Sw(isa.R1, isa.SP, -8)
	b.Halt()
	m, ds := run(t, b.MustProgram(), 10)
	_ = m
	if len(ds) == 0 || ds[0].Addr != prog.StackBase-8 {
		t.Fatalf("stack store addr = %#x, want %#x", ds[0].Addr, prog.StackBase-8)
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if m.Read(0x1000) != 0 {
		t.Error("untouched memory should read 0")
	}
	m.Write(0x1000, 77)
	m.Write(0xffff_f000, -5)
	if m.Read(0x1000) != 77 || m.Read(0xffff_f000) != -5 {
		t.Error("read-after-write failed")
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2", m.Footprint())
	}
}

func TestUnalignedAccessAligns(t *testing.T) {
	b := prog.NewBuilder()
	a := b.AllocInit(123)
	b.Li(isa.R1, int64(a)+3) // misaligned base
	b.Lw(isa.R2, isa.R1, 0)
	b.Halt()
	m, ds := run(t, b.MustProgram(), 10)
	if m.Reg(isa.R2) != 123 {
		t.Errorf("r2 = %d, want 123 (aligned load)", m.Reg(isa.R2))
	}
	for i := range ds {
		if ds[i].IsLoad() && ds[i].Addr != a {
			t.Errorf("load addr = %#x, want %#x", ds[i].Addr, a)
		}
	}
}

func TestMulHigh(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1 << 40, 1 << 40, 1 << 16},
		{-1, 1, -1},
		{1, 1, 0},
		{-(1 << 40), 1 << 40, -(1 << 16)},
	}
	for _, c := range cases {
		if got := mulHigh(c.a, c.b); got != c.want {
			t.Errorf("mulHigh(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHaltStopsStepping(t *testing.T) {
	b := prog.NewBuilder()
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	if !m.Step(&d) {
		t.Fatal("HALT itself should execute")
	}
	if m.Step(&d) {
		t.Fatal("stepping past HALT should fail")
	}
}

func TestPCOffTextHalts(t *testing.T) {
	b := prog.NewBuilder()
	b.Jr(isa.R1) // r1 = 0: jumps outside text
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	if !m.Step(&d) {
		t.Fatal("JR should execute")
	}
	if m.Step(&d) {
		t.Fatal("stepping off the text section should fail")
	}
	if !m.Halted() {
		t.Error("machine should report halted")
	}
}

func TestTraceExtendAndRewind(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(isa.R1, 1000)
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, isa.R0, "loop")
	b.Halt()
	tr := NewTrace(New(b.MustProgram()))
	d50 := tr.At(50)
	if d50 == nil {
		t.Fatal("At(50) = nil")
	}
	pc50, seq50 := d50.PC, d50.Seq
	if seq50 != 50 {
		t.Errorf("seq = %d, want 50", seq50)
	}
	// Earlier records remain accessible (squash rewind).
	if d := tr.At(10); d == nil || d.Seq != 10 {
		t.Fatal("rewind to 10 failed")
	}
	// Same record still matches.
	if d := tr.At(50); d.PC != pc50 {
		t.Error("At(50) changed after rewind")
	}
}

func TestTraceRelease(t *testing.T) {
	b := prog.NewBuilder()
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, 1)
	b.J("loop")
	tr := NewTrace(New(b.MustProgram()))
	if tr.At(9999) == nil {
		t.Fatal("infinite loop trace should extend")
	}
	tr.Release(9000)
	if d := tr.At(9000); d == nil || d.Seq != 9000 {
		t.Fatal("At(9000) after release failed")
	}
	if d := tr.At(12000); d == nil || d.Seq != 12000 {
		t.Fatal("extend after release failed")
	}
}

func TestTraceEndsAtHalt(t *testing.T) {
	b := prog.NewBuilder()
	b.Nop()
	b.Halt()
	tr := NewTrace(New(b.MustProgram()))
	if tr.At(0) == nil || tr.At(1) == nil {
		t.Fatal("first two records should exist")
	}
	if tr.At(2) != nil {
		t.Fatal("trace should end after HALT")
	}
}

// TestTraceReleaseShrinks pins post-Release memory: after deep
// speculation grows the buffer far beyond the live window, releasing
// the dead prefix must also give the capacity back (shrink to ~2× the
// live suffix) instead of holding the high-water mark forever.
func TestTraceReleaseShrinks(t *testing.T) {
	b := prog.NewBuilder()
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, 1)
	b.J("loop")
	tr := NewTrace(New(b.MustProgram()))
	if tr.At(99_999) == nil {
		t.Fatal("trace should extend to 100k")
	}
	grown := cap(tr.buf)
	if grown < 100_000 {
		t.Fatalf("buffer did not grow: cap %d", grown)
	}
	tr.Release(99_900) // 100 live entries out of >=100k capacity
	if got := cap(tr.buf); got > 4*traceMinCap {
		t.Errorf("cap after release = %d entries, want <= %d (was %d)", got, 4*traceMinCap, grown)
	}
	// The stream must be unaffected: live suffix intact, extension works.
	if d := tr.At(99_950); d == nil || d.Seq != 99_950 {
		t.Fatal("live entry lost by shrink")
	}
	if d := tr.At(100_500); d == nil || d.Seq != 100_500 {
		t.Fatal("extension after shrink failed")
	}
	// A window-sized buffer must NOT shrink: releasing most of a small
	// buffer keeps its capacity (no grow/shrink thrash in steady state).
	small := NewTrace(New(b.MustProgram()))
	if small.At(2*traceMinCap-1) == nil {
		t.Fatal("small trace should extend")
	}
	before := cap(small.buf)
	small.Release(2*traceMinCap - 10)
	if got := cap(small.buf); got != before {
		t.Errorf("small buffer shrank: cap %d -> %d", before, got)
	}
}
