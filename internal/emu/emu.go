// Package emu is the functional emulator for the mini-RISC ISA. It
// executes programs architecturally (no timing) and produces a stream of
// DynInst records that the timing models consume. Each record carries
// everything the out-of-order core needs: effective addresses, loaded and
// stored values, the pre-store memory value (for misspeculation value
// checks), branch outcomes, and — for loads — the sequence number of the
// most recent earlier store to the same word (the oracle dependence used
// by the NAS/ORACLE policy and by false-dependence accounting).
package emu

import (
	"fmt"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// DynInst is one dynamic (executed) instruction.
type DynInst struct {
	Seq  int64 // dynamic sequence number, starting at 0
	PC   uint32
	Inst *isa.Inst

	// Memory operations.
	Addr     uint32 // effective byte address (word aligned)
	LoadVal  int64  // value loaded (loads)
	StoreVal int64  // value stored (stores)
	OldVal   int64  // memory value before the store executed (stores)

	// ProducerSeq is, for loads, the Seq of the youngest earlier store
	// that wrote this word, or -1 if the word was never stored to. The
	// timing core compares it against the window contents to decide
	// whether a load has a true in-window dependence.
	ProducerSeq int64

	// Dep1Seq/Dep2Seq are the sequence numbers of the dynamic
	// instructions that last wrote this instruction's register sources
	// (Src1/Src2), or -1 for none. In a continuous window this equals
	// what a rename table would record; in the split-window model it
	// lets register dependences resolve across out-of-order task fetch.
	Dep1Seq int64
	Dep2Seq int64

	// Control flow.
	NextPC uint32 // architecturally correct next PC
	Taken  bool   // branch/jump was taken
}

// IsLoad reports whether the dynamic instruction is a load.
func (d *DynInst) IsLoad() bool { return d.Inst.Op.IsLoad() }

// IsStore reports whether the dynamic instruction is a store.
func (d *DynInst) IsStore() bool { return d.Inst.Op.IsStore() }

// IsBranch reports whether the dynamic instruction redirects control flow.
func (d *DynInst) IsBranch() bool { return d.Inst.Op.IsBranch() }

const (
	pageWords = 512
	pageShift = 9
	pageMask  = pageWords - 1
)

// Memory is a sparse, paged, word-addressed (8-byte words) memory image.
// The zero value is an empty memory; all words read as zero until written.
type Memory struct {
	pages map[uint32]*[pageWords]int64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageWords]int64)}
}

func wordAddr(byteAddr uint32) uint32 { return byteAddr >> 3 }

// Read returns the word at byte address addr (must be 8-byte aligned).
func (m *Memory) Read(addr uint32) int64 {
	w := wordAddr(addr)
	pg := m.pages[w>>pageShift]
	if pg == nil {
		return 0
	}
	return pg[w&pageMask]
}

// Write stores v at byte address addr (must be 8-byte aligned).
func (m *Memory) Write(addr uint32, v int64) {
	w := wordAddr(addr)
	key := w >> pageShift
	pg := m.pages[key]
	if pg == nil {
		pg = new([pageWords]int64)
		m.pages[key] = pg
	}
	pg[w&pageMask] = v
}

// Footprint returns the number of distinct pages touched.
func (m *Memory) Footprint() int { return len(m.pages) }

// Machine executes a program functionally.
type Machine struct {
	prog   *prog.Program
	mem    *Memory
	regs   [isa.NumRegs]int64
	pc     uint32
	seq    int64
	halted bool

	// lastStore maps word address -> Seq of the last store to it.
	lastStore map[uint32]int64
	// lastWriter maps register -> Seq of the last instruction to write
	// it (-1 if never written).
	lastWriter [isa.NumRegs]int64
}

// New returns a Machine at the program entry with the program's initial
// data image loaded and SP set to the stack base.
func New(p *prog.Program) *Machine {
	m := &Machine{
		prog:      p,
		mem:       NewMemory(),
		pc:        p.Entry,
		lastStore: make(map[uint32]int64),
	}
	//md:orderindependent each address is written once, so the memory image is the same for every visit order
	for addr, v := range p.Data {
		m.mem.Write(addr, v)
	}
	m.regs[isa.SP] = int64(prog.StackBase)
	for i := range m.lastWriter {
		m.lastWriter[i] = -1
	}
	return m
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Halted reports whether a HALT instruction has executed.
func (m *Machine) Halted() bool { return m.halted }

// Seq returns the number of instructions executed so far.
func (m *Machine) Seq() int64 { return m.seq }

// Reg returns the architectural value of register r.
func (m *Machine) Reg(r isa.Reg) int64 {
	if r == isa.NoReg {
		return 0
	}
	return m.regs[r]
}

// Mem returns the memory image (shared, not a copy).
func (m *Machine) Mem() *Memory { return m.mem }

// Program returns the program being executed.
func (m *Machine) Program() *prog.Program { return m.prog }

func (m *Machine) setReg(r isa.Reg, v int64) {
	if r == isa.NoReg || r == isa.R0 {
		return
	}
	m.regs[r] = v
}

// Step executes one instruction and fills d with its dynamic record.
// It returns false (with d untouched) once the machine has halted or the
// PC leaves the text section.
func (m *Machine) Step(d *DynInst) bool {
	if m.halted {
		return false
	}
	in, ok := m.prog.At(m.pc)
	if !ok {
		m.halted = true
		return false
	}

	*d = DynInst{
		Seq:         m.seq,
		PC:          m.pc,
		Inst:        in,
		ProducerSeq: -1,
		Dep1Seq:     m.writerOf(in.Src1()),
		Dep2Seq:     m.writerOf(in.Src2()),
		NextPC:      m.pc + isa.InstBytes,
	}

	r1 := m.Reg(in.Src1())
	r2v := m.Reg(in.Rs2)

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.halted = true
	case isa.ADD:
		m.setReg(in.Rd, r1+r2v)
	case isa.ADDI:
		m.setReg(in.Rd, r1+in.Imm)
	case isa.SUB:
		m.setReg(in.Rd, r1-r2v)
	case isa.AND:
		m.setReg(in.Rd, r1&r2v)
	case isa.ANDI:
		m.setReg(in.Rd, r1&in.Imm)
	case isa.OR:
		m.setReg(in.Rd, r1|r2v)
	case isa.ORI:
		m.setReg(in.Rd, r1|in.Imm)
	case isa.XOR:
		m.setReg(in.Rd, r1^r2v)
	case isa.XORI:
		m.setReg(in.Rd, r1^in.Imm)
	case isa.SLL:
		m.setReg(in.Rd, r1<<uint(in.Imm&63))
	case isa.SRL:
		m.setReg(in.Rd, int64(uint64(r1)>>uint(in.Imm&63)))
	case isa.SRA:
		m.setReg(in.Rd, r1>>uint(in.Imm&63))
	case isa.SLT:
		m.setReg(in.Rd, boolToInt(r1 < r2v))
	case isa.SLTI:
		m.setReg(in.Rd, boolToInt(r1 < in.Imm))
	case isa.LUI:
		m.setReg(in.Rd, in.Imm<<16)
	case isa.MULT:
		m.regs[isa.LO] = r1 * r2v
		m.regs[isa.HI] = mulHigh(r1, r2v)
	case isa.DIV:
		if r2v == 0 {
			m.regs[isa.LO] = -1
			m.regs[isa.HI] = r1
		} else {
			m.regs[isa.LO] = r1 / r2v
			m.regs[isa.HI] = r1 % r2v
		}
	case isa.MFHI:
		m.setReg(in.Rd, m.regs[isa.HI])
	case isa.MFLO:
		m.setReg(in.Rd, m.regs[isa.LO])
	case isa.FADD:
		m.setReg(in.Rd, r1+r2v) // FP values are modeled as int64 payloads
	case isa.FSUB:
		m.setReg(in.Rd, r1-r2v)
	case isa.FCMP:
		m.setReg(in.Rd, boolToInt(r1 < r2v))
	case isa.FMULS, isa.FMULD:
		m.setReg(in.Rd, r1*r2v)
	case isa.FDIVS, isa.FDIVD:
		if r2v == 0 {
			m.setReg(in.Rd, 0)
		} else {
			m.setReg(in.Rd, r1/r2v)
		}
	case isa.FMOV, isa.MTF, isa.MFF:
		m.setReg(in.Rd, r1)
	case isa.LW, isa.LB, isa.LBU, isa.LH:
		byteAddr := uint32(r1 + in.Imm)
		addr := alignWord(byteAddr)
		d.Addr = addr
		word := m.mem.Read(addr)
		d.LoadVal = extract(word, in.Op, byteAddr)
		if s, ok := m.lastStore[wordAddr(addr)]; ok {
			d.ProducerSeq = s
		}
		m.setReg(in.Rd, d.LoadVal)
	case isa.SW, isa.SB, isa.SH:
		byteAddr := uint32(r1 + in.Imm)
		addr := alignWord(byteAddr)
		d.Addr = addr
		d.OldVal = m.mem.Read(addr)
		d.StoreVal = merge(d.OldVal, r2v, in.Op, byteAddr)
		m.mem.Write(addr, d.StoreVal)
		m.lastStore[wordAddr(addr)] = m.seq
	case isa.BEQ:
		d.Taken = r1 == r2v
	case isa.BNE:
		d.Taken = r1 != r2v
	case isa.BLT:
		d.Taken = r1 < r2v
	case isa.BGE:
		d.Taken = r1 >= r2v
	case isa.J:
		d.Taken = true
	case isa.JAL:
		d.Taken = true
		m.setReg(isa.RA, int64(m.pc+isa.InstBytes))
	case isa.JR:
		d.Taken = true
		d.NextPC = uint32(r1)
	default:
		panic(fmt.Sprintf("emu: unimplemented op %v at pc %#x", in.Op, m.pc))
	}

	if in.Op.IsCondBranch() || in.Op == isa.J || in.Op == isa.JAL {
		if d.Taken {
			d.NextPC = in.Target
		}
	}
	if dst := in.Dest(); dst != isa.NoReg && dst != isa.R0 {
		m.lastWriter[dst] = m.seq
	}
	if in.Op == isa.MULT || in.Op == isa.DIV {
		m.lastWriter[isa.HI] = m.seq
		m.lastWriter[isa.LO] = m.seq
	}
	m.pc = d.NextPC
	m.seq++
	return true
}

// writerOf returns the seq of the last writer of r, or -1 when the
// operand needs no wait (absent, or the hardwired zero register).
func (m *Machine) writerOf(r isa.Reg) int64 {
	if r == isa.NoReg || r == isa.R0 {
		return -1
	}
	return m.lastWriter[r]
}

func alignWord(addr uint32) uint32 { return addr &^ 7 }

// extract pulls the sub-word value a load reads out of its containing
// word. Halfwords are aligned to 2 bytes within the word.
func extract(word int64, op isa.Op, byteAddr uint32) int64 {
	switch op {
	case isa.LB:
		sh := uint(byteAddr&7) * 8
		return int64(int8(word >> sh))
	case isa.LBU:
		sh := uint(byteAddr&7) * 8
		return int64(uint8(word >> sh))
	case isa.LH:
		sh := uint(byteAddr&6) * 8
		return int64(int16(word >> sh))
	}
	return word
}

// merge writes a sub-word store value into its containing word.
func merge(old, val int64, op isa.Op, byteAddr uint32) int64 {
	switch op {
	case isa.SB:
		sh := uint(byteAddr&7) * 8
		mask := int64(0xff) << sh
		return (old &^ mask) | ((val & 0xff) << sh)
	case isa.SH:
		sh := uint(byteAddr&6) * 8
		mask := int64(0xffff) << sh
		return (old &^ mask) | ((val & 0xffff) << sh)
	}
	return val
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func mulHigh(a, b int64) int64 {
	// 128-bit signed multiply high via 64x64 decomposition.
	const mask = 1<<32 - 1
	aLo, aHi := uint64(a)&mask, a>>32
	bLo, bHi := uint64(b)&mask, b>>32
	t := aHi*int64(bLo) + int64((aLo*bLo)>>32)
	w1 := uint64(t) & mask
	w2 := t >> 32
	t2 := int64(aLo)*bHi + int64(w1)
	return aHi*bHi + w2 + (t2 >> 32)
}
