package emu_test

import (
	"reflect"
	"testing"

	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

// TestColumnarRoundTripTable1 is the property test over the full
// benchmark suite: for every Table 1 analog, a delta-encoded columnar
// recording must replay a stream DeepEqual to the direct (uncompressed)
// Trace. It lives in an external test package because workload itself
// imports emu.
func TestColumnarRoundTripTable1(t *testing.T) {
	horizon := int64(20_000)
	if testing.Short() {
		horizon = 4_000
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := workload.MustBuild(name)
			tr := emu.NewTrace(emu.New(p))
			rp := emu.NewRecording(emu.New(p)).NewReplay()
			var n int64
			for ; n < horizon; n++ {
				want := tr.At(n)
				got := rp.At(n)
				if (want == nil) != (got == nil) {
					t.Fatalf("seq %d: trace nil=%v, replay nil=%v", n, want == nil, got == nil)
				}
				if want == nil {
					break
				}
				if !reflect.DeepEqual(*want, *got) {
					t.Fatalf("seq %d:\nwant %+v\ngot  %+v", n, *want, *got)
				}
				tr.Release(n - 64)
			}
			if n == 0 {
				t.Fatalf("%s produced no instructions", name)
			}
		})
	}
}

// TestRecordingFootprint pins the columnar layout's headline number:
// the in-memory recording must stay at or below 24 bytes/inst (the old
// array-of-DynInst chunks cost ~88).
func TestRecordingFootprint(t *testing.T) {
	p := workload.MustBuild("126.gcc")
	rec := emu.NewRecording(emu.New(p))
	rec.Record(50_000)
	n := rec.Len()
	if n < 50_000 {
		t.Fatalf("recorded only %d insts", n)
	}
	if bpi := float64(rec.SizeBytes()) / float64(n); bpi > 24 {
		t.Errorf("recording costs %.1f bytes/inst in memory, want <= 24", bpi)
	}
}
