package emu

import "sync"

// recChunkShift sizes Recording chunks at 4096 instructions. Chunks are
// immutable once linked in, so readers can index them without locks.
const recChunkShift = 12

const recChunkSize = 1 << recChunkShift

type recChunk [recChunkSize]DynInst

// Recording captures the dynamic instruction stream of a Machine exactly
// once so that many timing configurations can replay it concurrently.
// The paper's sweeps run every policy over the same benchmark slice; the
// architectural stream is identical across configurations, so emulating
// it per configuration is pure waste. A Recording is extended on demand
// by whichever replay reads furthest ahead, under a mutex; completed
// prefixes are published with release/acquire semantics so other replays
// (possibly on other goroutines) index them lock-free.
//
// Memory is proportional to the recorded length (~88 B/inst, about
// 13 MB for a 150k-instruction benchmark slice) and is shared by all
// replays, unlike Trace, whose buffer is per-pipeline but stays
// proportional to the instruction window.
type Recording struct {
	mu sync.Mutex // serializes extension of the stream
	m  *Machine

	chunksMu sync.RWMutex // guards growth of the chunk slice header
	chunks   []*recChunk

	lenMu sync.RWMutex
	n     int64 // instructions recorded so far
	done  bool  // machine halted; n is the exact program length
}

// NewRecording returns a Recording over m. The machine must not be
// stepped directly once it is owned by a Recording.
func NewRecording(m *Machine) *Recording {
	return &Recording{m: m}
}

// length returns the published prefix length and whether the program has
// ended within it.
func (r *Recording) length() (int64, bool) {
	r.lenMu.RLock()
	n, done := r.n, r.done
	r.lenMu.RUnlock()
	return n, done
}

// snapshot returns the published chunk slice and prefix length. The
// length is read first: extend links a chunk in before publishing the
// length that covers it, so the returned slice always spans n.
func (r *Recording) snapshot() ([]*recChunk, int64, bool) {
	r.lenMu.RLock()
	n, done := r.n, r.done
	r.lenMu.RUnlock()
	r.chunksMu.RLock()
	chunks := r.chunks
	r.chunksMu.RUnlock()
	return chunks, n, done
}

// extend advances the recording until seq is covered or the program
// halts. Only one goroutine extends at a time; the rest re-check the
// published length after the lock drops.
func (r *Recording) extend(seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, done := r.length()
	for seq >= n && !done {
		ci, off := n>>recChunkShift, n&(recChunkSize-1)
		if off == 0 {
			r.chunksMu.Lock()
			r.chunks = append(r.chunks, new(recChunk))
			r.chunksMu.Unlock()
		}
		r.chunksMu.RLock()
		c := r.chunks[ci]
		r.chunksMu.RUnlock()
		// Fill the rest of the chunk (or stop at the program's end)
		// before publishing, so the length bump is amortized.
		filled := off
		for ; filled < recChunkSize; filled++ {
			if !r.m.Step(&c[filled]) {
				done = true
				break
			}
		}
		n += filled - off
		r.lenMu.Lock()
		r.n, r.done = n, done
		r.lenMu.Unlock()
	}
}

// Replay is a read cursor over a Recording, satisfying Stream. Each
// pipeline gets its own Replay; all replays share the recording's
// storage. Release is a no-op: the recording is retained in full so
// later configurations can replay from the start.
//
// The cursor keeps a private snapshot of the published prefix so the
// common case — reading an already-recorded instruction — touches no
// locks. A Replay must not be shared between goroutines (Recordings
// may be; snapshots are refreshed through the recording's locks).
type Replay struct {
	r      *Recording
	chunks []*recChunk
	n      int64
	done   bool
}

// NewReplay returns a fresh replay cursor over the recording.
func (r *Recording) NewReplay() *Replay { return &Replay{r: r} }

// At returns the dynamic instruction with sequence number seq, or nil if
// the program halts before seq is reached.
func (rp *Replay) At(seq int64) *DynInst {
	if seq < rp.n {
		c := rp.chunks[seq>>recChunkShift]
		return &c[seq&(recChunkSize-1)]
	}
	return rp.atSlow(seq)
}

// atSlow refreshes the cursor's snapshot, extending the recording when
// seq has genuinely not been recorded yet.
//
// Runs once per 4096-instruction chunk (and on snapshot refreshes),
// never in the steady replay state.
//
//md:allocok recording-extension boundary, never in steady replay
func (rp *Replay) atSlow(seq int64) *DynInst {
	for {
		rp.chunks, rp.n, rp.done = rp.r.snapshot()
		if seq < rp.n {
			c := rp.chunks[seq>>recChunkShift]
			return &c[seq&(recChunkSize-1)]
		}
		if rp.done {
			return nil
		}
		rp.r.extend(seq)
	}
}

// Release is a no-op; the recording is shared and retained in full.
func (rp *Replay) Release(int64) {}

// Len returns the number of instructions recorded so far. Once At has
// returned nil it is the exact program length, matching Trace.Len.
func (rp *Replay) Len() int64 {
	n, _ := rp.r.length()
	return n
}
