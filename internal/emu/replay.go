package emu

import (
	"fmt"
	"sync"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// recChunkShift sizes Recording chunks at 4096 instructions. Chunks are
// immutable once the published length covers them, so readers can index
// them without locks.
const recChunkShift = 12

const (
	recChunkSize = 1 << recChunkShift
	recChunkMask = recChunkSize - 1
)

// Dependence columns hold the distance back to the producer (seq -
// depSeq) in a uint16. Zero encodes "no dependence" (a distance of zero
// is impossible: producers are strictly older), and depEscape sends the
// decoder to the chunk's escape table for the rare distance that does
// not fit.
const (
	depNone   = 0
	depEscape = 0xffff
)

// Escape-table keys pack the in-chunk offset with the field the entry
// belongs to, so one sorted table serves all three dependence columns.
const (
	escDep1 = iota
	escDep2
	escProd
)

func escKeyOf(off int, field int) uint32 { return uint32(off)<<2 | uint32(field) }

// recChunk holds recChunkSize instructions in column-per-field layout.
// Relative to the ~88 B array-of-DynInst chunks this replaces, the
// fixed columns cost 16 B + 1 bit per instruction; memory values and
// escaped dependences are appended to variable side tables, for a
// typical total of 18-21 B/inst:
//
//   - Seq is implicit in the position.
//   - pcIdx is the static code index (PC-TextBase)/4: it regenerates
//     both PC and the *isa.Inst pointer, so replay stores no pointers.
//   - NextPC is not stored at all: the emulator guarantees
//     NextPC(i) == PC(i+1) (Machine.Step ends with m.pc = d.NextPC),
//     so it is read from the next entry's pcIdx, or from the
//     recording's published tail PC at the frontier.
//   - dep1/dep2/prod store the distance to the producer; almost all
//     register and memory dependences are within 2^16 instructions.
//   - vals holds LoadVal for loads and StoreVal,OldVal for stores;
//     valIdx points at each instruction's first entry. Non-memory
//     instructions have all-zero memory fields by construction.
//   - taken is a branch-outcome bitmap (it cannot be derived from
//     NextPC: a taken conditional branch may target fall-through).
type recChunk struct {
	pcIdx  []uint32
	addr   []uint32
	dep1   []uint16
	dep2   []uint16
	prod   []uint16
	valIdx []uint16
	taken  []uint64 // recChunkSize/64 bitmap words
	vals   []int64
	escKey []uint32 // escKeyOf(off, field), strictly ascending
	escVal []int64  // absolute producer seq for the escaped entry
}

func newRecChunk() *recChunk {
	return &recChunk{
		pcIdx:  make([]uint32, recChunkSize),
		addr:   make([]uint32, recChunkSize),
		dep1:   make([]uint16, recChunkSize),
		dep2:   make([]uint16, recChunkSize),
		prod:   make([]uint16, recChunkSize),
		valIdx: make([]uint16, recChunkSize),
		taken:  make([]uint64, recChunkSize/64),
		vals:   make([]int64, 0, recChunkSize/2),
	}
}

// encode appends d at in-chunk offset off. Offsets are filled in order,
// so the side tables (vals, escKey/escVal) grow append-only and the
// escape keys stay sorted.
func (c *recChunk) encode(off int, d *DynInst) {
	c.pcIdx[off] = (d.PC - prog.TextBase) / isa.InstBytes
	c.addr[off] = d.Addr
	c.dep1[off] = c.encodeDep(off, escDep1, d.Seq, d.Dep1Seq)
	c.dep2[off] = c.encodeDep(off, escDep2, d.Seq, d.Dep2Seq)
	c.prod[off] = c.encodeDep(off, escProd, d.Seq, d.ProducerSeq)
	c.valIdx[off] = uint16(len(c.vals))
	switch {
	case d.Inst.Op.IsLoad():
		c.vals = append(c.vals, d.LoadVal)
	case d.Inst.Op.IsStore():
		c.vals = append(c.vals, d.StoreVal, d.OldVal)
	}
	if d.Taken {
		c.taken[off>>6] |= 1 << (uint(off) & 63)
	}
}

func (c *recChunk) encodeDep(off, field int, seq, dep int64) uint16 {
	if dep < 0 {
		return depNone
	}
	if dist := seq - dep; dist < depEscape {
		return uint16(dist)
	}
	c.escKey = append(c.escKey, escKeyOf(off, field))
	c.escVal = append(c.escVal, dep)
	return depEscape
}

// decodeDep recovers an absolute producer seq from a distance column.
func (c *recChunk) decodeDep(enc uint16, off, field int, seq int64) int64 {
	switch enc {
	case depNone:
		return -1
	case depEscape:
		return c.escLookup(off, field)
	}
	return seq - int64(enc)
}

// escLookup binary-searches the sorted escape table.
func (c *recChunk) escLookup(off, field int) int64 {
	key := escKeyOf(off, field)
	lo, hi := 0, len(c.escKey)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.escKey[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.escVal[lo]
}

// sizeBytes is the heap/file footprint of the chunk's columns for its
// first n entries (n == recChunkSize except for the last chunk).
func (c *recChunk) sizeBytes(n int64) int64 {
	fixed := n * (4 + 4 + 2 + 2 + 2 + 2) // pcIdx, addr, dep1, dep2, prod, valIdx
	fixed += (n + 63) / 64 * 8           // taken bitmap
	return fixed + int64(len(c.vals))*8 + int64(len(c.escKey))*4 + int64(len(c.escVal))*8
}

// Recording captures the dynamic instruction stream of a Machine exactly
// once so that many timing configurations can replay it concurrently.
// The paper's sweeps run every policy over the same benchmark slice; the
// architectural stream is identical across configurations, so emulating
// it per configuration is pure waste. A Recording is extended on demand
// by whichever replay reads furthest ahead, under a mutex; completed
// prefixes are published with release/acquire semantics so other replays
// (possibly on other goroutines) index them lock-free.
//
// Storage is columnar (see recChunk): ~18-21 B/inst shared by all
// replays, unlike Trace, whose buffer is per-pipeline but stays
// proportional to the instruction window. A completed Recording can be
// serialized with WriteTo and mapped back with OpenRecordingFile so
// separate processes share one on-disk copy per benchmark.
// Lock ordering: mu > chunksMu > lenMu. extend holds mu for the whole
// extension and takes chunksMu, then lenMu, strictly nested inside it;
// readers take chunksMu or lenMu alone and never mu — so no cycle is
// possible. Chunk *contents* are guarded by mu until the lenMu-published
// length covers them (immutable once visible), which is why readers can
// index chunks lock-free after snapshot.
type Recording struct {
	mu      sync.Mutex // serializes extension of the stream
	m       *Machine   //md:guardedby mu
	scratch DynInst    //md:guardedby mu

	code []isa.Inst // static code table; pcIdx columns index into it
	prog *prog.Program

	chunksMu sync.RWMutex // guards growth of the chunk slice header
	chunks   []*recChunk  //md:guardedby chunksMu

	lenMu sync.RWMutex
	n     int64  //md:guardedby lenMu instructions recorded so far
	tail  uint32 //md:guardedby lenMu NextPC of instruction n-1 (the machine's frontier PC)
	done  bool   //md:guardedby lenMu machine halted; n is the exact program length
}

// NewRecording returns a Recording over m. The machine must not be
// stepped directly once it is owned by a Recording.
func NewRecording(m *Machine) *Recording {
	return &Recording{m: m, code: m.Program().Code, prog: m.Program(), tail: m.PC()}
}

// Program returns the static program the recording replays (nil for
// recordings mapped from disk, which carry only its fingerprint).
func (r *Recording) Program() *prog.Program { return r.prog }

// length returns the published prefix length and whether the program has
// ended within it.
func (r *Recording) length() (int64, bool) {
	r.lenMu.RLock()
	n, done := r.n, r.done
	r.lenMu.RUnlock()
	return n, done
}

// Len returns the number of instructions recorded so far.
func (r *Recording) Len() int64 {
	n, _ := r.length()
	return n
}

// SizeBytes returns the memory footprint of the recorded columns — the
// basis of the bytes/inst benchmark metric.
func (r *Recording) SizeBytes() int64 {
	r.lenMu.RLock()
	n := r.n
	r.lenMu.RUnlock()
	r.chunksMu.RLock()
	chunks := r.chunks
	r.chunksMu.RUnlock()
	var total int64
	for ci, c := range chunks {
		cn := n - int64(ci)<<recChunkShift
		if cn <= 0 {
			break
		}
		if cn > recChunkSize {
			cn = recChunkSize
		}
		total += c.sizeBytes(cn)
	}
	return total
}

// Record extends the recording to cover at least n instructions (or the
// whole program if it is shorter). Benchmarks use it to pre-record their
// full horizon so measured iterations never pay emulation.
func (r *Recording) Record(n int64) {
	if n > 0 {
		r.extend(n - 1)
	}
}

// Complete extends the recording until the program halts, or until limit
// instructions have been recorded (a guard against unbounded programs;
// limit <= 0 means no bound). It reports whether the program ended.
func (r *Recording) Complete(limit int64) bool {
	for {
		n, done := r.length()
		if done {
			return true
		}
		if limit > 0 && n >= limit {
			return false
		}
		next := n + int64(recChunkSize)
		if limit > 0 && next > limit {
			next = limit
		}
		r.extend(next - 1)
	}
}

// snapshot returns the published state under the recording's locks. The
// length is read first: extend links a chunk in before publishing the
// length that covers it, so the returned slice always spans n.
func (r *Recording) snapshot() ([]*recChunk, int64, uint32, bool) {
	r.lenMu.RLock()
	n, tail, done := r.n, r.tail, r.done
	r.lenMu.RUnlock()
	r.chunksMu.RLock()
	chunks := r.chunks
	r.chunksMu.RUnlock()
	return chunks, n, tail, done
}

// extend advances the recording until seq is covered or the program
// halts. Only one goroutine extends at a time; the rest re-check the
// published length after the lock drops. The length is published only
// on chunk boundaries (or at program end), so readers never observe a
// chunk whose side tables are still growing.
func (r *Recording) extend(seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, done := r.length()
	for seq >= n && !done {
		ci, off := n>>recChunkShift, n&recChunkMask
		if off == 0 {
			r.chunksMu.Lock()
			r.chunks = append(r.chunks, newRecChunk())
			r.chunksMu.Unlock()
		}
		r.chunksMu.RLock()
		c := r.chunks[ci]
		r.chunksMu.RUnlock()
		// Fill the rest of the chunk (or stop at the program's end)
		// before publishing, so the length bump is amortized and the
		// chunk is immutable once visible.
		filled := off
		for ; filled < recChunkSize; filled++ {
			if !r.m.Step(&r.scratch) {
				done = true
				break
			}
			c.encode(int(filled&recChunkMask), &r.scratch)
		}
		n += filled - off
		r.lenMu.Lock()
		r.n, r.tail, r.done = n, r.m.PC(), done
		r.lenMu.Unlock()
	}
}

// ReplaySource is anything that can hand out replay cursors over a
// shared recorded stream: a live *Recording or a mapped *FileRecording.
type ReplaySource interface {
	NewReplay() *Replay
}

// Replay is a read cursor over a Recording, satisfying Stream. Each
// pipeline gets its own Replay; all replays share the recording's
// columnar storage. Release is a no-op: the recording is retained in
// full so later configurations can replay from the start.
//
// At decodes the requested instruction into a cursor-owned scratch
// DynInst and returns a pointer to it, so the columns never materialize
// as full records. Callers must therefore finish with the returned
// record before calling At again on the same cursor — the discipline
// Trace.At (whose buffer reallocates on append) already imposes. A
// Replay must not be shared between goroutines (Recordings may be;
// snapshots are refreshed through the recording's locks).
type Replay struct {
	rec    *Recording // nil for file-backed replays
	chunks []*recChunk
	n      int64
	tail   uint32
	done   bool
	sealed bool // file-backed prefix: reading past n is an error
	code   []isa.Inst

	cur     int64 // seq currently decoded in scratch, -1 for none
	scratch DynInst
}

// NewReplay returns a fresh replay cursor over the recording.
func (r *Recording) NewReplay() *Replay {
	return &Replay{rec: r, code: r.code, cur: -1}
}

// At returns the dynamic instruction with sequence number seq, or nil if
// the program halts before seq is reached. The returned pointer is the
// cursor's scratch record, valid until the next At on this cursor.
//
//md:hotpath
func (rp *Replay) At(seq int64) *DynInst {
	if seq == rp.cur {
		return &rp.scratch
	}
	if seq < rp.n {
		rp.decode(seq)
		return &rp.scratch
	}
	return rp.atSlow(seq)
}

// decode materializes instruction seq (which must be below the cursor's
// published length) into the scratch record. It touches only the
// columns, allocates nothing, and leaves every field of the scratch in
// the exact state Machine.Step would have produced.
func (rp *Replay) decode(seq int64) {
	c := rp.chunks[seq>>recChunkShift]
	off := int(seq & recChunkMask)
	idx := c.pcIdx[off]
	in := &rp.code[idx]
	d := &rp.scratch
	d.Seq = seq
	d.PC = prog.TextBase + idx*isa.InstBytes
	d.Inst = in
	d.Addr = c.addr[off]
	d.LoadVal, d.StoreVal, d.OldVal = 0, 0, 0
	switch {
	case in.Op.IsLoad():
		d.LoadVal = c.vals[c.valIdx[off]]
	case in.Op.IsStore():
		vi := c.valIdx[off]
		d.StoreVal, d.OldVal = c.vals[vi], c.vals[vi+1]
	}
	d.Dep1Seq = c.decodeDep(c.dep1[off], off, escDep1, seq)
	d.Dep2Seq = c.decodeDep(c.dep2[off], off, escDep2, seq)
	d.ProducerSeq = c.decodeDep(c.prod[off], off, escProd, seq)
	d.Taken = c.taken[off>>6]>>(uint(off)&63)&1 != 0
	if next := seq + 1; next < rp.n {
		nc := rp.chunks[next>>recChunkShift]
		d.NextPC = prog.TextBase + nc.pcIdx[next&recChunkMask]*isa.InstBytes
	} else {
		// The frontier: the recording publishes the machine's PC (the
		// last instruction's NextPC) alongside every length bump.
		d.NextPC = rp.tail
	}
	rp.cur = seq
}

// atSlow refreshes the cursor's snapshot, extending the recording when
// seq has genuinely not been recorded yet.
//
// Runs once per 4096-instruction chunk (and on snapshot refreshes),
// never in the steady replay state.
//
//md:allocok recording-extension boundary, never in steady replay
func (rp *Replay) atSlow(seq int64) *DynInst {
	for {
		if rp.rec == nil {
			if rp.sealed {
				// Returning nil here would silently simulate a shorter
				// program than the live recording; the capture horizon is
				// sized so a correct replay never gets here.
				panic(fmt.Sprintf("emu: replay past sealed recording prefix (seq %d, sealed at %d)", seq, rp.n))
			}
			return nil // file-backed: the stream is complete as mapped
		}
		rp.chunks, rp.n, rp.tail, rp.done = rp.rec.snapshot()
		if seq < rp.n {
			rp.decode(seq)
			return &rp.scratch
		}
		if rp.done {
			return nil
		}
		rp.rec.extend(seq)
	}
}

// Release is a no-op; the recording is shared and retained in full.
func (rp *Replay) Release(int64) {}

// Len returns the number of instructions recorded so far. Once At has
// returned nil it is the exact program length, matching Trace.Len.
func (rp *Replay) Len() int64 {
	if rp.rec == nil {
		return rp.n
	}
	n, _ := rp.rec.length()
	return n
}
