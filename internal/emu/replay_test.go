package emu

import (
	"fmt"
	"sync"
	"testing"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// loopProgram builds a counted loop with a mix of ALU and memory work,
// long enough to span several recording chunks.
func loopProgram(iters int64) *prog.Program {
	b := prog.NewBuilder()
	arena := b.AllocAligned(64, 4096)
	b.Li(isa.R1, int64(arena))
	b.Li(isa.R9, iters)
	b.Label("top")
	b.Sw(isa.R9, isa.R1, 0)
	b.Lw(isa.R2, isa.R1, 0)
	b.Add(isa.R3, isa.R2, isa.R9)
	b.Addi(isa.R9, isa.R9, -1)
	b.Bne(isa.R9, isa.R0, "top")
	b.Halt()
	return b.MustProgram()
}

// TestReplayMatchesTrace runs the same program through a windowed Trace
// and through a Recording replay and requires identical streams.
func TestReplayMatchesTrace(t *testing.T) {
	p := loopProgram(3000) // ~15k dynamic instructions, several chunks
	tr := NewTrace(New(p))
	rp := NewRecording(New(p)).NewReplay()
	var n int64
	for ; ; n++ {
		want := tr.At(n)
		got := rp.At(n)
		if (want == nil) != (got == nil) {
			t.Fatalf("seq %d: trace nil=%v, replay nil=%v", n, want == nil, got == nil)
		}
		if want == nil {
			break
		}
		if *want != *got {
			t.Fatalf("seq %d: trace %+v, replay %+v", n, *want, *got)
		}
		// Keep the trace window small, as a pipeline would.
		if n > 64 {
			tr.Release(n - 64)
		}
	}
	if rp.Len() != n {
		t.Errorf("replay Len() = %d after end, want %d", rp.Len(), n)
	}
}

// TestReplayConcurrentCursors races many cursors over one recording,
// each reading a different interleaving (stride and offset), so cursors
// both extend the recording and read far behind its frontier. Run under
// -race this checks the publication protocol.
func TestReplayConcurrentCursors(t *testing.T) {
	rec := NewRecording(New(loopProgram(2000)))
	ref := NewTrace(New(loopProgram(2000)))
	var refSum int64
	var refLen int64
	for ; ; refLen++ {
		d := ref.At(refLen)
		if d == nil {
			break
		}
		refSum += int64(d.PC) + d.LoadVal + d.StoreVal
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rp := rec.NewReplay()
			var sum int64
			stride := int64(1 + g%3)
			for off := int64(0); off < stride; off++ {
				for seq := off; seq < refLen; seq += stride {
					d := rp.At(seq)
					if d == nil {
						errs <- fmt.Errorf("replay returned nil mid-program at seq %d", seq)
						return
					}
					sum += int64(d.PC) + d.LoadVal + d.StoreVal
				}
			}
			if sum != refSum {
				errs <- fmt.Errorf("checksum %d, want %d", sum, refSum)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
