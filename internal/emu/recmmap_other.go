//go:build !unix

package emu

import "os"

// mapFile on platforms without a usable mmap syscall reads the file
// into aligned private memory; sharing between processes is lost but
// the typed-view decode path is identical.
func mapFile(f *os.File, size int64) ([]byte, func() error, bool, error) {
	return readFileAligned(f, size)
}
