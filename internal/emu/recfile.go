package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"unsafe"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// Recording file format (version 1). All sections are little-endian and
// 8-byte aligned so a read-only mmap can be viewed in place as typed
// column slices — multiple mdserve worker processes then share one
// physical copy of each benchmark's recording through the page cache.
//
//	[0]  magic   "MDREC001"
//	[8]  n       int64    total instructions
//	[16] tailPC  uint32   NextPC of the last instruction
//	[20] flags   uint32   bit 0: recording is complete
//	[24] progHash uint64  fingerprint of the program the columns index
//	[32] nChunks uint32
//	[36] crc     uint32   CRC-32 (IEEE) of directory+payload
//	[40] directory: per chunk {chunkLen, nVals, nEsc} uint32, padded to 8
//	then per chunk, each section padded to 8 bytes:
//	     pcIdx[chunkLen]u32  addr[chunkLen]u32  dep1[chunkLen]u16
//	     dep2[chunkLen]u16   prod[chunkLen]u16  valIdx[chunkLen]u16
//	     taken[(chunkLen+63)/64]u64  vals[nVals]i64
//	     escKey[nEsc]u32  escVal[nEsc]i64
//
// The CRC covers everything after the header, so a torn or truncated
// file — the analogue of a torn journal tail — fails verification at
// open instead of replaying garbage.
const (
	recMagic      = "MDREC001"
	recHeaderSize = 40
	recFlagDone   = 1 << 0
	// recFlagPrefix marks a sealed prefix: the file covers the first n
	// instructions of a longer program. Replays past the seal fail
	// loudly (they would otherwise silently simulate a shorter program).
	recFlagPrefix = 1 << 1
)

// ErrCorruptRecording wraps any structural failure found while opening a
// recording file: bad magic, truncation, or a CRC mismatch. Callers
// (the experiment runner) treat it as "no usable cache file" and fall
// back to recording live.
var ErrCorruptRecording = errors.New("emu: corrupt recording file")

// ErrRecordingMismatch reports a structurally valid recording whose
// program fingerprint does not match the program being simulated.
var ErrRecordingMismatch = errors.New("emu: recording does not match program")

// hostLittleEndian reports whether typed views over the file bytes read
// back the values WriteTo stored. The format is defined little-endian;
// big-endian hosts get a clean refusal instead of silent corruption.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// ProgramFingerprint hashes the static program (entry PC and every
// instruction) with FNV-1a — the identity under which recordings (and
// the checkpoint sets derived from them, internal/ckpt) are
// content-addressed on disk.
func ProgramFingerprint(p *prog.Program) uint64 { return progFingerprint(p) }

// progFingerprint hashes the static program (entry PC and every
// instruction) with FNV-1a so a recording can prove it indexes the same
// code table it was captured from.
func progFingerprint(p *prog.Program) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[:4], p.Entry)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(p.Code)))
	h.Write(buf[:8])
	for i := range p.Code {
		in := &p.Code[i]
		buf[0], buf[1], buf[2], buf[3] = byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2)
		binary.LittleEndian.PutUint32(buf[4:8], in.Target)
		binary.LittleEndian.PutUint64(buf[8:16], uint64(in.Imm))
		h.Write(buf[:16])
	}
	return h.Sum64()
}

func pad8(n int64) int64 { return (n + 7) &^ 7 }

// u32Bytes / u16Bytes / u64Bytes / i64Bytes view a column's backing
// array as raw bytes (no copy). Only valid on little-endian hosts.
func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func u16Bytes(s []uint16) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*2)
}

func u64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// chunkSections lists one chunk's payload sections in file order.
func (c *recChunk) sections(chunkLen int64) [][]byte {
	tw := (chunkLen + 63) / 64
	return [][]byte{
		u32Bytes(c.pcIdx[:chunkLen]),
		u32Bytes(c.addr[:chunkLen]),
		u16Bytes(c.dep1[:chunkLen]),
		u16Bytes(c.dep2[:chunkLen]),
		u16Bytes(c.prod[:chunkLen]),
		u16Bytes(c.valIdx[:chunkLen]),
		u64Bytes(c.taken[:tw]),
		i64Bytes(c.vals),
		u32Bytes(c.escKey),
		i64Bytes(c.escVal),
	}
}

// WriteTo serializes the recording in format version 1. The recording
// must be complete (Complete reported true): partial recordings have a
// moving frontier and are not meaningful to share on disk.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	chunks, n, tail, done := r.snapshot()
	if !done {
		return 0, fmt.Errorf("emu: WriteTo on an incomplete recording (%d insts, not halted)", n)
	}
	return writeRecording(w, r.prog, chunks, n, tail, recFlagDone)
}

// WriteSealedTo serializes whatever has been recorded so far. A halted
// recording writes the same file WriteTo does; an unfinished one is
// sealed at its current frontier (always a chunk boundary) and marked
// as a prefix, so replays that run past the seal panic instead of
// silently treating it as the program's end. Callers pre-extend with
// Record to the horizon their consumers replay.
func (r *Recording) WriteSealedTo(w io.Writer) (int64, error) {
	chunks, n, tail, done := r.snapshot()
	flags := uint32(recFlagDone)
	if !done {
		flags |= recFlagPrefix
	}
	return writeRecording(w, r.prog, chunks, n, tail, flags)
}

func writeRecording(w io.Writer, p *prog.Program, chunks []*recChunk, n int64, tail uint32, flags uint32) (int64, error) {
	if !hostLittleEndian() {
		return 0, fmt.Errorf("emu: recording files require a little-endian host")
	}
	nChunks := len(chunks)
	if want := int((n + recChunkMask) >> recChunkShift); nChunks != want {
		return 0, fmt.Errorf("emu: recording has %d chunks, want %d for %d insts", nChunks, want, n)
	}

	// Directory.
	dir := make([]byte, pad8(int64(nChunks)*12))
	for ci, c := range chunks {
		cn := chunkLenOf(n, ci)
		binary.LittleEndian.PutUint32(dir[ci*12:], uint32(cn))
		binary.LittleEndian.PutUint32(dir[ci*12+4:], uint32(len(c.vals)))
		binary.LittleEndian.PutUint32(dir[ci*12+8:], uint32(len(c.escKey)))
	}

	// CRC over directory + payload (sections with their padding).
	crc := crc32.NewIEEE()
	crc.Write(dir)
	var zeros [8]byte
	for ci, c := range chunks {
		for _, s := range c.sections(chunkLenOf(n, ci)) {
			crc.Write(s)
			if p := pad8(int64(len(s))) - int64(len(s)); p > 0 {
				crc.Write(zeros[:p])
			}
		}
	}

	var hdr [recHeaderSize]byte
	copy(hdr[:8], recMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	binary.LittleEndian.PutUint32(hdr[16:], tail)
	binary.LittleEndian.PutUint32(hdr[20:], flags)
	binary.LittleEndian.PutUint64(hdr[24:], progFingerprint(p))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(nChunks))
	binary.LittleEndian.PutUint32(hdr[36:], crc.Sum32())

	cw := &countWriter{w: w}
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(dir); err != nil {
		return cw.n, err
	}
	for ci, c := range chunks {
		for _, s := range c.sections(chunkLenOf(n, ci)) {
			if _, err := cw.Write(s); err != nil {
				return cw.n, err
			}
			if p := pad8(int64(len(s))) - int64(len(s)); p > 0 {
				if _, err := cw.Write(zeros[:p]); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, nil
}

func chunkLenOf(n int64, ci int) int64 {
	cn := n - int64(ci)<<recChunkShift
	if cn > recChunkSize {
		cn = recChunkSize
	}
	return cn
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// FileRecording is a read-only recording backed by a mapped (or loaded)
// recording file. Its replay cursors decode straight out of the mapped
// columns; concurrent worker processes opening the same file share the
// pages. It implements ReplaySource next to the live *Recording.
type FileRecording struct {
	chunks []*recChunk
	n      int64
	tail   uint32
	code   []isa.Inst
	prefix bool // sealed prefix of a longer program

	data    []byte // backing bytes; keeps the mapping alive
	unmap   func() error
	mmapped bool
}

// Prefix reports whether the file is a sealed prefix (recorded to a
// horizon) rather than a whole halted program.
func (f *FileRecording) Prefix() bool { return f.prefix }

// Len returns the recorded program length.
func (f *FileRecording) Len() int64 { return f.n }

// SizeBytes returns the byte size of the mapped column payload.
func (f *FileRecording) SizeBytes() int64 { return int64(len(f.data)) }

// Mmapped reports whether the file is memory-mapped (as opposed to read
// into private memory by the fallback path).
func (f *FileRecording) Mmapped() bool { return f.mmapped }

// NewReplay returns a replay cursor over the mapped recording. The
// cursor's snapshot is the whole file: file recordings are complete by
// construction, so the cursor never refreshes or extends.
func (f *FileRecording) NewReplay() *Replay {
	return &Replay{chunks: f.chunks, n: f.n, tail: f.tail, done: true, sealed: f.prefix, code: f.code, cur: -1}
}

// Close releases the mapping. Replay cursors must not be used after
// Close.
func (f *FileRecording) Close() error {
	if f.unmap == nil {
		return nil
	}
	u := f.unmap
	f.unmap = nil
	f.data = nil
	f.chunks = nil
	return u()
}

// OpenRecordingFile maps path read-only and verifies it is a complete,
// uncorrupted recording of p. Structural damage (torn tail, flipped
// bits) returns an error wrapping ErrCorruptRecording; a recording of a
// different program returns one wrapping ErrRecordingMismatch.
func OpenRecordingFile(path string, p *prog.Program) (*FileRecording, error) {
	if !hostLittleEndian() {
		return nil, fmt.Errorf("emu: recording files require a little-endian host")
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close() //md:errok read-only descriptor; the mapping outlives it and nothing was written
	st, err := file.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, mmapped, err := mapFile(file, st.Size())
	if err != nil {
		return nil, err
	}
	f, err := parseRecording(data, p)
	if err != nil {
		unmap() //md:errok teardown of a read-only mapping on an already-failing open; the parse error is the one reported
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.unmap = unmap
	f.mmapped = mmapped
	return f, nil
}

// parseRecording builds typed column views over the raw file bytes.
func parseRecording(data []byte, p *prog.Program) (*FileRecording, error) {
	if len(data) < recHeaderSize || string(data[:8]) != recMagic {
		return nil, fmt.Errorf("%w: bad magic or short header", ErrCorruptRecording)
	}
	n := int64(binary.LittleEndian.Uint64(data[8:]))
	tail := binary.LittleEndian.Uint32(data[16:])
	flags := binary.LittleEndian.Uint32(data[20:])
	hash := binary.LittleEndian.Uint64(data[24:])
	nChunks := int64(binary.LittleEndian.Uint32(data[32:]))
	wantCRC := binary.LittleEndian.Uint32(data[36:])
	if flags&recFlagDone == 0 {
		return nil, fmt.Errorf("%w: recording not marked complete", ErrCorruptRecording)
	}
	if n < 0 || nChunks != (n+recChunkMask)>>recChunkShift || nChunks > int64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: inconsistent length (%d insts, %d chunks)", ErrCorruptRecording, n, nChunks)
	}
	rest := data[recHeaderSize:]
	if crc32.ChecksumIEEE(rest) != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (torn or truncated file?)", ErrCorruptRecording)
	}
	if hash != progFingerprint(p) {
		return nil, fmt.Errorf("%w: program fingerprint %#x, file has %#x", ErrRecordingMismatch, progFingerprint(p), hash)
	}

	dirLen := pad8(nChunks * 12)
	if int64(len(rest)) < dirLen {
		return nil, fmt.Errorf("%w: truncated directory", ErrCorruptRecording)
	}
	dir, payload := rest[:dirLen], rest[dirLen:]
	f := &FileRecording{n: n, tail: tail, code: p.Code, data: data,
		prefix: flags&recFlagPrefix != 0, chunks: make([]*recChunk, nChunks)}
	sr := &sectionReader{payload: payload}
	for ci := int64(0); ci < nChunks; ci++ {
		chunkLen := int64(binary.LittleEndian.Uint32(dir[ci*12:]))
		nVals := int64(binary.LittleEndian.Uint32(dir[ci*12+4:]))
		nEsc := int64(binary.LittleEndian.Uint32(dir[ci*12+8:]))
		if chunkLen != chunkLenOf(n, int(ci)) || nVals > 2*chunkLen || nEsc > 3*chunkLen {
			return nil, fmt.Errorf("%w: chunk %d directory out of range", ErrCorruptRecording, ci)
		}
		c := &recChunk{}
		c.pcIdx = sr.u32(chunkLen)
		c.addr = sr.u32(chunkLen)
		c.dep1 = sr.u16(chunkLen)
		c.dep2 = sr.u16(chunkLen)
		c.prod = sr.u16(chunkLen)
		c.valIdx = sr.u16(chunkLen)
		c.taken = sr.u64((chunkLen + 63) / 64)
		c.vals = sr.i64(nVals)
		c.escKey = sr.u32(nEsc)
		c.escVal = sr.i64(nEsc)
		if sr.err != nil {
			return nil, fmt.Errorf("%w: chunk %d: %v", ErrCorruptRecording, ci, sr.err)
		}
		// Every pcIdx must stay inside the code table and every valIdx
		// inside the value table: a stale or hand-edited file must not
		// index out of bounds at replay time.
		for _, idx := range c.pcIdx {
			if int(idx) >= len(p.Code) {
				return nil, fmt.Errorf("%w: chunk %d: pcIdx %d outside code table", ErrCorruptRecording, ci, idx)
			}
		}
		for i, vi := range c.valIdx {
			if int64(vi) > nVals {
				return nil, fmt.Errorf("%w: chunk %d: valIdx[%d] out of range", ErrCorruptRecording, ci, i)
			}
		}
		f.chunks[ci] = c
	}
	return f, nil
}

// readFileAligned is the no-mmap fallback: the file is copied into a
// uint64-backed buffer so the typed column views stay 8-byte aligned.
func readFileAligned(f *os.File, size int64) ([]byte, func() error, bool, error) {
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return nil }, false, nil
}

// sectionReader carves aligned typed views out of the payload in file
// order, remembering the first failure.
type sectionReader struct {
	payload []byte
	off     int64
	err     error
}

func (s *sectionReader) raw(size int64) []byte {
	if s.err != nil {
		return nil
	}
	end := s.off + size
	if size < 0 || end > int64(len(s.payload)) {
		s.err = fmt.Errorf("section [%d,%d) outside payload of %d bytes", s.off, end, len(s.payload))
		return nil
	}
	b := s.payload[s.off:end:end]
	s.off = pad8(end)
	return b
}

func (s *sectionReader) u32(count int64) []uint32 {
	b := s.raw(count * 4)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), count)
}

func (s *sectionReader) u16(count int64) []uint16 {
	b := s.raw(count * 2)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), count)
}

func (s *sectionReader) u64(count int64) []uint64 {
	b := s.raw(count * 8)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), count)
}

func (s *sectionReader) i64(count int64) []int64 {
	b := s.raw(count * 8)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), count)
}
