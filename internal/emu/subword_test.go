package emu

import (
	"testing"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

func TestByteLoadSignAndZeroExtend(t *testing.T) {
	b := prog.NewBuilder()
	// Word laid out so byte 0 = 0x80 (negative as int8), byte 1 = 0x7f.
	arr := b.AllocInit(0x7f80)
	b.Li(isa.R1, int64(arr))
	b.Lb(isa.R2, isa.R1, 0)  // sign-extended -128
	b.Lbu(isa.R3, isa.R1, 0) // zero-extended 128
	b.Lb(isa.R4, isa.R1, 1)  // 0x7f
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	for m.Step(&d) {
	}
	if got := m.Reg(isa.R2); got != -128 {
		t.Errorf("lb = %d, want -128", got)
	}
	if got := m.Reg(isa.R3); got != 128 {
		t.Errorf("lbu = %d, want 128", got)
	}
	if got := m.Reg(isa.R4); got != 0x7f {
		t.Errorf("lb byte1 = %d, want 127", got)
	}
}

func TestHalfwordLoad(t *testing.T) {
	b := prog.NewBuilder()
	arr := b.AllocInit(int64(uint64(0xfff08001))) // halfword 0 = 0x8001 (negative)
	b.Li(isa.R1, int64(arr))
	b.Lh(isa.R2, isa.R1, 0)
	b.Lh(isa.R3, isa.R1, 2) // 0xfff0 -> negative
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	for m.Step(&d) {
	}
	if got := m.Reg(isa.R2); got != -32767 { // 0x8001 sign-extended
		t.Errorf("lh low = %d, want -32767", got)
	}
	if got := m.Reg(isa.R3); got != -16 { // 0xfff0 sign-extended
		t.Errorf("lh high = %d, want -16", got)
	}
}

func TestByteStoreReadModifyWrite(t *testing.T) {
	b := prog.NewBuilder()
	arr := b.AllocInit(0x1122334455667788)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R2, 0xAB)
	b.Sb(isa.R2, isa.R1, 2) // replace byte 2
	b.Lw(isa.R3, isa.R1, 0)
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	for m.Step(&d) {
	}
	want := int64(0x11223344_55AB7788)
	if got := m.Reg(isa.R3); got != want {
		t.Errorf("word after sb = %#x, want %#x", got, want)
	}
}

func TestHalfwordStore(t *testing.T) {
	b := prog.NewBuilder()
	arr := b.AllocInit(0)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R2, 0x1234)
	b.Sh(isa.R2, isa.R1, 4)
	b.Lw(isa.R3, isa.R1, 0)
	b.Halt()
	m := New(b.MustProgram())
	var d DynInst
	for m.Step(&d) {
	}
	if got := m.Reg(isa.R3); got != 0x1234_00000000 {
		t.Errorf("word after sh = %#x", got)
	}
}

func TestSubwordProducerIsWordGranular(t *testing.T) {
	// A byte store makes the whole word "written" for dependence
	// purposes — like the paper's word-granular detection hardware.
	b := prog.NewBuilder()
	arr := b.AllocInit(0)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R2, 0x55)
	b.Sb(isa.R2, isa.R1, 6) // byte 6 of the word
	b.Lw(isa.R3, isa.R1, 0) // whole word: depends on the byte store
	b.Halt()
	m := New(b.MustProgram())
	var ds []DynInst
	var d DynInst
	for m.Step(&d) {
		ds = append(ds, d)
	}
	var store, load *DynInst
	for i := range ds {
		if ds[i].IsStore() {
			store = &ds[i]
		}
		if ds[i].IsLoad() {
			load = &ds[i]
		}
	}
	if load.ProducerSeq != store.Seq {
		t.Errorf("word load producer = %d, want the byte store %d", load.ProducerSeq, store.Seq)
	}
	if load.Addr != store.Addr {
		t.Errorf("sub-word accesses should share the word address: %#x vs %#x", load.Addr, store.Addr)
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[isa.Op]int{
		isa.LW: 8, isa.SW: 8, isa.LH: 2, isa.SH: 2,
		isa.LB: 1, isa.LBU: 1, isa.SB: 1, isa.ADD: 0,
	}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}
