//go:build unix

package emu

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only so every process opening the same
// recording shares one physical copy through the page cache. If the
// kernel refuses (exotic filesystems, size 0), it falls back to reading
// the file into aligned private memory.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, mmapped bool, err error) {
	if size > 0 && size <= int64(int(^uint(0)>>1)) {
		b, merr := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if merr == nil {
			return b, func() error { return syscall.Munmap(b) }, true, nil
		}
	}
	return readFileAligned(f, size)
}
