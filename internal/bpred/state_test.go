package bpred

import (
	"reflect"
	"testing"
)

// trainStream runs a deterministic pseudo-random branch stream through
// the predictor, touching direction tables, history, BTB and RAS.
func trainStream(p *Predictor, n int, seed uint64) {
	rng := seed
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < n; i++ {
		v := next()
		pc := uint32(v) &^ 3
		switch v >> 61 {
		case 0:
			p.PushReturn(pc + 4)
		case 1:
			p.PopReturn()
		case 2:
			p.UpdateTarget(pc, pc+uint32(v>>32)&0xffff)
		default:
			hist := p.History()
			pred := p.PredictDirection(pc)
			p.SpeculateHistory(pred)
			p.Resolve(pc, hist, pred, v&(1<<40) != 0)
		}
	}
}

func TestPredictorStateRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Combined, GShare, Bimodal, StaticTaken} {
		cfg := Default()
		cfg.Kind = kind
		src := New(cfg)
		trainStream(src, 50000, 7)

		b := src.AppendState(nil)
		if len(b) != src.StateLen() {
			t.Fatalf("%v: state length = %d, want %d", kind, len(b), src.StateLen())
		}
		dst := New(cfg)
		n, err := dst.RestoreState(b)
		if err != nil {
			t.Fatalf("%v: RestoreState: %v", kind, err)
		}
		if n != len(b) {
			t.Fatalf("%v: consumed %d of %d bytes", kind, n, len(b))
		}
		if !reflect.DeepEqual(src, dst) {
			t.Fatalf("%v: restored predictor differs from source", kind)
		}

		// Restored predictors must stay bit-identical under further use.
		trainStream(src, 10000, 11)
		trainStream(dst, 10000, 11)
		if !reflect.DeepEqual(src, dst) {
			t.Fatalf("%v: predictors diverged after restore", kind)
		}
	}
}

func TestPredictorRestoreValidates(t *testing.T) {
	src := New(Default())
	trainStream(src, 1000, 3)
	b := src.AppendState(nil)

	if _, err := src.RestoreState(b[:len(b)-1]); err != ErrStateTruncated {
		t.Fatalf("truncated: err = %v, want ErrStateTruncated", err)
	}
	if _, err := src.RestoreState(b[:4]); err != ErrStateTruncated {
		t.Fatalf("short header: err = %v, want ErrStateTruncated", err)
	}
	small := Default()
	small.TableEntries = 1024
	fresh := New(small)
	pristine := New(small)
	if _, err := fresh.RestoreState(b); err != ErrStateGeometry {
		t.Fatalf("geometry: err = %v, want ErrStateGeometry", err)
	}
	if !reflect.DeepEqual(fresh, pristine) {
		t.Fatal("failed restore mutated the predictor")
	}
}
