package bpred

import (
	"testing"
	"testing/quick"

	"mdspec/internal/isa"
)

func TestCounterSaturation(t *testing.T) {
	var c counter
	for i := 0; i < 10; i++ {
		c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("counter after 10 takens = %d", c)
	}
	for i := 0; i < 10; i++ {
		c.update(false)
	}
	if c != 0 || c.taken() {
		t.Errorf("counter after 10 not-takens = %d", c)
	}
}

func TestAlwaysTakenLearns(t *testing.T) {
	p := New(Default())
	pc := uint32(0x400100)
	misses := 0
	for i := 0; i < 100; i++ {
		pred := p.PredictDirection(pc)
		hist := p.History()
		p.SpeculateHistory(pred)
		if !pred {
			misses++
		}
		p.Resolve(pc, hist, pred, true)
	}
	if misses > 2 {
		t.Errorf("always-taken branch missed %d times", misses)
	}
}

func TestAlternatingLearnsViaHistory(t *testing.T) {
	// A strictly alternating branch is perfectly predictable with global
	// history; the combined predictor should settle on gselect and
	// converge to near-zero misses after warmup.
	p := New(Default())
	pc := uint32(0x400200)
	taken := false
	lateMisses := 0
	for i := 0; i < 400; i++ {
		pred := p.PredictDirection(pc)
		hist := p.History()
		p.SpeculateHistory(pred)
		if pred != taken && i > 200 {
			lateMisses++
		}
		p.Resolve(pc, hist, pred, taken)
		taken = !taken
	}
	if lateMisses > 10 {
		t.Errorf("alternating branch: %d late misses", lateMisses)
	}
}

func TestBTB(t *testing.T) {
	p := New(Default())
	if _, ok := p.LookupTarget(0x400300); ok {
		t.Error("cold BTB should miss")
	}
	p.UpdateTarget(0x400300, 0x400500)
	if tgt, ok := p.LookupTarget(0x400300); !ok || tgt != 0x400500 {
		t.Errorf("BTB lookup = %#x, %v", tgt, ok)
	}
	// A conflicting PC mapping to the same set evicts.
	conflict := uint32(0x400300 + 2048*4)
	p.UpdateTarget(conflict, 0x400700)
	if _, ok := p.LookupTarget(0x400300); ok {
		t.Error("evicted entry should miss")
	}
}

func TestRAS(t *testing.T) {
	p := New(Default())
	if _, ok := p.PopReturn(); ok {
		t.Error("empty RAS should not pop")
	}
	p.PushReturn(100)
	p.PushReturn(200)
	if a, ok := p.PopReturn(); !ok || a != 200 {
		t.Errorf("pop = %d, %v; want 200", a, ok)
	}
	if a, ok := p.PopReturn(); !ok || a != 100 {
		t.Errorf("pop = %d, %v; want 100", a, ok)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := New(Default())
	n := p.cfg.RASEntries
	for i := 0; i < n+5; i++ {
		p.PushReturn(uint32(i))
	}
	// The most recent n pushes survive; pops return them LIFO.
	for i := n + 4; i >= 5; i-- {
		a, ok := p.PopReturn()
		if !ok || a != uint32(i) {
			t.Fatalf("pop = %d, %v; want %d", a, ok, i)
		}
	}
}

func TestPredictJumps(t *testing.T) {
	p := New(Default())
	j := &isa.Inst{Op: isa.J, Target: 0x400800}
	if taken, tgt := p.Predict(0x400000, j, 0x400004); !taken || tgt != 0x400800 {
		t.Error("J should predict taken to its target")
	}
	jal := &isa.Inst{Op: isa.JAL, Target: 0x400900}
	p.Predict(0x400010, jal, 0x400014)
	jr := &isa.Inst{Op: isa.JR, Rs1: isa.RA}
	if taken, tgt := p.Predict(0x400900, jr, 0x400904); !taken || tgt != 0x400014 {
		t.Errorf("JR should predict return to %#x, got %#x", 0x400014, tgt)
	}
}

func TestPredictCondUsesDirection(t *testing.T) {
	p := New(Default())
	in := &isa.Inst{Op: isa.BNE, Target: 0x400000}
	pc := uint32(0x400040)
	// Train not-taken.
	for i := 0; i < 10; i++ {
		pred := p.PredictDirection(pc)
		hist := p.History()
		p.SpeculateHistory(pred)
		p.Resolve(pc, hist, pred, false)
	}
	if taken, tgt := p.Predict(pc, in, pc+4); taken || tgt != pc+4 {
		t.Error("trained not-taken branch should predict fall-through")
	}
}

func TestMissRate(t *testing.T) {
	p := New(Default())
	p.Resolve(0x400000, 0, true, true)
	p.Resolve(0x400000, 0, true, false)
	if got := p.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestHistoryMaskProperty(t *testing.T) {
	// Property: gselect index always stays within the table regardless of
	// PC or history contents.
	p := New(Default())
	f := func(pc uint32, hist uint32) bool {
		return p.gselectIdx(pc, hist) < uint32(len(p.gselect))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectorPrefersBetterComponent(t *testing.T) {
	// Pattern where bimodal is wrong half the time but gselect can track:
	// two interleaved contexts, outcome = last direction. After training,
	// the selector counters for this PC should lean toward gselect.
	p := New(Default())
	pc := uint32(0x400abc)
	taken := false
	for i := 0; i < 1000; i++ {
		pred := p.PredictDirection(pc)
		hist := p.History()
		p.SpeculateHistory(pred)
		p.Resolve(pc, hist, pred, taken)
		taken = !taken
	}
	if !p.selector[p.bimodalIdx(pc)].taken() {
		t.Error("selector should have learned to use gselect for alternating branch")
	}
}

func TestPredictorKinds(t *testing.T) {
	mk := func(k Kind) *Predictor {
		cfg := Default()
		cfg.Kind = k
		return New(cfg)
	}
	// Static-taken never learns.
	st := mk(StaticTaken)
	for i := 0; i < 20; i++ {
		pred := st.PredictDirection(0x400000)
		if !pred {
			t.Fatal("static-taken must predict taken")
		}
		st.Resolve(0x400000, st.History(), pred, false)
	}
	// Bimodal learns a constant direction but not alternation.
	bm := mk(Bimodal)
	taken := false
	misses := 0
	for i := 0; i < 200; i++ {
		pred := bm.PredictDirection(0x400100)
		hist := bm.History()
		bm.SpeculateHistory(pred)
		if pred != taken && i > 100 {
			misses++
		}
		bm.Resolve(0x400100, hist, pred, taken)
		taken = !taken
	}
	if misses < 30 {
		t.Errorf("bimodal should miss often on alternation, missed %d/100", misses)
	}
	// GShare learns the alternation.
	gs := mk(GShare)
	taken = false
	misses = 0
	for i := 0; i < 400; i++ {
		pred := gs.PredictDirection(0x400200)
		hist := gs.History()
		gs.SpeculateHistory(pred)
		if pred != taken && i > 200 {
			misses++
		}
		gs.Resolve(0x400200, hist, pred, taken)
		taken = !taken
	}
	if misses > 10 {
		t.Errorf("gshare should learn alternation, missed %d/200", misses)
	}
}

func TestKindNames(t *testing.T) {
	names := map[Kind]string{Combined: "combined", GShare: "gshare",
		Bimodal: "bimodal", StaticTaken: "static-taken"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
