package bpred

import (
	"encoding/binary"
	"errors"
)

// Warm-state serialization: AppendState flattens every field a warming
// pass can mutate (direction tables, speculative history, BTB, RAS, and
// the statistics counters) into a little-endian byte stream, and
// RestoreState is the exact inverse. A restored predictor is
// bit-identical to one that observed the original branch stream.

// Sentinel decode errors (RestoreState is a hot path).
var (
	// ErrStateTruncated reports a state buffer shorter than its own
	// geometry implies.
	ErrStateTruncated = errors.New("bpred: warm state truncated")
	// ErrStateGeometry reports a state captured from a predictor with
	// different table sizes.
	ErrStateGeometry = errors.New("bpred: warm state geometry mismatch")
)

const (
	bpHdrBytes   = 3 * 4 // table entries, BTB entries, RAS entries
	btbEntrBytes = 4 + 4 + 1
	bpTailBytes  = 4 + 4 + 8 + 3*8 // history, btbWay, rasTop, three counters
)

// StateLen returns the exact AppendState footprint of this predictor.
func (p *Predictor) StateLen() int {
	return bpHdrBytes + 3*len(p.bimodal) + len(p.btb)*btbEntrBytes + 4*len(p.ras) + bpTailBytes
}

// AppendState appends the predictor's warm state to b and returns the
// extended slice.
func (p *Predictor) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.bimodal)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.btb)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.ras)))
	for _, t := range [3][]counter{p.bimodal, p.gselect, p.selector} {
		for _, c := range t {
			b = append(b, byte(c))
		}
	}
	for i := range p.btb {
		e := &p.btb[i]
		b = binary.LittleEndian.AppendUint32(b, e.tag)
		b = binary.LittleEndian.AppendUint32(b, e.target)
		if e.valid {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, a := range p.ras {
		b = binary.LittleEndian.AppendUint32(b, a)
	}
	b = binary.LittleEndian.AppendUint32(b, p.history)
	b = binary.LittleEndian.AppendUint32(b, p.btbWay)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.rasTop))
	b = binary.LittleEndian.AppendUint64(b, p.Lookups)
	b = binary.LittleEndian.AppendUint64(b, p.DirMisses)
	return binary.LittleEndian.AppendUint64(b, p.TargetMisses)
}

// RestoreState overwrites the predictor's warm state from the front of b
// and returns the bytes consumed. The buffer is validated against the
// predictor's geometry before anything is mutated.
//
//md:hotpath
func (p *Predictor) RestoreState(b []byte) (int, error) {
	if len(b) < bpHdrBytes {
		return 0, ErrStateTruncated
	}
	entries := binary.LittleEndian.Uint32(b)
	btbN := binary.LittleEndian.Uint32(b[4:])
	rasN := binary.LittleEndian.Uint32(b[8:])
	if int(entries) != len(p.bimodal) || int(btbN) != len(p.btb) || int(rasN) != len(p.ras) {
		return 0, ErrStateGeometry
	}
	if len(b) < p.StateLen() {
		return 0, ErrStateTruncated
	}
	off := bpHdrBytes
	for _, t := range [3][]counter{p.bimodal, p.gselect, p.selector} {
		for i := range t {
			t[i] = counter(b[off+i])
		}
		off += len(t)
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{
			tag:    binary.LittleEndian.Uint32(b[off:]),
			target: binary.LittleEndian.Uint32(b[off+4:]),
			valid:  b[off+8] != 0,
		}
		off += btbEntrBytes
	}
	for i := range p.ras {
		p.ras[i] = binary.LittleEndian.Uint32(b[off:])
		off += 4
	}
	p.history = binary.LittleEndian.Uint32(b[off:])
	p.btbWay = binary.LittleEndian.Uint32(b[off+4:])
	p.rasTop = int(binary.LittleEndian.Uint64(b[off+8:]))
	p.Lookups = binary.LittleEndian.Uint64(b[off+16:])
	p.DirMisses = binary.LittleEndian.Uint64(b[off+24:])
	p.TargetMisses = binary.LittleEndian.Uint64(b[off+32:])
	return off + bpTailBytes, nil
}
