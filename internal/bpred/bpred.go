// Package bpred implements the branch prediction hardware from the
// paper's Table 2: a 64K-entry McFarling combined predictor (a 2-bit
// bimodal component, a gselect component with 5 bits of global history,
// and a 2-bit-counter selector), a 2K-entry branch target buffer, and a
// 64-entry return-address stack.
package bpred

import "mdspec/internal/isa"

// Kind selects the direction-prediction scheme.
type Kind int

// Direction predictor kinds. The paper's machine uses Combined
// (McFarling); the others exist for sensitivity studies.
const (
	// Combined: bimodal + gselect chosen by a 2-bit selector (Table 2).
	Combined Kind = iota
	// GShare: single table indexed by PC xor global history.
	GShare
	// Bimodal: single 2-bit-counter table indexed by PC.
	Bimodal
	// StaticTaken: always predicts taken (no learning).
	StaticTaken
)

// String names the predictor kind.
func (k Kind) String() string {
	switch k {
	case GShare:
		return "gshare"
	case Bimodal:
		return "bimodal"
	case StaticTaken:
		return "static-taken"
	}
	return "combined"
}

// Config sizes the predictor. The zero value is invalid; use Default.
type Config struct {
	Kind         Kind
	TableEntries int // entries per component table (bimodal, gselect, selector)
	HistoryBits  int // global history bits for gselect
	BTBEntries   int
	RASEntries   int
}

// Default is the paper's Table 2 configuration.
func Default() Config {
	return Config{Kind: Combined, TableEntries: 64 * 1024, HistoryBits: 5, BTBEntries: 2048, RASEntries: 64}
}

// counter is a 2-bit saturating counter; taken when >= 2.
type counter uint8

func (c *counter) update(taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func (c counter) taken() bool { return c >= 2 }

// Predictor is the combined branch predictor.
type Predictor struct {
	cfg      Config
	bimodal  []counter
	gselect  []counter
	selector []counter // >= 2 selects gselect, else bimodal
	history  uint32    // speculative global history (youngest bit = last branch)
	histMask uint32
	idxMask  uint32

	btb    []btbEntry
	btbWay uint32
	ras    []uint32
	rasTop int

	// statistics
	Lookups, DirMisses, TargetMisses uint64
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
}

// New returns a predictor with cfg (all table sizes must be powers of two).
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]counter, cfg.TableEntries),
		gselect:  make([]counter, cfg.TableEntries),
		selector: make([]counter, cfg.TableEntries),
		histMask: uint32(1<<cfg.HistoryBits) - 1,
		idxMask:  uint32(cfg.TableEntries) - 1,
		btb:      make([]btbEntry, cfg.BTBEntries),
		ras:      make([]uint32, cfg.RASEntries),
	}
	// Initialize to weakly taken: loops dominate our workloads and real
	// predictors warm up fast; this avoids a long cold-start transient.
	for i := range p.bimodal {
		p.bimodal[i] = 2
		p.gselect[i] = 2
		p.selector[i] = 1
	}
	return p
}

func pcIndex(pc uint32) uint32 { return pc >> 2 }

func (p *Predictor) bimodalIdx(pc uint32) uint32 { return pcIndex(pc) & p.idxMask }

// gselectIdx concatenates low PC bits with the supplied global history
// snapshot. The history used to predict a branch must also be used to
// train it, so the snapshot travels with the in-flight branch.
func (p *Predictor) gselectIdx(pc, hist uint32) uint32 {
	return ((pcIndex(pc) << p.cfg.HistoryBits) | (hist & p.histMask)) & p.idxMask
}

// History returns the current speculative global history. Callers save it
// at prediction time and pass it back to Resolve.
func (p *Predictor) History() uint32 { return p.history }

// gshareIdx xors low PC bits with the history (for Kind == GShare).
func (p *Predictor) gshareIdx(pc, hist uint32) uint32 {
	return (pcIndex(pc) ^ (hist & p.histMask)) & p.idxMask
}

// PredictDirection returns the predicted direction for a conditional
// branch at pc under the current global history. It does not update any
// state.
func (p *Predictor) PredictDirection(pc uint32) bool {
	switch p.cfg.Kind {
	case StaticTaken:
		return true
	case Bimodal:
		return p.bimodal[p.bimodalIdx(pc)].taken()
	case GShare:
		return p.gselect[p.gshareIdx(pc, p.history)].taken()
	}
	bi := p.bimodal[p.bimodalIdx(pc)].taken()
	gs := p.gselect[p.gselectIdx(pc, p.history)].taken()
	if p.selector[p.bimodalIdx(pc)].taken() {
		return gs
	}
	return bi
}

// SpeculateHistory shifts a predicted direction into the global history;
// call once per predicted conditional branch, at prediction time.
func (p *Predictor) SpeculateHistory(taken bool) {
	p.history = (p.history << 1) & p.histMask
	if taken {
		p.history |= 1
	}
}

// Resolve trains the direction tables with the actual outcome of the
// conditional branch at pc. hist must be the global history snapshot
// taken when the branch was predicted (History() before
// SpeculateHistory). If the prediction was wrong the speculative history
// is repaired to the post-branch architectural state.
func (p *Predictor) Resolve(pc, hist uint32, predicted, actual bool) {
	switch p.cfg.Kind {
	case StaticTaken:
		// No tables to train.
	case Bimodal:
		p.bimodal[p.bimodalIdx(pc)].update(actual)
	case GShare:
		p.gselect[p.gshareIdx(pc, hist)].update(actual)
	default:
		bIdx, gIdx := p.bimodalIdx(pc), p.gselectIdx(pc, hist)
		bi := p.bimodal[bIdx]
		gs := p.gselect[gIdx]
		// Selector trains toward whichever component was right (when
		// they disagree).
		if bi.taken() != gs.taken() {
			p.selector[bIdx].update(gs.taken() == actual)
		}
		p.bimodal[bIdx].update(actual)
		p.gselect[gIdx].update(actual)
	}
	p.Lookups++
	if predicted != actual {
		p.DirMisses++
		// On a misprediction everything fetched after the branch is
		// squashed, so the speculative history reverts to the snapshot
		// extended with the actual outcome.
		p.history = ((hist << 1) | boolBit(actual)) & p.histMask
	}
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// btbIdx maps a PC to its BTB set (direct mapped).
func (p *Predictor) btbIdx(pc uint32) uint32 {
	return pcIndex(pc) & uint32(len(p.btb)-1)
}

// LookupTarget returns the predicted target of the taken branch or jump
// at pc and whether the BTB hit.
func (p *Predictor) LookupTarget(pc uint32) (uint32, bool) {
	e := &p.btb[p.btbIdx(pc)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs pc -> target in the BTB.
func (p *Predictor) UpdateTarget(pc, target uint32) {
	e := &p.btb[p.btbIdx(pc)]
	e.tag, e.target, e.valid = pc, target, true
}

// PushReturn pushes a return address (used on calls).
func (p *Predictor) PushReturn(addr uint32) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

// PopReturn pops and returns the predicted return address; ok is false
// if the stack is empty.
func (p *Predictor) PopReturn() (uint32, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// Predict predicts the outcome of the branch instruction in at pc:
// whether it is taken and, if taken, its target. Call SpeculateHistory
// separately for conditional branches, and Resolve when the branch
// executes. nextPC is the fall-through address.
func (p *Predictor) Predict(pc uint32, in *isa.Inst, nextPC uint32) (taken bool, target uint32) {
	switch in.Op {
	case isa.J:
		return true, in.Target
	case isa.JAL:
		p.PushReturn(nextPC)
		return true, in.Target
	case isa.JR:
		if t, ok := p.PopReturn(); ok {
			return true, t
		}
		if t, ok := p.LookupTarget(pc); ok {
			return true, t
		}
		return true, 0 // unknown target: caller treats as misprediction
	default: // conditional
		taken = p.PredictDirection(pc)
		if !taken {
			return false, nextPC
		}
		return true, in.Target
	}
}

// MissRate returns the fraction of resolved conditional branches whose
// direction was mispredicted.
func (p *Predictor) MissRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.DirMisses) / float64(p.Lookups)
}
