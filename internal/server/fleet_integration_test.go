package server

// Tests for the fleet-facing server surface: the client's 503
// Retry-After discipline, the degraded healthz report, fleet metrics
// embedding, and the bounded drain's stuck-cell snapshot.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/fleet"
	"mdspec/internal/stats"
)

// saturate fills a Workers=1/QueueDepth=1 server: one cell occupies
// the worker (blocked on release), one occupies the queue slot. Any
// further single-cell request is refused with 503.
// firePost submits a cell from a goroutine (raw http.Post: t.Fatal is
// off-limits off the test goroutine; errors surface as test timeouts).
func firePost(ts string, req RunRequest) {
	body, _ := json.Marshal(req)
	go func() {
		resp, err := http.Post(ts+"/v1/runs", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
}

func saturate(t *testing.T, ts string, s *Server, release chan struct{}, entered chan struct{}) {
	t.Helper()
	firePost(ts, RunRequest{Bench: "126.gcc", Config: cfgWith(config.Sync)})
	<-entered // worker occupied
	firePost(ts, RunRequest{Bench: "126.gcc", Config: cfgWith(config.Naive)})
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.queue().Depth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
}

// A client cell refused with 503 must wait out the Retry-After hint
// (floored by the deterministic backoff) and resubmit instead of
// failing the sweep.
func TestClientRetriesOn503(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	entered := make(chan struct{}, 8)
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		entered <- struct{}{}
		<-release
		return fakeStats(bench, cfg), nil
	}
	defer unblock()
	opt := experiments.Options{Insts: 5000}
	s, ts := newTestServer(t, Config{Options: opt, Workers: 1, QueueDepth: 1}, sim)
	saturate(t, ts.URL, s, release, entered)

	c := NewClient(ts.URL, opt)
	var mu sync.Mutex
	var waits []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
		// The saturated scheduler frees up while the client waits —
		// exactly the transient overload the retry exists for.
		unblock()
		return nil
	}
	res, err := c.Run(context.Background(), "126.gcc", cfgWith(config.Oracle))
	if err != nil {
		t.Fatalf("Run after overload retry: %v", err)
	}
	if res == nil || res.Workload != "126.gcc" {
		t.Errorf("unexpected result %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) == 0 {
		t.Fatal("client never slept: 503 was not retried")
	}
	// The server hints Retry-After: 1; the wait must honor it (the
	// deterministic backoff's first delay is shorter).
	if waits[0] < time.Second {
		t.Errorf("first retry wait = %v, want >= 1s (Retry-After floor)", waits[0])
	}
}

// A permanently saturated daemon must exhaust the attempt budget and
// surface the overload error, not spin forever.
func TestClientRetryBudgetExhausted(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		entered <- struct{}{}
		<-release
		return fakeStats(bench, cfg), nil
	}
	defer close(release)
	opt := experiments.Options{Insts: 5000}
	s, ts := newTestServer(t, Config{Options: opt, Workers: 1, QueueDepth: 1}, sim)
	saturate(t, ts.URL, s, release, entered)

	c := NewClient(ts.URL, opt)
	sleeps := 0
	c.sleep = func(ctx context.Context, d time.Duration) error { sleeps++; return nil }
	_, err := c.Run(context.Background(), "126.gcc", cfgWith(config.Oracle))
	if err == nil {
		t.Fatal("Run succeeded against a permanently saturated daemon")
	}
	if want := c.retry.MaxAttempts - 1; sleeps != want {
		t.Errorf("retry sleeps = %d, want %d (MaxAttempts-1)", sleeps, want)
	}
}

// fakeFleet satisfies the Fleet surface without forking processes.
type fakeFleet struct{ degraded bool }

func (f *fakeFleet) Degraded() bool { return f.degraded }
func (f *fakeFleet) Report() fleet.Report {
	return fleet.Report{
		Procs: 2, Alive: 1, Degraded: f.degraded, FallbackCells: 3,
		Workers: []fleet.WorkerStatus{
			{ID: "w0", Alive: true, Cells: 5, Steals: 2, Restarts: 1},
			{ID: "w1", Alive: false, Restarts: 4, HeartbeatMisses: 6},
		},
	}
}

// With a fleet attached, /v1/healthz must carry the degraded flag and
// /v1/metrics the per-worker counters; without one, neither changes.
func TestHealthzAndMetricsReportFleet(t *testing.T) {
	s, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, nil)

	var plain struct {
		Status   string `json:"status"`
		Degraded *bool  `json:"degraded"`
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&plain)
	resp.Body.Close()
	if plain.Status != "ok" || plain.Degraded != nil {
		t.Errorf("single-process healthz = %+v, want status ok with no degraded field", plain)
	}
	if m := getMetrics(t, ts.URL); m.Fleet != nil {
		t.Error("single-process metrics carries a fleet report")
	}

	ff := &fakeFleet{}
	s.AttachFleet(ff)
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&plain)
	resp.Body.Close()
	if plain.Status != "ok" || plain.Degraded == nil || *plain.Degraded {
		t.Errorf("healthy fleet healthz = %+v, want status ok, degraded=false", plain)
	}

	ff.degraded = true
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&plain)
	resp.Body.Close()
	if plain.Status != "degraded" || plain.Degraded == nil || !*plain.Degraded {
		t.Errorf("degraded fleet healthz = %+v, want status degraded, degraded=true", plain)
	}

	m := getMetrics(t, ts.URL)
	if m.Fleet == nil {
		t.Fatal("metrics missing fleet report")
	}
	if m.Fleet.Procs != 2 || len(m.Fleet.Workers) != 2 || m.Fleet.Workers[1].Restarts != 4 {
		t.Errorf("fleet metrics = %+v, want the fake fleet's counters", m.Fleet)
	}
}

// A wedged in-flight cell must not stall CloseTimeout forever: the
// bounded drain expires and names exactly the stuck cell.
func TestCloseTimeoutSnapshotsStuckCells(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		entered <- struct{}{}
		<-release // wedged until the test ends
		return fakeStats(bench, cfg), nil
	}
	defer close(release)
	s, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}, Workers: 1}, sim)

	firePost(ts.URL, RunRequest{Bench: "126.gcc", Config: cfgWith(config.Sync)})
	<-entered

	start := time.Now()
	stuck := s.CloseTimeout(100 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("CloseTimeout blocked %v despite 100ms bound", elapsed)
	}
	if len(stuck) != 1 {
		t.Fatalf("stuck cells = %+v, want exactly the wedged cell", stuck)
	}
	if stuck[0].Bench != "126.gcc" || stuck[0].Config != cfgWith(config.Sync).Name() {
		t.Errorf("stuck cell = %+v, want 126.gcc under %s", stuck[0], cfgWith(config.Sync).Name())
	}
	if stuck[0].RunningSeconds <= 0 {
		t.Errorf("stuck cell running seconds = %v, want > 0", stuck[0].RunningSeconds)
	}
}

// A clean drain within the bound returns no stuck cells.
func TestCloseTimeoutCleanDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return fakeStats(bench, cfg), nil
	})
	if stuck := s.CloseTimeout(5 * time.Second); len(stuck) != 0 {
		t.Errorf("clean drain reported stuck cells: %+v", stuck)
	}
}
