package server

import (
	"context"
	"errors"
	"sync"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/stats"
)

// ErrQueueFull reports a request refused because the bounded work
// queue is at capacity (mapped to 503 by the HTTP layer).
var ErrQueueFull = errors.New("server: work queue full")

// ErrShuttingDown reports a request refused because the scheduler has
// been closed (the daemon is draining).
var ErrShuttingDown = errors.New("server: shutting down")

// task is one queued cell request. done must be buffered by the
// submitter with room for one result per task sharing it, so workers
// never block on a slow or departed client.
type task struct {
	bench string
	cfg   config.Machine
	ctx   context.Context
	// started, when non-nil, is invoked once when a worker picks the
	// task up; it must not block.
	started func(t *task)
	done    chan<- taskResult
}

// taskResult is one completed (or refused) task.
type taskResult struct {
	t   *task
	res *stats.Run
	src experiments.RunSource
	err error
}

// scheduler is the bounded work queue between the HTTP handlers and
// the Runner: a fixed pool of workers drains the queue through
// Runner.RunGuarded, whose semaphore is the same budget the
// interval-parallel segment engine borrows from — so queue depth
// bounds memory, the pool bounds goroutines, and the semaphore bounds
// actual simulation parallelism, no matter how many clients connect.
type scheduler struct {
	runner *experiments.Runner
	tasks  chan *task

	// closing serializes submission against close: submitters hold the
	// read side while enqueueing so close cannot pull the channel out
	// from under a send in flight.
	closing sync.RWMutex
	closed  bool //md:guardedby closing
	wg      sync.WaitGroup
}

func newScheduler(r *experiments.Runner, workers, depth int) *scheduler {
	s := &scheduler{runner: r, tasks: make(chan *task, depth)}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		if err := t.ctx.Err(); err != nil {
			// The client gave up while the task sat in the queue; do not
			// spend the simulation budget on it.
			t.done <- taskResult{t: t, err: err} //md:ctxok task.done is buffered by the submitter with room for every result (task contract above)
			continue
		}
		if t.started != nil {
			t.started(t)
		}
		res, src, err := s.runner.RunGuarded(t.ctx, t.bench, t.cfg)
		t.done <- taskResult{t: t, res: res, src: src, err: err} //md:ctxok task.done is buffered by the submitter with room for every result (task contract above)
	}
}

// trySubmit enqueues t without blocking; a full queue returns
// ErrQueueFull (the single-cell endpoint's backpressure signal).
func (s *scheduler) trySubmit(t *task) error {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	select {
	case s.tasks <- t:
		return nil
	default:
		return ErrQueueFull
	}
}

// submit blocks until t is queued or ctx is done (sweep submission:
// the stream is already open, so the queue exerts backpressure on the
// submitting goroutine instead of refusing).
func (s *scheduler) submit(ctx context.Context, t *task) error {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	select {
	case s.tasks <- t:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queue reports the work queue's occupancy and capacity.
func (s *scheduler) queue() QueueMetrics {
	return QueueMetrics{Depth: len(s.tasks), Capacity: cap(s.tasks)}
}

// close drains the scheduler: new submissions are refused, queued
// tasks run to completion, and workers exit. The HTTP server must be
// shut down (all handlers returned) before the final close so no
// submitter is left racing the channel close; the closed flag guards
// stragglers either way.
func (s *scheduler) close() {
	s.closing.Lock()
	if s.closed {
		s.closing.Unlock()
		return
	}
	s.closed = true
	s.closing.Unlock()
	close(s.tasks)
	s.wg.Wait()
}
