package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/stats"
)

// ErrQueueFull reports a request refused because the bounded work
// queue is at capacity (mapped to 503 by the HTTP layer).
var ErrQueueFull = errors.New("server: work queue full")

// ErrShuttingDown reports a request refused because the scheduler has
// been closed (the daemon is draining).
var ErrShuttingDown = errors.New("server: shutting down")

// task is one queued cell request. done must be buffered by the
// submitter with room for one result per task sharing it, so workers
// never block on a slow or departed client.
type task struct {
	bench string
	cfg   config.Machine
	ctx   context.Context
	// started, when non-nil, is invoked once when a worker picks the
	// task up; it must not block.
	started func(t *task)
	done    chan<- taskResult
}

// taskResult is one completed (or refused) task.
type taskResult struct {
	t   *task
	res *stats.Run
	src experiments.RunSource
	err error
}

// scheduler is the bounded work queue between the HTTP handlers and
// the Runner: a fixed pool of workers drains the queue through
// Runner.RunGuarded, whose semaphore is the same budget the
// interval-parallel segment engine borrows from — so queue depth
// bounds memory, the pool bounds goroutines, and the semaphore bounds
// actual simulation parallelism, no matter how many clients connect.
type scheduler struct {
	runner *experiments.Runner
	tasks  chan *task

	// closing serializes submission against close: submitters hold the
	// read side while enqueueing so close cannot pull the channel out
	// from under a send in flight.
	closing sync.RWMutex
	closed  bool //md:guardedby closing
	wg      sync.WaitGroup

	// infMu guards the in-flight set: which cells workers are executing
	// right now and since when. closeTimeout snapshots it to name the
	// stuck cells when a bounded drain expires.
	infMu    sync.Mutex
	inflight map[*task]time.Time //md:guardedby infMu
}

func newScheduler(r *experiments.Runner, workers, depth int) *scheduler {
	s := &scheduler{runner: r, tasks: make(chan *task, depth), inflight: make(map[*task]time.Time)}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		if err := t.ctx.Err(); err != nil {
			// The client gave up while the task sat in the queue; do not
			// spend the simulation budget on it.
			t.done <- taskResult{t: t, err: err} //md:ctxok task.done is buffered by the submitter with room for every result (task contract above)
			continue
		}
		if t.started != nil {
			t.started(t)
		}
		s.infMu.Lock()
		s.inflight[t] = time.Now()
		s.infMu.Unlock()
		res, src, err := s.runner.RunGuarded(t.ctx, t.bench, t.cfg)
		s.infMu.Lock()
		delete(s.inflight, t)
		s.infMu.Unlock()
		t.done <- taskResult{t: t, res: res, src: src, err: err} //md:ctxok task.done is buffered by the submitter with room for every result (task contract above)
	}
}

// trySubmit enqueues t without blocking; a full queue returns
// ErrQueueFull (the single-cell endpoint's backpressure signal).
func (s *scheduler) trySubmit(t *task) error {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	select {
	case s.tasks <- t:
		return nil
	default:
		return ErrQueueFull
	}
}

// submit blocks until t is queued or ctx is done (sweep submission:
// the stream is already open, so the queue exerts backpressure on the
// submitting goroutine instead of refusing).
func (s *scheduler) submit(ctx context.Context, t *task) error {
	s.closing.RLock()
	defer s.closing.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	select {
	case s.tasks <- t:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queue reports the work queue's occupancy and capacity.
func (s *scheduler) queue() QueueMetrics {
	return QueueMetrics{Depth: len(s.tasks), Capacity: cap(s.tasks)}
}

// close drains the scheduler: new submissions are refused, queued
// tasks run to completion, and workers exit. The HTTP server must be
// shut down (all handlers returned) before the final close so no
// submitter is left racing the channel close; the closed flag guards
// stragglers either way.
func (s *scheduler) close() {
	s.closeTimeout(0)
}

// StuckCell names one in-flight cell that outlived the drain timeout:
// the daemon's exit-1 snapshot of exactly what was abandoned.
type StuckCell struct {
	Bench          string  `json:"bench"`
	Config         string  `json:"config"`
	RunningSeconds float64 `json:"running_seconds"`
}

// closeTimeout is close bounded by d (d <= 0 waits forever): if the
// drain outlives d, it returns a snapshot of the cells still running
// instead of blocking on them. Everything that finished before the
// timeout has already reached the journal; the stuck cells are the
// wedge the bounded drain exists to escape.
func (s *scheduler) closeTimeout(d time.Duration) []StuckCell {
	s.closing.Lock()
	if s.closed {
		s.closing.Unlock()
		return nil
	}
	s.closed = true
	s.closing.Unlock()
	close(s.tasks)
	if d <= 0 {
		s.wg.Wait()
		return nil
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	select {
	case <-drained: //md:ctxok drain completion is the event being awaited; the timer below bounds it
		return nil
	case <-deadline.C: //md:ctxok the deadline is the bound on this wait
	}
	s.infMu.Lock()
	defer s.infMu.Unlock()
	stuck := make([]StuckCell, 0, len(s.inflight))
	for t, since := range s.inflight { //md:orderindependent snapshot of a set
		stuck = append(stuck, StuckCell{
			Bench:          t.bench,
			Config:         t.cfg.Name(),
			RunningSeconds: time.Since(since).Seconds(),
		})
	}
	return stuck
}
