package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"mdspec/internal/experiments"
	"mdspec/internal/fleet"
	"mdspec/internal/workload"
)

// DefaultQueueDepth bounds the work queue when Config.QueueDepth is
// zero: enough to absorb a burst of sweep cells without letting one
// client queue unbounded work.
const DefaultQueueDepth = 256

// Config assembles a Server.
type Config struct {
	// Options fixes the provenance tuple every cell this server
	// simulates shares: instruction budget, sampling windows, retry
	// policy, journal. Hooks may be set for logging; the scheduler adds
	// its own accounting independently.
	Options experiments.Options
	// Workers sizes the scheduler pool (default: Options.Parallel, or
	// GOMAXPROCS). The pool only stages work — actual simulation
	// parallelism is still bounded by the runner's semaphore.
	Workers int
	// QueueDepth bounds queued-but-unstarted cells (default
	// DefaultQueueDepth). Beyond it, POST /v1/runs answers 503.
	QueueDepth int
	// Log, when non-nil, receives one line per simulation lifecycle
	// event (started / finished / refused).
	Log *log.Logger
}

// Server is the mdserve HTTP daemon: a Runner fronted by a bounded
// scheduler and a JSON API. Create with New, serve via ServeHTTP (it
// is an http.Handler), and Close after the HTTP server has drained.
type Server struct {
	cfg    Config
	fp     experiments.Fingerprint
	runner *experiments.Runner
	sched  *scheduler
	mux    *http.ServeMux
	start  time.Time
	eps    map[string]*endpointStats
	fleet  Fleet // nil when running single-process
}

// Fleet is the health/metrics surface a worker-process pool exposes to
// the server (satisfied by *fleet.Pool). When attached, /v1/healthz
// reports the pool's degraded flag and /v1/metrics embeds its
// per-worker liveness, steal, and restart counters.
type Fleet interface {
	Report() fleet.Report
	Degraded() bool
}

// endpointStats is one route's atomic request accounting.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64
}

// New builds a Server from cfg. The caller owns the journal inside
// cfg.Options (open it, prime the returned server's Runner with the
// replayed records, close it after Close).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		if cfg.Options.Parallel > 0 {
			cfg.Workers = cfg.Options.Parallel
		} else {
			cfg.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Server{
		cfg:    cfg,
		fp:     cfg.Options.Fingerprint(),
		runner: experiments.NewRunner(cfg.Options),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		eps:    make(map[string]*endpointStats),
	}
	s.sched = newScheduler(s.runner, cfg.Workers, cfg.QueueDepth)
	s.route("GET /v1/healthz", s.handleHealthz)
	s.route("GET /v1/options", s.handleOptions)
	s.route("GET /v1/metrics", s.handleMetrics)
	s.route("POST /v1/runs", s.handleRun)
	s.route("POST /v1/sweeps", s.handleSweep)
	return s
}

// Runner exposes the server's runner for priming from a replayed
// journal and for counter assertions in tests.
func (s *Server) Runner() *experiments.Runner { return s.runner }

// AttachFleet connects a worker-process pool's health surface. Call
// before serving: the healthz and metrics handlers read it unlocked.
func (s *Server) AttachFleet(f Fleet) { s.fleet = f }

// Workers reports the scheduler pool size after defaulting.
func (s *Server) Workers() int { return s.cfg.Workers }

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the scheduler. Call it only after the HTTP server has
// shut down (handlers are the queue's only submitters); queued cells
// finish — and reach the journal — before Close returns, which is the
// daemon's graceful-drain guarantee.
func (s *Server) Close() { s.sched.close() }

// CloseTimeout is Close bounded by d (d <= 0 waits forever). A
// non-empty result names the in-flight cells that outlived the drain:
// everything else finished and reached the journal, and the caller
// should report the stuck cells and exit non-zero.
func (s *Server) CloseTimeout(d time.Duration) []StuckCell {
	return s.sched.closeTimeout(d)
}

// route registers a handler wrapped with per-endpoint metrics.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	ep := &endpointStats{}
	s.eps[pattern] = ep
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		ep.requests.Add(1)
		ep.nanos.Add(int64(time.Since(start)))
		if sw.status >= 400 {
			ep.errors.Add(1)
		}
	})
}

// statusWriter records the response status for error accounting while
// forwarding Flush so streaming responses still reach the client
// incrementally.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{Status: "ok"}
	if s.fleet != nil {
		degraded := s.fleet.Degraded()
		resp.Degraded = &degraded
		if degraded {
			// Still 200: the daemon serves traffic (in-process fallback),
			// but operators and load balancers can see the fleet is gone.
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOptions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, OptionsResponse{
		Fingerprint: s.fp,
		Benchmarks:  workload.Names(),
		Workers:     s.cfg.Workers,
		QueueDepth:  s.cfg.QueueDepth,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	eps := make(map[string]EndpointMetrics, len(s.eps))
	for pattern, ep := range s.eps { //md:orderindependent map marshaled to JSON object
		eps[pattern] = EndpointMetrics{
			Requests:     ep.requests.Load(),
			Errors:       ep.errors.Load(),
			SecondsTotal: time.Duration(ep.nanos.Load()).Seconds(),
		}
	}
	m := MetricsResponse{
		Counters:      s.runner.Counters(),
		Endpoints:     eps,
		Queue:         s.sched.queue(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if err := s.runner.JournalErr(); err != nil {
		m.JournalError = err.Error()
	}
	if s.fleet != nil {
		rep := s.fleet.Report()
		m.Fleet = &rep
	}
	writeJSON(w, http.StatusOK, m)
}

// checkMeta refuses a request whose provenance fingerprint is not this
// server's: its cells would be keyed under a different tuple, so a
// cached answer would silently be the wrong experiment.
func (s *Server) checkMeta(w http.ResponseWriter, meta *experiments.Fingerprint) bool {
	if meta == nil || *meta == s.fp {
		return true
	}
	writeJSON(w, http.StatusConflict, ErrorResponse{
		Error:  fmt.Sprintf("provenance mismatch: request %+v, server %+v", *meta, s.fp),
		Server: &s.fp,
	})
	return false
}

// checkBench validates a benchmark name against the suite before it
// can occupy queue space.
func checkBench(bench string) error {
	if strings.TrimSpace(bench) == "" {
		return fmt.Errorf("empty bench")
	}
	_, err := workload.ParseNames(bench)
	return err
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := checkBench(req.Bench); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Config.Window <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("config.Window must be positive (did you send an empty config?)"))
		return
	}
	if !s.checkMeta(w, req.Meta) {
		return
	}

	done := make(chan taskResult, 1)
	t := &task{bench: req.Bench, cfg: req.Config, ctx: r.Context(), done: done}
	if err := s.sched.trySubmit(t); err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		s.logf("run %s %s: refused: %v", req.Bench, req.Config.Name(), err)
		return
	}
	select {
	case res := <-done:
		if res.err != nil {
			status := http.StatusInternalServerError
			if r.Context().Err() != nil {
				status = statusClientClosedRequest
			}
			writeError(w, status, res.err)
			s.logf("run %s %s: %v", req.Bench, req.Config.Name(), res.err)
			return
		}
		rec, ok := s.runner.Record(req.Bench, req.Config)
		if !ok {
			// Every successful RunGuarded leaves a record; missing one is
			// a server bug, not a client error.
			writeError(w, http.StatusInternalServerError, fmt.Errorf("no record for completed cell"))
			return
		}
		s.logf("run %s %s: %s in %.3fs", req.Bench, rec.Config, res.src, rec.WallSeconds)
		writeJSON(w, http.StatusOK, RunResponse{Record: rec, Source: res.src})
	case <-r.Context().Done():
		// Client gone: the worker will observe the dead context (or
		// finish and populate the cache for the next caller); nothing
		// useful can be written.
		writeError(w, statusClientClosedRequest, r.Context().Err())
	}
}

// statusClientClosedRequest is nginx's conventional status for a
// request abandoned by the client; it keeps these out of the 5xx
// error budget.
const statusClientClosedRequest = 499

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Benches) == 0 || len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("benches and configs must both be non-empty"))
		return
	}
	for _, b := range req.Benches {
		if err := checkBench(b); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	for i, c := range req.Configs {
		if c.Window <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("configs[%d].Window must be positive", i))
			return
		}
	}
	if !s.checkMeta(w, req.Meta) {
		return
	}

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) {
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: ", ev.Event)
		}
		json.NewEncoder(w).Encode(ev) // Encode appends the newline
		if sse {
			fmt.Fprint(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	cells := len(req.Benches) * len(req.Configs)
	// Workers signal start and completion over channels sized so they
	// can never block on a slow client; the handler goroutine is the
	// only writer to the response.
	started := make(chan *task, cells)
	done := make(chan taskResult, cells)
	emit(Event{Event: "queued", Cells: cells})

	// Submission backpressures against the bounded queue in its own
	// goroutine so events stream while later cells are still queueing.
	go func() {
		for _, b := range req.Benches {
			for _, c := range req.Configs {
				t := &task{
					bench: b, cfg: c, ctx: r.Context(), done: done,
					started: func(t *task) { started <- t }, //md:ctxok started is buffered with one slot per cell; each task signals start at most once
				}
				if err := s.sched.submit(r.Context(), t); err != nil {
					done <- taskResult{t: t, err: err} //md:ctxok done is buffered with one slot per cell; each cell produces exactly one result
				}
			}
		}
	}()

	failed := 0
	for finished := 0; finished < cells; {
		select {
		case t := <-started:
			emit(Event{Event: "started", Bench: t.bench, Config: t.cfg.Name()})
		case res := <-done:
			finished++
			if res.err != nil {
				failed++
				emit(Event{Event: "failed", Bench: res.t.bench, Config: res.t.cfg.Name(), Error: res.err.Error()})
				continue
			}
			rec, ok := s.runner.Record(res.t.bench, res.t.cfg)
			if !ok {
				failed++
				emit(Event{Event: "failed", Bench: res.t.bench, Config: res.t.cfg.Name(), Error: "no record for completed cell"})
				continue
			}
			emit(Event{Event: "finished", Bench: res.t.bench, Config: rec.Config, Source: res.src, Record: &rec})
		case <-r.Context().Done():
			// Client gone mid-stream: stop writing. In-queue cells are
			// skipped by their dead context; in-flight ones finish into
			// the cache.
			return
		}
	}
	emit(Event{Event: "done", Cells: cells, Failed: failed})
	s.logf("sweep: %d cells, %d failed", cells, failed)
}
