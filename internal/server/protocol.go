// Package server turns the experiment Runner into a long-running
// simulation service: an HTTP daemon (cmd/mdserve) that accepts
// (benchmark, configuration) cell and sweep requests as JSON, streams
// progress, and answers from a content-addressed result cache keyed on
// the existing provenance tuple — (config hash, bench, instruction
// budget, sampling windows, runner version). The cache is the Runner's
// memo plus singleflight dedup, so identical cells requested by
// concurrent clients cost one simulation; persistence is the PR-5
// checkpoint journal, so a restarted server re-primes its cache from
// disk and serves previously-computed cells without re-simulating.
//
// A bounded work queue (scheduler) sits between the HTTP handlers and
// the Runner: a fixed worker pool drains it through the shared parsim
// semaphore, so an arbitrary request storm can never oversubscribe the
// simulation budget or spawn unbounded goroutines — requests beyond
// the queue's capacity are refused with 503 and a Retry-After hint.
package server

import (
	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/fleet"
)

// RunRequest is the body of POST /v1/runs: one (benchmark, machine
// configuration) cell. Config is the full machine description — the
// server hashes it into the cache key exactly as a local sweep would.
// Meta, when present, is the client's provenance fingerprint; a
// mismatch with the server's is refused with 409, because the
// requested cell would not be one of this server's cells.
type RunRequest struct {
	Bench  string                   `json:"bench"`
	Config config.Machine           `json:"config"`
	Meta   *experiments.Fingerprint `json:"meta,omitempty"`
}

// RunResponse answers a single-cell request: the cell's full
// provenance-carrying record, and where the result came from
// (simulated, cache, dedup, journal).
type RunResponse struct {
	Record experiments.RunRecord `json:"record"`
	Source experiments.RunSource `json:"source"`
}

// SweepRequest is the body of POST /v1/sweeps: the cross product of
// Benches × Configs, streamed back as one Event per lifecycle step.
type SweepRequest struct {
	Benches []string                 `json:"benches"`
	Configs []config.Machine         `json:"configs"`
	Meta    *experiments.Fingerprint `json:"meta,omitempty"`
}

// Event is one frame of a streaming sweep response (NDJSON by
// default; SSE data frames when the client accepts text/event-stream).
type Event struct {
	// Event is "queued", "started", "finished", "failed", or "done".
	Event  string                 `json:"event"`
	Bench  string                 `json:"bench,omitempty"`
	Config string                 `json:"config,omitempty"`
	Source experiments.RunSource  `json:"source,omitempty"`
	Record *experiments.RunRecord `json:"record,omitempty"`
	Error  string                 `json:"error,omitempty"`
	// Cells and Failed summarize the sweep on "queued" (total cells)
	// and "done" (cells delivered, cells failed).
	Cells  int `json:"cells,omitempty"`
	Failed int `json:"failed,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer. Server
// carries the daemon's provenance fingerprint on 409 mismatches so a
// client can see exactly which tuple component diverged.
type ErrorResponse struct {
	Error  string                   `json:"error"`
	Server *experiments.Fingerprint `json:"server,omitempty"`
}

// OptionsResponse describes the provenance tuple and capacity of the
// daemon (GET /v1/options); mdexp -server checks it before sweeping.
type OptionsResponse struct {
	Fingerprint experiments.Fingerprint `json:"fingerprint"`
	Benchmarks  []string                `json:"benchmarks"`
	Workers     int                     `json:"workers"`
	QueueDepth  int                     `json:"queue_depth"`
}

// EndpointMetrics is one route's lifetime request accounting.
type EndpointMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	SecondsTotal float64 `json:"seconds_total"`
}

// QueueMetrics is the work queue's instantaneous occupancy.
type QueueMetrics struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// MetricsResponse is GET /v1/metrics: the runner's lifetime counters
// (simulations, cache/dedup hits, journal replays, and the on-disk
// recording and warm-state checkpoint caches' hit/miss/byte counters),
// per-endpoint request/latency counters, queue occupancy, and journal
// health.
type MetricsResponse struct {
	Counters      experiments.Counters       `json:"counters"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	Queue         QueueMetrics               `json:"queue"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	JournalError  string                     `json:"journal_error,omitempty"`
	// Fleet is the worker-process pool's health snapshot (per-worker
	// liveness, steal, restart, and heartbeat-miss counters); absent
	// when the daemon runs single-process.
	Fleet *fleet.Report `json:"fleet,omitempty"`
}

// HealthzResponse is GET /v1/healthz. Degraded is present only when a
// worker fleet is attached: true means every worker process is down
// and cells are executing in-process until the fleet recovers.
type HealthzResponse struct {
	Status   string `json:"status"`
	Degraded *bool  `json:"degraded,omitempty"`
}
