package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/stats"
)

func cfgWith(p config.Policy) config.Machine {
	c := config.Default128()
	c.Policy = p
	return c
}

// fakeStats returns a deterministic, distinguishable result per cell.
func fakeStats(bench string, cfg config.Machine) *stats.Run {
	return &stats.Run{
		Config: cfg.Name(), Workload: bench,
		Cycles: 1000 + int64(len(bench)), Committed: 2500,
		CommittedLoads: 500, Misspeculations: 7,
	}
}

// newTestServer builds a server whose runner simulates via sim.
func newTestServer(t *testing.T, cfg Config, sim experiments.SimulateFunc) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if sim != nil {
		s.Runner().UseBackend(sim)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, url string, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getMetrics(t *testing.T, url string) MetricsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// Two concurrent identical cell requests must cost one simulation;
// the second is answered by singleflight dedup (or the cache, if the
// first already finished), and a later repeat is a pure cache hit.
func TestRunDedupAcrossConcurrentClients(t *testing.T) {
	var invocations atomic.Int64
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		invocations.Add(1)
		entered <- struct{}{}
		<-release
		return fakeStats(bench, cfg), nil
	}
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}, Workers: 4}, sim)

	req := RunRequest{Bench: "126.gcc", Config: cfgWith(config.Sync)}
	type result struct {
		status int
		rr     RunResponse
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postRun(t, ts.URL, req)
			var rr RunResponse
			json.Unmarshal(body, &rr)
			results <- result{resp.StatusCode, rr}
		}()
	}
	<-entered // one simulation is in flight
	close(release)
	wg.Wait()
	close(results)

	var sources []string
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status = %d", r.status)
		}
		if r.rr.Record.Stats == nil || r.rr.Record.Bench != "126.gcc" {
			t.Fatalf("bad record: %+v", r.rr.Record)
		}
		sources = append(sources, string(r.rr.Source))
	}
	if n := invocations.Load(); n != 1 {
		t.Errorf("identical concurrent requests ran %d simulations, want 1", n)
	}
	simulated := 0
	for _, s := range sources {
		switch s {
		case "simulated":
			simulated++
		case "dedup", "cache":
		default:
			t.Errorf("unexpected source %q", s)
		}
	}
	if simulated != 1 {
		t.Errorf("sources = %v, want exactly one \"simulated\"", sources)
	}

	// A repeat after completion is a cache hit and runs nothing.
	resp, body := postRun(t, ts.URL, req)
	var rr RunResponse
	json.Unmarshal(body, &rr)
	if resp.StatusCode != http.StatusOK || rr.Source != experiments.SourceCache {
		t.Errorf("repeat request: status %d source %q, want 200 cache", resp.StatusCode, rr.Source)
	}
	if n := invocations.Load(); n != 1 {
		t.Errorf("cache hit re-simulated: %d invocations", n)
	}

	m := getMetrics(t, ts.URL)
	if m.Counters.JobsStarted != 1 || m.Counters.CacheHits != 2 {
		t.Errorf("metrics: jobs_started=%d cache_hits=%d, want 1 and 2",
			m.Counters.JobsStarted, m.Counters.CacheHits)
	}
	ep := m.Endpoints["POST /v1/runs"]
	if ep.Requests != 3 || ep.Errors != 0 {
		t.Errorf("endpoint metrics: %+v, want 3 requests 0 errors", ep)
	}
}

// A provenance-fingerprint mismatch is refused with 409 and the
// server's tuple, before any queueing.
func TestRunMetaMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		t.Error("mismatched request must not reach the backend")
		return fakeStats(bench, cfg), nil
	})
	foreign := experiments.Options{Insts: 999_999}.Fingerprint()
	resp, body := postRun(t, ts.URL, RunRequest{
		Bench: "126.gcc", Config: cfgWith(config.Sync), Meta: &foreign,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409; body: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Server == nil {
		t.Fatalf("409 body must carry the server fingerprint: %s", body)
	}
	if er.Server.Insts != 5000 {
		t.Errorf("server fingerprint insts = %d, want 5000", er.Server.Insts)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, nil)
	for name, req := range map[string]RunRequest{
		"unknown bench": {Bench: "127.notabench", Config: cfgWith(config.Sync)},
		"empty config":  {Bench: "126.gcc"},
	} {
		resp, body := postRun(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body: %s", name, resp.StatusCode, body)
		}
	}
}

// The bounded queue refuses overload with 503 instead of queueing
// without limit.
func TestRunQueueFull(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		entered <- struct{}{}
		<-release
		return fakeStats(bench, cfg), nil
	}
	defer close(release)
	s, ts := newTestServer(t, Config{
		Options: experiments.Options{Insts: 5000}, Workers: 1, QueueDepth: 1,
	}, sim)

	fire := func(p config.Policy, ch chan<- int) {
		go func() {
			resp, _ := postRun(t, ts.URL, RunRequest{Bench: "126.gcc", Config: cfgWith(p)})
			ch <- resp.StatusCode
		}()
	}
	first, second := make(chan int, 1), make(chan int, 1)
	fire(config.Sync, first)
	<-entered // the only worker is now occupied
	fire(config.Naive, second)
	// Wait for the second request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.queue().Depth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postRun(t, ts.URL, RunRequest{Bench: "126.gcc", Config: cfgWith(config.Oracle)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status = %d, want 503; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	release <- struct{}{}
	release <- struct{}{}
	if st := <-first; st != http.StatusOK {
		t.Errorf("first request status = %d", st)
	}
	if st := <-second; st != http.StatusOK {
		t.Errorf("queued request status = %d", st)
	}
}

// A sweep streams NDJSON lifecycle events and one record per cell.
func TestSweepStreamsNDJSON(t *testing.T) {
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return fakeStats(bench, cfg), nil
	}
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}, Workers: 2}, sim)

	body, _ := json.Marshal(SweepRequest{
		Benches: []string{"126.gcc", "102.swim"},
		Configs: []config.Machine{cfgWith(config.Sync), cfgWith(config.Naive)},
	})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("too few events: %+v", events)
	}
	if first := events[0]; first.Event != "queued" || first.Cells != 4 {
		t.Errorf("first event = %+v, want queued with 4 cells", first)
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.Cells != 4 || last.Failed != 0 {
		t.Errorf("last event = %+v, want done 4/0", last)
	}
	finished := 0
	for _, ev := range events {
		if ev.Event == "finished" {
			finished++
			if ev.Record == nil || ev.Record.Stats == nil {
				t.Errorf("finished event without record: %+v", ev)
			}
		}
	}
	if finished != 4 {
		t.Errorf("finished events = %d, want 4", finished)
	}
}

// With Accept: text/event-stream the same events arrive as SSE frames.
func TestSweepStreamsSSE(t *testing.T) {
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return fakeStats(bench, cfg), nil
	}
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, sim)

	body, _ := json.Marshal(SweepRequest{
		Benches: []string{"126.gcc"}, Configs: []config.Machine{cfgWith(config.Sync)},
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweeps", bytes.NewReader(body))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(out, "event: done\ndata: ") {
		t.Errorf("missing SSE done frame:\n%s", out)
	}
}

// A restarted server over the same journal directory serves completed
// cells from the re-primed cache without re-simulating, bit-identical.
func TestJournalRestartReprimesCache(t *testing.T) {
	dir := t.TempDir()
	opt := experiments.Options{Insts: 2000, Parallel: 2}
	req := RunRequest{Bench: "126.gcc", Config: cfgWith(config.Sync)}

	// First server lifetime: simulate one real cell, journal it.
	j, recs, err := experiments.OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt1 := opt
	opt1.Journal = j
	s1 := New(Config{Options: opt1})
	s1.Runner().Prime(recs)
	ts1 := httptest.NewServer(s1)
	resp, body := postRun(t, ts1.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, body)
	}
	var first RunResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Source != experiments.SourceSimulated {
		t.Fatalf("first run source = %q, want simulated", first.Source)
	}
	ts1.Close()
	s1.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second lifetime over the same directory: the cell must replay.
	j2, recs2, err := experiments.OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt2 := opt
	opt2.Journal = j2
	s2 := New(Config{Options: opt2})
	if n := s2.Runner().Prime(recs2); n != 1 {
		t.Fatalf("primed %d cells from journal, want 1", n)
	}
	ts2 := httptest.NewServer(s2)
	defer func() { ts2.Close(); s2.Close() }()
	resp2, body2 := postRun(t, ts2.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed run: status %d: %s", resp2.StatusCode, body2)
	}
	var second RunResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if second.Source != experiments.SourceJournal {
		t.Errorf("restart source = %q, want journal", second.Source)
	}
	if !reflect.DeepEqual(first.Record.Stats, second.Record.Stats) {
		t.Errorf("replayed stats differ from simulated:\nfirst:  %+v\nsecond: %+v",
			first.Record.Stats, second.Record.Stats)
	}
	m := getMetrics(t, ts2.URL)
	if m.Counters.JobsStarted != 0 || m.Counters.Replayed != 1 {
		t.Errorf("restart metrics: jobs_started=%d replayed=%d, want 0 and 1",
			m.Counters.JobsStarted, m.Counters.Replayed)
	}
}

// The Client round-trips stats exactly and can serve as a local
// Runner's remote backend (the mdexp -server path).
func TestClientAsRemoteBackend(t *testing.T) {
	opt := experiments.Options{Insts: 5000}
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return fakeStats(bench, cfg), nil
	}
	_, ts := newTestServer(t, Config{Options: opt}, sim)

	cl := NewClient(strings.TrimPrefix(ts.URL, "http://"), opt)
	if err := cl.Check(context.Background()); err != nil {
		t.Fatalf("Check: %v", err)
	}

	cfg := cfgWith(config.Sync)
	got, src, err := cl.RunWithSource(context.Background(), "126.gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src != experiments.SourceSimulated {
		t.Errorf("source = %q, want simulated", src)
	}
	if want := fakeStats("126.gcc", cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("stats did not round-trip:\ngot:  %+v\nwant: %+v", got, want)
	}

	// Mount the client as a local runner's backend: experiments run
	// unchanged, every simulation deferred to the daemon.
	local := experiments.NewRunner(opt)
	local.UseBackend(cl.Run)
	res, err := local.Run(context.Background(), "102.swim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := fakeStats("102.swim", cfg); !reflect.DeepEqual(res, want) {
		t.Errorf("runner-mounted client stats differ:\ngot:  %+v\nwant: %+v", res, want)
	}
	// The daemon now holds both cells; the local memo dedups repeats.
	if _, err := local.Run(context.Background(), "102.swim", cfg); err != nil {
		t.Fatal(err)
	}
	if c := local.Counters(); c.CacheHits != 1 {
		t.Errorf("local cache hits = %d, want 1", c.CacheHits)
	}
}

// A client built for different options fails Check with a descriptive
// mismatch instead of 409ing cell by cell.
func TestClientCheckMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: experiments.Options{Insts: 5000}}, nil)
	cl := NewClient(ts.URL, experiments.Options{Insts: 7777})
	err := cl.Check(context.Background())
	if err == nil || !strings.Contains(err.Error(), "provenance mismatch") {
		t.Errorf("Check = %v, want provenance mismatch", err)
	}
}

// After Close the scheduler refuses new work instead of panicking,
// and Close is idempotent.
func TestCloseRefusesNewWork(t *testing.T) {
	s := New(Config{Options: experiments.Options{Insts: 5000}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Close()
	s.Close() // idempotent
	resp, body := postRun(t, ts.URL, RunRequest{Bench: "126.gcc", Config: cfgWith(config.Sync)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-Close status = %d, want 503; body: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "shutting down") {
		t.Errorf("post-Close body = %s, want shutting-down error", body)
	}
}

// Queued cells finish (and are journaled) before Close returns: the
// graceful-drain guarantee SIGTERM relies on.
func TestCloseDrainsQueuedWork(t *testing.T) {
	release := make(chan struct{})
	var finished atomic.Int64
	sim := func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		<-release
		finished.Add(1)
		return fakeStats(bench, cfg), nil
	}
	s := New(Config{Options: experiments.Options{Insts: 5000}, Workers: 1, QueueDepth: 4})
	s.Runner().UseBackend(sim)

	done := make(chan taskResult, 2)
	for i, p := range []config.Policy{config.Sync, config.Naive} {
		t2 := &task{bench: "126.gcc", cfg: cfgWith(p), ctx: context.Background(), done: done}
		if err := s.sched.trySubmit(t2); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	close(release)
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain the queue")
	}
	if n := finished.Load(); n != 2 {
		t.Errorf("Close returned with %d/2 queued cells finished", n)
	}
}
