package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

// Client talks to an mdserve daemon. Its Run method has the
// experiments.SimulateFunc shape, so a local Runner can mount it as a
// remote backend (Runner.UseBackend) and every experiment — memo
// cache, hooks, artifacts included — runs unchanged against the
// daemon; that is mdexp -server.
//
// A 503 (bounded queue at capacity) does not fail the sweep: the
// client waits out the server's Retry-After hint — floored by the
// deterministic capped-backoff schedule of internal/retry — and
// resubmits, up to the policy's attempt budget.
type Client struct {
	base  string
	hc    *http.Client
	meta  experiments.Fingerprint
	retry retry.Policy
	// sleep waits between overload retries; tests substitute a recorder
	// so retry scheduling is asserted without wall-clock waits.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the daemon at addr (host:port or a
// full http:// URL), stamping every request with the provenance
// fingerprint of opt so the server can refuse mismatched cells.
// Overload retries follow opt.Retry (zero-valued fields take the
// retry.Default schedule).
func NewClient(addr string, opt experiments.Options) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		// Simulations can legitimately take minutes; cancellation comes
		// from the request context, not a transport timeout.
		hc:    &http.Client{},
		meta:  opt.Fingerprint(),
		retry: opt.Retry.WithDefaults(),
		sleep: ctxSleep,
	}
}

// ctxSleep waits d out unless ctx dies first.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryAfter parses a 503's Retry-After seconds hint (0 when absent
// or malformed; HTTP-date values are ignored as the server never
// sends them).
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeError turns a non-2xx response into a descriptive error.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		if er.Server != nil {
			return fmt.Errorf("mdserve: %s (HTTP %d); the daemon serves %+v — restart it with matching -n/-sampled flags or adjust yours", er.Error, resp.StatusCode, *er.Server)
		}
		return fmt.Errorf("mdserve: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("mdserve: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// Check verifies the daemon is reachable and serves exactly this
// client's provenance tuple, so a sweep fails fast with a clear
// message instead of 409ing on its first cell.
func (c *Client) Check(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/options", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("mdserve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	var opts OptionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&opts); err != nil {
		return fmt.Errorf("mdserve: decoding /v1/options: %w", err)
	}
	if opts.Fingerprint != c.meta {
		return fmt.Errorf("mdserve: provenance mismatch: this sweep wants %+v, the daemon serves %+v (align -n/-sampled, or restart the daemon)", c.meta, opts.Fingerprint)
	}
	return nil
}

// Run requests one (benchmark, configuration) cell from the daemon
// and returns its statistics. The daemon answers from its
// content-addressed cache when it can; either way the stats are
// bit-identical to a local simulation by the determinism contract.
func (c *Client) Run(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	res, _, err := c.RunWithSource(ctx, bench, cfg)
	return res, err
}

// RunWithSource is Run, also reporting the daemon-side result source
// (simulated / cache / dedup / journal). A saturated daemon (503) is
// retried on the deterministic backoff schedule, honoring the
// server's Retry-After hint when it is longer than the backoff.
func (c *Client) RunWithSource(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, experiments.RunSource, error) {
	body, err := json.Marshal(RunRequest{Bench: bench, Config: cfg, Meta: &c.meta})
	if err != nil {
		return nil, "", err
	}
	for attempt := 1; ; attempt++ {
		res, src, wait, err := c.runOnce(ctx, body, bench, cfg)
		if err == nil || wait < 0 || attempt >= c.retry.MaxAttempts {
			return res, src, err
		}
		if d := c.retry.Backoff(attempt); d > wait {
			wait = d
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			return nil, "", serr
		}
	}
}

// runOnce performs one POST /v1/runs attempt. wait >= 0 marks a
// retryable overload refusal (the server's Retry-After hint); -1
// marks a final answer.
func (c *Client) runOnce(ctx context.Context, body []byte, bench string, cfg config.Machine) (*stats.Run, experiments.RunSource, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, "", -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", -1, fmt.Errorf("mdserve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return nil, "", retryAfter(resp), decodeError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", -1, decodeError(resp)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, "", -1, fmt.Errorf("mdserve: decoding run response: %w", err)
	}
	if rr.Record.Stats == nil {
		return nil, "", -1, fmt.Errorf("mdserve: response for %s under %s carries no stats", bench, cfg.Name())
	}
	return rr.Record.Stats, rr.Source, -1, nil
}
