//go:build mdfault

package faultinject

import "sync"

// Enabled reports whether the build carries the mdfault tag.
const Enabled = true

var (
	mu     sync.Mutex
	armed  []Plan
	counts map[string]int64
)

// Arm replaces the armed plans and resets every site's hit counter.
// Passing no plans leaves the harness counting passages (Hits) without
// injecting anything.
func Arm(plans ...Plan) {
	mu.Lock()
	defer mu.Unlock()
	armed = append([]Plan(nil), plans...)
	counts = make(map[string]int64)
}

// Disarm removes every plan and stops counting.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	counts = nil
}

// Hits returns how many times site has been passed since Arm.
func Hits(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return counts[site]
}

// hit advances site's counter and returns the plan that fires on this
// passage, if any.
func hit(site string) (Plan, int64, bool) {
	mu.Lock()
	defer mu.Unlock()
	if counts == nil {
		return Plan{}, 0, false
	}
	counts[site]++
	n := counts[site]
	for _, p := range armed {
		if p.Site != site {
			continue
		}
		if n == p.N || (p.Repeat && n >= p.N) {
			return p, n, true
		}
	}
	return Plan{}, n, false
}

// Point passes an injection site with no error path: a panic-kind plan
// that fires here panics with an *InjectedPanic; error-kind plans are
// ignored.
func Point(site string) {
	if p, n, ok := hit(site); ok && p.Kind == KindPanic {
		panic(&InjectedPanic{Site: site, Hit: n})
	}
}

// PointErr passes an injection site with an error path: an error-kind
// plan that fires here returns an *InjectedError; a panic-kind plan
// panics.
func PointErr(site string) error {
	p, n, ok := hit(site)
	if !ok {
		return nil
	}
	switch p.Kind {
	case KindPanic:
		panic(&InjectedPanic{Site: site, Hit: n})
	default:
		return &InjectedError{Site: site, Hit: n}
	}
}
