//go:build mdfault

package faultinject

import (
	"errors"
	"testing"
)

func TestPointErrFiresAtNth(t *testing.T) {
	Arm(Plan{Site: SiteAtomicWrite, N: 3, Kind: KindError})
	defer Disarm()
	for i := 1; i <= 5; i++ {
		err := PointErr(SiteAtomicWrite)
		if i == 3 {
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Site != SiteAtomicWrite || inj.Hit != 3 {
				t.Fatalf("hit %d: err = %v, want injected error at hit 3", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected injected error %v", i, err)
		}
	}
	if Hits(SiteAtomicWrite) != 5 {
		t.Errorf("hits = %d, want 5", Hits(SiteAtomicWrite))
	}
}

func TestPointPanicsAtNthAndRepeat(t *testing.T) {
	Arm(Plan{Site: SiteParsimSegment, N: 2, Kind: KindPanic, Repeat: true})
	defer Disarm()
	mustPanic := func(want bool) {
		t.Helper()
		defer func() {
			v := recover()
			if want {
				if _, ok := v.(*InjectedPanic); !ok {
					t.Fatalf("recover = %v, want *InjectedPanic", v)
				}
			} else if v != nil {
				t.Fatalf("unexpected panic %v", v)
			}
		}()
		Point(SiteParsimSegment)
	}
	mustPanic(false)
	mustPanic(true) // 2nd passage fires
	mustPanic(true) // Repeat: every later passage fires too
}

func TestDisarmStopsInjection(t *testing.T) {
	Arm(Plan{Site: SiteRunnerJob, N: 1, Kind: KindError})
	Disarm()
	if err := PointErr(SiteRunnerJob); err != nil {
		t.Fatalf("disarmed PointErr = %v, want nil", err)
	}
	if Hits(SiteRunnerJob) != 0 {
		t.Errorf("disarmed harness still counts hits")
	}
}

func TestErrorPlanIgnoredByPoint(t *testing.T) {
	Arm(Plan{Site: SiteRunnerJob, N: 1, Kind: KindError})
	defer Disarm()
	defer func() {
		if v := recover(); v != nil {
			t.Fatalf("Point fired an error-kind plan as a panic: %v", v)
		}
	}()
	Point(SiteRunnerJob) // no error path here; must not fire
}
