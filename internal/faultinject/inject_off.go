//go:build !mdfault

package faultinject

// Enabled reports whether the build carries the mdfault tag. It is a
// constant so call-site guards and the hooks below compile away
// entirely in default builds.
const Enabled = false

// Arm is rejected without the mdfault tag: a test that arms plans in a
// build where the hooks are compiled out would silently prove nothing.
func Arm(plans ...Plan) {
	panic("faultinject: Arm called without -tags mdfault")
}

// Disarm is a no-op without the mdfault tag.
func Disarm() {}

// Point is an inlined no-op without the mdfault tag.
func Point(site string) {}

// PointErr is an inlined no-op without the mdfault tag.
func PointErr(site string) error { return nil }

// Hits always reports zero without the mdfault tag.
func Hits(site string) int64 { return 0 }
