// Package faultinject is a deterministic fault-injection harness for
// the robustness layer around the simulator: the experiment runner, the
// interval-parallel segment workers, and the artifact/journal writers
// each pass through a named injection point on every attempt, and an
// armed plan makes the Nth passage panic or fail with a typed error.
//
// The harness mirrors the mdsan sanitizer's build-tag pattern: without
// `-tags mdfault` every hook compiles to an inlined no-op (Enabled is a
// false constant, Arm is rejected), so default builds carry no
// fault-injection state or overhead. `go test -tags mdfault` arms the
// machinery; CI runs the recovery-path suites under that tag.
//
// Determinism: a plan fires on hit counts, never on wall-clock time or
// randomness — "panic at the 3rd segment" injects the same fault at the
// same place on every run, which is what lets the recovery tests assert
// bit-identical results after a retry.
package faultinject

// Injection sites. Each names one passage the robustness layer
// protects; see the call sites for the recovery path under test.
const (
	// SiteRunnerJob fires at the start of every simulation attempt in
	// experiments.Runner (inside the panic-recovery scope, so an
	// injected panic exercises *RunPanicError and the retry loop).
	SiteRunnerJob = "runner.job"
	// SiteParsimSegment fires at the start of every parsim segment
	// simulation (inside the worker's recovery scope).
	SiteParsimSegment = "parsim.segment"
	// SiteAtomicWrite fires in atomicio.WriteFile before the temp file
	// is written (an injected error must leave the destination intact).
	SiteAtomicWrite = "atomicio.write"
	// SiteJournalAppend fires before a journal entry is framed and
	// written (an injected error must not abort the sweep).
	SiteJournalAppend = "journal.append"
	// SiteProbeClose fires as atomicio.ProbeDir closes its probe file,
	// standing in for a close-time write failure (quota, I/O error at
	// flush) that the probe exists to surface.
	SiteProbeClose = "atomicio.probeclose"
	// SiteCkptWrite fires before a checkpoint set is serialized to disk
	// (an injected error must leave any previous file intact and the
	// sweep running on in-memory checkpoints).
	SiteCkptWrite = "ckpt.write"
	// SiteCkptLoad fires as a checkpoint file is opened/parsed (an
	// injected error must fall back to functional fast-forward and
	// re-capture the file — never wrong statistics).
	SiteCkptLoad = "ckpt.load"
	// SiteWorkerSpawn fires in the fleet supervisor before a worker
	// process is forked (an injected error must be absorbed by the
	// capped-backoff restart policy, with the pool degrading to
	// in-process execution rather than losing cells).
	SiteWorkerSpawn = "worker.spawn"
	// SiteWorkerHeartbeat fires in the supervisor's per-worker liveness
	// probe (an injected error counts as a missed heartbeat; enough
	// consecutive misses must get the worker killed and restarted).
	SiteWorkerHeartbeat = "worker.heartbeat"
	// SiteLeaseAcquire fires as a journal segment lease is acquired (an
	// injected error must fail the segment open cleanly — the caller
	// restarts or degrades, and no lease file is left behind).
	SiteLeaseAcquire = "lease.acquire"
)

// Kind selects what an armed plan injects when it fires.
type Kind int

const (
	// KindError makes PointErr return an *InjectedError (Point ignores
	// error-kind plans: its call sites have no error path).
	KindError Kind = iota
	// KindPanic makes Point and PointErr panic with an *InjectedPanic.
	KindPanic
)

// Plan arms one injection site: the site's Nth passage (1-based, counted
// across the whole armed window) fires the fault; with Repeat, every
// passage from the Nth on fires it, modeling a persistent failure.
type Plan struct {
	Site   string
	N      int64
	Kind   Kind
	Repeat bool
}

// InjectedError is the error PointErr returns when an error-kind plan
// fires.
type InjectedError struct {
	Site string
	Hit  int64 // which passage of the site fired (1-based)
}

func (e *InjectedError) Error() string {
	return "faultinject: injected error at " + e.Site
}

// InjectedPanic is the value Point panics with when a panic-kind plan
// fires.
type InjectedPanic struct {
	Site string
	Hit  int64
}

func (e *InjectedPanic) String() string {
	return "faultinject: injected panic at " + e.Site
}
