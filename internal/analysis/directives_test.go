package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		name, arg string
		ok        bool
	}{
		{"//md:hotpath", "hotpath", "", true},
		{"//md:guardedby mu", "guardedby", "mu", true},
		{"//md:errok   padded   reason  ", "errok", "padded   reason", true},
		{"//md:locked\tmu", "locked", "mu", true},
		{"//md:colok flags transient scheduling state", "colok", "flags transient scheduling state", true},
		{"//md:", "", "", false},           // empty name is not a directive
		{"//md: guardedby", "", "", false}, // leading space means empty name
		{"// md:hotpath", "", "", false},   // space before md: breaks the prefix
		{"//notmd:hotpath", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		name, arg, ok := parseDirective(c.text)
		if name != c.name || arg != c.arg || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, arg, ok, c.name, c.arg, c.ok)
		}
	}
}

// parseIndex parses one synthetic file and builds its directive index.
func parseIndex(t *testing.T, src string) (*token.FileSet, directiveIndex, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, collectDirectives(fset, []*ast.File{f}), f
}

func TestDirectiveDuplicateFirstWins(t *testing.T) {
	_, idx, _ := parseIndex(t, `package p

var x int //md:errok first reason //md:errok second reason
`)
	arg, ok := idx.argAt("dir.go", 3, DirErrOK)
	if !ok {
		t.Fatal("directive not indexed")
	}
	// The second occurrence rides inside the first one's argument text;
	// it must not overwrite the first binding.
	if want := "first reason //md:errok second reason"; arg != want {
		t.Errorf("arg = %q, want %q", arg, want)
	}
}

func TestTrailingDirectiveDoesNotLeakToNextLine(t *testing.T) {
	_, idx, _ := parseIndex(t, `package p

type s struct {
	a int //md:guardedby mu
	b int
}
`)
	if _, ok := idx.argFor("dir.go", 4, DirGuardedBy); !ok {
		t.Error("directive should bind to its own line (field a)")
	}
	// Line 4 holds code, so the trailing directive must not govern
	// line 5's field b via the line-above rule.
	if _, ok := idx.argFor("dir.go", 5, DirGuardedBy); ok {
		t.Error("trailing directive on line 4 leaked to field b on line 5")
	}
}

func TestDirectiveAloneAboveBinds(t *testing.T) {
	_, idx, _ := parseIndex(t, `package p

type s struct {
	//md:guardedby mu
	a int
}
`)
	arg, ok := idx.argFor("dir.go", 5, DirGuardedBy)
	if !ok || arg != "mu" {
		t.Errorf("comment-only line above should bind: got (%q, %v)", arg, ok)
	}
}

func TestWaiverAtPositions(t *testing.T) {
	fset, idx, f := parseIndex(t, `package p

func g() error { return nil }

func f() {
	g() //md:errok same-line reason
	//md:errok
	g()
	g()
}
`)
	// Find the three g() call positions in f's body.
	var calls []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "g" {
				calls = append(calls, c.Pos())
			}
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d g() calls, want 3", len(calls))
	}
	if found, reason, _ := idx.waiverAt(fset, calls[0], DirErrOK); !found || reason != "same-line reason" {
		t.Errorf("same-line waiver: found=%v reason=%q", found, reason)
	}
	// Second call: bare waiver alone on the line above — present, no reason.
	if found, reason, _ := idx.waiverAt(fset, calls[1], DirErrOK); !found || reason != "" {
		t.Errorf("line-above waiver: found=%v reason=%q", found, reason)
	}
	// Third call: the waiver two lines up governs the second call only.
	if found, _, _ := idx.waiverAt(fset, calls[2], DirErrOK); found {
		t.Error("waiver leaked two lines down to an unrelated call")
	}
}

func TestWaiverOnWrongNodeDoesNotApply(t *testing.T) {
	fset, idx, f := parseIndex(t, `package p

func g() error { return nil }

//md:errok waiver parked on the declaration, not the call site
func f() {
	g()
}
`)
	var call token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c.Pos()
		}
		return true
	})
	if found, _, _ := idx.waiverAt(fset, call, DirErrOK); found {
		t.Error("a waiver on the enclosing declaration must not waive the call site")
	}
}

func TestFuncDirectiveArgsCollectsDocRepeats(t *testing.T) {
	fset, idx, f := parseIndex(t, `package p

// doc comment.
//
//md:colok flags reason one
//md:colok vals reason two
func f() {}
`)
	pkg := &Package{Files: []*ast.File{f}, directives: idx}
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if d, ok := d.(*ast.FuncDecl); ok {
			fd = d
		}
	}
	args := pkg.FuncDirectiveArgs(fset, fd, DirColOK)
	if len(args) != 2 || args[0] != "flags reason one" || args[1] != "vals reason two" {
		t.Errorf("FuncDirectiveArgs = %q, want both doc repeats in order", args)
	}
}
