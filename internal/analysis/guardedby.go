package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces //md:guardedby mutex annotations: a struct field
// annotated `//md:guardedby <mu>` names a sibling sync.Mutex or
// sync.RWMutex field that must be held whenever the annotated field is
// accessed. Reads are legal under RLock or Lock; writes (assignments,
// ++/--, taking the address, mutating through an index) require the
// exclusive Lock.
//
// The checker walks each function body as straight-line flow: X.Lock()
// and X.RLock() acquire, X.Unlock()/X.RUnlock() release, `defer
// X.Unlock()` holds the lock to the end of the function, and `if
// X.TryLock() { ... }` holds it inside the then-branch. Branch bodies
// (if/for/switch/select) are analyzed with a copy of the held set, so
// acquisitions inside a branch do not leak past it. Function literals
// are analyzed with an empty held set (a closure runs on its own
// schedule).
//
// Lock state flows through calls: a function annotated `//md:locked
// <mu>` is analyzed with the receiver's mutex held at entry, and every
// call site of it must hold that mutex. Accesses through a freshly
// constructed local (assigned a composite literal in the same function,
// the single-owner construction phase) are exempt. One finding is
// waived with `//md:nolock <why>` on its line (or above); a whole
// function is waived by `//md:nolock <why>` in its doc comment.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //md:guardedby <mu> must only be accessed with that mutex held",
	Run:  runGuardedBy,
}

type lockMode int

const (
	modeRead  lockMode = iota // RLock held: reads only
	modeWrite                 // exclusive Lock held
)

// lockSet maps a mutex expression rendering ("r.mu") to the mode held.
type lockSet map[string]lockMode

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// guardInfo is one //md:guardedby annotation: the named sibling mutex.
type guardInfo struct {
	mu string
}

type gbChecker struct {
	pass *Pass
	pkg  *Package
	// guarded maps annotated field objects to their guard.
	guarded map[*types.Var]guardInfo
	// locked maps functions annotated //md:locked to the mutex names the
	// caller must hold.
	locked map[*types.Func][]string
}

func runGuardedBy(pass *Pass) error {
	c := &gbChecker{
		pass:    pass,
		pkg:     pass.Pkg,
		guarded: map[*types.Var]guardInfo{},
		locked:  map[*types.Func][]string{},
	}
	c.collect()
	if len(c.guarded) == 0 && len(c.locked) == 0 {
		return nil
	}
	for _, file := range c.pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collect indexes the //md:guardedby fields (validating that each names
// a sibling mutex) and the //md:locked functions of the package.
func (c *gbChecker) collect() {
	fset := c.pass.Program.Fset
	for _, file := range c.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := c.pkg.DirectiveArg(fset, field, DirGuardedBy)
				if !ok {
					continue
				}
				if arg == "" {
					c.pass.Reportf(field.Pos(), "//md:guardedby needs the name of the sibling mutex field")
					continue
				}
				muName := strings.Fields(arg)[0]
				if !structHasMutexField(c.pkg, st, muName) {
					c.pass.Reportf(field.Pos(), "//md:guardedby %s: no sibling sync.Mutex/RWMutex field named %q", muName, muName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pkg.Info.Defs[name].(*types.Var); ok {
						c.guarded[v] = guardInfo{mu: muName}
					}
				}
			}
			return true
		})
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			arg, ok := c.pkg.FuncDirectiveArg(fset, fd, DirLocked)
			if !ok {
				continue
			}
			if arg == "" {
				c.pass.Reportf(fd.Pos(), "//md:locked needs the name(s) of the mutex the caller holds")
				continue
			}
			if fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func); ok {
				c.locked[fn] = strings.Fields(arg)
			}
		}
	}
}

// structHasMutexField reports whether the struct literally declares a
// sync.Mutex / sync.RWMutex (or pointer to one) field with the name.
func structHasMutexField(pkg *Package, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return isMutexType(pkg.Info.TypeOf(f.Type))
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// gbFunc analyzes one function body.
type gbFunc struct {
	c     *gbChecker
	fresh map[types.Object]bool // locals assigned a composite literal here
}

func (c *gbChecker) checkFunc(fd *ast.FuncDecl) {
	fset := c.pass.Program.Fset
	if reason, ok := c.pkg.FuncDirectiveArg(fset, fd, DirNoLock); ok {
		if reason == "" {
			c.pass.Reportf(fd.Pos(), "//md:nolock waiver without justification: state why the function runs unlocked")
		}
		return // whole function waived (single-owner phase)
	}
	g := &gbFunc{c: c, fresh: collectFreshLocals(c.pkg, fd.Body)}
	held := lockSet{}
	// //md:locked: the caller holds the named mutexes of the receiver.
	if arg, ok := c.pkg.FuncDirectiveArg(fset, fd, DirLocked); ok && arg != "" {
		recv := ""
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			recv = fd.Recv.List[0].Names[0].Name
		}
		for _, mu := range strings.Fields(arg) {
			key := mu
			if !strings.Contains(mu, ".") && recv != "" {
				key = recv + "." + mu
			}
			held[key] = modeWrite
		}
	}
	g.walkBlock(fd.Body, held)
}

// collectFreshLocals finds locals bound to a composite literal (or its
// address, or new(T)) anywhere in the body: accesses through them are
// the single-owner construction phase and exempt from lock checks.
func collectFreshLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhs = u.X
		}
		switch r := rhs.(type) {
		case *ast.CompositeLit:
		case *ast.CallExpr:
			if id, ok := r.Fun.(*ast.Ident); !ok || id.Name != "new" {
				return
			}
		default:
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

func (g *gbFunc) walkBlock(b *ast.BlockStmt, held lockSet) {
	for _, s := range b.List {
		g.walkStmt(s, held)
	}
}

func (g *gbFunc) walkStmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := g.lockOp(s.X); ok {
			applyLockOp(held, key, op)
			return
		}
		g.checkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			g.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			g.checkLValue(lhs, held)
		}
	case *ast.IncDecStmt:
		g.checkLValue(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if _, op, ok := g.lockOp(s.Call); ok {
			// defer mu.Unlock(): the lock stays held to the end of the
			// function; defer mu.Lock() is nonsense we ignore.
			_ = op
			return
		}
		g.checkExpr(s.Call, held)
	case *ast.GoStmt:
		g.checkExpr(s.Call, held)
	case *ast.SendStmt:
		g.checkExpr(s.Chan, held)
		g.checkExpr(s.Value, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			g.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		thenHeld := held.clone()
		if key, mode, ok := g.tryLockCond(s.Cond); ok {
			thenHeld[key] = mode
		} else {
			g.checkExpr(s.Cond, held)
		}
		g.walkBlock(s.Body, thenHeld)
		if s.Else != nil {
			g.walkStmt(s.Else, held.clone())
		}
	case *ast.BlockStmt:
		g.walkBlock(s, held)
	case *ast.ForStmt:
		h := held.clone()
		if s.Init != nil {
			g.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			g.checkExpr(s.Cond, h)
		}
		g.walkBlock(s.Body, h)
		if s.Post != nil {
			g.walkStmt(s.Post, h)
		}
	case *ast.RangeStmt:
		g.checkExpr(s.X, held)
		h := held.clone()
		if s.Key != nil {
			g.checkLValue(s.Key, h)
		}
		if s.Value != nil {
			g.checkLValue(s.Value, h)
		}
		g.walkBlock(s.Body, h)
	case *ast.SwitchStmt:
		h := held.clone()
		if s.Init != nil {
			g.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			g.checkExpr(s.Tag, h)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				ch := h.clone()
				for _, e := range cc.List {
					g.checkExpr(e, ch)
				}
				for _, st := range cc.Body {
					g.walkStmt(st, ch)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		h := held.clone()
		if s.Init != nil {
			g.walkStmt(s.Init, h)
		}
		g.walkStmt(s.Assign, h)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				ch := h.clone()
				for _, st := range cc.Body {
					g.walkStmt(st, ch)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				h := held.clone()
				if cc.Comm != nil {
					g.walkStmt(cc.Comm, h)
				}
				for _, st := range cc.Body {
					g.walkStmt(st, h)
				}
			}
		}
	case *ast.LabeledStmt:
		g.walkStmt(s.Stmt, held)
	}
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opRLock
	opUnlock
)

// lockOp recognizes X.Lock() / X.RLock() / X.Unlock() / X.RUnlock()
// calls on a sync mutex and returns the rendered mutex key.
func (g *gbFunc) lockOp(e ast.Expr) (key string, op lockOpKind, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := calleeObject(g.c.pkg.Info, call.Fun).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

func applyLockOp(held lockSet, key string, op lockOpKind) {
	switch op {
	case opLock:
		held[key] = modeWrite
	case opRLock:
		if held[key] != modeWrite {
			held[key] = modeRead
		}
	case opUnlock:
		delete(held, key)
	}
}

// tryLockCond recognizes `if X.TryLock()` / `if X.TryRLock()`.
func (g *gbFunc) tryLockCond(cond ast.Expr) (key string, mode lockMode, ok bool) {
	call, isCall := cond.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := calleeObject(g.c.pkg.Info, call.Fun).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "TryLock":
		return types.ExprString(sel.X), modeWrite, true
	case "TryRLock":
		return types.ExprString(sel.X), modeRead, true
	}
	return "", 0, false
}

// checkExpr read-checks every guarded-field access in an expression
// tree, descends into locked-call flow, and analyzes closures with an
// empty held set.
func (g *gbFunc) checkExpr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.walkBlock(n.Body, lockSet{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Address taken: the pointer can mutate the field later,
				// require the exclusive lock now.
				g.checkLValue(n.X, held)
				return false
			}
		case *ast.CallExpr:
			g.checkLockedCall(n, held)
		case *ast.SelectorExpr:
			g.checkSel(n, held, false)
		}
		return true
	})
}

// checkLValue write-checks an assignment target.
func (g *gbFunc) checkLValue(e ast.Expr, held lockSet) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		g.checkLValue(e.X, held)
	case *ast.SelectorExpr:
		g.checkSel(e, held, true)
		g.checkExpr(e.X, held)
	case *ast.IndexExpr:
		// Writing an element mutates the guarded container.
		g.checkLValue(e.X, held)
		g.checkExpr(e.Index, held)
	case *ast.StarExpr:
		g.checkExpr(e.X, held)
	default:
		g.checkExpr(e, held)
	}
}

// checkSel verifies one selector access against the held set.
func (g *gbFunc) checkSel(sel *ast.SelectorExpr, held lockSet, write bool) {
	v, ok := g.c.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	gi, guarded := g.c.guarded[v]
	if !guarded {
		return
	}
	if g.isFresh(sel.X) {
		return
	}
	key := types.ExprString(sel.X) + "." + gi.mu
	mode, isHeld := held[key]
	if write {
		if isHeld && mode == modeWrite {
			return
		}
	} else if isHeld {
		return
	}
	if g.c.pass.checkWaiver(g.c.pkg, sel.Pos(), DirNoLock) {
		return
	}
	what := types.ExprString(sel.X) + "." + sel.Sel.Name
	switch {
	case write && isHeld:
		g.c.pass.Reportf(sel.Pos(), "write to %s guarded by %s, but only the read lock is held", what, key)
	case write:
		g.c.pass.Reportf(sel.Pos(), "write to %s requires %s held exclusively (//md:guardedby)", what, key)
	default:
		g.c.pass.Reportf(sel.Pos(), "access to %s requires %s held (//md:guardedby)", what, key)
	}
}

// checkLockedCall requires the mutexes named by a callee's //md:locked
// annotation to be held at the call site.
func (g *gbFunc) checkLockedCall(call *ast.CallExpr, held lockSet) {
	fn, ok := calleeObject(g.c.pkg.Info, call.Fun).(*types.Func)
	if !ok {
		return
	}
	mus, ok := g.c.locked[fn]
	if !ok {
		return
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	base := ""
	if isSel {
		if g.isFresh(sel.X) {
			return
		}
		base = types.ExprString(sel.X)
	}
	for _, mu := range mus {
		key := mu
		if !strings.Contains(mu, ".") && base != "" {
			key = base + "." + mu
		}
		if _, isHeld := held[key]; isHeld {
			continue
		}
		if g.c.pass.checkWaiver(g.c.pkg, call.Pos(), DirNoLock) {
			return
		}
		g.c.pass.Reportf(call.Pos(), "call to %s requires %s held (//md:locked)", funcDisplayName(fn), key)
	}
}

// isFresh reports whether the access base is a local constructed in
// this very function (single-owner phase, not yet published).
func (g *gbFunc) isFresh(base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := g.c.pkg.Info.Uses[id]
	if obj == nil {
		obj = g.c.pkg.Info.Defs[id]
	}
	return obj != nil && g.fresh[obj]
}
