package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism guards the simulator's reproducibility contract: the
// event-driven core is held bit-identical to the exhaustive scan, and a
// recording must replay to identical statistics, so nothing in the
// deterministic packages may depend on iteration order, wall-clock
// time, global randomness, or goroutine interleaving.
//
// Flagged: range over a map (unless annotated //md:orderindependent),
// wall-clock time functions (time.Now and friends), math/rand
// package-level functions (they draw from the process-global source),
// and go statements.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid map-order iteration, wall-clock reads, global randomness, " +
		"and goroutine spawns in the deterministic simulator packages",
	Packages: DeterministicPackages,
	Run:      runDeterminism,
}

// wallClockFuncs are time-package functions whose results differ run to
// run.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or seed and are therefore reproducible.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	pkg := pass.Pkg
	fset := pass.Program.Fset
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pkg.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					if !pkg.HasDirective(fset, n, DirOrderIndependent) {
						pass.Reportf(n.Pos(),
							"iteration over map %s: order is nondeterministic and can break golden equivalence or replay; iterate sorted keys, or annotate //md:orderindependent with a justification",
							types.TypeString(t, types.RelativeTo(pkg.Types)))
					}
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine spawned in a deterministic package: scheduling order is nondeterministic")
			case *ast.Ident:
				obj, ok := pkg.Info.Uses[n]
				if !ok {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. time.Time.Sub) are pure
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock: results become timing-dependent", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"%s.%s draws from the process-global random source: seed an explicit rand.New(rand.NewSource(...)) instead",
							fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
