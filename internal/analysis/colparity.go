package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ColParity keeps structure-of-arrays structs honest: a struct
// annotated //md:soa declares parallel slice columns indexed by one
// entry id, and every function annotated `//md:soalifecycle <Struct>`
// (grow, reset-on-reuse, snapshot, sanitizer mirror) must touch every
// column. Adding a column and forgetting one lifecycle site is how SoA
// layouts grow stale-state heisenbugs; colparity turns that into a
// static finding.
//
// A column a site deliberately skips is waived per-site with
// `//md:colok <field> <why>` in the function's doc comment.
var ColParity = &Analyzer{
	Name: "colparity",
	Doc:  "every column of an //md:soa struct must be touched at each //md:soalifecycle site",
	Run:  runColParity,
}

// soaStruct is one annotated structure-of-arrays type.
type soaStruct struct {
	name    string
	columns map[string]*types.Var // slice-typed fields, by name
}

func runColParity(pass *Pass) error {
	pkg := pass.Pkg
	fset := pass.Program.Fset
	structs := map[string]*soaStruct{}

	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !typeHasDirective(fset, pkg, gd, ts, DirSoA) {
					continue
				}
				s := &soaStruct{name: ts.Name.Name, columns: map[string]*types.Var{}}
				for _, f := range st.Fields.List {
					t := pkg.Info.TypeOf(f.Type)
					if t == nil {
						continue
					}
					if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
						continue
					}
					for _, n := range f.Names {
						if v, ok := pkg.Info.Defs[n].(*types.Var); ok {
							s.columns[n.Name] = v
						}
					}
				}
				if len(s.columns) == 0 {
					pass.Reportf(ts.Pos(), "//md:soa struct %s has no slice columns", s.name)
					continue
				}
				structs[s.name] = s
			}
		}
	}

	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			arg, ok := pkg.FuncDirectiveArg(fset, fd, DirSoALifecycle)
			if !ok {
				continue
			}
			checkLifecycleSite(pass, pkg, fd, arg, structs)
		}
	}
	return nil
}

func checkLifecycleSite(pass *Pass, pkg *Package, fd *ast.FuncDecl, arg string, structs map[string]*soaStruct) {
	fset := pass.Program.Fset
	name := arg
	if name == "" {
		if len(structs) == 1 {
			for n := range structs {
				name = n
			}
		} else {
			pass.Reportf(fd.Pos(), "//md:soalifecycle needs the //md:soa struct name (%d candidates in package)", len(structs))
			return
		}
	}
	s, ok := structs[name]
	if !ok {
		pass.Reportf(fd.Pos(), "//md:soalifecycle %s: no //md:soa struct named %q in this package", name, name)
		return
	}

	// Per-site waivers: //md:colok <field> <why> lines in the doc comment.
	waived := map[string]bool{}
	for _, w := range pkg.FuncDirectiveArgs(fset, fd, DirColOK) {
		parts := strings.Fields(w)
		if len(parts) == 0 {
			pass.Reportf(fd.Pos(), "//md:colok waiver without a column name")
			continue
		}
		col := parts[0]
		if _, known := s.columns[col]; !known {
			pass.Reportf(fd.Pos(), "//md:colok %s: %s has no column named %q", col, s.name, col)
			continue
		}
		if len(parts) == 1 {
			pass.Reportf(fd.Pos(), "//md:colok %s waiver without justification: state why the site skips the column", col)
		}
		waived[col] = true
	}

	touched := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok {
			touched[v] = true
		}
		return true
	})

	var missing []string
	for col, v := range s.columns {
		if !touched[v] && !waived[col] {
			missing = append(missing, col)
		}
	}
	sort.Strings(missing)
	for _, col := range missing {
		pass.Reportf(fd.Name.Pos(), "lifecycle site %s does not touch %s column %q (waive with //md:colok %s <why>)",
			fd.Name.Name, s.name, col, col)
	}
}
