package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscard makes discarding load-bearing errors a hard failure. The
// durability layer's contract is only as good as its weakest caller: a
// dropped error from an atomic write, a journal append, CRC
// validation, mmap/munmap teardown, or closing/syncing a written file
// silently converts a detectable corruption into a wrong result.
//
// Flagged discards: calling a must-check function as a bare statement,
// via defer/go, or assigning its error result to the blank identifier.
// Must-check callees:
//
//   - anything exported by internal/atomicio (the durability layer)
//   - any method on experiments.Journal (append/close/CRC framing)
//   - Close() error methods on in-module or *os.File receivers
//   - Sync() error methods on the same (fsync durability)
//   - calls through a `func() error` value (mmap/munmap cleanups)
//   - in-module functions whose name mentions CRC or checksum
//
// A genuinely ignorable discard (read-only close, cleanup on an
// already-failing path) is waived with `//md:errok <why>` on its line
// or the line above.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "discarded errors from the durability layer (atomicio, journal, CRC, close/sync on write paths) are hard failures",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "result dropped")
				}
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "error lost in defer")
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "error lost in goroutine")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags `_ = f()` / `v, _ := f()` where the blank
// slot is a must-check error.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sig, ok := pass.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if isErrorType(sig.Results().At(i).Type()) {
			checkDiscard(pass, call, "error assigned to _")
			return
		}
	}
}

// checkDiscard reports the call if its callee is must-check and it
// returns an error that the context discards.
func checkDiscard(pass *Pass, call *ast.CallExpr, how string) {
	desc, ok := mustCheckCallee(pass, call)
	if !ok {
		return
	}
	if pass.checkWaiver(pass.Pkg, call.Pos(), DirErrOK) {
		return
	}
	pass.Reportf(call.Pos(), "%s: %s (//md:errok <why> to waive)", desc, how)
}

// mustCheckCallee decides whether the call's error is load-bearing and
// returns a human description of the callee.
func mustCheckCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	info := pass.Pkg.Info
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	switch callee := calleeObject(info, call.Fun).(type) {
	case *types.Func:
		path := ""
		if callee.Pkg() != nil {
			path = callee.Pkg().Path()
		}
		name := funcDisplayName(callee)
		switch {
		case strings.HasSuffix(path, "internal/atomicio"):
			return "discarded error from atomicio." + callee.Name(), true
		case recvTypeName(callee) == "Journal":
			return "discarded error from Journal." + callee.Name(), true
		case (callee.Name() == "Close" || callee.Name() == "Sync") &&
			sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			writePathReceiver(pass, callee):
			return "discarded error from " + name, true
		case pass.Program.inModule(path) && mentionsCRC(callee.Name()):
			return "discarded error from " + name + " (checksum validation)", true
		}
	case *types.Var:
		// A call through a func value: the mmap/munmap and cleanup
		// closures are plain `func() error`s.
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			return "discarded error from cleanup func " + callee.Name() + "()", true
		}
	}
	return "", false
}

func returnsError(sig *types.Signature) bool {
	n := sig.Results().Len()
	return n > 0 && isErrorType(sig.Results().At(n-1).Type())
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() == types.Universe.Lookup("error")
}

// recvTypeName returns the name of a method's receiver type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// writePathReceiver limits the Close/Sync rule to receivers that can
// sit on a write path: in-module types (recordings, journals, sinks)
// and *os.File. Closing an http body or a stdlib reader stays out of
// scope.
func writePathReceiver(pass *Pass, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "os" || pass.Program.inModule(pkg.Path())
}

func mentionsCRC(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "crc") || strings.Contains(l, "checksum")
}
