package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
)

// TB is the subset of *testing.T the fixture runner needs; keeping it
// an interface avoids linking the testing package into cmd/mdlint.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe extracts the quoted expectations from a `// want "..." "..."`
// comment, mirroring x/tools' analysistest convention.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// RunFixture loads the fixture module rooted at dir, applies the
// analyzer to the packages matching patterns, and diffs the
// diagnostics against the fixtures' `// want "regexp"` comments: every
// diagnostic must match a want on its line, and every want must be
// matched by some diagnostic.
func RunFixture(t TB, a *Analyzer, dir string, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, prog, c)...)
				}
			}
		}
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	run := func(pkg *Package) {
		pass := &Pass{Analyzer: a, Pkg: pkg, Program: prog, report: collect}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	if a.ProgramLevel {
		run(nil)
	} else {
		for _, pkg := range prog.Targets {
			run(pkg)
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// parseWants reads the expectations out of one comment.
func parseWants(t TB, prog *Program, c *ast.Comment) []*expectation {
	t.Helper()
	text := c.Text
	const marker = "// want "
	if len(text) < len(marker) || text[:len(marker)] != marker {
		return nil
	}
	pos := prog.Fset.Position(c.Pos())
	var out []*expectation
	for _, q := range wantRe.FindAllString(text[len(marker):], -1) {
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no patterns: %s", pos.Filename, pos.Line, text)
	}
	return out
}
