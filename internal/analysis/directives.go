package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names. A directive is a comment of the form
//
//	//md:<name> [free-text justification]
//
// placed either on the line of the construct it governs, on the line
// immediately above it, or anywhere in a declaration's doc comment.
const (
	// DirHotPath marks a function as part of the warm per-cycle path:
	// hotpathalloc requires it (and everything it calls inside the
	// module) to perform no heap allocation.
	DirHotPath = "hotpath"
	// DirAllocOK exempts one statement (same line) or a whole function
	// (doc comment) from hotpathalloc; the justification is mandatory by
	// convention (amortized growth, cold slow path, ...). A function
	// exempted this way is also not walked into.
	DirAllocOK = "allocok"
	// DirOrderIndependent exempts a map iteration from determinism: the
	// author asserts the loop's observable effect does not depend on
	// iteration order.
	DirOrderIndependent = "orderindependent"
	// DirStatsStruct marks the struct whose exported counter fields
	// statsguard tracks.
	DirStatsStruct = "statsstruct"
	// DirStatsSink marks a serialization function: statsguard requires
	// every tracked counter field to be read on some path reachable from
	// a sink.
	DirStatsSink = "statssink"
)

const directivePrefix = "//md:"

// directiveIndex records, per file and line, which directives appear
// there.
type directiveIndex map[string]map[int]map[string]bool

func collectDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				set[name] = true
			}
		}
	}
	return idx
}

func (idx directiveIndex) hasAt(file string, line int, name string) bool {
	return idx[file][line][name]
}

// HasDirective reports whether node is governed by the named directive:
// the directive appears on the node's first line or the line above it.
func (pkg *Package) HasDirective(fset *token.FileSet, node ast.Node, name string) bool {
	pos := fset.Position(node.Pos())
	return pkg.directives.hasAt(pos.Filename, pos.Line, name) ||
		pkg.directives.hasAt(pos.Filename, pos.Line-1, name)
}

// FuncHasDirective reports whether the function declaration carries the
// directive, in its doc comment or adjacent to its first line.
func (pkg *Package) FuncHasDirective(fset *token.FileSet, decl *ast.FuncDecl, name string) bool {
	if pkg.HasDirective(fset, decl, name) {
		return true
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+name) {
				rest := strings.TrimPrefix(c.Text, directivePrefix+name)
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					return true
				}
			}
		}
	}
	return false
}

// TypeHasDirective reports whether the type declaration carries the
// directive: on the TypeSpec itself, the enclosing GenDecl's doc, or
// adjacent lines.
func typeHasDirective(fset *token.FileSet, pkg *Package, gd *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	if pkg.HasDirective(fset, spec, name) || pkg.HasDirective(fset, gd, name) {
		return true
	}
	for _, doc := range []*ast.CommentGroup{gd.Doc, spec.Doc, spec.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+name) {
				return true
			}
		}
	}
	return false
}
