package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names. A directive is a comment of the form
//
//	//md:<name> [argument / free-text justification]
//
// placed either on the line of the construct it governs, on the line
// immediately above it, or anywhere in a declaration's doc comment.
// When the same directive appears more than once on one line, the first
// occurrence wins (directives_test.go pins this).
const (
	// DirHotPath marks a function as part of the warm per-cycle path:
	// hotpathalloc requires it (and everything it calls inside the
	// module) to perform no heap allocation.
	DirHotPath = "hotpath"
	// DirAllocOK exempts one statement (same line) or a whole function
	// (doc comment) from hotpathalloc; the justification is mandatory by
	// convention (amortized growth, cold slow path, ...). A function
	// exempted this way is also not walked into.
	DirAllocOK = "allocok"
	// DirOrderIndependent exempts a map iteration from determinism: the
	// author asserts the loop's observable effect does not depend on
	// iteration order.
	DirOrderIndependent = "orderindependent"
	// DirStatsStruct marks the struct whose exported counter fields
	// statsguard tracks.
	DirStatsStruct = "statsstruct"
	// DirStatsSink marks a serialization function: statsguard requires
	// every tracked counter field to be read on some path reachable from
	// a sink.
	DirStatsSink = "statssink"

	// DirGuardedBy, on a struct field, names the sibling mutex field
	// that must be held to access it: guardedby flags accesses outside
	// the mutex (reads may hold RLock; writes need the exclusive Lock).
	DirGuardedBy = "guardedby"
	// DirLocked, on a function or method, asserts the caller already
	// holds the named mutex(es) of the receiver: the body is analyzed
	// with the lock held, and every call site must hold it.
	DirLocked = "locked"
	// DirNoLock waives one guardedby finding (same line or line above),
	// or — on a function's doc comment — the whole function (the escape
	// hatch for single-owner phases before a value is published). The
	// justification is mandatory.
	DirNoLock = "nolock"

	// DirSoA marks a structure-of-arrays struct: its slice fields are
	// the columns colparity tracks across lifecycle sites.
	DirSoA = "soa"
	// DirSoALifecycle, on a function, names an //md:soa struct whose
	// every column the function must touch (grow, reset-on-reuse,
	// snapshot, sanitizer mirror). Adding a column without updating a
	// lifecycle site becomes a compile-time-style finding instead of a
	// stale-state heisenbug.
	DirSoALifecycle = "soalifecycle"
	// DirColOK, on a lifecycle function's doc comment, exempts one named
	// column from the parity requirement at that site, with a mandatory
	// reason ("//md:colok <field> <why>").
	DirColOK = "colok"

	// DirCtxOK waives one ctxflow finding (same line or line above): a
	// blocking channel operation whose progress is guaranteed by
	// something other than a context (a buffered-by-contract channel, a
	// closing channel). The justification is mandatory.
	DirCtxOK = "ctxok"
	// DirErrOK waives one errdiscard finding (same line or line above):
	// the author asserts the discarded error is genuinely ignorable
	// (read-only close, cleanup on an already-failing path). The
	// justification is mandatory.
	DirErrOK = "errok"
)

const directivePrefix = "//md:"

// directiveIndex records, per file and line, which directives appear
// there and their raw argument text (the rest of the comment, trimmed).
// occupied marks lines carrying non-comment code: a trailing directive
// (one sharing its line with code) binds only to that line, never to
// the construct on the line below — otherwise `a int //md:guardedby mu`
// would silently annotate the next field too.
type directiveIndex struct {
	at       map[string]map[int]map[string]string
	occupied map[string]map[int]bool
}

func collectDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{
		at:       map[string]map[int]map[string]string{},
		occupied: map[string]map[int]bool{},
	}
	for _, f := range files {
		// Mark every line where an AST node (i.e. code, not a comment)
		// starts or ends.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil:
				return true
			case *ast.Comment, *ast.CommentGroup:
				return false // doc comments are not code lines
			}
			from := fset.Position(n.Pos())
			to := fset.Position(n.End())
			occ := idx.occupied[from.Filename]
			if occ == nil {
				occ = map[int]bool{}
				idx.occupied[from.Filename] = occ
			}
			occ[from.Line] = true
			occ[to.Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.at[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]string{}
					idx.at[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]string{}
					lines[pos.Line] = set
				}
				if _, dup := set[name]; !dup { // first occurrence wins
					set[name] = arg
				}
			}
		}
	}
	return idx
}

// parseDirective splits one comment into a directive name and its
// argument text. Only //md:-prefixed comments parse; a bare "//md:"
// (empty name) does not.
func parseDirective(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return "", "", false
	}
	return name, arg, true
}

func (idx directiveIndex) hasAt(file string, line int, name string) bool {
	_, ok := idx.at[file][line][name]
	return ok
}

// argAt returns the argument text of the named directive at file:line.
func (idx directiveIndex) argAt(file string, line int, name string) (string, bool) {
	arg, ok := idx.at[file][line][name]
	return arg, ok
}

// argFor resolves the directive governing file:line: on the line
// itself, or on the line above when that line holds nothing but
// comments (a trailing directive binds only to its own line).
func (idx directiveIndex) argFor(file string, line int, name string) (string, bool) {
	if arg, ok := idx.argAt(file, line, name); ok {
		return arg, true
	}
	if idx.occupied[file][line-1] {
		return "", false
	}
	return idx.argAt(file, line-1, name)
}

func (idx directiveIndex) hasFor(file string, line int, name string) bool {
	_, ok := idx.argFor(file, line, name)
	return ok
}

// waiverAt looks the named waiver directive up at pos or the
// comment-only line above it. found reports the waiver's presence;
// reason is its justification text (waivers with an empty reason are
// still waivers — the analyzers report the missing justification as its
// own finding).
func (idx directiveIndex) waiverAt(fset *token.FileSet, pos token.Pos, name string) (found bool, reason string, at token.Position) {
	p := fset.Position(pos)
	if arg, ok := idx.argAt(p.Filename, p.Line, name); ok {
		return true, arg, token.Position{Filename: p.Filename, Line: p.Line, Column: 1}
	}
	if !idx.occupied[p.Filename][p.Line-1] {
		if arg, ok := idx.argAt(p.Filename, p.Line-1, name); ok {
			return true, arg, token.Position{Filename: p.Filename, Line: p.Line - 1, Column: 1}
		}
	}
	return false, "", at
}

// checkWaiver applies a site waiver: it reports whether the finding at
// pos is waived, and emits a "waiver without justification" diagnostic
// at the waived site when the waiver carries no reason (the audit-trail
// contract: every waiver must say why).
func (pass *Pass) checkWaiver(pkg *Package, pos token.Pos, name string) bool {
	found, reason, _ := pkg.directives.waiverAt(pass.Program.Fset, pos, name)
	if !found {
		return false
	}
	if reason == "" {
		pass.Reportf(pos, "//md:%s waiver without justification: state why the finding is acceptable", name)
	}
	return true
}

// HasDirective reports whether node is governed by the named directive:
// the directive appears on the node's first line, or alone on the line
// above it.
func (pkg *Package) HasDirective(fset *token.FileSet, node ast.Node, name string) bool {
	pos := fset.Position(node.Pos())
	return pkg.directives.hasFor(pos.Filename, pos.Line, name)
}

// DirectiveArg returns the argument of the named directive governing
// node (its first line, or alone on the line above).
func (pkg *Package) DirectiveArg(fset *token.FileSet, node ast.Node, name string) (string, bool) {
	pos := fset.Position(node.Pos())
	return pkg.directives.argFor(pos.Filename, pos.Line, name)
}

// FuncHasDirective reports whether the function declaration carries the
// directive, in its doc comment or adjacent to its first line.
func (pkg *Package) FuncHasDirective(fset *token.FileSet, decl *ast.FuncDecl, name string) bool {
	_, ok := pkg.FuncDirectiveArg(fset, decl, name)
	return ok
}

// FuncDirectiveArg returns the argument of the directive carried by the
// function declaration, in its doc comment or adjacent to its first
// line.
func (pkg *Package) FuncDirectiveArg(fset *token.FileSet, decl *ast.FuncDecl, name string) (string, bool) {
	if arg, ok := pkg.DirectiveArg(fset, decl, name); ok {
		return arg, ok
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if n, arg, ok := parseDirective(c.Text); ok && n == name {
				return arg, true
			}
		}
	}
	return "", false
}

// FuncDirectiveArgs returns the arguments of every occurrence of the
// directive in the function's doc comment and adjacent lines (for
// directives that may repeat, like //md:colok).
func (pkg *Package) FuncDirectiveArgs(fset *token.FileSet, decl *ast.FuncDecl, name string) []string {
	var args []string
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if n, arg, ok := parseDirective(c.Text); ok && n == name {
				args = append(args, arg)
			}
		}
	}
	// An adjacent-line directive not already inside the doc comment.
	if decl.Doc == nil {
		if arg, ok := pkg.DirectiveArg(fset, decl, name); ok {
			args = append(args, arg)
		}
	}
	return args
}

// TypeHasDirective reports whether the type declaration carries the
// directive: on the TypeSpec itself, the enclosing GenDecl's doc, or
// adjacent lines.
func typeHasDirective(fset *token.FileSet, pkg *Package, gd *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	if pkg.HasDirective(fset, spec, name) || pkg.HasDirective(fset, gd, name) {
		return true
	}
	for _, doc := range []*ast.CommentGroup{gd.Doc, spec.Doc, spec.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if n, _, ok := parseDirective(c.Text); ok && n == name {
				return true
			}
		}
	}
	return false
}
