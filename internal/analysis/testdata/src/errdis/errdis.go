// Package errdis exercises the errdiscard analyzer: discarded errors
// from the durability layer (atomicio, Journal methods, close/sync on
// write paths, cleanup func values, CRC validation) in every discard
// position, plus errok waivers and should-not-flag shapes.
package errdis

import (
	"fmt"
	"io"

	"fixtures/errdis/journal"
	"fixtures/internal/atomicio"
)

// sink is an in-module write-path type: Close/Sync errors on it are
// load-bearing.
type sink struct{}

func (s *sink) Close() error { return nil }
func (s *sink) Sync() error  { return nil }
func (s *sink) Len() int     { return 0 }

// checkCRC is an in-module checksum validator.
func checkCRC(data []byte) error {
	_ = data
	return nil
}

func bareAtomicio() {
	atomicio.WriteFile("x", nil) // want "discarded error from atomicio.WriteFile: result dropped"
}

func blankAtomicio() {
	_ = atomicio.SyncDir(".") // want "discarded error from atomicio.SyncDir: error assigned to _"
}

func blankMulti() {
	n, _ := atomicio.Emit("x") // want "discarded error from atomicio.Emit: error assigned to _"
	_ = n
}

func journalAppend(j *journal.Journal) {
	go j.Append(nil) // want "discarded error from Journal.Append: error lost in goroutine"
}

func journalClose(j *journal.Journal) {
	defer j.Close() // want "discarded error from Journal.Close: error lost in defer"
}

func sinkClose(s *sink) {
	defer s.Close() // want "discarded error from sink.Close: error lost in defer"
}

func sinkSync(s *sink) {
	s.Sync() // want "discarded error from sink.Sync: result dropped"
}

func crcDropped(data []byte) {
	checkCRC(data) // want "discarded error from checkCRC \\(checksum validation\\): result dropped"
}

func cleanupValue() {
	unmap := func() error { return nil }
	defer unmap() // want "discarded error from cleanup func unmap\\(\\): error lost in defer"
}

func handled() error {
	if err := atomicio.WriteFile("x", nil); err != nil { // ok: error checked
		return fmt.Errorf("write: %w", err)
	}
	return checkCRC(nil) // ok: error returned to the caller
}

func nonErrorResult(s *sink) {
	s.Len() // ok: no error result to discard
}

func stdlibReader(rc io.ReadCloser) {
	defer rc.Close() // ok: interface receiver outside the module and os
}

func waived(s *sink) {
	s.Close() //md:errok read-only handle; nothing buffered to flush
}

func waivedNoReason(s *sink) {
	//md:errok
	s.Close() // want "//md:errok waiver without justification"
}
