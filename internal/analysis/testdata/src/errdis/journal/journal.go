// Package journal supplies a Journal type so the errdiscard fixture
// can exercise the any-method-on-Journal rule.
package journal

// Journal mimics the real append-only journal.
type Journal struct{}

// Append mimics a framed record append.
func (j *Journal) Append(rec []byte) error {
	_ = rec
	return nil
}

// Close mimics the final flush.
func (j *Journal) Close() error { return nil }
