// Package ctxflow exercises the ctxflow analyzer: root contexts minted
// below handlers, blocking channel ops with and without a ctx escape,
// range-over-channel, and ctxok waivers.
package ctxflow

import (
	"context"
	"time"
)

func mintsRoot() context.Context {
	return context.Background() // want "context.Background\\(\\) in request-scoped code"
}

func mintsTODO() context.Context {
	return context.TODO() // want "context.TODO\\(\\) in request-scoped code"
}

func main() {
	_ = context.Background() // ok: the process root mints the root context
}

func sleeps() {
	time.Sleep(time.Second) // want "time.Sleep blocks without a context"
}

func bareSend(ch chan int) {
	ch <- 1 // want "blocking channel send without a ctx.Done\\(\\) select"
}

func bareRecv(ch chan int) int {
	return <-ch // want "blocking channel receive without a ctx.Done\\(\\) select"
}

func selectWithCtx(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1: // ok: the ctx case makes this cancellable
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func selectWithDefault(ch chan int) bool {
	select {
	case ch <- 1: // ok: default makes this non-blocking
		return true
	default:
		return false
	}
}

func selectWithoutEscape(a, b chan int) int {
	select {
	case v := <-a: // want "select has no ctx.Done\\(\\) or default case"
		return v
	case v := <-b: // want "select has no ctx.Done\\(\\) or default case"
		return v
	}
}

func waitForCancel(ctx context.Context) {
	<-ctx.Done() // ok: waiting on cancellation is ctx-aware by definition
}

func drains(ch chan int) int {
	total := 0
	for v := range ch { // ok: the producer closing the channel ends the loop
		total += v
	}
	return total
}

func waived(ch chan int) {
	ch <- 1 //md:ctxok buffered by contract: the caller sizes ch to the result count
}

func waivedNoReason(ch chan int) {
	//md:ctxok
	ch <- 1 // want "//md:ctxok waiver without justification"
}

func sendInClauseBody(ctx context.Context, ch, out chan int) {
	select {
	case v := <-ch: // ok
		out <- v // want "blocking channel send without a ctx.Done\\(\\) select"
	case <-ctx.Done():
	}
}
