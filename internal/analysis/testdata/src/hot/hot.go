// Package hot exercises the hotpathalloc analyzer: allocation sites on
// the annotated hot path, the transitive call-graph walk (including
// through an interface dispatch), and both forms of //md:allocok
// exemption.
package hot

import "fmt"

type filter struct {
	buf []int
	m   map[int]int
}

//md:hotpath
func (f *filter) Step(x int) int {
	s := []int{x}            // want "slice literal allocates"
	f.buf = append(f.buf, x) // want "append may grow its backing array"
	f.m[x] = x               // want "map assignment may allocate"
	f.helper(x)
	f.cold(x)
	return s[0]
}

// helper is not annotated itself: it is reachable from Step, so the
// walk must carry the finding here and name the root.
func (f *filter) helper(x int) {
	p := new(int) // want "new allocates"
	*p = x
}

//md:allocok cold slow path, runs once per simulation not per cycle
func (f *filter) cold(x int) {
	f.buf = make([]int, x) // exempt: the whole function is //md:allocok
}

type sink interface{ put(int) }

type store struct{ vals []int }

// put is reached through the interface dispatch in Box: the walk
// resolves in-module implementations of sink.
func (s *store) put(x int) {
	s.vals = append(s.vals, x) // want "append may grow its backing array"
}

//md:hotpath
func Box(s sink, x int) {
	var v any = x // want "conversion of int to interface"
	_ = v
	s.put(x)
}

//md:hotpath
func Closure(x int) func() int {
	return func() int { return x } // want "function literal .closure. allocates"
}

//md:hotpath
func Deferred(f *filter) {
	defer release(f) // want "defer on the hot path"
}

func release(f *filter) {}

//md:hotpath
func Concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//md:hotpath
func Print(x int) {
	fmt.Println(x) // want "call into fmt.Println allocates" "conversion of int to interface"
}

//md:hotpath
func Amortized(buf []int, x int) []int {
	buf = append(buf, x) //md:allocok amortized growth, measured in the steady-state pin test
	return buf
}

// ColdAlloc is not on any hot path: nothing here may be reported.
func ColdAlloc(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%d", i))
	}
	return out
}
