// Package colpar exercises the colparity analyzer: lifecycle sites
// that miss columns, colok waivers (with and without reasons), and
// annotation validation.
package colpar

//md:soa
type cols struct {
	seq   []int64
	flags []uint32
	vals  []int64
	n     int // scalar, not a column
}

//md:soa
type empty struct { // want "//md:soa struct empty has no slice columns"
	n int
}

// grow touches every column.
//
//md:soalifecycle cols
func (c *cols) grow(w int) {
	c.seq = make([]int64, w)
	c.flags = make([]uint32, w)
	c.vals = make([]int64, w)
}

// reset forgets vals.
//
//md:soalifecycle cols
func (c *cols) reset() { // want "lifecycle site reset does not touch cols column \"vals\""
	for i := range c.seq {
		c.seq[i] = -1
	}
	for i := range c.flags {
		c.flags[i] = 0
	}
}

// snapshot deliberately skips flags, with a reason.
//
//md:soalifecycle cols
//md:colok flags transient scheduling state; a snapshot never carries it
func (c *cols) snapshot() ([]int64, []int64) {
	return c.seq, c.vals
}

// badWaivers exercises colok validation.
//
//md:soalifecycle cols
//md:colok vals
//md:colok nosuch never existed
func (c *cols) badWaivers() { // want "//md:colok vals waiver without justification" "cols has no column named \"nosuch\""
	_ = c.seq
	_ = c.flags
}

//md:soalifecycle nosuch
func orphanSite() { // want "no //md:soa struct named \"nosuch\""
}
