// Package atomicio mirrors the real durability layer's shape so the
// errdiscard fixture can exercise the internal/atomicio path-suffix
// rule (the fixture module path "fixtures/internal/atomicio" matches).
package atomicio

// WriteFile stands in for the real atomic write.
func WriteFile(name string, data []byte) error {
	_ = name
	_ = data
	return nil
}

// SyncDir stands in for the real directory fsync.
func SyncDir(dir string) error {
	_ = dir
	return nil
}

// Emit returns a count and an error, for blank-assign cases.
func Emit(name string) (int, error) {
	return len(name), nil
}
