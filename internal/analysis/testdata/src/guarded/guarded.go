// Package guarded exercises the guardedby analyzer: flagged unlocked
// accesses, RLock-for-read, TryLock branches, defer-unlock, locked-call
// flow, fresh-local construction, and nolock waivers.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //md:guardedby mu

	rw     sync.RWMutex
	shared []int //md:guardedby rw

	free int // unguarded on purpose
}

type badAnno struct {
	//md:guardedby
	a int // want "//md:guardedby needs the name of the sibling mutex field"
	//md:guardedby nosuch
	b  int // want "no sibling sync.Mutex/RWMutex field named \"nosuch\""
	mu sync.Mutex
}

func (c *counter) incLocked() {
	c.mu.Lock()
	c.n++ // ok: exclusive lock held
	c.mu.Unlock()
}

func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: defer holds the lock to the end
	c.free++
}

func (c *counter) incUnlocked() {
	c.n++ // want "write to c.n requires c.mu held exclusively"
}

func (c *counter) readAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "access to c.n requires c.mu held"
}

func (c *counter) readUnderRLock() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.shared[0] // ok: reads are legal under RLock
}

func (c *counter) writeUnderRLock() {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.shared[0] = 1 // want "write to c.shared guarded by c.rw, but only the read lock is held"
}

func (c *counter) writeUnderLock() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.shared = append(c.shared, 1) // ok
}

func (c *counter) tryLock() {
	if c.mu.TryLock() {
		c.n++ // ok: TryLock succeeded in this branch
		c.mu.Unlock()
	}
	c.n++ // want "write to c.n requires c.mu held exclusively"
}

func (c *counter) branchScope() {
	if c.free > 0 {
		c.mu.Lock()
		c.n++ // ok
		c.mu.Unlock()
	}
	c.n-- // want "write to c.n requires c.mu held exclusively"
}

func (c *counter) closureEscapes() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want "write to c.n requires c.mu held exclusively"
	}
}

func (c *counter) closureLocksItself() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++ // ok: the closure takes the lock on its own schedule
	}
}

// nLocked reads n for callers that already hold the lock.
//
//md:locked mu
func (c *counter) nLocked() int {
	return c.n // ok: //md:locked means the caller holds c.mu
}

func (c *counter) callsLockedCorrectly() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nLocked() // ok
}

func (c *counter) callsLockedWithout() int {
	return c.nLocked() // want "call to counter.nLocked requires c.mu held"
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // ok: fresh local, single-owner construction phase
	return c
}

func (c *counter) waived() {
	c.n++ //md:nolock snapshot read raced deliberately; documented in caller
}

func (c *counter) waivedNoReason() {
	//md:nolock
	c.n++ // want "//md:nolock waiver without justification"
}

// reset rebuilds state before the counter is published anywhere.
//
//md:nolock single-owner before publish
func (c *counter) reset() {
	c.n = 0 // ok: whole function waived
	c.shared = nil
}
