package det

import "math/rand"

// Checksum folds the map with a commutative, associative operation, so
// visit order cannot change the result: the annotation keeps the
// analyzer quiet and records why.
func Checksum(m map[string]uint64) uint64 {
	var sum uint64
	//md:orderindependent addition is commutative; the fold is order-blind
	for _, v := range m {
		sum += v
	}
	return sum
}

// SeededDraw uses an explicitly seeded source, which is reproducible
// and therefore allowed.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// SliceWalk ranges over a slice, which is ordered; no finding.
func SliceWalk(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
