// Package det exercises the determinism analyzer: every construct the
// deterministic simulator packages must not contain.
package det

import (
	"math/rand"
	"time"
)

// Sum's observable result depends on nothing, but the loop is not
// annotated, so the analyzer must flag it.
func Sum(m map[int]int) int {
	total := 0
	for k, v := range m { // want "iteration over map"
		total += k + v
	}
	return total
}

func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func Draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global random source"
}

func Spawn(ch chan int) {
	go send(ch) // want "goroutine spawned in a deterministic package"
}

func send(ch chan int) { ch <- 1 }
