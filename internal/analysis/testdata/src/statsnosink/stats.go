// Package statsnosink exercises statsguard's no-sink diagnostic: a
// tracked struct with no serialization function at all.
package statsnosink

//md:statsstruct
type Counters struct { // want "no //md:statssink function exists"
	Hits   int64
	Misses int64
}
