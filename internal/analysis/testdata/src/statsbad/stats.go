// Package statsbad exercises the statsguard analyzer: one counter is
// covered directly by the sink, one transitively through a derived
// metric, and one never reaches the serialization path.
package statsbad

//md:statsstruct
type Run struct {
	Cycles    int64
	Committed int64
	Squashes  int64   // want "counter Run.Squashes never reaches a //md:statssink serialization path"
	name      string  // unexported: not tracked
	Rate      float64 // non-integer: not tracked
}

//md:statssink
func Render(r *Run) []float64 {
	return []float64{float64(r.Cycles), IPC(r)}
}

// IPC is a derived metric: the sink calls it, so the fields it reads
// count as covered.
func IPC(r *Run) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}
