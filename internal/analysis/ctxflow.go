package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RequestScopedPackages lists the module-relative package paths whose
// code runs on behalf of a request or an experiment run and must
// therefore thread context.Context: no minting a fresh root context
// below the handler, and no blocking channel operation that cannot be
// cancelled.
var RequestScopedPackages = []string{
	"internal/server",
	"internal/experiments",
	"internal/fleet",
}

// CtxFlow enforces context discipline in request-scoped packages
// (RequestScopedPackages): handlers and runners must thread the
// caller's context instead of minting context.Background()/TODO(), and
// a blocking channel operation must live in a select with a
// ctx.Done() case or a default (receiving from ctx.Done() itself, or
// ranging over a channel that the producer closes, is fine).
//
// A channel op whose progress is guaranteed some other way — a
// buffered-by-contract channel, a closing channel — is waived with
// `//md:ctxok <why>` on its line or the line above.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "request-scoped code must thread context.Context; blocking channel ops need a ctx or closing-channel escape",
	Packages: RequestScopedPackages,
	Run:      runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		checkCtxFile(pass, pkg, file)
	}
	return nil
}

func checkCtxFile(pass *Pass, pkg *Package, file *ast.File) {
	// First pass: map every channel op that is a select communication to
	// its select, and classify each select (a ctx.Done() case or a
	// default clause makes its communications cancellable).
	selectOf := map[ast.Node]*ast.SelectStmt{}
	cancellable := map[*ast.SelectStmt]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil { // default:
				cancellable[sel] = true
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					selectOf[m] = sel
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						selectOf[m] = sel
						if isCtxDoneCall(pkg, m.X) {
							cancellable[sel] = true
						}
					}
				}
				return true
			})
		}
		return true
	})

	// Second pass: flag root contexts and uncancellable channel ops.
	var funcStack []string
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			funcStack = append(funcStack, n.Name.Name) // never popped: one decl at a time at file top level
		case *ast.CallExpr:
			checkRootContext(pass, pkg, n, funcStack)
		case *ast.SendStmt:
			reportChanOp(pass, pkg, n.Pos(), "send", selectOf[n], cancellable)
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if isCtxDoneCall(pkg, n.X) {
				return true // <-ctx.Done() is the cancellation wait itself
			}
			reportChanOp(pass, pkg, n.Pos(), "receive", selectOf[n], cancellable)
		}
		return true
	})
}

func reportChanOp(pass *Pass, pkg *Package, pos token.Pos, op string, sel *ast.SelectStmt, cancellable map[*ast.SelectStmt]bool) {
	if sel != nil && cancellable[sel] {
		return
	}
	if pass.checkWaiver(pkg, pos, DirCtxOK) {
		return
	}
	if sel != nil {
		pass.Reportf(pos, "select has no ctx.Done() or default case: blocking %s cannot be cancelled (//md:ctxok <why> to waive)", op)
		return
	}
	pass.Reportf(pos, "blocking channel %s without a ctx.Done() select or closing-channel escape (//md:ctxok <why> to waive)", op)
}

// checkRootContext flags context.Background()/context.TODO() and
// time.Sleep below a handler: request-scoped code must use the caller's
// context (and ctx-aware waits).
func checkRootContext(pass *Pass, pkg *Package, call *ast.CallExpr, funcStack []string) {
	fn, ok := calleeObject(pkg.Info, call.Fun).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	var msg string
	switch {
	case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
		// main/init are the process root: minting the root context there
		// is the whole point.
		if len(funcStack) > 0 {
			if top := funcStack[len(funcStack)-1]; top == "main" || top == "init" {
				return
			}
		}
		msg = "context." + fn.Name() + "() in request-scoped code: thread the caller's ctx instead"
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		msg = "time.Sleep blocks without a context: use a timer in a select with ctx.Done()"
	default:
		return
	}
	if pass.checkWaiver(pkg, call.Pos(), DirCtxOK) {
		return
	}
	pass.Reportf(call.Pos(), "%s (//md:ctxok <why> to waive)", msg)
}

// isCtxDoneCall recognizes `<something context.Context>.Done()`.
func isCtxDoneCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pkg.Info.TypeOf(sel.X)
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
