package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked source package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// directives indexes //md: comments by file and line (directives.go).
	directives directiveIndex
}

// A Program is the closed set of source packages one mdlint run
// analyzes: the packages matched by the load patterns (Targets) plus
// every in-module dependency, all type-checked from source against gc
// export data. Standard-library dependencies are imported from export
// data only.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Packages holds all source-loaded packages in dependency order
	// (dependencies before dependents).
	Packages []*Package
	// Targets are the packages the load patterns matched.
	Targets []*Package
	byPath  map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e",
		"-json=ImportPath,Export,GoFiles,Dir,Standard,Module,Error,DepOnly"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadProgram loads the packages matching patterns (relative to dir)
// and all their dependencies. Dependencies' export data comes from
// `go list -export` (which compiles them into the build cache, fully
// offline); matched packages and in-module dependencies are then
// parsed and type-checked from source so analyzers can see their
// bodies.
func LoadProgram(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}
	exports := map[string]string{}
	var source []listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard {
			continue
		}
		if prog.ModulePath == "" && lp.Module != nil && !lp.DepOnly {
			prog.ModulePath = lp.Module.Path
		}
		source = append(source, lp)
	}
	if prog.ModulePath == "" && len(source) > 0 && source[len(source)-1].Module != nil {
		prog.ModulePath = source[len(source)-1].Module.Path
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q (does it compile?)", path)
		}
		return os.Open(f)
	}
	// In-module imports resolve to the already source-type-checked
	// package, so type and object identity hold across the whole
	// program (interface-implementation and field matching rely on
	// this); everything else comes from gc export data.
	imp := &progImporter{
		prog:     prog,
		fallback: importer.ForCompiler(prog.Fset, "gc", lookup),
	}

	// go list -deps emits dependencies before dependents, so a single
	// pass type-checks every package after its imports.
	for _, lp := range source {
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		var typeErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if typeErr == nil {
					typeErr = err
				}
			},
		}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if typeErr != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErr)
		}
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkg.Types = tpkg
		pkg.directives = collectDirectives(prog.Fset, pkg.Files)
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.Path] = pkg
		if !lp.DepOnly {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	if len(prog.Targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v under %s", patterns, dir)
	}
	return prog, nil
}

// progImporter serves in-module imports from the source-type-checked
// packages (loaded deps-first, so they are always ready) and defers to
// export data otherwise.
type progImporter struct {
	prog     *Program
	fallback types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if p := pi.prog.byPath[path]; p != nil {
		return p.Types, nil
	}
	return pi.fallback.Import(path)
}

// inModule reports whether an import path belongs to the analyzed
// module.
func (p *Program) inModule(path string) bool {
	if p.ModulePath == "" {
		return false
	}
	return path == p.ModulePath ||
		(len(path) > len(p.ModulePath) && path[:len(p.ModulePath)] == p.ModulePath && path[len(p.ModulePath)] == '/')
}
