package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc guards the zero-allocation warm cycle: every function
// annotated //md:hotpath — and everything it calls inside the module,
// found by a static call-graph walk that also descends through
// interface method calls into their in-module implementations — must
// not allocate.
//
// Flagged constructs: slice/map composite literals and address-taken
// composites, make/new/append, closures, defer/go, channel operations,
// map writes, string concatenation and allocating string conversions,
// conversions of non-pointer values to interfaces, calls into
// allocating standard-library packages (fmt, strings, sort, ...), and
// calls through function values (which the walk cannot follow).
//
// Individual amortized or cold sites are exempted with //md:allocok on
// the same line (or the line above); a whole function annotated
// //md:allocok is exempt and not walked into — the escape hatch for
// lazy-materialization boundaries like emu.Trace.At.
var HotPathAlloc = &Analyzer{
	Name:         "hotpathalloc",
	Doc:          "functions reachable from //md:hotpath roots must not heap-allocate",
	ProgramLevel: true,
	Run:          runHotPathAlloc,
}

// allocPackages are standard-library packages whose exported functions
// allocate (or may allocate) on essentially every call.
var allocPackages = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"sort": true, "log": true, "os": true, "io": true, "bufio": true,
	"bytes": true, "reflect": true, "regexp": true, "context": true,
}

type hpWork struct {
	pkg  *Package
	decl *ast.FuncDecl
	root string // the //md:hotpath root this function is reachable from
}

type hpChecker struct {
	pass    *Pass
	prog    *Program
	decls   map[types.Object]hpWork // every module function with a body
	visited map[types.Object]bool
	queue   []hpWork
}

func runHotPathAlloc(pass *Pass) error {
	c := &hpChecker{
		pass:    pass,
		prog:    pass.Program,
		decls:   map[types.Object]hpWork{},
		visited: map[types.Object]bool{},
	}
	// Index every function declaration in the program, then seed the
	// walk with the annotated roots.
	for _, pkg := range c.prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				c.decls[obj] = hpWork{pkg: pkg, decl: fd}
			}
		}
	}
	for obj, w := range c.decls {
		if w.pkg.FuncHasDirective(c.prog.Fset, w.decl, DirHotPath) {
			c.enqueue(obj, funcDisplayName(obj.(*types.Func)))
		}
	}
	for len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		c.checkFunc(w)
	}
	return nil
}

func (c *hpChecker) enqueue(obj types.Object, root string) {
	if c.visited[obj] {
		return
	}
	w, ok := c.decls[obj]
	if !ok {
		return // no body in this build (e.g. behind a build tag)
	}
	c.visited[obj] = true
	w.root = root
	c.queue = append(c.queue, w)
}

// funcDisplayName renders "Pipeline.step" or "completeStore".
func funcDisplayName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// reportf emits a finding unless the site carries //md:allocok.
func (c *hpChecker) reportf(w hpWork, pos token.Pos, format string, args ...any) {
	p := c.prog.Fset.Position(pos)
	if w.pkg.directives.hasFor(p.Filename, p.Line, DirAllocOK) {
		return
	}
	args = append(args, w.root)
	c.pass.Reportf(pos, format+" (hot path via %s)", args...)
}

// checkFunc reports allocation sites in one hot function and enqueues
// its in-module callees.
func (c *hpChecker) checkFunc(w hpWork) {
	if w.pkg.FuncHasDirective(c.prog.Fset, w.decl, DirAllocOK) {
		return // exempt, and the walk stops here
	}
	info := w.pkg.Info
	// nodeStack tracks ancestry so method values can be told apart from
	// method calls and returns can be matched to their function.
	var nodeStack []ast.Node
	var sigStack []*types.Signature
	if sig, ok := info.Defs[w.decl.Name].Type().(*types.Signature); ok {
		sigStack = append(sigStack, sig)
	}
	ast.Inspect(w.decl.Body, func(n ast.Node) bool {
		if n == nil {
			top := nodeStack[len(nodeStack)-1]
			nodeStack = nodeStack[:len(nodeStack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				sigStack = sigStack[:len(sigStack)-1]
			}
			return true
		}
		nodeStack = append(nodeStack, n)
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				c.reportf(w, n.Pos(), "slice literal allocates")
			case *types.Map:
				c.reportf(w, n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			switch n.Op {
			case token.AND:
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.reportf(w, n.Pos(), "address-taken composite literal escapes to the heap")
				}
			case token.ARROW:
				c.reportf(w, n.Pos(), "channel receive on the hot path")
			}
		case *ast.FuncLit:
			c.reportf(w, n.Pos(), "function literal (closure) allocates")
			if sig, ok := info.TypeOf(n).(*types.Signature); ok {
				sigStack = append(sigStack, sig)
			} else {
				sigStack = append(sigStack, nil)
			}
		case *ast.DeferStmt:
			c.reportf(w, n.Pos(), "defer on the hot path")
		case *ast.GoStmt:
			c.reportf(w, n.Pos(), "goroutine spawn on the hot path")
		case *ast.SendStmt:
			c.reportf(w, n.Pos(), "channel send on the hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					c.reportf(w, n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkMapWrite(w, lhs)
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					c.convCheck(w, info.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.IncDecStmt:
			c.checkMapWrite(w, n.X)
		case *ast.ValueSpec:
			if n.Type != nil {
				for _, v := range n.Values {
					c.convCheck(w, info.TypeOf(n.Type), v)
				}
			}
		case *ast.ReturnStmt:
			sig := sigStack[len(sigStack)-1]
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, r := range n.Results {
					c.convCheck(w, sig.Results().At(i).Type(), r)
				}
			}
		case *ast.CallExpr:
			c.checkCall(w, n)
		case *ast.SelectorExpr:
			// A method value not in call position allocates its bound
			// receiver.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				isCallee := false
				if len(nodeStack) >= 2 {
					if call, ok := nodeStack[len(nodeStack)-2].(*ast.CallExpr); ok && call.Fun == n {
						isCallee = true
					}
				}
				if !isCallee {
					c.reportf(w, n.Pos(), "method value allocates a bound-method closure")
				}
			}
		}
		return true
	})
}

// checkMapWrite flags assignments through a map index.
func (c *hpChecker) checkMapWrite(w hpWork, lhs ast.Expr) {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := w.pkg.Info.TypeOf(idx.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			c.reportf(w, lhs.Pos(), "map assignment may allocate (bucket growth)")
		}
	}
}

// pointerShaped reports whether values of t fit an interface word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// convCheck flags an implicit conversion of e into an interface-typed
// slot when the operand would be boxed on the heap.
func (c *hpChecker) convCheck(w hpWork, target types.Type, e ast.Expr) {
	if target == nil || e == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	src := w.pkg.Info.TypeOf(e)
	if src == nil {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return
	}
	if pointerShaped(src) {
		return
	}
	c.reportf(w, e.Pos(), "conversion of %s to interface %s allocates",
		types.TypeString(src, types.RelativeTo(w.pkg.Types)),
		types.TypeString(target, types.RelativeTo(w.pkg.Types)))
}

// checkCall classifies one call: explicit conversion, builtin,
// static/interface/dynamic call — reporting allocations and feeding the
// call-graph walk.
func (c *hpChecker) checkCall(w hpWork, call *ast.CallExpr) {
	info := w.pkg.Info
	// Explicit conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		tgt := tv.Type
		if len(call.Args) == 1 {
			c.checkConversion(w, tgt, call.Args[0])
		}
		return
	}
	callee := calleeObject(info, call.Fun)
	if b, ok := callee.(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			c.reportf(w, call.Pos(), "append may grow its backing array")
		case "make":
			c.reportf(w, call.Pos(), "make allocates")
		case "new":
			c.reportf(w, call.Pos(), "new allocates")
		}
		return
	}
	// Implicit interface conversions at the call boundary.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && call.Ellipsis == token.NoPos {
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			case i < np:
				pt = sig.Params().At(i).Type()
			}
			c.convCheck(w, pt, arg)
		}
	}
	fn, ok := callee.(*types.Func)
	if !ok {
		if callee == nil || !isDeadEnd(callee) {
			c.reportf(w, call.Pos(), "call through a function value: the hot-path walk cannot verify it")
		}
		return
	}
	if fn.Pkg() == nil {
		return // universe scope (error.Error via embedding, etc.)
	}
	path := fn.Pkg().Path()
	switch {
	case c.prog.inModule(path):
		if _, ok := c.decls[fn]; ok {
			c.enqueue(fn, w.root)
			return
		}
		// No body: an interface method. Walk into every in-module
		// implementation.
		c.resolveInterfaceCall(w, call, fn)
	case allocPackages[path]:
		c.reportf(w, call.Pos(), "call into %s.%s allocates", fn.Pkg().Name(), fn.Name())
	default:
		// Other standard-library calls (math, math/bits, sync, ...)
		// are assumed non-allocating.
	}
}

// isDeadEnd reports objects whose calls we deliberately ignore (nil
// funcs can't happen; vars of func type are flagged by the caller).
func isDeadEnd(obj types.Object) bool {
	_, isVar := obj.(*types.Var)
	return !isVar
}

// checkConversion flags explicit conversions that allocate: boxing into
// an interface, string<->slice copies, and integer-to-string.
func (c *hpChecker) checkConversion(w hpWork, tgt types.Type, arg ast.Expr) {
	src := w.pkg.Info.TypeOf(arg)
	if src == nil {
		return
	}
	tb, tIsBasic := tgt.Underlying().(*types.Basic)
	sb, sIsBasic := src.Underlying().(*types.Basic)
	switch {
	case tIsBasic && tb.Info()&types.IsString != 0:
		if _, ok := src.Underlying().(*types.Slice); ok {
			c.reportf(w, arg.Pos(), "slice-to-string conversion copies and allocates")
		} else if sIsBasic && sb.Info()&types.IsInteger != 0 {
			c.reportf(w, arg.Pos(), "integer-to-string conversion allocates")
		}
	case sIsBasic && sb.Info()&types.IsString != 0:
		if _, ok := tgt.Underlying().(*types.Slice); ok {
			c.reportf(w, arg.Pos(), "string-to-slice conversion copies and allocates")
		}
	default:
		c.convCheck(w, tgt, arg)
	}
}

// calleeObject resolves the called object, unwrapping parens and
// selections.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.ParenExpr:
		return calleeObject(info, f.X)
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		return info.Uses[f.Sel] // qualified identifier pkg.Func
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeObject(info, f.X)
	case *ast.IndexListExpr:
		return calleeObject(info, f.X)
	}
	return nil
}

// resolveInterfaceCall finds every named type in the program that
// implements the interface a method call dispatches through, and
// enqueues the corresponding concrete methods.
func (c *hpChecker) resolveInterfaceCall(w hpWork, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, pkg := range c.prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, fn.Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				c.enqueue(m, w.root)
			}
		}
	}
}
