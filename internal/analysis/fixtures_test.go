package analysis

import (
	"path/filepath"
	"testing"
)

// The fixture module under testdata/src carries `// want "regexp"`
// comments on every line an analyzer must flag; RunFixture diffs both
// directions, so these tests fail on missed findings and on false
// positives alike.

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, Determinism, filepath.Join("testdata", "src"), "./det/...")
}

func TestHotPathAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc, filepath.Join("testdata", "src"), "./hot/...")
}

func TestStatsGuardFixture(t *testing.T) {
	RunFixture(t, StatsGuard, filepath.Join("testdata", "src"), "./statsbad/...")
}

func TestStatsGuardNoSinkFixture(t *testing.T) {
	RunFixture(t, StatsGuard, filepath.Join("testdata", "src"), "./statsnosink/...")
}

func TestGuardedByFixture(t *testing.T) {
	RunFixture(t, GuardedBy, filepath.Join("testdata", "src"), "./guarded/...")
}

func TestColParityFixture(t *testing.T) {
	RunFixture(t, ColParity, filepath.Join("testdata", "src"), "./colpar/...")
}

func TestCtxFlowFixture(t *testing.T) {
	RunFixture(t, CtxFlow, filepath.Join("testdata", "src"), "./ctxflow/...")
}

func TestErrDiscardFixture(t *testing.T) {
	RunFixture(t, ErrDiscard, filepath.Join("testdata", "src"), "./errdis/...")
}
