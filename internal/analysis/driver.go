package analysis

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Main implements the shared mdlint/mdvet command line: it runs the
// candidate analyzers over the argument patterns (default ./...) and
// prints findings in the machine-parseable
//
//	file:line:col: [analyzer] message
//
// format CI consumes. Flags: -list prints the candidate analyzers,
// -only restricts the run to a comma-separated subset. Exit status: 0
// clean, 1 findings, 2 on a load/usage/internal error.
func Main(tool string, candidates []*Analyzer, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "run only the named analyzers (comma-separated)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s [-list] [-only analyzer,...] [packages]\n\nAnalyzers:\n", tool)
		for _, a := range candidates {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range candidates {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := candidates
	if *only != "" {
		var err error
		analyzers, err = ByName(*only, candidates)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		return 2
	}
	diags, err := Run(cwd, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "%s: %d finding(s)\n", tool, len(diags))
		return 1
	}
	return 0
}
