// Package analysis implements mdlint's static-analysis layer: a small
// framework mirroring the golang.org/x/tools/go/analysis API plus the
// project analyzers that guard the simulator's two load-bearing
// guarantees — determinism (golden equivalence, recording replay) and
// the zero-allocation warm cycle.
//
// The module is dependency-free, so the framework is built on the
// standard library alone: packages are enumerated and compiled with
// `go list -export`, parsed with go/parser, and type-checked with
// go/types against gc export data (see load.go). The Analyzer/Pass
// surface is kept deliberately close to go/analysis so the analyzers
// can be lifted onto the real framework if the dependency ever becomes
// available.
//
// Analyzers communicate with the code under analysis through //md:
// directive comments (see directives.go):
//
//	//md:hotpath          function must not allocate, nor anything it calls
//	//md:allocok <why>    exempt one site or function from hotpathalloc
//	//md:orderindependent <why>  exempt a map iteration from determinism
//	//md:statsstruct      the stats struct whose fields statsguard tracks
//	//md:statssink        a serialization function statsguard checks
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test fixtures.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// ProgramLevel analyzers run once per loaded Program (Pass.Pkg is
	// nil) and may inspect every package; package-level analyzers run
	// once per analyzed package.
	ProgramLevel bool
	// Packages, when non-empty, restricts a package-level analyzer to
	// the listed module-relative package paths (determinism to the
	// reproducibility core, ctxflow to request-scoped code).
	Packages []string
	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer invocation's inputs.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis (nil for program-level runs).
	Pkg *Package
	// Program holds every package loaded for this run: the analyzed
	// targets and all their in-module dependencies, type-checked from
	// source.
	Program *Program
	report  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Program.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the full mdvet analyzer suite, in order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HotPathAlloc, StatsGuard, GuardedBy, ColParity, CtxFlow, ErrDiscard}
}

// Legacy returns the original mdlint trio (pre-mdvet), kept as its own
// CI gate so a regression in the new analyzers can never mask one in
// the determinism/allocation guards.
func Legacy() []*Analyzer {
	return []*Analyzer{Determinism, HotPathAlloc, StatsGuard}
}

// ByName resolves analyzer names (comma- or space-separated) against
// candidates, preserving candidate order.
func ByName(names string, candidates []*Analyzer) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' }) {
		if n != "" {
			want[n] = true
		}
	}
	var out []*Analyzer
	for _, a := range candidates {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// DeterministicPackages lists the module-relative package paths whose
// behavior must be bit-reproducible: the simulation core, the
// functional emulator, the dependence predictors, the statistics they
// produce, and the robustness layer (atomic artifact writes, the retry
// schedule, the fault-injection harness) whose decisions must not
// depend on wall clock, map order, or goroutine scheduling — resume
// equivalence and reproducible fault tests hinge on it. The determinism
// analyzer is applied to exactly these.
var DeterministicPackages = []string{
	"internal/atomicio",
	"internal/ckpt",
	"internal/core",
	"internal/emu",
	"internal/faultinject",
	"internal/mdp",
	"internal/retry",
	"internal/stats",
}

// Run loads the packages matching patterns under dir and applies the
// analyzers: package-level ones to each matched package (respecting
// each Analyzer.Packages scope), program-level ones once. It returns
// the sorted findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &Pass{Analyzer: a, Program: prog, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Targets {
			if !inScope(prog, pkg, a.Packages) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Program: prog, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// inScope applies an analyzer's Packages restriction (empty scope
// means every package).
func inScope(prog *Program, pkg *Package, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, rel := range scope {
		if pkg.Path == prog.ModulePath+"/"+rel {
			return true
		}
	}
	return false
}
