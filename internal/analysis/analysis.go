// Package analysis implements mdlint's static-analysis layer: a small
// framework mirroring the golang.org/x/tools/go/analysis API plus the
// project analyzers that guard the simulator's two load-bearing
// guarantees — determinism (golden equivalence, recording replay) and
// the zero-allocation warm cycle.
//
// The module is dependency-free, so the framework is built on the
// standard library alone: packages are enumerated and compiled with
// `go list -export`, parsed with go/parser, and type-checked with
// go/types against gc export data (see load.go). The Analyzer/Pass
// surface is kept deliberately close to go/analysis so the analyzers
// can be lifted onto the real framework if the dependency ever becomes
// available.
//
// Analyzers communicate with the code under analysis through //md:
// directive comments (see directives.go):
//
//	//md:hotpath          function must not allocate, nor anything it calls
//	//md:allocok <why>    exempt one site or function from hotpathalloc
//	//md:orderindependent <why>  exempt a map iteration from determinism
//	//md:statsstruct      the stats struct whose fields statsguard tracks
//	//md:statssink        a serialization function statsguard checks
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test fixtures.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// ProgramLevel analyzers run once per loaded Program (Pass.Pkg is
	// nil) and may inspect every package; package-level analyzers run
	// once per analyzed package.
	ProgramLevel bool
	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer invocation's inputs.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis (nil for program-level runs).
	Pkg *Package
	// Program holds every package loaded for this run: the analyzed
	// targets and all their in-module dependencies, type-checked from
	// source.
	Program *Program
	report  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Program.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the analyzers mdlint runs, in order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HotPathAlloc, StatsGuard}
}

// DeterministicPackages lists the module-relative package paths whose
// behavior must be bit-reproducible: the simulation core, the
// functional emulator, the dependence predictors, the statistics they
// produce, and the robustness layer (atomic artifact writes, the retry
// schedule, the fault-injection harness) whose decisions must not
// depend on wall clock, map order, or goroutine scheduling — resume
// equivalence and reproducible fault tests hinge on it. The determinism
// analyzer is applied to exactly these.
var DeterministicPackages = []string{
	"internal/atomicio",
	"internal/core",
	"internal/emu",
	"internal/faultinject",
	"internal/mdp",
	"internal/retry",
	"internal/stats",
}

// Run loads the packages matching patterns under dir and applies the
// analyzers: package-level ones to each matched package (Determinism
// only to DeterministicPackages), program-level ones once. It returns
// the sorted findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.ProgramLevel {
			pass := &Pass{Analyzer: a, Program: prog, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Targets {
			if a == Determinism && !isDeterministicPackage(prog, pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Program: prog, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func isDeterministicPackage(prog *Program, pkg *Package) bool {
	for _, rel := range DeterministicPackages {
		if pkg.Path == prog.ModulePath+"/"+rel {
			return true
		}
	}
	return false
}
