package analysis

import (
	"go/ast"
	"go/types"
)

// StatsGuard catches drift between the statistics struct and the
// experiment artifacts: every exported counter field (integer-typed)
// of a struct annotated //md:statsstruct must be read somewhere on a
// path reachable from a //md:statssink serialization function — either
// directly, or through a derived-metric method (IPC reads Cycles and
// Committed, and so on).
//
// The JSON artifact marshals the whole struct, so JSON can never
// drift; the flat CSV schema and any hand-rolled render path can, and
// those are exactly the functions that carry the //md:statssink
// annotation. Adding a counter to the struct without extending a sink
// (or a derived metric a sink calls) is reported at the new field.
var StatsGuard = &Analyzer{
	Name:         "statsguard",
	Doc:          "every exported counter field of the //md:statsstruct must reach a //md:statssink serialization path",
	ProgramLevel: true,
	Run:          runStatsGuard,
}

func runStatsGuard(pass *Pass) error {
	prog := pass.Program
	fset := prog.Fset

	// Locate annotated structs and their exported integer fields.
	type trackedStruct struct {
		named  *types.Named
		spec   *ast.TypeSpec
		fields map[*types.Var]bool // exported counter fields, covered?
	}
	var structs []*trackedStruct
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, s := range gd.Specs {
					spec, ok := s.(*ast.TypeSpec)
					if !ok || !typeHasDirective(fset, pkg, gd, spec, DirStatsStruct) {
						continue
					}
					obj, ok := pkg.Info.Defs[spec.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					st, ok := named.Underlying().(*types.Struct)
					if !ok {
						continue
					}
					ts := &trackedStruct{named: named, spec: spec, fields: map[*types.Var]bool{}}
					for i := 0; i < st.NumFields(); i++ {
						f := st.Field(i)
						if !f.Exported() {
							continue
						}
						if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
							ts.fields[f] = false
						}
					}
					structs = append(structs, ts)
				}
			}
		}
	}
	if len(structs) == 0 {
		return nil
	}

	// Index declarations, find the sinks, and walk everything reachable
	// from them (in-module static calls, transitively), marking tracked
	// fields as covered when a selector reads them.
	decls := map[types.Object]hpWork{}
	var queue []hpWork
	anySink := false
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				w := hpWork{pkg: pkg, decl: fd}
				decls[obj] = w
				if pkg.FuncHasDirective(fset, fd, DirStatsSink) {
					queue = append(queue, w)
					anySink = true
				}
			}
		}
	}
	for _, ts := range structs {
		if !anySink {
			pass.Reportf(ts.spec.Pos(),
				"struct %s is annotated //md:statsstruct but no //md:statssink function exists in the analyzed packages",
				ts.named.Obj().Name())
		}
	}
	if !anySink {
		return nil
	}

	visited := map[*ast.FuncDecl]bool{}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if visited[w.decl] {
			continue
		}
		visited[w.decl] = true
		info := w.pkg.Info
		ast.Inspect(w.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if f, ok := sel.Obj().(*types.Var); ok {
						for _, ts := range structs {
							if _, tracked := ts.fields[f]; tracked {
								ts.fields[f] = true
							}
						}
					}
				}
			case *ast.CallExpr:
				if fn, ok := calleeObject(info, n.Fun).(*types.Func); ok &&
					fn.Pkg() != nil && prog.inModule(fn.Pkg().Path()) {
					if next, ok := decls[fn]; ok {
						queue = append(queue, next)
					}
				}
			}
			return true
		})
	}

	for _, ts := range structs {
		st := ts.named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			covered, tracked := ts.fields[f]
			if tracked && !covered {
				pass.Reportf(f.Pos(),
					"counter %s.%s never reaches a //md:statssink serialization path: extend the sink (or a derived metric it calls) or the artifact schema silently drops it",
					ts.named.Obj().Name(), f.Name())
			}
		}
	}
	return nil
}
