package workload

import (
	"os"
	"path/filepath"
	"testing"

	"mdspec/internal/prog"
)

func TestParseProfileDefaults(t *testing.T) {
	p, err := ParseProfile([]byte(`{"name":"custom"}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom" || p.LoadFrac != 0.25 || p.FootprintWords != 1<<15 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if _, err := Generate(p); err != nil {
		t.Errorf("default custom profile should generate: %v", err)
	}
}

func TestParseProfileOverrides(t *testing.T) {
	p, err := ParseProfile([]byte(`{
		"name": "hot", "fp": true,
		"loadFrac": 0.4, "storeFrac": 0.05,
		"trueDepFrac": 0.2, "depDistance": 15,
		"branchEvery": 20, "footprintWords": 65536, "seed": 42
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.FP || p.LoadFrac != 0.4 || p.DepDistance != 15 || p.Seed != 42 {
		t.Errorf("overrides lost: %+v", p)
	}
	mix := Measure(mustGenerate(t, p), 40_000)
	if mix.LoadFrac() < 0.35 || mix.LoadFrac() > 0.45 {
		t.Errorf("custom profile load fraction %.3f, want ~0.40", mix.LoadFrac())
	}
}

func mustGenerate(t *testing.T, p Profile) *prog.Program {
	t.Helper()
	pg, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestParseProfileBase(t *testing.T) {
	p, err := ParseProfile([]byte(`{"name":"gcc-variant","base":"126.gcc","trueDepFrac":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := ProfileByName("126.gcc")
	if p.Name != "gcc-variant" || p.LoadFrac != orig.LoadFrac || p.TrueDepFrac != 0.5 {
		t.Errorf("base inheritance wrong: %+v", p)
	}
}

func TestParseProfileErrors(t *testing.T) {
	if _, err := ParseProfile([]byte(`{`)); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, err := ParseProfile([]byte(`{"name":"x","bogusField":1}`)); err == nil {
		t.Error("unknown fields should be rejected")
	}
	if _, err := ParseProfile([]byte(`{"loadFrac":0.3}`)); err == nil {
		t.Error("missing name should error")
	}
	if _, err := ParseProfile([]byte(`{"name":"x","base":"999.no"}`)); err == nil {
		t.Error("unknown base should error")
	}
}

func TestLoadProfileAndRoundTrip(t *testing.T) {
	orig, _ := ProfileByName("102.swim")
	data, err := MarshalProfile(orig)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip changed the profile:\n%+v\n%+v", got, orig)
	}
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
