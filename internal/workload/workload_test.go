package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mdspec/internal/emu"
)

func TestNamesCount(t *testing.T) {
	if got := len(Names()); got != 18 {
		t.Fatalf("suite has %d benchmarks, want 18 (Table 1)", got)
	}
	if got := len(IntNames()); got != 8 {
		t.Errorf("SPECint analogs = %d, want 8", got)
	}
	if got := len(FPNames()); got != 10 {
		t.Errorf("SPECfp analogs = %d, want 10", got)
	}
}

func TestProfileLookup(t *testing.T) {
	p, err := ProfileByName("126.gcc")
	if err != nil || p.Name != "126.gcc" {
		t.Fatalf("lookup by full name failed: %v", err)
	}
	p, err = ProfileByName("126")
	if err != nil || p.Name != "126.gcc" {
		t.Fatalf("lookup by paper shorthand failed: %v", err)
	}
	if _, err := ProfileByName("999.nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
	if ShortName("102.swim") != "102" {
		t.Error("ShortName wrong")
	}
}

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			m := emu.New(p)
			var d emu.DynInst
			for i := 0; i < 50_000; i++ {
				if !m.Step(&d) {
					t.Fatalf("workload halted after %d instructions; must run forever", i)
				}
			}
		})
	}
}

func TestMixMatchesTable1(t *testing.T) {
	// The achieved dynamic load/store fractions must track the paper's
	// Table 1 within a reasonable calibration tolerance.
	const tol = 0.045
	for _, pr := range Profiles() {
		pr := pr
		t.Run(pr.Name, func(t *testing.T) {
			mix := Measure(MustBuild(pr.Name), 60_000)
			if d := math.Abs(mix.LoadFrac() - pr.LoadFrac); d > tol {
				t.Errorf("load fraction %.3f, target %.3f (|d|=%.3f)", mix.LoadFrac(), pr.LoadFrac, d)
			}
			if d := math.Abs(mix.StoreFrac() - pr.StoreFrac); d > tol {
				t.Errorf("store fraction %.3f, target %.3f (|d|=%.3f)", mix.StoreFrac(), pr.StoreFrac, d)
			}
		})
	}
}

func TestNearDependencesTrackProfile(t *testing.T) {
	// compress (TrueDepFrac .30) must show far more near-dependence
	// loads than mgrid (.02): this drives the Table 4 misspec spread.
	hi := Measure(MustBuild("129.compress"), 60_000)
	lo := Measure(MustBuild("107.mgrid"), 60_000)
	if hi.NearDepFrac() < lo.NearDepFrac()*2 {
		t.Errorf("compress near-dep %.3f should be well above mgrid %.3f",
			hi.NearDepFrac(), lo.NearDepFrac())
	}
}

func TestFPWorkloadsUseFPUnits(t *testing.T) {
	fp := Measure(MustBuild("102.swim"), 40_000)
	in := Measure(MustBuild("126.gcc"), 40_000)
	if fp.FPOps == 0 {
		t.Error("swim should execute FP operations")
	}
	if in.FPOps > fp.FPOps/10 {
		t.Errorf("gcc FP ops (%d) should be negligible vs swim (%d)", in.FPOps, fp.FPOps)
	}
}

func TestPointerChasingTracksProfile(t *testing.T) {
	li := Measure(MustBuild("130.li"), 40_000)
	swim := Measure(MustBuild("102.swim"), 40_000)
	if li.PointerLoads == 0 {
		t.Error("li should have pointer-chasing loads")
	}
	if swim.PointerLoads > li.PointerLoads/4 {
		t.Errorf("swim pointer loads (%d) should be far below li (%d)", swim.PointerLoads, li.PointerLoads)
	}
}

func TestCallsTrackProfile(t *testing.T) {
	vortex := Measure(MustBuild("147.vortex"), 40_000)
	mgrid := Measure(MustBuild("107.mgrid"), 40_000)
	if vortex.Calls == 0 {
		t.Error("vortex should make calls")
	}
	if mgrid.Calls != 0 {
		t.Errorf("mgrid should be call-free, has %d", mgrid.Calls)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := MustBuild("134.perl")
	b := MustBuild("134.perl")
	if len(a.Code) != len(b.Code) {
		t.Fatalf("non-deterministic build: %d vs %d insts", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	bad := Profiles()[0]
	bad.FootprintWords = 1000 // not a power of two
	if _, err := Generate(bad); err == nil {
		t.Error("non-power-of-two footprint should be rejected")
	}
	bad = Profiles()[0]
	bad.BranchEvery = 1
	if _, err := Generate(bad); err == nil {
		t.Error("tiny BranchEvery should be rejected")
	}
}

func TestKernelRecurrenceDependences(t *testing.T) {
	mix := Measure(KernelRecurrence(0), 20_000)
	if mix.NearDepFrac() < 0.9 {
		t.Errorf("recurrence near-dep fraction %.3f, want ~1", mix.NearDepFrac())
	}
	// Halting variant stops.
	m := emu.New(KernelRecurrence(10))
	var d emu.DynInst
	steps := 0
	for m.Step(&d) {
		steps++
		if steps > 1000 {
			t.Fatal("halting recurrence did not halt")
		}
	}
}

func TestKernelStreamNoTrueDeps(t *testing.T) {
	mix := Measure(KernelStream(0), 20_000)
	if mix.NearDepLoads != 0 {
		t.Errorf("stream kernel has %d near-dependence loads, want 0", mix.NearDepLoads)
	}
	if mix.Loads == 0 || mix.Stores == 0 {
		t.Error("stream kernel should load and store")
	}
}

func TestKernelTaskBoundaryShape(t *testing.T) {
	p := KernelTaskBoundary(32, 100)
	// The dynamic body must be exactly 32 instructions: successive loads
	// of the global are 32 apart.
	m := emu.New(p)
	var d emu.DynInst
	var loadSeqs []int64
	for m.Step(&d) {
		if d.IsLoad() {
			loadSeqs = append(loadSeqs, d.Seq)
		}
	}
	if len(loadSeqs) < 3 {
		t.Fatal("too few loads")
	}
	for i := 1; i < len(loadSeqs); i++ {
		if got := loadSeqs[i] - loadSeqs[i-1]; got != 32 {
			t.Fatalf("load spacing %d, want 32 (body misaligned)", got)
		}
	}
}

func TestKernelPointerChaseCyclic(t *testing.T) {
	m := emu.New(KernelPointerChase(64, 0))
	var d emu.DynInst
	seen := make(map[uint32]int)
	for i := 0; i < 64*4*4; i++ {
		if !m.Step(&d) {
			t.Fatal("chase halted")
		}
		if d.IsLoad() && d.Inst.Rd == d.Inst.Rs1 { // the next-pointer load
			seen[d.Addr]++
		}
	}
	if len(seen) != 64 {
		t.Errorf("visited %d distinct nodes, want 64 (cycle must cover the list)", len(seen))
	}
}

func TestRngBounds(t *testing.T) {
	r := newRng(42)
	f := func(n uint16) bool {
		nn := int(n%1000) + 1
		v := r.intn(nn)
		return v >= 0 && v < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChanceExtremes(t *testing.T) {
	r := newRng(7)
	for i := 0; i < 100; i++ {
		if r.chance(0) {
			t.Fatal("chance(0) fired")
		}
		if !r.chance(1) {
			t.Fatal("chance(1) did not fire")
		}
	}
}

func TestParseNames(t *testing.T) {
	// Whitespace around commas is what users actually type on a CLI.
	got, err := ParseNames("126.gcc, 099.go ,102.swim")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"126.gcc", "099.go", "102.swim"}
	if len(got) != len(want) {
		t.Fatalf("ParseNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseNames = %v, want %v", got, want)
		}
	}
	// Trailing comma is tolerated; the empty field is dropped.
	if got, err := ParseNames("126.gcc,"); err != nil || len(got) != 1 {
		t.Errorf("trailing comma: %v, %v", got, err)
	}
	// A misspelled name fails up front and names the valid set.
	if _, err := ParseNames("126.gc"); err == nil {
		t.Error("misspelled benchmark should be rejected")
	} else if !strings.Contains(err.Error(), "126.gcc") {
		t.Errorf("error should list valid names: %v", err)
	}
	if _, err := ParseNames(" , "); err == nil {
		t.Error("empty list should be rejected")
	}
}
