package workload

import (
	"fmt"

	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// rng is a deterministic xorshift64* generator so every benchmark build
// is reproducible.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// chance reports true with probability p.
func (r *rng) chance(p float64) bool { return float64(r.next()%1_000_000) < p*1_000_000 }

// slot kinds for body generation.
type slotKind uint8

const (
	kFiller slotKind = iota
	kLoadStream
	kLoadPair
	kLoadPtr
	kStoreStream
	kStoreList    // store through the chased pointer (late address)
	kStoreIndexed // store to a data-dependent index (late address)
	kStorePair
	kBranch
	kCall
)

type slot struct {
	kind slotKind
	pair int // pair index for kLoadPair/kStorePair
}

// register roles used by the generator.
const (
	rStream = isa.R1
	rWrite  = isa.R2
	rPair   = isa.R3
	rList   = isa.R4
)

var intVals = []isa.Reg{isa.R8, isa.R9, isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.R15}
var fpVals = []isa.Reg{isa.F8, isa.F9, isa.F10, isa.F11, isa.F12, isa.F13, isa.F14, isa.F15}

// streamWindow is the byte range of offsets used off the streaming
// pointers; arenas are padded by this much slack.
const streamWindow = 8192

// lateStoreFrac is the fraction of streaming stores whose address is
// computed from chased pointers or loaded indices and therefore posts
// late to the address-based scheduler (what keeps AS/NO below AS/NAV).
const lateStoreFrac = 0.18

// Build generates the synthetic program for the named benchmark.
func Build(name string) (*prog.Program, error) {
	pr, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(pr)
}

// MustBuild is Build, panicking on unknown names (for tests/benches over
// the fixed suite).
func MustBuild(name string) *prog.Program {
	p, err := Build(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Generate builds a program from an arbitrary profile (exported so
// ablation experiments can perturb single knobs).
func Generate(pr Profile) (*prog.Program, error) {
	if pr.FootprintWords <= 0 || pr.FootprintWords&(pr.FootprintWords-1) != 0 {
		return nil, fmt.Errorf("workload %s: footprint must be a positive power of two", pr.Name)
	}
	if pr.BranchEvery < 3 {
		return nil, fmt.Errorf("workload %s: BranchEvery too small", pr.Name)
	}
	g := &generator{pr: pr, rng: newRng(pr.Seed*0x9e3779b9 + 1), b: prog.NewBuilder(), lastLoadInt: isa.NoReg, lastLoadFP: isa.NoReg, lastProduced: isa.NoReg}
	g.layout()
	g.plan()
	g.emit()
	return g.b.Program()
}

type generator struct {
	pr  Profile
	rng *rng
	b   *prog.Builder

	readBase, writeBase, pairBase, listBase uint32
	readMask, writeMask                     int64
	nodes                                   int

	slots   []slot
	nPairs  int
	helpers int
	lbl     int

	// lastLoadInt is the int register most recently used as a load
	// destination; data-dependent branches test it, so delaying loads
	// delays branch resolution (as in real codes). lastProduced tracks
	// the most recent value-producing destination of either kind, which
	// store data prefers (copies and computed stores dominate real code).
	lastLoadInt  isa.Reg
	lastLoadFP   isa.Reg
	lastProduced isa.Reg

	// value-register rotation state (build-time round robin).
	ivNext, fvNext int
}

// layout allocates and initializes the data arenas.
func (g *generator) layout() {
	b, pr := g.b, g.pr
	readBytes := uint32(pr.FootprintWords * prog.WordBytes)
	g.readBase = b.AllocAligned(pr.FootprintWords+streamWindow/prog.WordBytes, readBytes)
	g.readMask = int64(readBytes - 1)

	writeWords := pr.FootprintWords / 4
	if writeWords < 1024 {
		writeWords = 1024
	}
	writeBytes := uint32(writeWords * prog.WordBytes)
	g.writeBase = b.AllocAligned(writeWords+streamWindow/prog.WordBytes, writeBytes)
	g.writeMask = int64(writeBytes - 1)

	// Fill the read arena with pseudo-random data: loaded values feed
	// data-dependent branches, so they must actually vary.
	r := newRng(pr.Seed + 7)
	for i := 0; i < pr.FootprintWords+streamWindow/prog.WordBytes; i++ {
		b.SetData(g.readBase+uint32(i*prog.WordBytes), int64(r.next()%4096)+1)
	}

	// Pointer-chase list: a shuffled cycle sized to mostly fit L1.
	g.nodes = pr.FootprintWords / 16
	if g.nodes > 1024 {
		g.nodes = 1024
	}
	if g.nodes < 16 {
		g.nodes = 16
	}
	// Nodes are [next, payload] pairs so pointer-dependent stores have a
	// target that does not corrupt the cycle.
	g.listBase = b.Alloc(g.nodes * 2)
	perm := make([]int, g.nodes)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates over perm[1:] so the cycle starts at node 0.
	for i := g.nodes - 1; i > 1; i-- {
		j := 1 + r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < g.nodes; i++ {
		from := g.listBase + uint32(perm[i]*2*prog.WordBytes)
		to := g.listBase + uint32(perm[(i+1)%g.nodes]*2*prog.WordBytes)
		b.SetData(from, int64(to))
	}
}

// plan decides the body's slot sequence from the profile's fractions.
func (g *generator) plan() {
	pr := g.pr
	blocks := 600 / pr.BranchEvery
	if blocks < 8 {
		blocks = 8
	}
	l := blocks * pr.BranchEvery

	nCalls := int(pr.CallFrac*float64(blocks) + 0.5)
	g.helpers = 3
	nNoisy := int(pr.BranchNoise*float64(blocks) + 0.5)
	// Estimated emitted length: body slots + call targets (9 insts per
	// call beyond the jal) + noisy-branch shadows + indexed-store address
	// arithmetic + loop overhead.
	nIndexedEst := int(lateStoreFrac * pr.StoreFrac * 600)
	total := float64(l + nCalls*9 + nNoisy*2 + nIndexedEst*2 + 7)

	nLoad := int(pr.LoadFrac*total+0.5) - 2*nCalls
	nStore := int(pr.StoreFrac*total+0.5) - 2*nCalls
	if nLoad < 0 {
		nLoad = 0
	}
	if nStore < 0 {
		nStore = 0
	}
	nTD := int(pr.TrueDepFrac*float64(nLoad) + 0.5)
	if nTD > nStore {
		nTD = nStore
	}
	nPtr := int(pr.PointerFrac*float64(nLoad) + 0.5)
	if nTD+nPtr > nLoad {
		nPtr = nLoad - nTD
	}
	g.nPairs = nTD

	g.slots = make([]slot, l)
	// Branch slots close each block.
	for i := 1; i <= blocks; i++ {
		g.slots[i*pr.BranchEvery-1] = slot{kind: kBranch}
	}
	free := func(i int) bool { return g.slots[i].kind == kFiller && (i+1)%pr.BranchEvery != 0 }
	place := func(start int) int {
		for i := 0; i < l; i++ {
			idx := (start + i) % l
			if free(idx) {
				return idx
			}
		}
		return -1
	}
	// True-dependence pairs at the profile's distance.
	for p := 0; p < nTD; p++ {
		s := place(g.rng.intn(l))
		if s < 0 {
			break
		}
		g.slots[s] = slot{kind: kStorePair, pair: p}
		dist := pr.DepDistance/2 + g.rng.intn(pr.DepDistance+1)
		ld := place((s + dist) % l)
		if ld < 0 {
			g.slots[s] = slot{kind: kFiller}
			break
		}
		g.slots[ld] = slot{kind: kLoadPair, pair: p}
	}
	scatter := func(n int, k slotKind) {
		for i := 0; i < n; i++ {
			idx := place(g.rng.intn(l))
			if idx < 0 {
				return
			}
			g.slots[idx] = slot{kind: k}
		}
	}
	scatter(nCalls, kCall)
	scatter(nPtr, kLoadPtr)
	scatter(nLoad-nTD-nPtr, kLoadStream)
	// A realistic share of stores compute their addresses late: through
	// the chased pointer when the benchmark chases pointers, or via a
	// data-dependent index otherwise. These are what separates AS/NO
	// (waits for every address to post) from AS/NAV.
	nLate := int(lateStoreFrac*float64(nStore-nTD) + 0.5)
	if pr.PointerFrac > 0 {
		scatter(nLate, kStoreList)
	} else {
		scatter(nLate, kStoreIndexed)
	}
	scatter(nStore-nTD-nLate, kStoreStream)
}

// nextIntVal returns the next integer value register in rotation.
func (g *generator) nextIntVal() isa.Reg {
	r := intVals[g.ivNext%len(intVals)]
	g.ivNext++
	return r
}

// nextFPVal returns the next FP value register in rotation.
func (g *generator) nextFPVal() isa.Reg {
	r := fpVals[g.fvNext%len(fpVals)]
	g.fvNext++
	return r
}

// memValReg picks a destination/source register for memory data: FP
// benchmarks keep most data in FP registers.
func (g *generator) memValReg() isa.Reg {
	if g.pr.FP && g.rng.chance(0.75) {
		r := g.nextFPVal()
		g.lastLoadFP = r
		g.lastProduced = r
		return r
	}
	r := g.nextIntVal()
	g.lastLoadInt = r
	g.lastProduced = r
	return r
}

// emit writes the whole program.
func (g *generator) emit() {
	b := g.b
	b.Li(rStream, int64(g.readBase))
	b.Li(rWrite, int64(g.writeBase))
	g.pairBase = b.Alloc(g.nPairs + 1)
	b.Li(rPair, int64(g.pairBase))
	b.Li(rList, int64(g.listBase))
	// Seed the value registers.
	for i, r := range intVals {
		b.Li(r, int64(3*i+1))
	}
	if g.pr.FP {
		for i, r := range fpVals {
			b.Li(isa.R16, int64(5*i+2))
			b.Mtf(r, isa.R16)
		}
	}

	b.Label("loop")
	for i := range g.slots {
		g.emitSlot(i)
	}
	// Advance and wrap the streaming pointers, then repeat forever. The
	// advance rate sets the compulsory-miss rate (~2 fresh blocks per
	// iteration, a few percent of references, as in SPEC'95 on Table 2's
	// caches).
	b.Addi(rStream, rStream, int64(g.advance()))
	b.Andi(rStream, rStream, g.readMask)
	b.OpI(isa.ORI, rStream, rStream, int64(g.readBase))
	b.Addi(rWrite, rWrite, int64(g.advance()/4+8))
	b.Andi(rWrite, rWrite, g.writeMask)
	b.OpI(isa.ORI, rWrite, rWrite, int64(g.writeBase))
	b.J("loop")

	// Spill/reload helpers.
	for h := 0; h < g.helpers; h++ {
		b.Label(fmt.Sprintf("fn%d", h))
		off := int64(-8 - h*64)
		b.Sw(isa.R16, isa.SP, off)
		b.Sw(isa.R17, isa.SP, off-8)
		b.Addi(isa.R16, isa.R16, 3)
		b.Xor(isa.R17, isa.R17, isa.R16)
		b.Add(isa.R16, isa.R16, isa.R17)
		b.Addi(isa.R17, isa.R17, 7)
		b.Lw(isa.R16, isa.SP, off)
		b.Lw(isa.R17, isa.SP, off-8)
		b.Ret()
	}
}

func (g *generator) emitSlot(i int) {
	b, s := g.b, g.slots[i]
	switch s.kind {
	case kLoadStream:
		off := int64(g.rng.intn(streamWindow/prog.WordBytes) * prog.WordBytes)
		dst := g.memValReg()
		switch {
		case !g.pr.FP && dst.IsInt() && g.rng.chance(0.15):
			b.Lb(dst, rStream, off+int64(g.rng.intn(8))) // byte field access
		case !g.pr.FP && dst.IsInt() && g.rng.chance(0.1):
			b.Lh(dst, rStream, off+int64(g.rng.intn(4)*2))
		default:
			b.Lw(dst, rStream, off)
		}
	case kLoadPair:
		b.Lw(g.memValReg(), rPair, int64(s.pair*prog.WordBytes))
	case kLoadPtr:
		b.Lw(rList, rList, 0)
	case kStoreStream:
		off := int64(g.rng.intn(streamWindow/prog.WordBytes) * prog.WordBytes)
		src := g.memValSrc()
		switch {
		case !g.pr.FP && src.IsInt() && g.rng.chance(0.15):
			b.Sb(src, rWrite, off+int64(g.rng.intn(8)))
		case !g.pr.FP && src.IsInt() && g.rng.chance(0.1):
			b.Sh(src, rWrite, off+int64(g.rng.intn(4)*2))
		default:
			b.Sw(src, rWrite, off)
		}
	case kStoreList:
		// Address depends on the pointer chase: posts late.
		b.Sw(g.memValSrc(), rList, prog.WordBytes)
	case kStoreIndexed:
		// Address depends on a recently loaded value: posts late.
		idx := g.lastLoadInt
		if idx == isa.NoReg {
			idx = intVals[0]
		}
		b.Andi(isa.R18, idx, streamWindow-prog.WordBytes)
		b.Add(isa.R18, rWrite, isa.R18)
		b.Sw(g.memValSrc(), isa.R18, 0)
	case kStorePair:
		b.Sw(g.memValSrc(), rPair, int64(s.pair*prog.WordBytes))
	case kCall:
		b.Jal(fmt.Sprintf("fn%d", g.rng.intn(g.helpers)))
	case kBranch:
		g.emitBranch()
	default:
		g.emitFiller()
	}
}

// memValSrc picks a source register for store data: usually the most
// recently produced value (a freshly loaded or freshly computed result),
// so stores execute late, as in real code.
func (g *generator) memValSrc() isa.Reg {
	if g.lastProduced != isa.NoReg && g.rng.chance(0.6) {
		return g.lastProduced
	}
	if g.pr.FP && g.rng.chance(0.75) {
		return fpVals[g.rng.intn(len(fpVals))]
	}
	return intVals[g.rng.intn(len(intVals))]
}

// emitBranch closes a block: either a trivially-predictable never-taken
// branch, or a data-dependent one that skips two filler instructions.
func (g *generator) emitBranch() {
	b := g.b
	g.lbl++
	lbl := fmt.Sprintf("b%d", g.lbl)
	if g.rng.chance(g.pr.BranchNoise) {
		// Data-dependent direction: compare the most recently loaded
		// value (random data) against an evolving register.
		a := g.lastLoadInt
		if a == isa.NoReg {
			a = intVals[0]
		}
		c := intVals[g.rng.intn(len(intVals))]
		b.Blt(a, c, lbl)
		g.emitFiller()
		g.emitFiller()
		b.Label(lbl)
		return
	}
	b.Bne(isa.R0, isa.R0, lbl) // never taken
	b.Label(lbl)
}

// emitFiller emits one computation instruction.
func (g *generator) emitFiller() {
	b := g.b
	if g.pr.FP && g.rng.chance(0.7) {
		d := g.nextFPVal()
		a := fpVals[g.rng.intn(len(fpVals))]
		c := fpVals[g.rng.intn(len(fpVals))]
		switch g.rng.intn(32) {
		case 0, 1, 2, 3, 4, 5, 6, 7, 8:
			b.FmulD(d, a, c)
		case 9, 10, 11:
			b.FmulS(d, a, c)
		case 12, 13, 14:
			b.Fsub(d, a, c)
		case 15:
			b.FdivD(d, a, c)
		default:
			b.Fadd(d, a, c)
		}
		g.lastProduced = d
		return
	}
	d := g.nextIntVal()
	a := intVals[g.rng.intn(len(intVals))]
	c := intVals[g.rng.intn(len(intVals))]
	switch g.rng.intn(12) {
	case 0, 1, 2, 3:
		b.Addi(d, a, int64(g.rng.intn(64)-32))
	case 4, 5, 6:
		b.Add(d, a, c)
	case 7, 8:
		b.Xor(d, a, c)
	case 9:
		b.Op3(isa.OR, d, a, c)
	case 10:
		b.Slt(d, a, c)
	default:
		b.Sll(d, a, int64(1+g.rng.intn(3)))
	}
	g.lastProduced = d
}

// advance returns the per-iteration streaming-pointer advance in bytes:
// FP analogs stream through large arrays (higher compulsory miss rates),
// integer analogs have more temporal reuse.
func (g *generator) advance() int {
	if g.pr.FP {
		return 256
	}
	return 64
}
