// Package workload provides the 18 synthetic SPEC'95-analog benchmarks
// used to reproduce the paper's experiments, plus a handful of named
// micro-kernels. SPEC'95 binaries and inputs are not redistributable (and
// no MIPS toolchain is assumed), so each benchmark is generated from a
// Profile that captures the properties the paper's results actually
// depend on: the dynamic load/store fractions of Table 1, the prevalence
// and distance of true (in-window) store→load dependences, pointer-chase
// versus streaming access patterns, branch predictability, call/spill
// behaviour, and data footprint.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name follows the paper's Table 1 ("126.gcc", ...).
	Name string
	// FP marks SPECfp'95 analogs (FP-typed data and functional units).
	FP bool

	// LoadFrac and StoreFrac are the target dynamic fractions (Table 1).
	LoadFrac  float64
	StoreFrac float64

	// TrueDepFrac is the fraction of loads that read data written by a
	// recent (usually in-window) store — the loads that make naive
	// speculation misspeculate (calibrated against Table 4's NAV rates).
	TrueDepFrac float64
	// DepDistance is the typical store→load distance in dynamic
	// instructions for those true dependences.
	DepDistance int

	// PointerFrac is the fraction of loads whose address depends on a
	// previously loaded value (pointer chasing: li, gcc, perl).
	PointerFrac float64

	// BranchEvery is the average number of instructions per conditional
	// branch; BranchNoise is the fraction of those branches whose
	// direction is data-dependent (hard to predict).
	BranchEvery int
	BranchNoise float64

	// CallFrac is the fraction of blocks containing a call to a helper
	// that spills and reloads registers on the stack.
	CallFrac float64

	// FootprintWords sizes the streaming read arena (power of two).
	FootprintWords int

	// Seed makes generation deterministic per benchmark.
	Seed uint64
}

// profiles lists the 18 SPEC'95 programs of Table 1 in paper order.
// Load/store fractions are Table 1's; the dependence/branch knobs are
// calibrated so the suite reproduces the qualitative spread of Tables 3
// and 4 (which programs misspeculate a lot under NAV, which are
// dominated by false dependences).
var profiles = []Profile{
	{Name: "099.go", LoadFrac: .209, StoreFrac: .073, TrueDepFrac: .28, DepDistance: 20,
		PointerFrac: .15, BranchEvery: 6, BranchNoise: .35, CallFrac: .25, FootprintWords: 1 << 16, Seed: 99},
	{Name: "124.m88ksim", LoadFrac: .188, StoreFrac: .096, TrueDepFrac: .04, DepDistance: 40,
		PointerFrac: .10, BranchEvery: 7, BranchNoise: .15, CallFrac: .40, FootprintWords: 1 << 14, Seed: 124},
	{Name: "126.gcc", LoadFrac: .243, StoreFrac: .175, TrueDepFrac: .08, DepDistance: 25,
		PointerFrac: .25, BranchEvery: 6, BranchNoise: .30, CallFrac: .35, FootprintWords: 1 << 17, Seed: 126},
	{Name: "129.compress", LoadFrac: .217, StoreFrac: .135, TrueDepFrac: .21, DepDistance: 12,
		PointerFrac: .05, BranchEvery: 8, BranchNoise: .25, CallFrac: .10, FootprintWords: 1 << 15, Seed: 129},
	{Name: "130.li", LoadFrac: .296, StoreFrac: .176, TrueDepFrac: .30, DepDistance: 10,
		PointerFrac: .35, BranchEvery: 7, BranchNoise: .20, CallFrac: .45, FootprintWords: 1 << 14, Seed: 130},
	{Name: "132.ijpeg", LoadFrac: .177, StoreFrac: .087, TrueDepFrac: .08, DepDistance: 45,
		PointerFrac: .05, BranchEvery: 12, BranchNoise: .10, CallFrac: .10, FootprintWords: 1 << 16, Seed: 132},
	{Name: "134.perl", LoadFrac: .256, StoreFrac: .166, TrueDepFrac: .26, DepDistance: 14,
		PointerFrac: .25, BranchEvery: 7, BranchNoise: .25, CallFrac: .40, FootprintWords: 1 << 15, Seed: 134},
	{Name: "147.vortex", LoadFrac: .263, StoreFrac: .273, TrueDepFrac: .30, DepDistance: 14,
		PointerFrac: .20, BranchEvery: 8, BranchNoise: .15, CallFrac: .50, FootprintWords: 1 << 17, Seed: 147},

	{Name: "101.tomcatv", FP: true, LoadFrac: .319, StoreFrac: .088, TrueDepFrac: .05, DepDistance: 50,
		BranchEvery: 20, BranchNoise: .05, FootprintWords: 1 << 17, Seed: 101},
	{Name: "102.swim", FP: true, LoadFrac: .270, StoreFrac: .066, TrueDepFrac: .04, DepDistance: 60,
		BranchEvery: 25, BranchNoise: .03, FootprintWords: 1 << 17, Seed: 102},
	{Name: "103.su2cor", FP: true, LoadFrac: .338, StoreFrac: .101, TrueDepFrac: .07, DepDistance: 40,
		BranchEvery: 18, BranchNoise: .05, FootprintWords: 1 << 17, Seed: 103},
	{Name: "104.hydro2d", FP: true, LoadFrac: .297, StoreFrac: .082, TrueDepFrac: .12, DepDistance: 20,
		BranchEvery: 18, BranchNoise: .05, FootprintWords: 1 << 16, Seed: 104},
	{Name: "107.mgrid", FP: true, LoadFrac: .466, StoreFrac: .030, TrueDepFrac: .02, DepDistance: 75,
		BranchEvery: 30, BranchNoise: .02, FootprintWords: 1 << 17, Seed: 107},
	{Name: "110.applu", FP: true, LoadFrac: .314, StoreFrac: .079, TrueDepFrac: .06, DepDistance: 40,
		BranchEvery: 20, BranchNoise: .04, FootprintWords: 1 << 17, Seed: 110},
	{Name: "125.turb3d", FP: true, LoadFrac: .213, StoreFrac: .146, TrueDepFrac: .03, DepDistance: 35,
		BranchEvery: 15, BranchNoise: .08, CallFrac: .15, FootprintWords: 1 << 16, Seed: 125},
	{Name: "141.apsi", FP: true, LoadFrac: .314, StoreFrac: .134, TrueDepFrac: .12, DepDistance: 35,
		BranchEvery: 16, BranchNoise: .06, FootprintWords: 1 << 16, Seed: 141},
	{Name: "145.fpppp", FP: true, LoadFrac: .488, StoreFrac: .175, TrueDepFrac: .10, DepDistance: 45,
		BranchEvery: 40, BranchNoise: .05, FootprintWords: 1 << 14, Seed: 145},
	{Name: "146.wave5", FP: true, LoadFrac: .302, StoreFrac: .130, TrueDepFrac: .08, DepDistance: 35,
		BranchEvery: 18, BranchNoise: .05, FootprintWords: 1 << 17, Seed: 146},
}

// Names returns the benchmark names in the paper's Table 1 order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ParseNames parses a comma-separated benchmark list as typed on a CLI:
// whitespace around each name is trimmed, empty fields are dropped, and
// every name is validated against the Table 1 suite up front so a typo
// fails immediately (naming the valid set) instead of deep inside a
// sweep — or worse, being silently misclassified by downstream int/fp
// aggregation.
func ParseNames(s string) ([]string, error) {
	known := make(map[string]bool, len(profiles))
	for _, p := range profiles {
		known[p.Name] = true
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("workload: unknown benchmark %q (valid: %s)",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty benchmark list %q", s)
	}
	return out, nil
}

// IntNames returns the SPECint'95 analog names.
func IntNames() []string { return filterNames(false) }

// FPNames returns the SPECfp'95 analog names.
func FPNames() []string { return filterNames(true) }

func filterNames(fp bool) []string {
	var out []string
	for _, p := range profiles {
		if p.FP == fp {
			out = append(out, p.Name)
		}
	}
	return out
}

// Profiles returns a copy of all benchmark profiles.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName looks up a benchmark profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	// Accept the paper's shorthand (first number component).
	for _, p := range profiles {
		if shortName(p.Name) == name {
			return p, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
}

// shortName returns the numeric prefix the paper uses ("126" for
// "126.gcc").
func shortName(full string) string {
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			return full[:i]
		}
	}
	return full
}

// ShortName exposes the paper's numeric shorthand for a benchmark name.
func ShortName(full string) string { return shortName(full) }
