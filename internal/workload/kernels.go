package workload

import (
	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// KernelRecurrence builds the paper's Figure 7 loop: a[i] = a[i-1] + 1,
// a loop-carried memory dependence at a distance of a few instructions.
// With iters <= 0 the loop runs forever (for budget-driven timing runs).
func KernelRecurrence(iters int64) *prog.Program {
	b := prog.NewBuilder()
	arr := b.AllocInit(1)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R5, iters)
	b.Label("loop")
	b.Lw(isa.R2, isa.R1, 0)              // load a[i-1]
	b.Addi(isa.R2, isa.R2, 1)            // compute a[i]
	b.Sw(isa.R2, isa.R1, prog.WordBytes) // store a[i]
	b.Addi(isa.R1, isa.R1, prog.WordBytes)
	if iters > 0 {
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "loop")
		b.Halt()
	} else {
		// Wrap the pointer within a 32K-word ring and loop forever.
		b.Andi(isa.R1, isa.R1, (1<<18)-1)
		b.OpI(isa.ORI, isa.R1, isa.R1, int64(arr))
		b.J("loop")
	}
	return b.MustProgram()
}

// KernelTaskBoundary builds the §3.7 demonstration workload: the loop
// body is exactly taskInsts instructions, storing a global at the end of
// each iteration and loading it at the start of the next. When taskInsts
// equals a split-window task size, the store always sits at the end of
// one unit's task and the dependent load at the start of the next
// unit's, so split-window fetch reverses their address-calculation order.
func KernelTaskBoundary(taskInsts int, iters int64) *prog.Program {
	if taskInsts < 12 {
		panic("workload: task body too small")
	}
	b := prog.NewBuilder()
	g := b.AllocInit(5)
	b.Li(isa.R9, int64(g))
	b.Li(isa.R5, iters)
	b.Li(isa.R7, 3)
	for i := 3; i < taskInsts; i++ {
		b.Nop() // align the loop body to a task boundary
	}
	b.Label("loop")
	b.Lw(isa.R3, isa.R9, 0)       // body[0]: load the global immediately
	b.Add(isa.R4, isa.R3, isa.R7) // body[1]: propagate the loaded value
	for i := 2; i < taskInsts-5; i++ {
		b.Addi(isa.R10, isa.R10, 1) // independent filler
	}
	b.Add(isa.R2, isa.R4, isa.R5) // changing store value
	b.Sw(isa.R2, isa.R9, 0)       // store at the task's end
	b.Addi(isa.R5, isa.R5, -1)
	b.Nop() // keep the taken-branch body exactly taskInsts long
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	return b.MustProgram()
}

// KernelStream builds a pure streaming loop (loads from one array,
// stores to another, no true memory dependences): the best case for
// memory dependence speculation and the worst case for NAS/NO.
func KernelStream(iters int64) *prog.Program {
	b := prog.NewBuilder()
	src := b.AllocAligned(8192, 8192*prog.WordBytes)
	dst := b.AllocAligned(8192, 8192*prog.WordBytes)
	for i := 0; i < 1024; i++ {
		b.SetData(src+uint32(i*prog.WordBytes), int64(i*7))
	}
	b.Li(isa.R1, int64(src))
	b.Li(isa.R2, int64(dst))
	b.Li(isa.R5, iters)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Lw(isa.R3, isa.R1, 0)
	b.Lw(isa.R4, isa.R1, 8)
	b.Mult(isa.R3, isa.R7)
	b.Mflo(isa.R6)
	b.Add(isa.R6, isa.R6, isa.R4)
	b.Sw(isa.R6, isa.R2, 0)
	b.Addi(isa.R1, isa.R1, 16)
	b.Andi(isa.R1, isa.R1, 8192*prog.WordBytes-1)
	b.OpI(isa.ORI, isa.R1, isa.R1, int64(src))
	b.Addi(isa.R2, isa.R2, 8)
	b.Andi(isa.R2, isa.R2, 8192*prog.WordBytes-1)
	b.OpI(isa.ORI, isa.R2, isa.R2, int64(dst))
	if iters > 0 {
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "loop")
		b.Halt()
	} else {
		b.J("loop")
	}
	return b.MustProgram()
}

// KernelPointerChase builds a linked-list traversal over a shuffled
// cyclic list with occasional stores into the visited nodes' payload —
// the li/gcc-style pattern where load addresses depend on loads.
func KernelPointerChase(nodes int, iters int64) *prog.Program {
	if nodes < 4 {
		panic("workload: need at least 4 nodes")
	}
	b := prog.NewBuilder()
	// Each node is [next, payload].
	arena := b.Alloc(nodes * 2)
	r := newRng(uint64(nodes)*31 + 7)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 1; i-- {
		j := 1 + r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	nodeAddr := func(i int) uint32 { return arena + uint32(i*2*prog.WordBytes) }
	for i := 0; i < nodes; i++ {
		b.SetData(nodeAddr(perm[i]), int64(nodeAddr(perm[(i+1)%nodes])))
		b.SetData(nodeAddr(perm[i])+prog.WordBytes, int64(i))
	}
	b.Li(isa.R1, int64(nodeAddr(0)))
	b.Li(isa.R5, iters)
	b.Label("loop")
	b.Lw(isa.R2, isa.R1, prog.WordBytes) // payload
	b.Addi(isa.R2, isa.R2, 1)
	b.Sw(isa.R2, isa.R1, prog.WordBytes) // update payload (reloaded next lap)
	b.Lw(isa.R1, isa.R1, 0)              // chase next
	if iters > 0 {
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "loop")
		b.Halt()
	} else {
		b.J("loop")
	}
	return b.MustProgram()
}
