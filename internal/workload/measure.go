package workload

import (
	"fmt"

	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// Mix summarizes the dynamic instruction mix of a workload — the analog
// of the paper's Table 1 plus the dependence statistics the paper's
// arguments rest on.
type Mix struct {
	Insts    int64
	Loads    int64
	Stores   int64
	Branches int64 // conditional branches only
	Calls    int64
	FPOps    int64

	// NearDepLoads counts loads whose producing store is within
	// windowDist dynamic instructions (the loads an in-window speculator
	// can violate).
	NearDepLoads int64
	// PointerLoads counts loads whose base register was itself written
	// by a load (address chasing).
	PointerLoads int64
}

// LoadFrac returns the dynamic load fraction.
func (m Mix) LoadFrac() float64 { return frac(m.Loads, m.Insts) }

// StoreFrac returns the dynamic store fraction.
func (m Mix) StoreFrac() float64 { return frac(m.Stores, m.Insts) }

// BranchFrac returns the conditional-branch fraction.
func (m Mix) BranchFrac() float64 { return frac(m.Branches, m.Insts) }

// NearDepFrac returns the fraction of loads with a near (in-window)
// producing store.
func (m Mix) NearDepFrac() float64 { return frac(m.NearDepLoads, m.Loads) }

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// String renders the mix like a Table 1 row.
func (m Mix) String() string {
	return fmt.Sprintf("insts=%d loads=%.1f%% stores=%.1f%% cond-branches=%.1f%% near-dep-loads=%.1f%%",
		m.Insts, 100*m.LoadFrac(), 100*m.StoreFrac(), 100*m.BranchFrac(), 100*m.NearDepFrac())
}

// windowDist is the dependence distance treated as "in window" by
// Measure (the paper's default window size).
const windowDist = 128

// Measure executes p functionally for n dynamic instructions and
// returns its mix.
func Measure(p *prog.Program, n int64) Mix {
	m := emu.New(p)
	var mix Mix
	var d emu.DynInst
	// Track which sequence numbers were loads, for pointer detection.
	loadSeqs := make(map[int64]bool)
	for mix.Insts < n && m.Step(&d) {
		mix.Insts++
		op := d.Inst.Op
		switch {
		case op.IsLoad():
			mix.Loads++
			if d.ProducerSeq >= 0 && d.Seq-d.ProducerSeq <= windowDist {
				mix.NearDepLoads++
			}
			if loadSeqs[d.Dep1Seq] {
				mix.PointerLoads++
			}
			loadSeqs[d.Seq] = true
		case op.IsStore():
			mix.Stores++
		case op.IsCondBranch():
			mix.Branches++
		}
		if op == isa.JAL {
			mix.Calls++
		}
		switch op.Class() {
		case isa.ClassFPAdd, isa.ClassFPMulS, isa.ClassFPMulD, isa.ClassFPDivS, isa.ClassFPDivD:
			mix.FPOps++
		}
		if mix.Insts%4096 == 0 {
			// Bound the pointer-tracking map.
			for s := range loadSeqs {
				if d.Seq-s > windowDist*4 {
					delete(loadSeqs, s)
				}
			}
		}
	}
	return mix
}
