package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// profileJSON is the on-disk form of a Profile. Field names follow the
// Go struct; all fields are optional except name.
type profileJSON struct {
	Name           string   `json:"name"`
	FP             bool     `json:"fp"`
	LoadFrac       *float64 `json:"loadFrac"`
	StoreFrac      *float64 `json:"storeFrac"`
	TrueDepFrac    *float64 `json:"trueDepFrac"`
	DepDistance    *int     `json:"depDistance"`
	PointerFrac    *float64 `json:"pointerFrac"`
	BranchEvery    *int     `json:"branchEvery"`
	BranchNoise    *float64 `json:"branchNoise"`
	CallFrac       *float64 `json:"callFrac"`
	FootprintWords *int     `json:"footprintWords"`
	Seed           *uint64  `json:"seed"`
	// Base names an existing benchmark whose profile seeds the defaults
	// before the overrides above apply.
	Base string `json:"base"`
}

// ParseProfile decodes a JSON profile description. Unknown fields are
// rejected so typos surface instead of silently using defaults.
func ParseProfile(data []byte) (Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pj profileJSON
	if err := dec.Decode(&pj); err != nil {
		return Profile{}, fmt.Errorf("workload: parsing profile: %w", err)
	}
	base := Profile{
		Name: pj.Name, FP: pj.FP,
		LoadFrac: 0.25, StoreFrac: 0.10,
		TrueDepFrac: 0.10, DepDistance: 30,
		BranchEvery: 10, BranchNoise: 0.1,
		FootprintWords: 1 << 15, Seed: 1,
	}
	if pj.Base != "" {
		b, err := ProfileByName(pj.Base)
		if err != nil {
			return Profile{}, err
		}
		name := pj.Name
		base = b
		if name != "" {
			base.Name = name
		}
		base.FP = b.FP || pj.FP
	}
	if base.Name == "" {
		return Profile{}, fmt.Errorf("workload: profile needs a name")
	}
	if pj.LoadFrac != nil {
		base.LoadFrac = *pj.LoadFrac
	}
	if pj.StoreFrac != nil {
		base.StoreFrac = *pj.StoreFrac
	}
	if pj.TrueDepFrac != nil {
		base.TrueDepFrac = *pj.TrueDepFrac
	}
	if pj.DepDistance != nil {
		base.DepDistance = *pj.DepDistance
	}
	if pj.PointerFrac != nil {
		base.PointerFrac = *pj.PointerFrac
	}
	if pj.BranchEvery != nil {
		base.BranchEvery = *pj.BranchEvery
	}
	if pj.BranchNoise != nil {
		base.BranchNoise = *pj.BranchNoise
	}
	if pj.CallFrac != nil {
		base.CallFrac = *pj.CallFrac
	}
	if pj.FootprintWords != nil {
		base.FootprintWords = *pj.FootprintWords
	}
	if pj.Seed != nil {
		base.Seed = *pj.Seed
	}
	return base, nil
}

// LoadProfile reads a JSON profile from a file.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	return ParseProfile(data)
}

// MarshalProfile encodes a Profile as indented JSON (for documentation
// and round-tripping).
func MarshalProfile(p Profile) ([]byte, error) {
	out := map[string]any{
		"name": p.Name, "fp": p.FP,
		"loadFrac": p.LoadFrac, "storeFrac": p.StoreFrac,
		"trueDepFrac": p.TrueDepFrac, "depDistance": p.DepDistance,
		"pointerFrac": p.PointerFrac,
		"branchEvery": p.BranchEvery, "branchNoise": p.BranchNoise,
		"callFrac": p.CallFrac, "footprintWords": p.FootprintWords,
		"seed": p.Seed,
	}
	return json.MarshalIndent(out, "", "  ")
}
