// Package atomicio writes artifacts crash-safely. A multi-hour sweep
// must never be left with a truncated JSON/CSV artifact or a
// half-written journal segment because the process died mid-write, so
// every artifact write goes through WriteFile: the content is produced
// into a temporary file in the destination directory, fsynced, and
// renamed over the destination in one atomic step, and the directory
// entry is fsynced afterwards. Readers therefore see either the old
// complete file or the new complete file, never a torn one.
//
// The package is deterministic (no wall-clock, no randomness beyond the
// kernel's temp-name counter, no goroutines) and is covered by mdlint's
// determinism analyzer.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mdspec/internal/faultinject"
)

// WriteFile atomically replaces path with the bytes write produces. On
// any failure — including a failure of write itself — the temporary
// file is removed and the previous content of path, if any, is left
// untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	if err := faultinject.PointErr(faultinject.SiteAtomicWrite); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close() //md:errok cleanup on an already-failing write; the first error is the one reported
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// Persist the new directory entry; without this a crash can undo
	// the rename even though the data blocks survived.
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so renames and creations within it are
// durable. Filesystems that cannot fsync directories (and say so with
// EINVAL-style errors on Sync, not on Open) are tolerated.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	defer d.Close() //md:errok read-only directory handle; nothing written through it
	// Best effort: some filesystems reject directory fsync (EINVAL);
	// the data-file fsync before the rename is the load-bearing one.
	_ = d.Sync() //md:errok deliberate best effort: EINVAL-style directory-fsync rejection is tolerated by contract
	return nil
}

// ProbeDir verifies dir exists (creating it if needed) and is writable
// by creating and removing a probe file. Runners call it before a long
// sweep so an unwritable artifact destination fails in seconds, not at
// serialization time hours later.
func ProbeDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("atomicio: output directory %s: %w", dir, err)
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("atomicio: output directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	// The probe exists to surface unwritability early: a failing close
	// (quota exceeded, I/O error at flush) is exactly the signal it is
	// meant to catch, so it must not be dropped.
	closeErr := f.Close()
	if err := faultinject.PointErr(faultinject.SiteProbeClose); err != nil {
		closeErr = err
	}
	if closeErr != nil {
		os.Remove(name) //md:errok probe cleanup on an already-failing path; the close error is the one reported
		return fmt.Errorf("atomicio: output directory %s is not writable: %w", dir, closeErr)
	}
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("atomicio: output directory %s: %w", dir, err)
	}
	return nil
}
