//go:build mdfault

package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdspec/internal/faultinject"
)

// TestInjectedWriteErrorLeavesDestination proves the error-at-Nth-write
// injection point fires inside WriteFile and that an injected failure
// degrades exactly like a real one: the call errors, the destination
// keeps its previous content, and the next write succeeds.
func TestInjectedWriteErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	write := func(content string) error {
		return WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := write("v1"); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteAtomicWrite, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	err := write("v2")
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want injected write error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("injected failure corrupted destination: %q", got)
	}

	// The plan fired once (N=1, no Repeat): the retry succeeds.
	if err := write("v2"); err != nil {
		t.Fatalf("write after injected failure: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("recovered write lost content: %q", got)
	}
}

// TestProbeDirSurfacesCloseFailure pins the probe-close error path: a
// failure while closing the probe file (quota exceeded, I/O error at
// flush) is exactly the unwritability signal ProbeDir exists to catch,
// so it must surface as an error instead of being dropped — the defect
// this test regresses against reported such a directory as writable.
func TestProbeDirSurfacesCloseFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteProbeClose, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	err := ProbeDir(dir)
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("ProbeDir = %v, want the injected close error surfaced", err)
	}
	if !strings.Contains(err.Error(), "not writable") {
		t.Errorf("ProbeDir error %q should report the directory as not writable", err)
	}

	// The failing probe must not leave its temp file behind.
	ents, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(ents) != 0 {
		t.Errorf("failing probe left %d file(s) behind in %s", len(ents), dir)
	}

	// The plan fired once: the next probe finds the directory writable.
	if err := ProbeDir(dir); err != nil {
		t.Fatalf("ProbeDir after injected close failure: %v", err)
	}
}
