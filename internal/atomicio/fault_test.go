//go:build mdfault

package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mdspec/internal/faultinject"
)

// TestInjectedWriteErrorLeavesDestination proves the error-at-Nth-write
// injection point fires inside WriteFile and that an injected failure
// degrades exactly like a real one: the call errors, the destination
// keeps its previous content, and the next write succeeds.
func TestInjectedWriteErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	write := func(content string) error {
		return WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := write("v1"); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteAtomicWrite, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	err := write("v2")
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want injected write error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("injected failure corrupted destination: %q", got)
	}

	// The plan fired once (N=1, no Repeat): the retry succeeds.
	if err := write("v2"); err != nil {
		t.Fatalf("write after injected failure: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("recovered write lost content: %q", got)
	}
}
