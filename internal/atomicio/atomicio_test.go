package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	for _, content := range []string{"first", "second longer content"} {
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
}

func TestWriteFileFailureLeavesDestinationIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o666); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("failed write corrupted the destination: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind after failed write", e.Name())
		}
	}
}

func TestProbeDir(t *testing.T) {
	dir := t.TempDir()
	if err := ProbeDir(dir); err != nil {
		t.Fatalf("writable dir: %v", err)
	}
	// A missing directory is created by the probe.
	sub := filepath.Join(dir, "a", "b")
	if err := ProbeDir(sub); err != nil {
		t.Fatalf("missing dir should be created: %v", err)
	}
	if fi, err := os.Stat(sub); err != nil || !fi.IsDir() {
		t.Fatalf("probe did not create %s", sub)
	}
	// A path blocked by a regular file fails up front.
	file := filepath.Join(dir, "plainfile")
	if err := os.WriteFile(file, nil, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := ProbeDir(filepath.Join(file, "sub")); err == nil {
		t.Fatal("probe under a regular file should fail")
	}
	if os.Getuid() != 0 { // root ignores permission bits
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := ProbeDir(ro); err == nil {
			t.Fatal("probe of a read-only dir should fail")
		}
	}
}
