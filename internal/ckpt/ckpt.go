// Package ckpt persists warmed microarchitectural state so sampled
// simulations stop paying the O(stream position) functional fast-forward
// on every segment, sweep, and resume.
//
// A checkpoint Set is captured in a single functional pass: a standalone
// core.Warmer (the cache hierarchy and branch predictor the machine
// config implies) advances through the recording and snapshots its
// complete warm state at a fixed ascending schedule of stream positions
// — one frame per position. An interval-parallel segment then restores
// the nearest frame at or before its warm-up start and replays only the
// residue, turning per-segment warm-up from O(segment position) into
// O(checkpoint spacing). Restored state is bit-identical to a live
// fast-forward (enforced by tests down to reflect.DeepEqual on the
// merged statistics), so checkpointing changes wall-clock time only,
// never results.
//
// On disk a Set is one `MDCKPT01` file mirroring the `.mdrec`
// conventions: little-endian, CRC-32/IEEE framed (header+directory and
// every frame independently), written atomically via temp+rename, and
// content-addressed by the recording's program fingerprint plus a hash
// of the warm-state-relevant slice of the machine config (cache
// geometry selector + branch predictor kind). Machine configs that
// differ only in pipeline policy share one checkpoint file — warming
// touches caches and branch direction state, nothing policy-specific —
// which is what makes a sweep of N policies pay for one warm pass.
// Every validation failure surfaces as ErrCorrupt or ErrMismatch;
// callers fall back to the functional fast-forward and re-capture, so a
// torn or stale file can cost time but never correctness.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mdspec/internal/atomicio"
	"mdspec/internal/bpred"
	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/faultinject"
)

// Magic identifies a checkpoint-set file (version 01).
const Magic = "MDCKPT01"

const (
	hdrBytes     = 8 + 8 + 8 + 4 + 4 // magic, recFP, warmHash, count, stateLen
	dirEntrBytes = 8                 // frame position
	crcBytes     = 4
	// maxFrames bounds the frame count a header may claim before any
	// allocation happens (a corrupt count must not OOM the process).
	maxFrames = 1 << 20
)

// Sentinel failures. Both mean "ignore the file, fast-forward, and
// re-capture" — the distinction is only for diagnostics and tests.
var (
	// ErrCorrupt reports structural damage: bad magic, impossible
	// geometry, truncation, or a CRC mismatch in any frame.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint file")
	// ErrMismatch reports a structurally sound file captured from a
	// different program recording or warm configuration.
	ErrMismatch = errors.New("ckpt: checkpoint does not match recording/config")
)

// WarmConfig is the slice of a machine configuration that functional
// warming can observe: the cache hierarchy selector and the branch
// predictor kind. Everything else — window size, issue width, load/store
// policy, dependence-predictor sizing — is invisible to a functional
// pass, so machines differing only there share checkpoint frames.
type WarmConfig struct {
	PerfectCaches   bool
	BranchPredictor bpred.Kind
}

// WarmConfigOf projects a full machine configuration onto its
// warm-state-relevant slice.
func WarmConfigOf(cfg config.Machine) WarmConfig {
	return WarmConfig{PerfectCaches: cfg.PerfectCaches, BranchPredictor: cfg.BranchPredictor}
}

// Hash returns the FNV-1a identity of the warm configuration, the
// config half of the content address.
func (w WarmConfig) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	b0 := byte(0)
	if w.PerfectCaches {
		b0 = 1
	}
	for _, b := range [2]byte{b0, byte(w.BranchPredictor)} {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Frame is one warm-state snapshot: the complete core.Warmer state
// (cache hierarchy, branch predictor, stream cursor) captured at stream
// position Seq. State aliases the decoded file buffer; treat it as
// read-only.
type Frame struct {
	Seq   int64
	State []byte
}

// Set is an ordered collection of frames captured from one recording
// under one warm configuration.
type Set struct {
	RecFP    uint64 // program/recording fingerprint (emu.ProgramFingerprint)
	WarmHash uint64 // WarmConfig.Hash of the capturing configuration
	Frames   []Frame
}

// Nearest returns the latest frame at or before target (manual binary
// search — this runs once per restored segment on the simulation path),
// or nil when no frame precedes target.
//
//md:hotpath
func (s *Set) Nearest(target int64) *Frame {
	lo, hi := 0, len(s.Frames) // invariant: Frames[:lo] <= target < Frames[hi:]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Frames[mid].Seq <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &s.Frames[lo-1]
}

// SizeBytes returns the encoded on-disk footprint of the set.
func (s *Set) SizeBytes() int64 {
	n := int64(hdrBytes + crcBytes)
	for i := range s.Frames {
		n += dirEntrBytes + int64(len(s.Frames[i].State)) + crcBytes
	}
	return n
}

// Positions computes the checkpoint capture schedule for one sampled
// decomposition: the warm-up start of every mid-stream segment
// (segment boundaries come from parsim's fixed decomposition; all
// inputs must already be resolved to their effective values). Restoring
// at exactly these positions leaves zero functional residue per
// segment. The schedule is strictly ascending.
func Positions(totalTiming, timingInsts, functionalInsts int64, segmentPeriods int64, warmupInsts int64) []int64 {
	if totalTiming <= 0 || timingInsts <= 0 || functionalInsts < 0 || segmentPeriods <= 0 {
		return nil
	}
	period := timingInsts + functionalInsts
	nPeriods := (totalTiming + timingInsts - 1) / timingInsts
	var out []int64
	for p := segmentPeriods; p < nPeriods; p += segmentPeriods {
		if target := p*period - warmupInsts; target > 0 {
			out = append(out, target)
		}
	}
	return out
}

// Build captures a checkpoint set in one functional pass over the
// recording: a machine-shaped Warmer advances to each position in seqs
// (strictly ascending) and snapshots its state there. Positions beyond
// the recording's end are skipped — the frames that exist are exact.
func Build(cfg config.Machine, rec emu.ReplaySource, recFP uint64, seqs []int64) (*Set, error) {
	tr := rec.NewReplay()
	w := core.NewMachineWarmer(cfg, tr)
	s := &Set{RecFP: recFP, WarmHash: WarmConfigOf(cfg).Hash(), Frames: make([]Frame, 0, len(seqs))}
	prev := int64(0)
	for _, seq := range seqs {
		if seq <= prev {
			return nil, fmt.Errorf("ckpt: capture positions not strictly ascending: %d after %d", seq, prev)
		}
		prev = seq
		w.AdvanceTo(seq)
		if w.Seq() < seq {
			break // recording ended before this position
		}
		s.Frames = append(s.Frames, Frame{Seq: seq, State: w.AppendState(nil)})
		tr.Release(w.Seq())
	}
	return s, nil
}

// Seqs returns the capture positions of the set's frames.
func (s *Set) Seqs() []int64 {
	out := make([]int64, len(s.Frames))
	for i := range s.Frames {
		out[i] = s.Frames[i].Seq
	}
	return out
}

// WriteFile atomically persists the set (temp file + rename, directory
// fsync), so concurrent readers see either the old complete file or the
// new one, never a torn write.
func (s *Set) WriteFile(path string) error {
	if err := faultinject.PointErr(faultinject.SiteCkptWrite); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	return atomicio.WriteFile(path, s.encode)
}

// encode streams the set in the MDCKPT01 layout:
//
//	header   magic[8] recFP[8] warmHash[8] count[4] stateLen[4]
//	dir      count × seq[8]
//	crc      CRC-32/IEEE of header+dir [4]
//	frames   count × (state[stateLen] crc[4])
func (s *Set) encode(w io.Writer) error {
	stateLen := 0
	if len(s.Frames) > 0 {
		stateLen = len(s.Frames[0].State)
	}
	hdr := make([]byte, 0, hdrBytes+len(s.Frames)*dirEntrBytes+crcBytes)
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, s.RecFP)
	hdr = binary.LittleEndian.AppendUint64(hdr, s.WarmHash)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(s.Frames)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(stateLen))
	for i := range s.Frames {
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.Frames[i].Seq))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var crcBuf [crcBytes]byte
	for i := range s.Frames {
		st := s.Frames[i].State
		if len(st) != stateLen {
			return fmt.Errorf("ckpt: frame %d state length %d != %d", i, len(st), stateLen)
		}
		if _, err := w.Write(st); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(st))
		if _, err := w.Write(crcBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

// OpenFile reads and fully validates a checkpoint set, verifying it was
// captured from the recording identified by recFP under the warm
// configuration hashed by warmHash. Every frame's CRC is checked
// eagerly, so a successfully opened set never fails at restore time. A
// missing file surfaces as an fs.ErrNotExist-wrapped error (a cache
// miss, not damage).
func OpenFile(path string, recFP, warmHash uint64) (*Set, error) {
	if err := faultinject.PointErr(faultinject.SiteCkptLoad); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", path, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(b, recFP, warmHash)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates an encoded set. The returned frames alias
// b — callers must not modify the buffer afterwards.
func Parse(b []byte, recFP, warmHash uint64) (*Set, error) {
	if len(b) < hdrBytes+crcBytes {
		return nil, fmt.Errorf("%w: %d-byte file shorter than any header", ErrCorrupt, len(b))
	}
	if string(b[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	gotRecFP := binary.LittleEndian.Uint64(b[8:])
	gotWarm := binary.LittleEndian.Uint64(b[16:])
	count := binary.LittleEndian.Uint32(b[24:])
	stateLen := binary.LittleEndian.Uint32(b[28:])
	if count > maxFrames {
		return nil, fmt.Errorf("%w: implausible frame count %d", ErrCorrupt, count)
	}
	dirEnd := hdrBytes + int(count)*dirEntrBytes
	if len(b) < dirEnd+crcBytes {
		return nil, fmt.Errorf("%w: truncated directory", ErrCorrupt)
	}
	if got, want := crc32.ChecksumIEEE(b[:dirEnd]), binary.LittleEndian.Uint32(b[dirEnd:]); got != want {
		return nil, fmt.Errorf("%w: header CRC %08x != %08x", ErrCorrupt, got, want)
	}
	// The header is now trustworthy; identity mismatches are reported as
	// such rather than as corruption.
	if gotRecFP != recFP || gotWarm != warmHash {
		return nil, fmt.Errorf("%w: file (rec %016x, warm %016x) vs want (rec %016x, warm %016x)",
			ErrMismatch, gotRecFP, gotWarm, recFP, warmHash)
	}
	frameBytes := int(stateLen) + crcBytes
	want := dirEnd + crcBytes + int(count)*frameBytes
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d for %d frames", ErrCorrupt, len(b), want, count)
	}
	s := &Set{RecFP: gotRecFP, WarmHash: gotWarm, Frames: make([]Frame, count)}
	prev := int64(0)
	off := dirEnd + crcBytes
	for i := range s.Frames {
		seq := int64(binary.LittleEndian.Uint64(b[hdrBytes+i*dirEntrBytes:]))
		if seq <= prev {
			return nil, fmt.Errorf("%w: frame positions not ascending (%d after %d)", ErrCorrupt, seq, prev)
		}
		prev = seq
		state := b[off : off+int(stateLen) : off+int(stateLen)]
		gotCRC := crc32.ChecksumIEEE(state)
		wantCRC := binary.LittleEndian.Uint32(b[off+int(stateLen):])
		if gotCRC != wantCRC {
			return nil, fmt.Errorf("%w: frame %d (seq %d) CRC %08x != %08x", ErrCorrupt, i, seq, gotCRC, wantCRC)
		}
		s.Frames[i] = Frame{Seq: seq, State: state}
		off += frameBytes
	}
	return s, nil
}
