//go:build mdfault

package ckpt

import (
	"errors"
	"os"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/faultinject"
)

// TestInjectedWriteFault: an injected ckpt.write error must surface
// from WriteFile without publishing anything — a previously published
// file stays intact byte for byte.
func TestInjectedWriteFault(t *testing.T) {
	rec, fp := testRecording(t, "129.compress", 30_000)
	cfg := config.Default128().WithPolicy(config.Sync)
	set, err := Build(cfg, rec, fp, []int64{10_000, 20_000})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.mdckpt"
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteCkptWrite, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	var inj *faultinject.InjectedError
	if err := set.WriteFile(path); !errors.As(err, &inj) {
		t.Fatalf("WriteFile under an armed ckpt.write plan returned %v, want injected error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed write modified the previously published file")
	}
}

// TestInjectedLoadFault: an injected ckpt.load error must surface from
// OpenFile as damage (not a cache miss), so callers re-capture.
func TestInjectedLoadFault(t *testing.T) {
	rec, fp := testRecording(t, "129.compress", 30_000)
	cfg := config.Default128().WithPolicy(config.Sync)
	set, err := Build(cfg, rec, fp, []int64{10_000})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.mdckpt"
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteCkptLoad, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	var inj *faultinject.InjectedError
	if _, err := OpenFile(path, fp, set.WarmHash); !errors.As(err, &inj) {
		t.Fatalf("OpenFile under an armed ckpt.load plan returned %v, want injected error", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("load fault must not touch the file itself: %v", err)
	}
	// The plan was one-shot: the next open succeeds on the intact file.
	if _, err := OpenFile(path, fp, set.WarmHash); err != nil {
		t.Fatalf("reopen after the one-shot fault failed: %v", err)
	}
}
