package ckpt

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func testRecording(t *testing.T, bench string, n int64) (*emu.Recording, uint64) {
	t.Helper()
	p := workload.MustBuild(bench)
	rec := emu.NewRecording(emu.New(p))
	rec.Record(n)
	return rec, emu.ProgramFingerprint(p)
}

func TestBuildAndRoundTrip(t *testing.T) {
	rec, fp := testRecording(t, "129.compress", 50_000)
	cfg := config.Default128().WithPolicy(config.Sync)

	seqs := []int64{10_000, 25_000, 40_000}
	set, err := Build(cfg, rec, fp, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Seqs(); !reflect.DeepEqual(got, seqs) {
		t.Fatalf("frame positions = %v, want %v", got, seqs)
	}
	for i := 1; i < len(set.Frames); i++ {
		if len(set.Frames[i].State) != len(set.Frames[0].State) {
			t.Fatal("frames have unequal state lengths")
		}
	}

	path := filepath.Join(t.TempDir(), "c.mdckpt")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != set.SizeBytes() {
		t.Fatalf("file size %d != SizeBytes %d", fi.Size(), set.SizeBytes())
	}

	got, err := OpenFile(path, fp, set.WarmHash)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, got) {
		t.Fatal("decoded set differs from written set")
	}

	// Determinism: a second capture pass yields byte-identical frames.
	set2, err := Build(cfg, rec, fp, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, set2) {
		t.Fatal("re-captured set differs: capture is not deterministic")
	}
}

func TestOpenFileRejects(t *testing.T) {
	rec, fp := testRecording(t, "102.swim", 20_000)
	cfg := config.Default128()
	set, err := Build(cfg, rec, fp, []int64{5_000, 15_000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "c.mdckpt")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Missing file: a cache miss, not corruption.
	if _, err := OpenFile(filepath.Join(dir, "nope.mdckpt"), fp, set.WarmHash); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	// Wrong identity: mismatch, not corruption.
	if _, err := OpenFile(path, fp+1, set.WarmHash); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong recording: err = %v, want ErrMismatch", err)
	}
	if _, err := OpenFile(path, fp, set.WarmHash+1); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong warm config: err = %v, want ErrMismatch", err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		c := mutate(append([]byte(nil), b...))
		if _, err := Parse(c, fp, set.WarmHash); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	corrupt("bad magic", func(c []byte) []byte { c[0] ^= 0xff; return c })
	corrupt("torn file", func(c []byte) []byte { return c[:len(c)-7] })
	corrupt("flipped header bit", func(c []byte) []byte { c[25] ^= 1; return c })
	corrupt("flipped frame byte", func(c []byte) []byte { c[len(c)-100] ^= 1; return c })
	corrupt("tiny file", func(c []byte) []byte { return c[:10] })

	// The original file still parses after all that (mutations copied).
	if _, err := Parse(b, fp, set.WarmHash); err != nil {
		t.Fatal(err)
	}
}

func TestNearest(t *testing.T) {
	s := &Set{Frames: []Frame{{Seq: 100}, {Seq: 500}, {Seq: 900}}}
	for _, tc := range []struct {
		target int64
		want   int64 // 0 = nil
	}{
		{50, 0}, {99, 0}, {100, 100}, {101, 100}, {499, 100},
		{500, 500}, {899, 500}, {900, 900}, {1e9, 900},
	} {
		f := s.Nearest(tc.target)
		switch {
		case tc.want == 0 && f != nil:
			t.Errorf("Nearest(%d) = frame %d, want nil", tc.target, f.Seq)
		case tc.want != 0 && (f == nil || f.Seq != tc.want):
			t.Errorf("Nearest(%d) = %v, want seq %d", tc.target, f, tc.want)
		}
	}
	if f := (&Set{}).Nearest(10); f != nil {
		t.Error("empty set must have no nearest frame")
	}
}

func TestPositions(t *testing.T) {
	// 200k timing at 5k:10k, 4 periods/segment, 5k warm-up: segments
	// start every 60k; warm targets are 60k*k - 5k.
	got := Positions(200_000, 5_000, 10_000, 4, 5_000)
	want := []int64{55_000, 115_000, 175_000, 235_000, 295_000, 355_000, 415_000, 475_000, 535_000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Positions = %v, want %v", got, want)
	}
	if p := Positions(10_000, 5_000, 10_000, 4, 5_000); p != nil {
		t.Fatalf("single-segment run needs no checkpoints, got %v", p)
	}
	if p := Positions(0, 5_000, 10_000, 4, 0); p != nil {
		t.Fatalf("degenerate inputs: got %v", p)
	}
}

func TestBuildStopsAtTraceEnd(t *testing.T) {
	p := workload.KernelRecurrence(100) // a short trace
	rec := emu.NewRecording(emu.New(p))
	rec.Record(1 << 20)
	fp := emu.ProgramFingerprint(p)

	set, err := Build(config.Default128(), rec, fp, []int64{100, 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Frames) != 1 || set.Frames[0].Seq != 100 {
		t.Fatalf("frames = %v, want exactly one at 100", set.Seqs())
	}
	if _, err := Build(config.Default128(), rec, fp, []int64{200, 100}); err == nil {
		t.Fatal("non-ascending capture positions must error")
	}
}
