package ckpt

import (
	"reflect"
	"testing"

	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestSegmentBBVs(t *testing.T) {
	p := workload.MustBuild("129.compress")
	rec := emu.NewRecording(emu.New(p))
	rec.Record(60_000)

	vecs, err := SegmentBBVs(rec, 60_000, 15_000, BBVDims)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 4 {
		t.Fatalf("got %d vectors, want 4", len(vecs))
	}
	for i, v := range vecs {
		if len(v) != BBVDims {
			t.Fatalf("vector %d has %d dims", i, len(v))
		}
		var sum float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("vector %d has a negative component", i)
			}
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("vector %d is not L1-normalized (sum %f)", i, sum)
		}
	}

	// Determinism: identical recording, identical vectors.
	vecs2, err := SegmentBBVs(rec, 60_000, 15_000, BBVDims)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vecs, vecs2) {
		t.Fatal("BBV extraction is not deterministic")
	}

	if _, err := SegmentBBVs(rec, 60_000, 0, BBVDims); err == nil {
		t.Fatal("zero segment size must error")
	}
}

func TestClusterDeterministicAndSane(t *testing.T) {
	// Three obvious groups in 2-D.
	var vecs [][]float64
	for i := 0; i < 5; i++ {
		f := float64(i) * 0.01
		vecs = append(vecs, []float64{1 - f, f})
		vecs = append(vecs, []float64{f, 1 - f})
		vecs = append(vecs, []float64{0.5 + f, 0.5 - f})
	}
	a := Cluster(vecs, 3, 42)
	b := Cluster(vecs, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("clustering is not deterministic for a fixed seed")
	}
	// Members of the same planted group must share a cluster.
	for g := 0; g < 3; g++ {
		for i := 1; i < 5; i++ {
			if a[3*i+g] != a[g] {
				t.Fatalf("planted group %d split across clusters: %v", g, a)
			}
		}
	}
	// Different planted groups must not collapse into one cluster.
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatalf("all groups in one cluster: %v", a)
	}

	if got := Cluster(nil, 3, 1); got != nil {
		t.Fatal("empty input must produce nil")
	}
	if got := Cluster(vecs[:2], 5, 1); len(got) != 2 {
		t.Fatal("k > n must clamp")
	}
}

func TestPlanCoversAllWeight(t *testing.T) {
	p := workload.MustBuild("102.swim")
	rec := emu.NewRecording(emu.New(p))
	rec.Record(120_000)

	vecs, err := SegmentBBVs(rec, 120_000, 15_000, BBVDims)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan(vecs, 3, 1)
	if len(plan) == 0 || len(plan) > 3 {
		t.Fatalf("plan has %d entries, want 1..3", len(plan))
	}
	var total int64
	last := -1
	for _, ws := range plan {
		if ws.Index <= last {
			t.Fatalf("plan not sorted by ascending index: %v", plan)
		}
		last = ws.Index
		if ws.Index < 0 || ws.Index >= len(vecs) {
			t.Fatalf("plan references segment %d of %d", ws.Index, len(vecs))
		}
		if ws.Weight <= 0 {
			t.Fatalf("non-positive weight in %v", plan)
		}
		total += ws.Weight
	}
	if total != int64(len(vecs)) {
		t.Fatalf("plan weights sum to %d, want %d", total, len(vecs))
	}

	// Same recording, same seed: same plan, run to run.
	plan2 := Plan(vecs, 3, 1)
	if !reflect.DeepEqual(plan, plan2) {
		t.Fatal("phase plan is not deterministic")
	}
}
