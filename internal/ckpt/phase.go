package ckpt

import (
	"fmt"

	"mdspec/internal/emu"
	"mdspec/internal/isa"
)

// Phase-aware segment selection, SimPoint-style: fingerprint each
// segment of the sampled decomposition with a basic-block vector (BBV),
// cluster the vectors with a deterministic seeded k-means, and simulate
// only one representative segment per cluster, weighted by the cluster's
// population. Everything here is bit-deterministic for fixed inputs —
// the PRNG is an explicit xorshift64 seeded by the caller, ties break
// toward the lowest index, and no map is ever iterated — so the same
// recording always yields the same plan (a property the test suite
// enforces run-to-run).

// BBVDims is the default basic-block-vector dimensionality. Block start
// PCs are hashed into this many buckets; 64 dimensions is far above the
// handful of phases short traces exhibit while keeping the vectors cheap.
const BBVDims = 64

// SegmentBBVs fingerprints each stream segment [k*segInsts,
// (k+1)*segInsts) of [0, horizon) with an L1-normalized basic-block
// vector: every basic block observed in the segment adds its dynamic
// instruction count to the bucket its start PC hashes into. The final
// partial segment (if any) is fingerprinted too; segments past the
// recording's end are dropped.
func SegmentBBVs(rec emu.ReplaySource, horizon, segInsts int64, dims int) ([][]float64, error) {
	if segInsts <= 0 || dims <= 0 {
		return nil, fmt.Errorf("ckpt: invalid BBV shape (segment %d, dims %d)", segInsts, dims)
	}
	tr := rec.NewReplay()
	var vecs [][]float64
	for segStart := int64(0); segStart < horizon; segStart += segInsts {
		segEnd := segStart + segInsts
		if segEnd > horizon {
			segEnd = horizon
		}
		vec := make([]float64, dims)
		var total, blockLen int64
		var blockStart uint32
		inBlock := false
		seq := segStart
		for ; seq < segEnd; seq++ {
			d := tr.At(seq)
			if d == nil {
				break // recording ended mid-segment
			}
			if !inBlock {
				blockStart, blockLen, inBlock = d.PC, 0, true
			}
			blockLen++
			total++
			if d.Taken || d.NextPC != d.PC+isa.InstBytes {
				vec[bbvBucket(blockStart, dims)] += float64(blockLen)
				inBlock = false
			}
		}
		if inBlock {
			vec[bbvBucket(blockStart, dims)] += float64(blockLen)
		}
		if total == 0 {
			break // segment fully past the end: stop here
		}
		for i := range vec {
			vec[i] /= float64(total)
		}
		vecs = append(vecs, vec)
		tr.Release(seq)
		if seq < segEnd {
			break
		}
	}
	return vecs, nil
}

// bbvBucket hashes a basic-block start PC into a vector dimension
// (FNV-1a over the PC's four little-endian bytes).
func bbvBucket(pc uint32, dims int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(pc >> (8 * i)))
		h *= prime64
	}
	return int(h % uint64(dims))
}

// xorshift64 is the package's explicit, seedable PRNG: determinism-
// scoped code cannot use math/rand's global state, and clustering must
// reproduce bit-exactly across runs and platforms.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cluster partitions vecs into at most k clusters with seeded
// k-means++ initialization and at most 64 Lloyd iterations, returning
// one cluster index per vector. Deterministic for fixed inputs: the
// PRNG is seeded explicitly and all ties break toward the lowest index.
func Cluster(vecs [][]float64, k int, seed uint64) []int {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	rng := xorshift64(seed | 1) // a zero seed must not wedge the PRNG

	// k-means++ seeding: first center uniform, then proportional to
	// squared distance from the nearest chosen center.
	centers := make([][]float64, 0, k)
	centers = append(centers, vecs[rng.next()%uint64(n)])
	dist := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i, v := range vecs {
			dist[i] = sqDist(v, centers[0])
			for _, c := range centers[1:] {
				if d := sqDist(v, c); d < dist[i] {
					dist[i] = d
				}
			}
			sum += dist[i]
		}
		if sum == 0 {
			break // fewer distinct vectors than clusters
		}
		// Draw a point with probability dist/sum, using a 53-bit uniform.
		r := float64(rng.next()>>11) / (1 << 53) * sum
		pick := n - 1
		for i, d := range dist {
			if r < d {
				pick = i
				break
			}
			r -= d
		}
		centers = append(centers, vecs[pick])
	}
	k = len(centers)

	assign := make([]int, n)
	dims := len(vecs[0])
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, dims)
	}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, sqDist(v, centers[0])
			for c := 1; c < k; c++ {
				if d := sqDist(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for d := range v {
				sums[c][d] += v[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // empty cluster: keep its old center
			}
			centers[c] = sums[c]
			for d := range centers[c] {
				centers[c][d] /= float64(counts[c])
			}
			sums[c] = make([]float64, dims)
		}
	}
	return assign
}

// WeightedSegment selects one segment of the sampled decomposition and
// the integer weight its statistics are scaled by (the population of
// the phase cluster it represents).
type WeightedSegment struct {
	Index  int
	Weight int64
}

// Plan computes the phase-aware simulation plan: cluster the segment
// BBVs into (at most) phases clusters and pick, per cluster, the
// segment closest to the cluster centroid as its representative,
// weighted by cluster population. The plan is sorted by ascending
// segment index and covers every segment's weight exactly once
// (weights sum to len(vecs)).
func Plan(vecs [][]float64, phases int, seed uint64) []WeightedSegment {
	n := len(vecs)
	if n == 0 {
		return nil
	}
	assign := Cluster(vecs, phases, seed)
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	// Centroids of the final assignment.
	dims := len(vecs[0])
	cent := make([][]float64, k)
	counts := make([]int64, k)
	for i := range cent {
		cent[i] = make([]float64, dims)
	}
	for i, v := range vecs {
		c := assign[i]
		counts[c]++
		for d := range v {
			cent[c][d] += v[d]
		}
	}
	for c := range cent {
		if counts[c] > 0 {
			for d := range cent[c] {
				cent[c][d] /= float64(counts[c])
			}
		}
	}
	// Representative: the lowest-index vector minimizing distance to its
	// cluster centroid.
	rep := make([]int, k)
	repD := make([]float64, k)
	for c := range rep {
		rep[c] = -1
	}
	for i, v := range vecs {
		c := assign[i]
		d := sqDist(v, cent[c])
		if rep[c] < 0 || d < repD[c] {
			rep[c], repD[c] = i, d
		}
	}
	plan := make([]WeightedSegment, 0, k)
	for c := 0; c < k; c++ {
		if rep[c] >= 0 {
			plan = append(plan, WeightedSegment{Index: rep[c], Weight: counts[c]})
		}
	}
	// Sort by segment index (insertion sort: k is tiny, and the sort
	// package is off-limits on determinism-scoped hot paths).
	for i := 1; i < len(plan); i++ {
		for j := i; j > 0 && plan[j].Index < plan[j-1].Index; j-- {
			plan[j], plan[j-1] = plan[j-1], plan[j]
		}
	}
	return plan
}
