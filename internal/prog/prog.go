// Package prog represents executable programs for the mini-RISC ISA and
// provides a label-resolving assembler (Builder) plus a simple data-section
// allocator. Workload generators use it to construct the synthetic
// SPEC'95-analog benchmarks.
package prog

import (
	"fmt"

	"mdspec/internal/isa"
)

// TextBase is the byte address of the first instruction.
const TextBase uint32 = 0x0040_0000

// DataBase is the byte address where the data section starts. All
// addresses are word (8-byte) aligned; the emulator's memory is
// word-addressed under the hood, but program addresses are byte addresses.
const DataBase uint32 = 0x1000_0000

// StackBase is the initial stack pointer (stack grows down).
const StackBase uint32 = 0x7fff_0000

// WordBytes is the size of a data word in bytes.
const WordBytes = 8

// Program is an assembled program: code, initial data image and entry PC.
type Program struct {
	Code  []isa.Inst
	Entry uint32
	// Data maps byte addresses to initial 64-bit word values.
	Data map[uint32]int64
	// Labels maps label names to resolved byte PCs (for diagnostics).
	Labels map[string]uint32
}

// PCOf returns the byte PC of instruction index i.
func PCOf(i int) uint32 { return TextBase + uint32(i*isa.InstBytes) }

// IndexOf returns the instruction index of byte PC pc, or -1 if pc is
// outside the text section.
func (p *Program) IndexOf(pc uint32) int {
	if pc < TextBase {
		return -1
	}
	i := int(pc-TextBase) / isa.InstBytes
	if i >= len(p.Code) {
		return -1
	}
	return i
}

// At returns the instruction at byte PC pc.
func (p *Program) At(pc uint32) (*isa.Inst, bool) {
	i := p.IndexOf(pc)
	if i < 0 {
		return nil, false
	}
	return &p.Code[i], true
}

// fixup records a branch/jump whose target label was not yet defined.
type fixup struct {
	instIdx int
	label   string
}

// Builder assembles a Program. Instructions are appended with the Emit*
// helpers; Label defines a jump target at the current position; branches
// may reference labels defined later (resolved by Program()).
type Builder struct {
	code    []isa.Inst
	labels  map[string]uint32
	fixups  []fixup
	data    map[uint32]int64
	nextVar uint32 // next free data byte address
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels:  make(map[string]uint32),
		data:    make(map[uint32]int64),
		nextVar: DataBase,
	}
}

// Err returns the first error recorded during assembly (duplicate or
// unresolved labels), if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// PC returns the byte PC the next emitted instruction will have.
func (b *Builder) PC() uint32 { return PCOf(len(b.code)) }

// Label defines name at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("prog: duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Alloc reserves n words of data and returns the byte address of the
// first. Words are zero-initialized.
func (b *Builder) Alloc(nWords int) uint32 {
	addr := b.nextVar
	b.nextVar += uint32(nWords * WordBytes)
	return addr
}

// AllocAligned reserves n words starting at a multiple of align bytes
// (align must be a power of two). Power-of-two-aligned arenas allow
// cheap pointer wrapping with AND/OR masks.
func (b *Builder) AllocAligned(nWords int, align uint32) uint32 {
	if align&(align-1) != 0 {
		b.setErr(fmt.Errorf("prog: alignment %d is not a power of two", align))
		align = 1
	}
	b.nextVar = (b.nextVar + align - 1) &^ (align - 1)
	return b.Alloc(nWords)
}

// AllocInit reserves words initialized from vals and returns the base
// byte address.
func (b *Builder) AllocInit(vals ...int64) uint32 {
	addr := b.Alloc(len(vals))
	for i, v := range vals {
		if v != 0 {
			b.data[addr+uint32(i*WordBytes)] = v
		}
	}
	return addr
}

// SetData sets the initial value of the word at byte address addr.
func (b *Builder) SetData(addr uint32, v int64) {
	if v == 0 {
		delete(b.data, addr)
		return
	}
	b.data[addr] = v
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.code = append(b.code, in)
}

// --- ALU helpers ---

// Op3 emits a three-register ALU operation rd <- rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate operation rd <- rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add emits rd <- rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.Op3(isa.ADD, rd, rs1, rs2) }

// Sub emits rd <- rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.Op3(isa.SUB, rd, rs1, rs2) }

// Addi emits rd <- rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.ADDI, rd, rs1, imm) }

// Andi emits rd <- rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.ANDI, rd, rs1, imm) }

// Xor emits rd <- rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.Op3(isa.XOR, rd, rs1, rs2) }

// Sll emits rd <- rs1 << imm.
func (b *Builder) Sll(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.SLL, rd, rs1, imm) }

// Srl emits rd <- rs1 >> imm (logical).
func (b *Builder) Srl(rd, rs1 isa.Reg, imm int64) { b.OpI(isa.SRL, rd, rs1, imm) }

// Slt emits rd <- (rs1 < rs2) ? 1 : 0.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) { b.Op3(isa.SLT, rd, rs1, rs2) }

// Li loads a 64-bit constant into rd (LUI+ORI pair or single ADDI,
// counted as the number of instructions actually emitted).
func (b *Builder) Li(rd isa.Reg, v int64) {
	if v >= -(1<<31) && v < (1<<31) {
		if v >= -(1<<15) && v < (1<<15) {
			b.Addi(rd, isa.R0, v)
			return
		}
		b.Emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: v >> 16})
		if low := v & 0xffff; low != 0 {
			b.OpI(isa.ORI, rd, rd, low)
		}
		return
	}
	// Wide constant: build with LUI/ORI/SLL sequence.
	b.Emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: v >> 48})
	b.OpI(isa.ORI, rd, rd, (v>>32)&0xffff)
	b.Sll(rd, rd, 16)
	b.OpI(isa.ORI, rd, rd, (v>>16)&0xffff)
	b.Sll(rd, rd, 16)
	b.OpI(isa.ORI, rd, rd, v&0xffff)
}

// Mult emits HI:LO <- rs1 * rs2.
func (b *Builder) Mult(rs1, rs2 isa.Reg) { b.Emit(isa.Inst{Op: isa.MULT, Rs1: rs1, Rs2: rs2}) }

// Div emits LO <- rs1 / rs2, HI <- rs1 % rs2.
func (b *Builder) Div(rs1, rs2 isa.Reg) { b.Emit(isa.Inst{Op: isa.DIV, Rs1: rs1, Rs2: rs2}) }

// Mflo emits rd <- LO.
func (b *Builder) Mflo(rd isa.Reg) { b.Emit(isa.Inst{Op: isa.MFLO, Rd: rd}) }

// Mfhi emits rd <- HI.
func (b *Builder) Mfhi(rd isa.Reg) { b.Emit(isa.Inst{Op: isa.MFHI, Rd: rd}) }

// --- FP helpers ---

// Fadd emits fd <- fs1 + fs2 (2-cycle FP class).
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) { b.Op3(isa.FADD, fd, fs1, fs2) }

// Fsub emits fd <- fs1 - fs2.
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) { b.Op3(isa.FSUB, fd, fs1, fs2) }

// FmulS emits fd <- fs1 * fs2 (single precision, 4 cycles).
func (b *Builder) FmulS(fd, fs1, fs2 isa.Reg) { b.Op3(isa.FMULS, fd, fs1, fs2) }

// FmulD emits fd <- fs1 * fs2 (double precision, 5 cycles).
func (b *Builder) FmulD(fd, fs1, fs2 isa.Reg) { b.Op3(isa.FMULD, fd, fs1, fs2) }

// FdivD emits fd <- fs1 / fs2 (double precision, 15 cycles).
func (b *Builder) FdivD(fd, fs1, fs2 isa.Reg) { b.Op3(isa.FDIVD, fd, fs1, fs2) }

// Mtf moves an integer register into an FP register.
func (b *Builder) Mtf(fd, rs isa.Reg) { b.Emit(isa.Inst{Op: isa.MTF, Rd: fd, Rs1: rs}) }

// Mff moves an FP register into an integer register.
func (b *Builder) Mff(rd, fs isa.Reg) { b.Emit(isa.Inst{Op: isa.MFF, Rd: rd, Rs1: fs}) }

// --- memory helpers ---

// Lw emits rd <- Mem[rs1+imm].
func (b *Builder) Lw(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LW, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sw emits Mem[rs1+imm] <- rs2.
func (b *Builder) Sw(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.SW, Rs2: rs2, Rs1: rs1, Imm: imm})
}

// Lb emits rd <- sign-extended byte at rs1+imm.
func (b *Builder) Lb(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LB, Rd: rd, Rs1: rs1, Imm: imm})
}

// Lbu emits rd <- zero-extended byte at rs1+imm.
func (b *Builder) Lbu(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LBU, Rd: rd, Rs1: rs1, Imm: imm})
}

// Lh emits rd <- sign-extended halfword at rs1+imm.
func (b *Builder) Lh(rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LH, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sb emits the low byte of rs2 into Mem[rs1+imm].
func (b *Builder) Sb(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.SB, Rs2: rs2, Rs1: rs1, Imm: imm})
}

// Sh emits the low halfword of rs2 into Mem[rs1+imm].
func (b *Builder) Sh(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.SH, Rs2: rs2, Rs1: rs1, Imm: imm})
}

// --- control helpers ---

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.code), label: label})
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Beq emits a branch to label if rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) { b.branch(isa.BEQ, rs1, rs2, label) }

// Bne emits a branch to label if rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) { b.branch(isa.BNE, rs1, rs2, label) }

// Blt emits a branch to label if rs1 < rs2.
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) { b.branch(isa.BLT, rs1, rs2, label) }

// Bge emits a branch to label if rs1 >= rs2.
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) { b.branch(isa.BGE, rs1, rs2, label) }

// J emits an unconditional jump to label.
func (b *Builder) J(label string) { b.branch(isa.J, isa.NoReg, isa.NoReg, label) }

// Jal emits a call to label (RA <- return PC).
func (b *Builder) Jal(label string) { b.branch(isa.JAL, isa.NoReg, isa.NoReg, label) }

// Jr emits an indirect jump to the address in rs1 (use with RA to return).
func (b *Builder) Jr(rs1 isa.Reg) { b.Emit(isa.Inst{Op: isa.JR, Rs1: rs1}) }

// Ret emits a return (jr ra).
func (b *Builder) Ret() { b.Jr(isa.RA) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Halt emits a HALT.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// Program resolves fixups and returns the assembled program. It returns
// an error if any label was duplicated or left unresolved.
func (b *Builder) Program() (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			b.setErr(fmt.Errorf("prog: unresolved label %q", f.label))
			continue
		}
		b.code[f.instIdx].Target = pc
	}
	if b.err != nil {
		return nil, b.err
	}
	return &Program{
		Code:   b.code,
		Entry:  TextBase,
		Data:   b.data,
		Labels: b.labels,
	}, nil
}

// MustProgram is Program but panics on assembly errors; intended for
// statically-known-correct workload builders and tests.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
