package prog

import (
	"testing"

	"mdspec/internal/isa"
)

func TestLabelResolution(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Bne(isa.R1, isa.R2, "top") // backward
	b.Beq(isa.R1, isa.R2, "end") // forward
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != TextBase {
		t.Errorf("backward branch target = %#x, want %#x", p.Code[1].Target, TextBase)
	}
	wantEnd := PCOf(4)
	if p.Code[2].Target != wantEnd {
		t.Errorf("forward branch target = %#x, want %#x", p.Code[2].Target, wantEnd)
	}
	if p.Labels["end"] != wantEnd {
		t.Errorf("label map end = %#x, want %#x", p.Labels["end"], wantEnd)
	}
}

func TestUnresolvedLabel(t *testing.T) {
	b := NewBuilder()
	b.J("nowhere")
	if _, err := b.Program(); err == nil {
		t.Fatal("expected error for unresolved label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Program(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestAllocSequential(t *testing.T) {
	b := NewBuilder()
	a1 := b.Alloc(4)
	a2 := b.Alloc(2)
	if a1 != DataBase {
		t.Errorf("first alloc = %#x, want %#x", a1, DataBase)
	}
	if a2 != DataBase+4*WordBytes {
		t.Errorf("second alloc = %#x, want %#x", a2, DataBase+4*WordBytes)
	}
}

func TestAllocInit(t *testing.T) {
	b := NewBuilder()
	base := b.AllocInit(10, 0, 30)
	b.Halt()
	p := b.MustProgram()
	if p.Data[base] != 10 {
		t.Errorf("word 0 = %d, want 10", p.Data[base])
	}
	if _, present := p.Data[base+WordBytes]; present {
		t.Error("zero word should not be materialized")
	}
	if p.Data[base+2*WordBytes] != 30 {
		t.Errorf("word 2 = %d, want 30", p.Data[base+2*WordBytes])
	}
}

func TestIndexOfAndAt(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Halt()
	p := b.MustProgram()
	if i := p.IndexOf(TextBase + 4); i != 1 {
		t.Errorf("IndexOf = %d, want 1", i)
	}
	if i := p.IndexOf(TextBase - 4); i != -1 {
		t.Errorf("IndexOf below text = %d, want -1", i)
	}
	if i := p.IndexOf(PCOf(2)); i != -1 {
		t.Errorf("IndexOf past end = %d, want -1", i)
	}
	in, ok := p.At(TextBase + 4)
	if !ok || in.Op != isa.HALT {
		t.Error("At(TextBase+4) should be HALT")
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	// Small constants should assemble to a single ADDI.
	b := NewBuilder()
	b.Li(isa.R1, 42)
	if b.Len() != 1 || b.code[0].Op != isa.ADDI {
		t.Errorf("Li(42) emitted %d insts, first %v", b.Len(), b.code[0].Op)
	}
	// Verify each width class round-trips through a tiny interpreter.
	for _, v := range []int64{0, 1, -1, 32767, -32768, 65536, 1 << 20, -(1 << 20), 1 << 40, -(1 << 40), 0x1234_5678_9abc} {
		b := NewBuilder()
		b.Li(isa.R1, v)
		if got := evalLi(t, b.code); got != v {
			t.Errorf("Li(%d) evaluates to %d", v, got)
		}
	}
}

// evalLi interprets the ALU-only instruction sequence emitted by Li.
func evalLi(t *testing.T, code []isa.Inst) int64 {
	t.Helper()
	var regs [isa.NumRegs]int64
	for i := range code {
		in := &code[i]
		switch in.Op {
		case isa.ADDI:
			regs[in.Rd] = regs[in.Rs1] + in.Imm
		case isa.LUI:
			regs[in.Rd] = in.Imm << 16
		case isa.ORI:
			regs[in.Rd] = regs[in.Rs1] | in.Imm
		case isa.SLL:
			regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
		default:
			t.Fatalf("unexpected op %v in Li expansion", in.Op)
		}
	}
	return regs[isa.R1]
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder()
	if b.PC() != TextBase {
		t.Errorf("initial PC = %#x, want %#x", b.PC(), TextBase)
	}
	b.Nop()
	if b.PC() != TextBase+isa.InstBytes {
		t.Errorf("PC after one inst = %#x", b.PC())
	}
}
