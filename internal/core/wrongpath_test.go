package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestWrongPathFetchPollutes(t *testing.T) {
	// With wrong-path fetch enabled, branch-heavy codes must issue more
	// I-cache accesses and must not get faster.
	p := workload.MustBuild("099.go") // noisiest branches in the suite
	base := config.Default128().WithPolicy(config.Naive)
	wp := base
	wp.WrongPathFetch = true

	plain, err := New(base, emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := plain.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	polluted, err := New(wp, emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := polluted.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ICacheAccesses <= r1.ICacheAccesses {
		t.Errorf("wrong-path fetch should add I-cache traffic: %d vs %d",
			r2.ICacheAccesses, r1.ICacheAccesses)
	}
	// Wrong-path fetch can act as pollution or as inadvertent
	// prefetching (both are real effects); it must stay second-order.
	if ratio := r2.IPC() / r1.IPC(); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("wrong-path fetch changed IPC by more than 10%%: %.3f vs %.3f", r2.IPC(), r1.IPC())
	}
	if r2.Committed != r1.Committed {
		t.Errorf("wrong-path fetch must not change architectural results: %d vs %d",
			r2.Committed, r1.Committed)
	}
}

func TestWrongPathFetchDeterministic(t *testing.T) {
	cfg := config.Default128().WithPolicy(config.Sync)
	cfg.WrongPathFetch = true
	run := func() int64 {
		pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild("126.gcc"))))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.Run(20_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic with wrong-path fetch: %d vs %d", a, b)
	}
}
