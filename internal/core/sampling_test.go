package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestSampledRunProgresses(t *testing.T) {
	p := workload.MustBuild("129.compress")
	pl, err := New(config.Default128().WithPolicy(config.Sync), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.RunSampled(40_000, 5_000, 10_000) // the paper's 1:2 ratio
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 40_000 {
		t.Fatalf("committed %d, want >= 40000", r.Committed)
	}
	if r.Skipped == 0 {
		t.Fatal("sampled run should have skipped instructions functionally")
	}
	// 7 functional windows of 10k (one after each full timing window).
	if r.Skipped < 50_000 || r.Skipped > 80_000 {
		t.Errorf("skipped = %d, want about 70k", r.Skipped)
	}
	if r.IPC() <= 0 || r.IPC() > 8 {
		t.Errorf("implausible sampled IPC %.3f", r.IPC())
	}
}

func TestSampledCloseToFullTiming(t *testing.T) {
	// The paper found sampling changes results by <= ~3%. Our workloads
	// are phase-free, so sampled and full IPC should agree loosely.
	p := workload.MustBuild("102.swim")
	full, err := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := full.Run(60_000)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sampled.RunSampled(30_000, 10_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sr.IPC() / fr.IPC()
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("sampled IPC %.3f vs full %.3f (ratio %.3f): sampling distorts too much",
			sr.IPC(), fr.IPC(), ratio)
	}
}

func TestSampledRejectsBadArgs(t *testing.T) {
	p := workload.KernelStream(0)
	pl, _ := New(config.Default128(), emu.NewTrace(emu.New(p)))
	if _, err := pl.RunSampled(1000, 0, 10); err == nil {
		t.Error("zero timing window should error")
	}
	pl2, _ := New(config.Default128().WithPolicy(config.Naive).WithSplitWindow(4), emu.NewTrace(emu.New(p)))
	if _, err := pl2.RunSampled(1000, 100, 100); err == nil {
		t.Error("split-window sampling should error")
	}
}

func TestSampledFiniteProgramEnds(t *testing.T) {
	p := workload.KernelRecurrence(500)
	pl, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	r, err := pl.RunSampled(1<<20, 1_000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed+r.Skipped < 3000 {
		t.Errorf("run should cover the whole program: committed %d + skipped %d", r.Committed, r.Skipped)
	}
}
