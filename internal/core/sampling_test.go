package core

import (
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func TestSampledRunProgresses(t *testing.T) {
	p := workload.MustBuild("129.compress")
	pl, err := New(config.Default128().WithPolicy(config.Sync), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.RunSampled(40_000, 5_000, 10_000) // the paper's 1:2 ratio
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 40_000 {
		t.Fatalf("committed %d, want >= 40000", r.Committed)
	}
	if r.Skipped == 0 {
		t.Fatal("sampled run should have skipped instructions functionally")
	}
	// 7 functional windows of 10k (one after each full timing window).
	if r.Skipped < 50_000 || r.Skipped > 80_000 {
		t.Errorf("skipped = %d, want about 70k", r.Skipped)
	}
	if r.IPC() <= 0 || r.IPC() > 8 {
		t.Errorf("implausible sampled IPC %.3f", r.IPC())
	}
}

func TestSampledCloseToFullTiming(t *testing.T) {
	// The paper found sampling changes results by <= ~3%. Our workloads
	// are phase-free, so sampled and full IPC should agree loosely.
	p := workload.MustBuild("102.swim")
	full, err := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := full.Run(60_000)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sampled.RunSampled(30_000, 10_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sr.IPC() / fr.IPC()
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("sampled IPC %.3f vs full %.3f (ratio %.3f): sampling distorts too much",
			sr.IPC(), fr.IPC(), ratio)
	}
}

func TestSampledRejectsBadArgs(t *testing.T) {
	p := workload.KernelStream(0)
	pl, _ := New(config.Default128(), emu.NewTrace(emu.New(p)))
	if _, err := pl.RunSampled(1000, 0, 10); err == nil {
		t.Error("zero timing window should error")
	}
	pl2, _ := New(config.Default128().WithPolicy(config.Naive).WithSplitWindow(4), emu.NewTrace(emu.New(p)))
	if _, err := pl2.RunSampled(1000, 100, 100); err == nil {
		t.Error("split-window sampling should error")
	}
}

func TestSampledFiniteProgramEnds(t *testing.T) {
	p := workload.KernelRecurrence(500)
	pl, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	r, err := pl.RunSampled(1<<20, 1_000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed+r.Skipped < 3000 {
		t.Errorf("run should cover the whole program: committed %d + skipped %d", r.Committed, r.Skipped)
	}
}

// TestSampledRunDeterministic: two sampled runs of the same benchmark
// under the same configuration must agree on every counter — the
// simulator has no hidden nondeterminism for sampling to amplify.
func TestSampledRunDeterministic(t *testing.T) {
	run := func() stats.Run {
		p := workload.MustBuild("099.go")
		pl, err := New(config.Default128().WithPolicy(config.Sync), emu.NewTrace(emu.New(p)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.RunSampled(24_000, 3_000, 6_000)
		if err != nil {
			t.Fatal(err)
		}
		return *r
	}
	first, again := run(), run()
	if !reflect.DeepEqual(first, again) {
		t.Errorf("sampled runs differ:\nfirst: %+v\nagain: %+v", first, again)
	}
}

// TestSampledTraceEndsMidFunctionalWindow: when the program runs out in
// the middle of a functional window, the run must re-anchor cleanly at
// the trace end and cover every instruction exactly once rather than
// stall or overrun.
func TestSampledTraceEndsMidFunctionalWindow(t *testing.T) {
	p := workload.KernelRecurrence(500)
	full, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	fr, err := full.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	length := fr.Committed

	// One timing window, then a functional window longer than the rest of
	// the program: the trace necessarily ends inside the functional skip.
	pl, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	r, err := pl.RunSampled(2*length, 1_000, 2*length)
	if err != nil {
		t.Fatal(err)
	}
	if r.Skipped == 0 {
		t.Fatal("functional window should have skipped instructions")
	}
	if got := r.Committed + r.Skipped; got != length {
		t.Errorf("covered %d instructions (committed %d + skipped %d), program has %d",
			got, r.Committed, r.Skipped, length)
	}
}

// TestSampledBudgetExceedsProgram: a timing budget larger than the whole
// program degenerates to a full timing run — everything commits in
// timing mode, nothing is skipped.
func TestSampledBudgetExceedsProgram(t *testing.T) {
	p := workload.KernelRecurrence(200)
	full, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	fr, err := full.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}

	pl, _ := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	r, err := pl.RunSampled(1<<20, 1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Skipped != 0 {
		t.Errorf("oversized timing window skipped %d instructions", r.Skipped)
	}
	if r.Committed != fr.Committed {
		t.Errorf("committed %d, full run committed %d", r.Committed, fr.Committed)
	}
}

// TestSampledIntervalWarmupClamped: a warm-up longer than the stream
// before the segment start is clamped, so segment 0 with any warm-up
// equals segment 0 with none.
func TestSampledIntervalWarmupClamped(t *testing.T) {
	run := func(warmup int64) stats.Run {
		p := workload.MustBuild("129.compress")
		pl, err := New(config.Default128().WithPolicy(config.Sync), emu.NewTrace(emu.New(p)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.RunSampledInterval(0, 18_000, 3_000, 6_000, warmup)
		if err != nil {
			t.Fatal(err)
		}
		return *r
	}
	none, clamped := run(0), run(5_000)
	if !reflect.DeepEqual(none, clamped) {
		t.Errorf("warm-up at stream start changed the result:\nnone: %+v\nclamped: %+v", none, clamped)
	}
}
