package core

import (
	"mdspec/internal/bpred"
	"mdspec/internal/cache"
	"mdspec/internal/emu"
)

// Warmer functionally replays a dynamic instruction stream into a cache
// hierarchy and a branch predictor without modeling any pipeline timing.
// It is the standalone generalization of the sampled run's functional
// windows (§3.1): the caches observe every memory reference and the
// predictor observes every conditional branch, so microarchitectural
// state stays warm, but no cycles are charged and no Pipeline is needed.
//
// A Warmer has two users: the Pipeline's own functional windows during
// RunSampled, and the interval-parallel engine (internal/parsim), whose
// workers fast-forward a fresh machine to their segment start before
// running the timing/functional alternation within the segment.
type Warmer struct {
	trace emu.Stream
	hier  *cache.Hierarchy
	bp    *bpred.Predictor

	seq       int64 // next stream position to replay
	lastBlock uint32
	haveBlock bool
	ended     bool
}

// NewWarmer returns a Warmer that replays trace into hier and bp,
// starting at stream position 0.
func NewWarmer(trace emu.Stream, hier *cache.Hierarchy, bp *bpred.Predictor) *Warmer {
	return &Warmer{trace: trace, hier: hier, bp: bp}
}

// Seq returns the next stream position the warmer will replay.
func (w *Warmer) Seq() int64 { return w.seq }

// Ended reports whether the warmer has observed the end of the program.
func (w *Warmer) Ended() bool { return w.ended }

// Advance functionally replays up to n instructions, warming the caches
// and the branch predictor, and returns how many instructions were
// actually replayed (fewer than n only when the program ends). It is the
// per-shard fast-forward loop of the interval-parallel engine and must
// stay allocation-free in the steady state.
//
//md:hotpath
func (w *Warmer) Advance(n int64) int64 {
	var i int64
	for ; i < n; i++ {
		d := w.trace.At(w.seq)
		if d == nil {
			w.ended = true
			break
		}
		if blk := d.PC >> iCacheBlockShift; !w.haveBlock || blk != w.lastBlock {
			w.hier.I.Warm(d.PC, false)
			w.lastBlock, w.haveBlock = blk, true
		}
		switch {
		case d.IsLoad():
			w.hier.D.Warm(d.Addr, false)
		case d.IsStore():
			w.hier.D.Warm(d.Addr, true)
		case d.Inst.Op.IsCondBranch():
			pred := w.bp.PredictDirection(d.PC)
			hist := w.bp.History()
			w.bp.SpeculateHistory(pred)
			w.bp.Resolve(d.PC, hist, pred, d.Taken)
		}
		w.seq++
	}
	return i
}

// AdvanceTo replays until the warmer's position reaches seq (or the
// program ends) and returns the number of instructions replayed.
func (w *Warmer) AdvanceTo(seq int64) int64 {
	if seq <= w.seq {
		return 0
	}
	return w.Advance(seq - w.seq)
}
