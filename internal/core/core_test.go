package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
	"mdspec/internal/stats"
)

// aluLoop builds a loop of independent ALU work (no memory traffic).
func aluLoop(iters int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(isa.R1, iters)
	b.Label("loop")
	b.Addi(isa.R2, isa.R2, 1)
	b.Addi(isa.R3, isa.R3, 2)
	b.Addi(isa.R4, isa.R4, 3)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bne(isa.R1, isa.R0, "loop")
	b.Halt()
	return b.MustProgram()
}

// recurrence builds the paper's Figure 7 loop: each iteration loads the
// value the previous iteration stored (a[i] = a[i-1] + 1), a loop-carried
// memory dependence at short distance.
func recurrence(iters int64) *prog.Program {
	b := prog.NewBuilder()
	arr := b.AllocInit(1)
	b.Li(isa.R1, int64(arr)) // &a[0]
	b.Li(isa.R5, iters)
	b.Label("loop")
	b.Lw(isa.R2, isa.R1, 0)              // load a[i-1]
	b.Addi(isa.R2, isa.R2, 1)            // compute a[i]
	b.Sw(isa.R2, isa.R1, prog.WordBytes) // store a[i]
	b.Addi(isa.R1, isa.R1, prog.WordBytes)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	return b.MustProgram()
}

// disjoint builds a loop whose stores and loads touch unrelated arrays:
// every load has only false (ambiguous but untrue) dependences. The
// loads feed a loop-carried multiply-accumulate whose result is stored,
// so stores execute late and — under NAS/NO — pointlessly delay the next
// loads on the critical path.
func disjoint(iters int64) *prog.Program {
	if iters > 4000 {
		panic("disjoint: iters must fit the array")
	}
	b := prog.NewBuilder()
	src := b.Alloc(4096)
	dst := b.Alloc(4096)
	for i := 0; i < 4096; i++ {
		b.SetData(src+uint32(i*prog.WordBytes), int64(i%97))
	}
	b.Li(isa.R1, int64(src))
	b.Li(isa.R2, int64(dst))
	b.Li(isa.R5, iters)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Lw(isa.R3, isa.R1, 0) // a[i]: never stored to (false deps only)
	b.Addi(isa.R1, isa.R1, 8)
	b.Mult(isa.R6, isa.R7) // acc *= 3 (loop-carried, slow)
	b.Mflo(isa.R6)
	b.Add(isa.R6, isa.R6, isa.R3) // fold the load into the chain
	b.Sw(isa.R6, isa.R2, 0)       // b[i] = acc: data is late
	b.Addi(isa.R2, isa.R2, 8)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	return b.MustProgram()
}

// splitBait reproduces the paper's Figure 7 scenario at task granularity:
// the loop body is exactly one split-window task (32 instructions), with
// a store to a global at the END of each iteration and the dependent
// load of that global at the START of the next. In a split window the
// younger unit fetches and issues its load long before the older unit
// even fetches the store; in a continuous window the store always posts
// its address before the (later-fetched) load can access memory.
func splitBait(iters int64) *prog.Program {
	b := prog.NewBuilder()
	g := b.AllocInit(5)
	b.Li(isa.R9, int64(g)) // 1 inst (LUI)
	b.Li(isa.R5, iters)    // 1 inst
	b.Li(isa.R7, 3)        // 1 inst
	for i := 3; i < 32; i++ {
		b.Nop() // align the loop body to a task boundary
	}
	b.Label("loop")               // 32-instruction body == one 128/4 task
	b.Lw(isa.R3, isa.R9, 0)       // 0: load g (address ready instantly)
	b.Add(isa.R4, isa.R3, isa.R7) // 1: propagate the loaded value
	for i := 2; i < 27; i++ {     // 2..26: independent filler
		b.Addi(isa.R10, isa.R10, 1)
	}
	b.Add(isa.R2, isa.R4, isa.R5) // 27: store value changes every iteration
	b.Sw(isa.R2, isa.R9, 0)       // 28: store g at the task's end
	b.Addi(isa.R5, isa.R5, -1)    // 29
	b.Nop()                       // 30: pad so the taken-branch body is exactly 32
	b.Bne(isa.R5, isa.R0, "loop") // 31
	b.Halt()
	return b.MustProgram()
}

// simulate runs program p to completion (or cap) under cfg.
func simulate(t *testing.T, p *prog.Program, cfg config.Machine, cap int64) *stats.Run {
	t.Helper()
	pl, err := New(cfg, emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(cap)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func allPolicies() []config.Policy {
	return []config.Policy{
		config.NoSpec, config.Naive, config.Selective,
		config.StoreBarrier, config.Sync, config.Oracle, config.StoreSets,
	}
}

func TestRunCompletesAllPolicies(t *testing.T) {
	for _, pol := range allPolicies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			r := simulate(t, recurrence(300), config.Default128().WithPolicy(pol), 1<<20)
			if r.Committed == 0 || r.Cycles == 0 {
				t.Fatalf("no progress: %+v", r)
			}
			if r.IPC() <= 0 || r.IPC() > float64(config.Default128().IssueWidth) {
				t.Errorf("implausible IPC %v", r.IPC())
			}
		})
	}
	for _, lat := range []int{0, 1, 2} {
		for _, pol := range []config.Policy{config.NoSpec, config.Naive} {
			cfg := config.Default128().WithPolicy(pol).WithAddressScheduler(lat)
			t.Run(cfg.Name(), func(t *testing.T) {
				r := simulate(t, recurrence(300), cfg, 1<<20)
				if r.Committed == 0 {
					t.Fatalf("no progress: %+v", r)
				}
			})
		}
	}
}

func TestCommittedCountsExact(t *testing.T) {
	// Committing to completion must retire exactly the dynamic
	// instruction count of the program, once, in order.
	p := recurrence(100)
	var want int64
	m := emu.New(p)
	var d emu.DynInst
	for m.Step(&d) {
		want++
	}
	for _, pol := range []config.Policy{config.NoSpec, config.Naive, config.Sync} {
		r := simulate(t, p, config.Default128().WithPolicy(pol), 1<<20)
		if r.Committed != want {
			t.Errorf("%v committed %d, want %d", pol, r.Committed, want)
		}
	}
}

func TestOracleNeverMisspeculates(t *testing.T) {
	r := simulate(t, recurrence(500), config.Default128().WithPolicy(config.Oracle), 1<<20)
	if r.Misspeculations != 0 {
		t.Errorf("oracle misspeculated %d times", r.Misspeculations)
	}
}

func TestNoSpecNeverMisspeculates(t *testing.T) {
	r := simulate(t, recurrence(500), config.Default128().WithPolicy(config.NoSpec), 1<<20)
	if r.Misspeculations != 0 || r.SquashedInsts != 0 {
		t.Errorf("no-speculation squashed: %+v", r)
	}
}

func TestNaiveMisspeculatesOnRecurrence(t *testing.T) {
	r := simulate(t, recurrence(500), config.Default128().WithPolicy(config.Naive), 1<<20)
	if r.Misspeculations == 0 {
		t.Error("naive speculation should violate the loop-carried dependence")
	}
	if r.SquashedInsts == 0 {
		t.Error("squashes should discard work")
	}
}

func TestSyncLearnsAndOutperformsNaive(t *testing.T) {
	nav := simulate(t, recurrence(2000), config.Default128().WithPolicy(config.Naive), 1<<21)
	syn := simulate(t, recurrence(2000), config.Default128().WithPolicy(config.Sync), 1<<21)
	if syn.MisspecRate() >= nav.MisspecRate() {
		t.Errorf("SYNC misspec rate %.4f should be below NAV %.4f",
			syn.MisspecRate(), nav.MisspecRate())
	}
	if syn.IPC() < nav.IPC() {
		t.Errorf("SYNC IPC %.3f should be >= NAV %.3f on a misspeculating loop",
			syn.IPC(), nav.IPC())
	}
}

func TestStoreSetsLearns(t *testing.T) {
	nav := simulate(t, recurrence(2000), config.Default128().WithPolicy(config.Naive), 1<<21)
	ss := simulate(t, recurrence(2000), config.Default128().WithPolicy(config.StoreSets), 1<<21)
	if ss.MisspecRate() >= nav.MisspecRate() {
		t.Errorf("store sets misspec %.4f should be below NAV %.4f",
			ss.MisspecRate(), nav.MisspecRate())
	}
}

func TestOracleBeatsNoSpecOnFalseDeps(t *testing.T) {
	or := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.Oracle), 1<<21)
	no := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.NoSpec), 1<<21)
	if or.IPC() <= no.IPC()*1.2 {
		t.Errorf("oracle IPC %.3f should clearly beat NAS/NO %.3f when only false deps exist",
			or.IPC(), no.IPC())
	}
}

func TestFalseDependenceAccounting(t *testing.T) {
	// Disjoint program: delayed loads have no true dependences.
	no := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.NoSpec), 1<<21)
	if no.FalseDepRate() < 0.3 {
		t.Errorf("false-dependence rate %.3f too low for the disjoint workload", no.FalseDepRate())
	}
	if no.FalseDepLatency() <= 0 {
		t.Error("false-dependence resolution latency should be positive")
	}
	// Recurrence program: the delayed load's dependence is real.
	rec := simulate(t, recurrence(1000), config.Default128().WithPolicy(config.NoSpec), 1<<21)
	if rec.FalseDepRate() > 0.35 {
		t.Errorf("false-dependence rate %.3f too high for the recurrence workload", rec.FalseDepRate())
	}
}

func TestAddressSchedulerAvoidsMisspeculation(t *testing.T) {
	// §3.4/§3.7: in a continuous window with an address-based scheduler,
	// naive speculation misspeculates virtually never.
	r := simulate(t, recurrence(1000), config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0), 1<<21)
	if rate := r.MisspecRate(); rate > 0.001 {
		t.Errorf("AS/NAV misspec rate %.4f should be ~0 in a continuous window", rate)
	}
}

func TestSplitWindowMisspeculatesWithAS(t *testing.T) {
	// §3.7: the same 0-cycle AS/NAV hardware that avoids virtually all
	// misspeculations in a continuous window cannot avoid them in a
	// split window, because younger units compute load addresses before
	// older units even fetch the stores.
	cont := simulate(t, splitBait(1000),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0), 1<<21)
	split := simulate(t, splitBait(1000),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0).WithSplitWindow(4), 1<<21)
	if cont.MisspecRate() > 0.001 {
		t.Errorf("continuous AS/NAV misspec rate %.4f should be ~0", cont.MisspecRate())
	}
	if split.Misspeculations < 100 {
		t.Errorf("split AS/NAV misspeculated only %d times; the Figure 7 effect is missing",
			split.Misspeculations)
	}
}

func TestSplitWindowCompletes(t *testing.T) {
	for _, pol := range []config.Policy{config.Naive, config.Sync, config.Oracle} {
		cfg := config.Default128().WithPolicy(pol).WithSplitWindow(4)
		r := simulate(t, recurrence(500), cfg, 1<<21)
		if r.Committed == 0 {
			t.Errorf("split window with %v made no progress", pol)
		}
	}
}

func TestALULoopThroughput(t *testing.T) {
	r := simulate(t, aluLoop(2000), config.Default128(), 1<<21)
	if r.IPC() < 2.0 {
		t.Errorf("ALU loop IPC %.3f too low; pipeline is over-serialized", r.IPC())
	}
}

func TestSmall64SlowerThanDefault128(t *testing.T) {
	big := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.Oracle), 1<<21)
	small := simulate(t, disjoint(1000), config.Small64().WithPolicy(config.Oracle), 1<<21)
	if small.IPC() > big.IPC() {
		t.Errorf("64-entry machine (%.3f) should not beat the 128-entry one (%.3f)",
			small.IPC(), big.IPC())
	}
}

func TestSchedulerLatencyHurts(t *testing.T) {
	r0 := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0), 1<<21)
	r2 := simulate(t, disjoint(1000), config.Default128().WithPolicy(config.Naive).WithAddressScheduler(2), 1<<21)
	if r2.IPC() > r0.IPC() {
		t.Errorf("2-cycle scheduler (%.3f IPC) should not beat 0-cycle (%.3f)", r2.IPC(), r0.IPC())
	}
}

func TestRunTwiceFails(t *testing.T) {
	pl, err := New(config.Default128(), emu.NewTrace(emu.New(aluLoop(10))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(1000); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default128().WithPolicy(config.Sync).WithAddressScheduler(0)
	if _, err := New(cfg, emu.NewTrace(emu.New(aluLoop(10)))); err == nil {
		t.Fatal("AS/SYNC should be rejected")
	}
	bad := config.Default128()
	bad.Window = 0
	if _, err := New(bad, emu.NewTrace(emu.New(aluLoop(10)))); err == nil {
		t.Fatal("zero window should be rejected")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A tight store->load pair on the same address must forward, and
	// under ORACLE must never read the cache for the forwarded load.
	b := prog.NewBuilder()
	addr := b.Alloc(8)
	b.Li(isa.R1, int64(addr))
	b.Li(isa.R5, 500)
	b.Label("loop")
	b.Addi(isa.R2, isa.R2, 7)
	b.Sw(isa.R2, isa.R1, 0)
	b.Lw(isa.R3, isa.R1, 0) // always forwarded from the store
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	r := simulate(t, b.MustProgram(), config.Default128().WithPolicy(config.Oracle), 1<<21)
	if r.Forwards < 400 {
		t.Errorf("forwards = %d, want ~500", r.Forwards)
	}
	if r.Misspeculations != 0 {
		t.Error("oracle must not misspeculate on forwarding")
	}
}
