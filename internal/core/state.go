package core

import (
	"encoding/binary"
	"errors"

	"mdspec/internal/bpred"
	"mdspec/internal/cache"
	"mdspec/internal/config"
	"mdspec/internal/emu"
)

// Warm-state export/import for the Warmer: everything a functional
// warming pass accumulates — the cache hierarchy, the branch predictor,
// and the warmer's own stream cursor — flattened to bytes and restored
// bit-exactly. This is the state a checkpoint frame (internal/ckpt)
// carries; restoring a frame captured at stream position S leaves the
// machine indistinguishable from one that functionally advanced 0→S
// itself.

// Sentinel decode errors (RestoreState is a hot path).
var (
	// ErrStateTruncated reports a warm-state buffer shorter than its
	// layout implies.
	ErrStateTruncated = errors.New("core: warm state truncated")
	// ErrPipelineUsed reports a RestoreWarm call on a pipeline that has
	// already simulated or warmed.
	ErrPipelineUsed = errors.New("core: RestoreWarm called on a used Pipeline")
)

const warmerHdrBytes = 8 + 4 + 1 // seq, lastBlock, flags

// newWarmState builds the cache hierarchy and branch predictor implied
// by a machine configuration — the warm-state-relevant slice of the
// config. Pipeline construction and standalone checkpoint capture both
// go through here, so a captured frame restores into machines with the
// exact same geometry.
func newWarmState(perfectCaches bool, kind bpred.Kind) (*cache.Hierarchy, *bpred.Predictor) {
	h := cache.Table2()
	if perfectCaches {
		h = cache.Perfect()
	}
	bpCfg := bpred.Default()
	bpCfg.Kind = kind
	return h, bpred.New(bpCfg)
}

// NewMachineWarmer returns a standalone Warmer over the cache hierarchy
// and branch predictor that cfg's Pipeline would build — the capture
// side of checkpointing: advance it through the stream and snapshot its
// state at the positions of interest.
func NewMachineWarmer(cfg config.Machine, trace emu.Stream) *Warmer {
	h, bp := newWarmState(cfg.PerfectCaches, cfg.BranchPredictor)
	return NewWarmer(trace, h, bp)
}

// StateLen returns the exact AppendState footprint of this warmer.
func (w *Warmer) StateLen() int {
	return warmerHdrBytes + w.hier.StateLen() + w.bp.StateLen()
}

// AppendState appends the warmer's complete warm state — cursor, cache
// hierarchy, branch predictor — to b and returns the extended slice.
func (w *Warmer) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(w.seq))
	b = binary.LittleEndian.AppendUint32(b, w.lastBlock)
	var flags byte
	if w.haveBlock {
		flags |= 1
	}
	if w.ended {
		flags |= 2
	}
	b = append(b, flags)
	b = w.hier.AppendState(b)
	return w.bp.AppendState(b)
}

// RestoreState overwrites the warmer's state from the front of b and
// returns the bytes consumed. On error the warmer may be partially
// restored; callers must discard the machine.
//
//md:hotpath
func (w *Warmer) RestoreState(b []byte) (int, error) {
	if len(b) < warmerHdrBytes {
		return 0, ErrStateTruncated
	}
	seq := int64(binary.LittleEndian.Uint64(b))
	lastBlock := binary.LittleEndian.Uint32(b[8:])
	flags := b[12]
	off := warmerHdrBytes
	n, err := w.hier.RestoreState(b[off:])
	off += n
	if err != nil {
		return off, err
	}
	n, err = w.bp.RestoreState(b[off:])
	off += n
	if err != nil {
		return off, err
	}
	w.seq = seq
	w.lastBlock = lastBlock
	w.haveBlock = flags&1 != 0
	w.ended = flags&2 != 0
	return off, nil
}

// RestoreWarm imports a warm-state snapshot into a fresh pipeline, as if
// the pipeline had functionally fast-forwarded to the snapshot's stream
// position itself. The next RunSampledInterval then only advances the
// residue between the snapshot position and its warm-up start.
//
// It must be called before any simulation; restoring into a used
// pipeline returns ErrPipelineUsed. On a decode error the pipeline may
// hold partial state and must be discarded (the interval-parallel
// engine rebuilds the machine and falls back to a full functional
// fast-forward).
func (p *Pipeline) RestoreWarm(state []byte) error {
	if p.cycle != 0 || p.res.Committed != 0 || p.headSeq != 0 || p.fetchSeq != 0 || p.warm.seq != 0 {
		return ErrPipelineUsed
	}
	_, err := p.warm.RestoreState(state)
	return err
}
