package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestInOrderRuns(t *testing.T) {
	m := NewInOrder(config.Default128(), emu.NewTrace(emu.New(workload.MustBuild("126.gcc"))))
	r, err := m.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 20_000 {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.IPC() <= 0 || r.IPC() > 1 {
		t.Errorf("in-order scalar IPC must be in (0, 1], got %.3f", r.IPC())
	}
	if _, err := m.Run(10); err == nil {
		t.Error("second Run should fail")
	}
}

func TestOutOfOrderNeverSlowerThanInOrder(t *testing.T) {
	// The differential lower bound: every OOO configuration must commit
	// the same work at least as fast as the blocking scalar model.
	for _, bench := range []string{"129.compress", "102.swim", "130.li"} {
		p := workload.MustBuild(bench)
		ref := NewInOrder(config.Default128(), emu.NewTrace(emu.New(p)))
		base, err := ref.Run(20_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []config.Machine{
			config.Default128().WithPolicy(config.NoSpec),
			config.Default128().WithPolicy(config.Naive),
			config.Small64().WithPolicy(config.NoSpec),
		} {
			pl, err := New(cfg, emu.NewTrace(emu.New(p)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := pl.Run(20_000)
			if err != nil {
				t.Fatal(err)
			}
			if r.IPC() < base.IPC() {
				t.Errorf("%s on %s: OOO IPC %.3f below in-order %.3f",
					cfg.Name(), bench, r.IPC(), base.IPC())
			}
		}
	}
}

func TestInOrderHaltingProgram(t *testing.T) {
	m := NewInOrder(config.Default128(), emu.NewTrace(emu.New(workload.KernelRecurrence(100))))
	r, err := m.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 || r.Committed > 1000 {
		t.Errorf("unexpected committed count %d", r.Committed)
	}
}
