package core

import (
	"fmt"

	"mdspec/internal/bpred"
	"mdspec/internal/cache"
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/stats"
)

// InOrder is a single-issue, in-order, blocking-cache reference model.
// It shares the branch predictor and Table 2 memory hierarchy with the
// out-of-order pipeline but executes strictly sequentially: each
// instruction waits for its operands, runs to completion, and only then
// does the next one start address generation or execution. It serves as
// a baseline (the machine class the paper's techniques improve on) and
// as a differential anchor for tests: any out-of-order configuration
// must commit the same instructions and never be slower.
type InOrder struct {
	trace emu.Stream
	hier  *cache.Hierarchy
	bp    *bpred.Predictor
	res   stats.Run
	used  bool
}

// NewInOrder builds the reference model. Only the cache selection of cfg
// is consulted (PerfectCaches); widths and policies do not apply.
func NewInOrder(cfg config.Machine, trace emu.Stream) *InOrder {
	h := cache.Table2()
	if cfg.PerfectCaches {
		h = cache.Perfect()
	}
	return &InOrder{
		trace: trace,
		hier:  h,
		bp:    bpred.New(bpred.Default()),
	}
}

// Run executes up to maxInsts instructions and returns the statistics.
func (m *InOrder) Run(maxInsts int64) (*stats.Run, error) {
	if m.used {
		return nil, fmt.Errorf("core: InOrder.Run called twice")
	}
	m.used = true
	m.res.Config = "INORDER"

	cycle := int64(0)
	var lastBlock uint32
	haveBlock := false

	for seq := int64(0); seq < maxInsts; seq++ {
		d := m.trace.At(seq)
		if d == nil {
			break
		}
		// Instruction fetch: one block at a time, blocking.
		if blk := d.PC >> iCacheBlockShift; !haveBlock || blk != lastBlock {
			cycle = m.hier.I.Access(d.PC, cycle, false)
			lastBlock, haveBlock = blk, true
		}
		// Blocking execution: every prior instruction has completed.
		start := cycle
		op := d.Inst.Op
		var done int64
		switch {
		case op.IsLoad():
			addr := start + agenLatency
			done = m.hier.D.Access(d.Addr, addr, false)
			m.res.CommittedLoads++
		case op.IsStore():
			addr := start + agenLatency
			done = m.hier.D.Access(d.Addr, addr, true)
			m.res.CommittedStores++
		case op.IsBranch():
			done = start + 1
			m.res.Branches++
			if d.Inst.Op.IsCondBranch() {
				pred := m.bp.PredictDirection(d.PC)
				hist := m.bp.History()
				m.bp.SpeculateHistory(pred)
				m.bp.Resolve(d.PC, hist, pred, d.Taken)
				if pred != d.Taken {
					m.res.BranchMispredicts++
					done += 4 // re-fetch penalty (front-end depth)
				}
			}
		default:
			done = start + int64(op.Class().Latency())
		}
		cycle = start + 1 // next instruction issues the following cycle
		if done > cycle {
			cycle = done
		}
		m.res.Committed++
	}
	m.res.Cycles = cycle
	m.res.DCacheAccesses = m.hier.D.Stats.Accesses
	m.res.DCacheMisses = m.hier.D.Stats.Misses
	m.res.ICacheAccesses = m.hier.I.Stats.Accesses
	m.res.ICacheMisses = m.hier.I.Stats.Misses
	return &m.res, nil
}
