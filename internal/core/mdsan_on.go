//go:build mdsan

// The mdsan build tag compiles cycle-level invariant checks into the
// pipeline: every step ends by validating the scheduler and
// disambiguation bookkeeping against the architectural window state,
// panicking at the first corrupted cycle instead of letting the damage
// surface thousands of cycles later as a statistics mismatch. Normal
// builds compile sanitize to an empty function (mdsan_off.go).
//
// The checks, in order:
//
//  1. Address-table mirror: the stores/loads tables and the window
//     agree in both directions — every table slot references a live,
//     matching ROB entry, and every in-flight memory op whose address
//     the hardware knows is present in its table.
//  2. Calendar-wheel accounting: the ring's event count matches its
//     buckets, overflow events never point into the drained past, and
//     scan mode leaves the wheel untouched.
//  3. Candidate bitmap: every candidate slot holds a valid entry and
//     is not simultaneously parked.
//  4. Parking: waiter lists and parkedOn agree exactly; a parked slot
//     waits on a strictly older producer that is live (or, split
//     window only, not yet dispatched); timer-parked slots have a
//     pending wheel event to wake them (a missed wakeup is a
//     livelock).
//
// The happy path allocates nothing, so the zero-allocation pin test
// also passes under -tags mdsan.
package core

import "fmt"

// mdsanState is the sanitizer's preallocated scratch: a per-slot stamp
// of the last cycle an event for the slot was seen pending, used to
// verify timer-parked slots are wake-covered without allocating.
type mdsanState struct {
	evStamp []int64
}

func (m *mdsanState) init(w int) {
	m.evStamp = make([]int64, w)
	for i := range m.evStamp {
		m.evStamp[i] = -1
	}
}

// sanitize validates the pipeline's internal bookkeeping at the end of
// one step. It panics on the first violation.
func (p *Pipeline) sanitize() {
	w := p.cfg.Window

	// Window occupancy bound.
	if p.dispatchSeq-p.headSeq > int64(w) {
		panic(fmt.Sprintf("mdsan: window over-full: head=%d dispatch=%d window=%d",
			p.headSeq, p.dispatchSeq, w))
	}

	p.sanTables()
	p.sanWheel()
	if !p.scanMode {
		p.sanCandidates()
		p.sanParking()
	}
}

// sanTables checks the address tables and store lists against the ROB,
// in both directions.
func (p *Pipeline) sanTables() {
	r := &p.rob
	// Table -> ROB: an occupied table slot references the live entry of
	// the right kind occupying that window slot. A seq match implies the
	// slot is live (free slots hold noSeq, never a table's seq).
	for s := 0; s < p.cfg.Window; s++ {
		if p.stores.in[s] {
			if r.seq[s] != p.stores.seq[s] || r.addr[s] != p.stores.addr[s] || r.flags[s]&fStore == 0 {
				panic(fmt.Sprintf("mdsan: stores table slot %d (seq %d addr %#x) does not mirror the ROB",
					s, p.stores.seq[s], p.stores.addr[s]))
			}
		}
		if p.loads.in[s] {
			if r.seq[s] != p.loads.seq[s] || r.addr[s] != p.loads.addr[s] || r.flags[s]&fLoad == 0 {
				panic(fmt.Sprintf("mdsan: loads table slot %d (seq %d addr %#x) does not mirror the ROB",
					s, p.loads.seq[s], p.loads.addr[s]))
			}
		}
	}
	// ROB -> tables: every in-flight memory op whose address the
	// hardware knows appears in its table.
	for seq := p.headSeq; seq < p.dispatchSeq; seq++ {
		s := p.slotIndex(seq)
		if r.seq[s] != seq {
			continue
		}
		f := r.flags[s]
		switch {
		case f&fLoad != 0:
			if (f&fMemIssued != 0) != p.loads.in[s] {
				panic(fmt.Sprintf("mdsan: load %d memIssued=%v but loads-table presence=%v",
					seq, f&fMemIssued != 0, p.loads.in[s]))
			}
		case f&fStore != 0:
			completed := f&fCompleted != 0
			if p.pendingStores.in[s] == completed {
				panic(fmt.Sprintf("mdsan: store %d completed=%v but pendingStores presence=%v",
					seq, completed, p.pendingStores.in[s]))
			}
			if p.cfg.UseAddressScheduler {
				// AS: a dispatched store sits in unpostedStores until
				// either the scheduler sees its address (moves to the
				// stores table) or execution completes first (drops out
				// of unpostedStores and is in neither until posting).
				switch {
				case p.unpostedStores.in[s] && p.stores.in[s]:
					panic(fmt.Sprintf("mdsan: AS store %d is both unposted and posted", seq))
				case p.unpostedStores.in[s] && completed:
					panic(fmt.Sprintf("mdsan: completed AS store %d still in unpostedStores", seq))
				case !p.unpostedStores.in[s] && !p.stores.in[s] && !completed:
					panic(fmt.Sprintf("mdsan: in-flight AS store %d in neither unpostedStores nor stores table", seq))
				}
				if p.stores.in[s] && (f&fAgen == 0 || r.addrPosted[s] > p.cycle) {
					panic(fmt.Sprintf("mdsan: AS store %d posted before its posting time %d (cycle %d)",
						seq, r.addrPosted[s], p.cycle))
				}
			} else {
				// NAS: the address is published exactly at completion.
				if p.stores.in[s] != completed {
					panic(fmt.Sprintf("mdsan: NAS store %d completed=%v but stores-table presence=%v",
						seq, completed, p.stores.in[s]))
				}
			}
		}
	}
}

// sanWheel checks the calendar wheel's accounting.
func (p *Pipeline) sanWheel() {
	ev := &p.events
	if p.scanMode {
		if ev.n != 0 || len(ev.over) != 0 {
			panic("mdsan: scan mode produced calendar events")
		}
		return
	}
	n := 0
	for i := range ev.buckets {
		n += len(ev.buckets[i])
	}
	if n != ev.n {
		panic(fmt.Sprintf("mdsan: wheel count %d != bucket total %d", ev.n, n))
	}
	for _, e := range ev.over {
		if e.at <= ev.drained {
			panic(fmt.Sprintf("mdsan: overflow event at cycle %d already drained (drained=%d)",
				e.at, ev.drained))
		}
	}
}

// sanCandidates checks that the candidate bitmap holds only valid,
// unparked window slots.
func (p *Pipeline) sanCandidates() {
	for s := int32(0); s < int32(p.cfg.Window); s++ {
		if !p.cand.has(s) {
			continue
		}
		if !p.rob.live(s) {
			panic(fmt.Sprintf("mdsan: candidate bitmap holds invalid slot %d", s))
		}
		if p.parkedOn[s] != parkNone {
			panic(fmt.Sprintf("mdsan: candidate slot %d is parked on %d", s, p.parkedOn[s]))
		}
	}
}

// sanParking checks waiter-list/parkedOn agreement, producer liveness
// and age, and event coverage of timer-parked slots.
func (p *Pipeline) sanParking() {
	w := p.cfg.Window
	// Waiter lists: every listed slot is parked on exactly that list,
	// back-links hold, and the total matches the parked population (so
	// the relation is a bijection).
	listed := 0
	for q := range p.wHead {
		for v := p.wHead[q]; v != nilSlot; v = p.wNext[v] {
			if p.parkedOn[v] != int32(q) {
				panic(fmt.Sprintf("mdsan: waiter %d on list %d but parked on %d", v, q, p.parkedOn[v]))
			}
			if nw := p.wNext[v]; nw != nilSlot && p.wPrev[nw] != v {
				panic(fmt.Sprintf("mdsan: waiter list %d back-link broken at %d", q, v))
			}
			if listed++; listed > w {
				panic(fmt.Sprintf("mdsan: waiter list %d has a link cycle", q))
			}
		}
	}
	parked := 0
	for s := range p.parkedOn {
		q := p.parkedOn[s]
		if q < 0 {
			continue // parkNone or parkTimer
		}
		parked++
		if !p.rob.live(int32(s)) {
			panic(fmt.Sprintf("mdsan: invalid slot %d is parked on %d", s, q))
		}
		if !p.rob.live(q) {
			// Continuous window never parks on a hole; the split window
			// may park on a producer that has not been dispatched yet.
			if !p.cfg.SplitWindow {
				panic(fmt.Sprintf("mdsan: slot %d parked on empty producer slot %d", s, q))
			}
			continue
		}
		if p.rob.seq[q] >= p.rob.seq[s] {
			panic(fmt.Sprintf("mdsan: slot %d (seq %d) parked on younger producer %d (seq %d)",
				s, p.rob.seq[s], q, p.rob.seq[q]))
		}
	}
	if parked != listed {
		panic(fmt.Sprintf("mdsan: %d slots parked on producers but %d on waiter lists", parked, listed))
	}
	// Timer-parked slots must have a pending wheel event to wake them:
	// stamp every slot with a pending event, then require the stamp.
	st := p.san.evStamp
	for i := range p.events.buckets {
		for _, s := range p.events.buckets[i] {
			st[s] = p.cycle
		}
	}
	for _, e := range p.events.over {
		st[e.slot] = p.cycle
	}
	for s := range p.parkedOn {
		if p.parkedOn[s] == parkTimer && st[s] != p.cycle {
			panic(fmt.Sprintf("mdsan: slot %d is timer-parked with no pending event (missed wakeup)", s))
		}
	}
}
