//go:build mdsan

package core

import (
	"strings"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
)

// These tests deliberately corrupt pipeline bookkeeping and assert the
// mdsan sanitizer catches it at the next check, proving the checks are
// armed and connected to the state they claim to guard.

// mustPanicMdsan runs f and asserts it panics with an mdsan diagnostic
// containing want.
func mustPanicMdsan(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("corruption went undetected (want mdsan panic containing %q)", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "mdsan:") || !strings.Contains(msg, want) {
			t.Fatalf("unexpected panic %v (want mdsan panic containing %q)", r, want)
		}
	}()
	f()
}

// warmPipeline runs the recurrence loop long enough to populate the
// window, address tables and calendar wheel, then hands over the live
// pipeline mid-flight.
func warmPipeline(t *testing.T) *Pipeline {
	t.Helper()
	cfg := config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1)
	pl, err := New(cfg, emu.NewTrace(emu.New(recurrence(5000))))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		pl.step()
	}
	return pl
}

// TestMdsanDetectsWheelMiscount corrupts the calendar wheel's event
// count and expects the next full step to trip the accounting check —
// this also proves step() actually invokes the sanitizer.
func TestMdsanDetectsWheelMiscount(t *testing.T) {
	p := warmPipeline(t)
	p.events.n++
	mustPanicMdsan(t, "wheel count", func() { p.step() })
}

// TestMdsanDetectsStaleCandidate plants a candidate bit on a slot that
// holds no valid entry.
func TestMdsanDetectsStaleCandidate(t *testing.T) {
	p := warmPipeline(t)
	s := int32(-1)
	for i := int32(0); i < int32(p.cfg.Window); i++ {
		if !p.rob.live(i) {
			s = i
			break
		}
	}
	if s < 0 {
		t.Fatal("warm pipeline has no empty slot to corrupt")
	}
	p.cand.set(s)
	mustPanicMdsan(t, "candidate bitmap holds invalid slot", func() { p.sanitize() })
}

// TestMdsanDetectsTableDesync rewrites a posted store's table sequence
// number so the table no longer mirrors the ROB entry.
func TestMdsanDetectsTableDesync(t *testing.T) {
	p := warmPipeline(t)
	s := -1
	for i := 0; i < p.cfg.Window; i++ {
		if p.stores.in[i] {
			s = i
			break
		}
	}
	if s < 0 {
		t.Fatal("warm pipeline has no posted store to corrupt")
	}
	p.stores.seq[s]++
	mustPanicMdsan(t, "does not mirror the ROB", func() { p.sanitize() })
}

// TestMdsanDetectsLostWakeup timer-parks a slot without scheduling any
// wheel event for it: the signature of a missed wakeup (livelock).
func TestMdsanDetectsLostWakeup(t *testing.T) {
	p := warmPipeline(t)
	// Collect slots that do have pending events, then pick an unparked,
	// non-candidate slot outside that set.
	pending := make(map[int32]bool)
	for i := range p.events.buckets {
		for _, s := range p.events.buckets[i] {
			pending[s] = true
		}
	}
	for _, e := range p.events.over {
		pending[e.slot] = true
	}
	s := int32(-1)
	for i := int32(0); i < int32(p.cfg.Window); i++ {
		if !pending[i] && p.parkedOn[i] == parkNone && !p.cand.has(i) {
			s = i
			break
		}
	}
	if s < 0 {
		t.Fatal("warm pipeline has no event-free slot to corrupt")
	}
	p.parkedOn[s] = parkTimer
	mustPanicMdsan(t, "timer-parked with no pending event", func() { p.sanitize() })
}

// TestMdsanDetectsBrokenWaiterList points a slot's parkedOn at a
// producer without linking it into that producer's waiter list.
func TestMdsanDetectsBrokenWaiterList(t *testing.T) {
	p := warmPipeline(t)
	s := int32(-1)
	for i := int32(0); i < int32(p.cfg.Window); i++ {
		if p.rob.live(i) && p.parkedOn[i] == parkNone && !p.cand.has(i) {
			s = i
			break
		}
	}
	if s < 0 {
		t.Fatal("warm pipeline has no unparked valid slot to corrupt")
	}
	// Park on an older valid producer so only the list linkage is wrong.
	q := int32(-1)
	for i := int32(0); i < int32(p.cfg.Window); i++ {
		if i != s && p.rob.live(i) && p.rob.seq[i] < p.rob.seq[s] {
			q = i
			break
		}
	}
	if q < 0 {
		t.Fatal("warm pipeline has no older producer slot")
	}
	p.parkedOn[s] = q
	mustPanicMdsan(t, "waiter lists", func() { p.sanitize() })
}
