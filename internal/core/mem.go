package core

import "mdspec/internal/config"

// processStoreEvents runs at the start of each cycle: it publishes store
// addresses that have reached the address-based scheduler (AS) and
// finalizes stores whose execution completes this cycle — inserting them
// into the disambiguation structures and checking younger speculative
// loads for memory-order violations.
func (p *Pipeline) processStoreEvents() {
	if len(p.postQ) > 0 {
		keep := p.postQ[:0]
		for _, seq := range p.postQ {
			e := p.slot(seq)
			if !e.valid || e.di.Seq != seq {
				continue // squashed
			}
			if p.cycle < e.addrPosted {
				//md:allocok reuse-append into postQ[:0]; never exceeds the old length
				keep = append(keep, seq)
				continue
			}
			// The address is now visible to the scheduler: it no longer
			// blocks AS/NO loads, and matching loads will wait on it.
			s := p.slotIndex(seq)
			p.unpostedStores.remove(s, seq)
			p.stores.insert(s, e.di.Addr, seq)
			p.activity = true
		}
		p.postQ = keep
	}
	if len(p.compQ) > 0 {
		keep := p.compQ[:0]
		for _, seq := range p.compQ {
			e := p.slot(seq)
			if !e.valid || e.di.Seq != seq || !e.memIssued {
				continue // squashed or selectively invalidated
			}
			if p.cycle < e.memDone {
				//md:allocok reuse-append into compQ[:0]; never exceeds the old length
				keep = append(keep, seq)
				continue
			}
			p.completeStore(e)
			p.activity = true
		}
		p.compQ = keep
	}
}

// completeStore finalizes an executed store: its data is in the store
// buffer and its address is known to the violation-detection hardware.
func (p *Pipeline) completeStore(e *robEntry) {
	seq := e.di.Seq
	s := p.slotIndex(seq)
	e.completed = true
	p.pendingStores.remove(s, seq)
	if e.barrier {
		p.pendingBarriers.remove(s, seq)
	}
	if !p.cfg.UseAddressScheduler {
		// Under AS the address was published at posting time.
		p.stores.insert(s, e.di.Addr, seq)
	} else {
		p.unpostedStores.remove(s, seq)
	}
	p.checkViolations(e)
}

// checkViolations scans younger loads that already performed a memory
// access to the same word without seeing this store's value. Under NAS
// policies a match squashes immediately; under AS/NAV the paper's three
// conditions apply (§3.4): the load must have read, propagated the value
// to a dependent, and the value must differ — otherwise the load's value
// is silently corrected in the store buffer.
func (p *Pipeline) checkViolations(st *robEntry) {
	stSeq := st.di.Seq
	// Snapshot the matching younger loads before processing them. The
	// recovery actions below (squashFrom, selectiveInvalidate) remove
	// loads from the very address chain being walked — including loads
	// other than the one being recovered, when consumers are reset
	// transitively — so iterating the live chain would skip entries
	// mid-scan. The snapshot is ascending in sequence number (the chain
	// is sorted), and every entry is revalidated before processing.
	t := &p.loads
	scratch := p.violScratch[:0]
	b := t.bucket(st.di.Addr)
	for s := t.bhead[b]; s != nilSlot; s = t.next[s] {
		if t.addr[s] == st.di.Addr && t.seq[s] > stSeq {
			//md:allocok amortized: violScratch grows to the deepest match set and is reused
			scratch = append(scratch, t.seq[s])
		}
	}
	p.violScratch = scratch
	for _, ls := range scratch {
		le := p.slot(ls)
		if !le.valid || le.di.Seq != ls || !le.memIssued {
			continue
		}
		if le.valueSource >= stSeq {
			continue // load already saw this store (or a younger one)
		}
		if p.cfg.UseAddressScheduler {
			if le.propagated && le.specValue != st.di.StoreVal {
				p.squashFrom(le, st)
				return
			}
			// Silent or un-propagated: correct the load in place.
			le.valueSource = stSeq
			le.specValue = st.di.StoreVal
			if !le.propagated {
				nd := max64(le.memDone, p.cycle+1)
				le.memDone, le.doneCycle = nd, nd
				p.schedule(nd, p.slotIndex(ls))
			}
			continue
		}
		// NAS detection is address-based: any match is a violation.
		if p.cfg.Recovery == config.RecoverySelective {
			p.selectiveInvalidate(le, st)
			continue // later loads of the same word may also need fixing
		}
		// Returning mid-scan after a squash is correct, not an early
		// exit: the snapshot is ascending, so every remaining entry is
		// younger than the squashed load and was just invalidated by
		// squashFrom (which kills the load and everything after it).
		// Re-executed loads re-enter the chain and, if they misspeculate
		// again, are caught by a later completion's scan.
		p.squashFrom(le, st)
		return
	}
}

// selectiveInvalidate implements the paper's §2 alternative to squash
// invalidation: only the misspeculated load and the instructions that
// consumed its erroneous value are re-executed; independent younger work
// survives. The load re-forwards the store's value; every transitive
// consumer is reset to re-issue.
func (p *Pipeline) selectiveInvalidate(load, st *robEntry) {
	p.res.Misspeculations++
	p.trainPredictors(load.di.PC, st.di.PC)

	// The load re-executes by forwarding the just-completed store.
	loadSeq := load.di.Seq
	load.valueSource = st.di.Seq
	load.specValue = st.di.StoreVal
	load.propagated = false
	nd := max64(p.cycle+1+int64(p.cfg.SquashOverhead), st.memDone+1)
	load.memDone, load.doneCycle = nd, nd
	p.schedule(nd, p.slotIndex(loadSeq))
	p.res.SquashedInsts++ // work redone

	// Transitively reset consumers of invalidated values. The invalid
	// set is a generation-stamped mark per window slot (invGen/invSeq):
	// bumping curGen clears the previous pass for free, so no per-call
	// map is allocated.
	p.curGen++
	g := p.curGen
	s0 := p.slotIndex(loadSeq)
	p.invGen[s0], p.invSeq[s0] = g, loadSeq
	for seq := loadSeq + 1; seq < p.dispatchSeq; seq++ {
		e := p.slot(seq)
		if !e.valid || e.di.Seq != seq {
			continue
		}
		depends := p.invalidated(e.dep1, g, loadSeq) || p.invalidated(e.dep2, g, loadSeq) ||
			(e.isLoad && e.memIssued && p.invalidated(e.valueSource, g, loadSeq))
		if !depends {
			continue
		}
		if p.resetForReexecution(e) {
			s := p.slotIndex(seq)
			p.invGen[s], p.invSeq[s] = g, seq
			p.res.SquashedInsts++
		}
	}
}

// invalidated reports whether seq was marked in invalidation pass g.
// Marks older than base can never have been set this pass (only the
// recovered load and younger consumers are marked), so the guard also
// keeps noSeq and committed producers out of the slot arithmetic.
func (p *Pipeline) invalidated(seq, g, base int64) bool {
	if seq == noSeq || seq < base {
		return false
	}
	s := p.slotIndex(seq)
	return p.invGen[s] == g && p.invSeq[s] == seq
}

// trainPredictors records a violation with whichever dependence
// predictor the active policy uses.
func (p *Pipeline) trainPredictors(loadPC, storePC uint32) {
	switch p.cfg.Policy {
	case config.Selective:
		p.sel.RecordViolation(loadPC, p.cycle)
	case config.StoreBarrier:
		p.sbar.RecordViolation(storePC, p.cycle)
	case config.Sync:
		p.mdpt.RecordViolation(loadPC, storePC, p.cycle)
	case config.StoreSets:
		p.ssets.RecordViolation(loadPC, storePC, p.cycle)
	}
}

// resetForReexecution rewinds one in-flight instruction so it issues
// again with corrected inputs. It reports whether the entry actually
// had produced (possibly wrong) state worth invalidating.
func (p *Pipeline) resetForReexecution(e *robEntry) bool {
	d := &e.di
	s := p.slotIndex(d.Seq)
	switch {
	case e.isLoad:
		if !e.agenIssued && !e.memIssued {
			return false // never produced anything wrong
		}
		if e.memIssued {
			p.loads.removeSeq(s, d.Addr, d.Seq)
		}
		// If the base register value was wrong the address regenerates;
		// the memory phase always redoes.
		e.agenIssued = false
		e.addrReady = notYet
		e.memIssued = false
		e.memDone = notYet
		e.doneCycle = notYet
		e.memIssue = 0
		e.valueSource = noSeq
		e.propagated = false
		e.fdCounted, e.fdFalse = false, false
		e.couldIssue = notYet
		e.state = stWaiting
		p.candInsert(d.Seq)
		return true
	case e.isStore:
		if !e.agenIssued && !e.memIssued && e.state == stWaiting {
			return false
		}
		if e.completed || p.storePosted(e) {
			p.stores.removeSeq(s, d.Addr, d.Seq)
		}
		if e.completed {
			// It left the pending sets at completion; make it pending
			// again (stores still in compQ were never removed).
			p.pendingStores.insert(s, d.Seq)
			if e.barrier {
				p.pendingBarriers.insert(s, d.Seq)
			}
			e.completed = false
		}
		if p.cfg.UseAddressScheduler && e.agenIssued {
			p.unpostedStores.insert(s, d.Seq)
		}
		e.agenIssued = false
		e.addrReady = notYet
		e.addrPosted = notYet
		e.memIssued = false
		e.memDone = notYet
		e.doneCycle = notYet
		e.state = stWaiting
		p.candInsert(d.Seq)
		return true
	default:
		if e.state == stWaiting {
			return false
		}
		e.state = stWaiting
		e.doneCycle = notYet
		p.candInsert(d.Seq)
		return true
	}
}

// storePosted reports whether an AS store's address has been published.
func (p *Pipeline) storePosted(e *robEntry) bool {
	return p.cfg.UseAddressScheduler && e.agenIssued && p.cycle >= e.addrPosted
}

// squashFrom performs squash invalidation: the misspeculated load and
// every younger instruction are thrown away, fetch rewinds to the load,
// and the active dependence predictor is trained with the violation.
func (p *Pipeline) squashFrom(load, st *robEntry) {
	loadSeq := load.di.Seq
	loadPC, storePC := load.di.PC, st.di.PC
	p.res.Misspeculations++
	p.squashes++
	p.trainPredictors(loadPC, storePC)

	// Invalidate every in-flight instruction at or after the load. Each
	// squashed slot is also detached from the scheduler: out of its
	// candidate queue and off whatever waiter list it parked on (the
	// producer may be older than the squash point and survive).
	for seq := loadSeq; seq < p.dispatchSeq; seq++ {
		e := p.slot(seq)
		if !e.valid || e.di.Seq != seq {
			continue
		}
		p.res.SquashedInsts++
		d := &e.di
		s := p.slotIndex(seq)
		if e.isMem {
			p.memInFlight--
		}
		switch {
		case e.isStore:
			p.pendingStores.remove(s, seq)
			p.unpostedStores.remove(s, seq)
			if e.barrier {
				p.pendingBarriers.remove(s, seq)
			}
			p.stores.removeSeq(s, d.Addr, seq)
		case e.isLoad:
			if e.memIssued {
				p.loads.removeSeq(s, d.Addr, seq)
			}
		}
		if !p.scanMode {
			p.unpark(s)
			p.cand.clear(s)
		}
		e.valid = false
	}

	// Drop squashed front-end instructions and rewind fetch.
	keep := p.fetchQ[:0]
	for _, rec := range p.fetchQ {
		if rec.seq < loadSeq {
			//md:allocok reuse-append into fetchQ[:0]; never exceeds the old length
			keep = append(keep, rec)
		}
	}
	p.fetchQ = keep

	resume := p.cycle + int64(p.cfg.SquashOverhead)
	if p.cfg.SplitWindow {
		units := p.cfg.SplitUnits
		taskSize := int64(p.cfg.Window / units)
		t0 := loadSeq / taskSize
		u0 := int(t0 % int64(units))
		for u := 0; u < units; u++ {
			// The first sequence >= loadSeq belonging to unit u.
			var cand int64
			if u == u0 {
				cand = loadSeq
			} else {
				dt := int64((u - u0 + units) % units)
				cand = (t0 + dt) * taskSize
			}
			if p.unitFetchSeq[u] == noSeq || p.unitFetchSeq[u] > cand {
				p.unitFetchSeq[u] = cand
			}
			if p.unitBlockedOn[u] >= loadSeq {
				p.unitBlockedOn[u] = noSeq
			}
			p.unitResumeAt[u] = max64(p.unitResumeAt[u], resume)
			p.unitHaveBlock[u] = false
		}
	} else {
		p.dispatchSeq = loadSeq
		p.fetchSeq = loadSeq
		p.blockedOnBranch = noSeq
		p.fetchResumeAt = max64(p.fetchResumeAt, resume)
		p.haveFetchBlock = false
	}
}
