package core

import "mdspec/internal/config"

// processStoreEvents runs at the start of each cycle: it publishes store
// addresses that have reached the address-based scheduler (AS) and
// finalizes stores whose execution completes this cycle — inserting them
// into the disambiguation structures and checking younger speculative
// loads for memory-order violations.
func (p *Pipeline) processStoreEvents() {
	r := &p.rob
	if len(p.postQ) > 0 {
		keep := p.postQ[:0]
		for _, seq := range p.postQ {
			s := p.slotIndex(seq)
			if r.seq[s] != seq {
				continue // squashed
			}
			if p.cycle < r.addrPosted[s] {
				//md:allocok reuse-append into postQ[:0]; never exceeds the old length
				keep = append(keep, seq)
				continue
			}
			// The address is now visible to the scheduler: it no longer
			// blocks AS/NO loads, and matching loads will wait on it.
			p.unpostedStores.remove(s, seq)
			p.stores.insert(s, r.addr[s], seq)
			p.activity = true
		}
		p.postQ = keep
	}
	if len(p.compQ) > 0 {
		keep := p.compQ[:0]
		for _, seq := range p.compQ {
			s := p.slotIndex(seq)
			if r.seq[s] != seq || r.flags[s]&fMemIssued == 0 {
				continue // squashed or selectively invalidated
			}
			if p.cycle < r.memDone[s] {
				//md:allocok reuse-append into compQ[:0]; never exceeds the old length
				keep = append(keep, seq)
				continue
			}
			p.completeStore(s)
			p.activity = true
		}
		p.compQ = keep
	}
}

// completeStore finalizes an executed store: its data is in the store
// buffer and its address is known to the violation-detection hardware.
func (p *Pipeline) completeStore(s int32) {
	r := &p.rob
	seq := r.seq[s]
	r.set(s, fCompleted)
	p.pendingStores.remove(s, seq)
	if r.flags[s]&fBarrier != 0 {
		p.pendingBarriers.remove(s, seq)
	}
	if !p.cfg.UseAddressScheduler {
		// Under AS the address was published at posting time.
		p.stores.insert(s, r.addr[s], seq)
	} else {
		p.unpostedStores.remove(s, seq)
	}
	p.checkViolations(s)
}

// checkViolations scans younger loads that already performed a memory
// access to the same word without seeing this store's value. Under NAS
// policies a match squashes immediately; under AS/NAV the paper's three
// conditions apply (§3.4): the load must have read, propagated the value
// to a dependent, and the value must differ — otherwise the load's value
// is silently corrected in the store buffer.
func (p *Pipeline) checkViolations(st int32) {
	r := &p.rob
	stSeq := r.seq[st]
	stAddr := r.addr[st]
	stVal := r.storeVal[st]
	// Snapshot the matching younger loads before processing them. The
	// recovery actions below (squashFrom, selectiveInvalidate) remove
	// loads from the very address chain being walked — including loads
	// other than the one being recovered, when consumers are reset
	// transitively — so iterating the live chain would skip entries
	// mid-scan. The snapshot is ascending in sequence number (the chain
	// is sorted), and every entry is revalidated before processing.
	t := &p.loads
	scratch := p.violScratch[:0]
	b := t.bucket(stAddr)
	for s := t.bhead[b]; s != nilSlot; s = t.next[s] {
		if t.addr[s] == stAddr && t.seq[s] > stSeq {
			//md:allocok amortized: violScratch grows to the deepest match set and is reused
			scratch = append(scratch, t.seq[s])
		}
	}
	p.violScratch = scratch
	for _, ls := range scratch {
		le := p.slotIndex(ls)
		if r.seq[le] != ls || r.flags[le]&fMemIssued == 0 {
			continue
		}
		if r.valueSource[le] >= stSeq {
			continue // load already saw this store (or a younger one)
		}
		if p.cfg.UseAddressScheduler {
			if r.flags[le]&fPropagated != 0 && r.specValue[le] != stVal {
				p.squashFrom(le, st)
				return
			}
			// Silent or un-propagated: correct the load in place.
			r.valueSource[le] = stSeq
			r.specValue[le] = stVal
			if r.flags[le]&fPropagated == 0 {
				nd := max64(r.memDone[le], p.cycle+1)
				r.memDone[le], r.doneCycle[le] = nd, nd
				p.schedule(nd, le)
			}
			continue
		}
		// NAS detection is address-based: any match is a violation.
		if p.cfg.Recovery == config.RecoverySelective {
			p.selectiveInvalidate(le, st)
			continue // later loads of the same word may also need fixing
		}
		// Returning mid-scan after a squash is correct, not an early
		// exit: the snapshot is ascending, so every remaining entry is
		// younger than the squashed load and was just invalidated by
		// squashFrom (which kills the load and everything after it).
		// Re-executed loads re-enter the chain and, if they misspeculate
		// again, are caught by a later completion's scan.
		p.squashFrom(le, st)
		return
	}
}

// selectiveInvalidate implements the paper's §2 alternative to squash
// invalidation: only the misspeculated load and the instructions that
// consumed its erroneous value are re-executed; independent younger work
// survives. The load re-forwards the store's value; every transitive
// consumer is reset to re-issue.
func (p *Pipeline) selectiveInvalidate(load, st int32) {
	r := &p.rob
	p.res.Misspeculations++
	p.trainPredictors(r.pc[load], r.pc[st])

	// The load re-executes by forwarding the just-completed store.
	loadSeq := r.seq[load]
	r.valueSource[load] = r.seq[st]
	r.specValue[load] = r.storeVal[st]
	r.clear(load, fPropagated)
	nd := max64(p.cycle+1+int64(p.cfg.SquashOverhead), r.memDone[st]+1)
	r.memDone[load], r.doneCycle[load] = nd, nd
	p.schedule(nd, load)
	p.res.SquashedInsts++ // work redone

	// Transitively reset consumers of invalidated values. The invalid
	// set is a generation-stamped mark per window slot (invGen/invSeq):
	// bumping curGen clears the previous pass for free, so no per-call
	// map is allocated.
	p.curGen++
	g := p.curGen
	p.invGen[load], p.invSeq[load] = g, loadSeq
	for seq := loadSeq + 1; seq < p.dispatchSeq; seq++ {
		s := p.slotIndex(seq)
		if r.seq[s] != seq {
			continue
		}
		f := r.flags[s]
		depends := p.invalidated(r.dep1[s], g, loadSeq) || p.invalidated(r.dep2[s], g, loadSeq) ||
			(f&fLoad != 0 && f&fMemIssued != 0 && p.invalidated(r.valueSource[s], g, loadSeq))
		if !depends {
			continue
		}
		if p.resetForReexecution(s) {
			p.invGen[s], p.invSeq[s] = g, seq
			p.res.SquashedInsts++
		}
	}
}

// invalidated reports whether seq was marked in invalidation pass g.
// Marks older than base can never have been set this pass (only the
// recovered load and younger consumers are marked), so the guard also
// keeps noSeq and committed producers out of the slot arithmetic.
func (p *Pipeline) invalidated(seq, g, base int64) bool {
	if seq == noSeq || seq < base {
		return false
	}
	s := p.slotIndex(seq)
	return p.invGen[s] == g && p.invSeq[s] == seq
}

// trainPredictors records a violation with whichever dependence
// predictor the active policy uses.
func (p *Pipeline) trainPredictors(loadPC, storePC uint32) {
	switch p.cfg.Policy {
	case config.Selective:
		p.sel.RecordViolation(loadPC, p.cycle)
	case config.StoreBarrier:
		p.sbar.RecordViolation(storePC, p.cycle)
	case config.Sync:
		p.mdpt.RecordViolation(loadPC, storePC, p.cycle)
	case config.StoreSets:
		p.ssets.RecordViolation(loadPC, storePC, p.cycle)
	}
}

// resetForReexecution rewinds one in-flight instruction so it issues
// again with corrected inputs. It reports whether the entry actually
// had produced (possibly wrong) state worth invalidating.
func (p *Pipeline) resetForReexecution(s int32) bool {
	r := &p.rob
	seq := r.seq[s]
	f := r.flags[s]
	switch {
	case f&fLoad != 0:
		if f&(fAgen|fMemIssued) == 0 {
			return false // never produced anything wrong
		}
		if f&fMemIssued != 0 {
			p.loads.removeSeq(s, r.addr[s], seq)
		}
		// If the base register value was wrong the address regenerates;
		// the memory phase always redoes.
		r.clear(s, fAgen|fMemIssued|fIssued|fPropagated|fFdCounted|fFdFalse)
		r.addrReady[s] = notYet
		r.memDone[s] = notYet
		r.doneCycle[s] = notYet
		r.memIssue[s] = 0
		r.valueSource[s] = noSeq
		r.couldIssue[s] = notYet
		p.candInsert(seq)
		return true
	case f&fStore != 0:
		if f&(fAgen|fMemIssued|fIssued) == 0 {
			return false
		}
		if f&fCompleted != 0 || p.storePosted(s) {
			p.stores.removeSeq(s, r.addr[s], seq)
		}
		if f&fCompleted != 0 {
			// It left the pending sets at completion; make it pending
			// again (stores still in compQ were never removed).
			p.pendingStores.insert(s, seq)
			if f&fBarrier != 0 {
				p.pendingBarriers.insert(s, seq)
			}
			r.clear(s, fCompleted)
		}
		if p.cfg.UseAddressScheduler && f&fAgen != 0 {
			p.unpostedStores.insert(s, seq)
		}
		r.clear(s, fAgen|fMemIssued|fIssued)
		r.addrReady[s] = notYet
		r.addrPosted[s] = notYet
		r.memDone[s] = notYet
		r.doneCycle[s] = notYet
		p.candInsert(seq)
		return true
	default:
		if f&fIssued == 0 {
			return false
		}
		r.clear(s, fIssued)
		r.doneCycle[s] = notYet
		p.candInsert(seq)
		return true
	}
}

// storePosted reports whether an AS store's address has been published.
func (p *Pipeline) storePosted(s int32) bool {
	return p.cfg.UseAddressScheduler && p.rob.flags[s]&fAgen != 0 && p.cycle >= p.rob.addrPosted[s]
}

// squashFrom performs squash invalidation: the misspeculated load and
// every younger instruction are thrown away, fetch rewinds to the load,
// and the active dependence predictor is trained with the violation.
// The store slot st is older than the squash point and survives.
func (p *Pipeline) squashFrom(load, st int32) {
	r := &p.rob
	loadSeq := r.seq[load]
	loadPC, storePC := r.pc[load], r.pc[st]
	p.res.Misspeculations++
	p.squashes++
	p.trainPredictors(loadPC, storePC)

	// Invalidate every in-flight instruction at or after the load. Each
	// squashed slot is also detached from the scheduler: out of its
	// candidate queue and off whatever waiter list it parked on (the
	// producer may be older than the squash point and survive).
	for seq := loadSeq; seq < p.dispatchSeq; seq++ {
		s := p.slotIndex(seq)
		if r.seq[s] != seq {
			continue
		}
		p.res.SquashedInsts++
		f := r.flags[s]
		if f&fMem != 0 {
			p.memInFlight--
		}
		switch {
		case f&fStore != 0:
			p.pendingStores.remove(s, seq)
			p.unpostedStores.remove(s, seq)
			if f&fBarrier != 0 {
				p.pendingBarriers.remove(s, seq)
			}
			p.stores.removeSeq(s, r.addr[s], seq)
		case f&fLoad != 0:
			if f&fMemIssued != 0 {
				p.loads.removeSeq(s, r.addr[s], seq)
			}
		}
		if !p.scanMode {
			p.unpark(s)
			p.cand.clear(s)
		}
		r.seq[s] = noSeq
	}

	// Drop squashed front-end instructions and rewind fetch.
	keep := p.fetchQ[:0]
	for i := p.fetchHead; i < len(p.fetchQ); i++ {
		if p.fetchQ[i].seq < loadSeq {
			//md:allocok reuse-append into fetchQ[:0]; never exceeds the old length
			keep = append(keep, p.fetchQ[i])
		}
	}
	p.fetchQ = keep
	p.fetchHead = 0

	resume := p.cycle + int64(p.cfg.SquashOverhead)
	if p.cfg.SplitWindow {
		units := p.cfg.SplitUnits
		taskSize := int64(p.cfg.Window / units)
		t0 := loadSeq / taskSize
		u0 := int(t0 % int64(units))
		for u := 0; u < units; u++ {
			// The first sequence >= loadSeq belonging to unit u.
			var cand int64
			if u == u0 {
				cand = loadSeq
			} else {
				dt := int64((u - u0 + units) % units)
				cand = (t0 + dt) * taskSize
			}
			if p.unitFetchSeq[u] == noSeq || p.unitFetchSeq[u] > cand {
				p.unitFetchSeq[u] = cand
			}
			if p.unitBlockedOn[u] >= loadSeq {
				p.unitBlockedOn[u] = noSeq
			}
			p.unitResumeAt[u] = max64(p.unitResumeAt[u], resume)
			p.unitHaveBlock[u] = false
		}
	} else {
		p.dispatchSeq = loadSeq
		p.fetchSeq = loadSeq
		p.blockedOnBranch = noSeq
		p.fetchResumeAt = max64(p.fetchResumeAt, resume)
		p.haveFetchBlock = false
	}
}
