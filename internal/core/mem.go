package core

import "mdspec/internal/config"

// processStoreEvents runs at the start of each cycle: it publishes store
// addresses that have reached the address-based scheduler (AS) and
// finalizes stores whose execution completes this cycle — inserting them
// into the disambiguation structures and checking younger speculative
// loads for memory-order violations.
func (p *Pipeline) processStoreEvents() {
	if len(p.postQ) > 0 {
		keep := p.postQ[:0]
		for _, seq := range p.postQ {
			e := p.slot(seq)
			if !e.valid || e.di.Seq != seq {
				continue // squashed
			}
			if p.cycle < e.addrPosted {
				keep = append(keep, seq)
				continue
			}
			// The address is now visible to the scheduler: it no longer
			// blocks AS/NO loads, and matching loads will wait on it.
			removeSorted(&p.unpostedStores, seq)
			lst := p.storesByAddr[e.di.Addr]
			insertSorted(&lst, seq)
			p.storesByAddr[e.di.Addr] = lst
		}
		p.postQ = keep
	}
	if len(p.compQ) > 0 {
		keep := p.compQ[:0]
		for _, seq := range p.compQ {
			e := p.slot(seq)
			if !e.valid || e.di.Seq != seq || !e.memIssued {
				continue // squashed or selectively invalidated
			}
			if p.cycle < e.memDone {
				keep = append(keep, seq)
				continue
			}
			p.completeStore(e)
		}
		p.compQ = keep
	}
}

// completeStore finalizes an executed store: its data is in the store
// buffer and its address is known to the violation-detection hardware.
func (p *Pipeline) completeStore(e *robEntry) {
	seq := e.di.Seq
	e.completed = true
	removeSorted(&p.pendingStores, seq)
	if e.barrier {
		removeSorted(&p.pendingBarriers, seq)
	}
	if !p.cfg.UseAddressScheduler {
		// Under AS the address was published at posting time.
		lst := p.storesByAddr[e.di.Addr]
		insertSorted(&lst, seq)
		p.storesByAddr[e.di.Addr] = lst
	} else {
		removeSorted(&p.unpostedStores, seq)
	}
	p.checkViolations(e)
}

// checkViolations scans younger loads that already performed a memory
// access to the same word without seeing this store's value. Under NAS
// policies a match squashes immediately; under AS/NAV the paper's three
// conditions apply (§3.4): the load must have read, propagated the value
// to a dependent, and the value must differ — otherwise the load's value
// is silently corrected in the store buffer.
func (p *Pipeline) checkViolations(st *robEntry) {
	lst := p.loadsByAddr[st.di.Addr]
	stSeq := st.di.Seq
	for _, ls := range lst {
		if ls <= stSeq {
			continue
		}
		le := p.slot(ls)
		if !le.valid || le.di.Seq != ls || !le.memIssued {
			continue
		}
		if le.valueSource >= stSeq {
			continue // load already saw this store (or a younger one)
		}
		if p.cfg.UseAddressScheduler {
			if le.propagated && le.specValue != st.di.StoreVal {
				p.squashFrom(le, st)
				return
			}
			// Silent or un-propagated: correct the load in place.
			le.valueSource = stSeq
			le.specValue = st.di.StoreVal
			if !le.propagated {
				nd := max64(le.memDone, p.cycle+1)
				le.memDone, le.doneCycle = nd, nd
			}
			continue
		}
		// NAS detection is address-based: any match is a violation.
		if p.cfg.Recovery == config.RecoverySelective {
			p.selectiveInvalidate(le, st)
			continue // later loads of the same word may also need fixing
		}
		p.squashFrom(le, st)
		return
	}
}

// selectiveInvalidate implements the paper's §2 alternative to squash
// invalidation: only the misspeculated load and the instructions that
// consumed its erroneous value are re-executed; independent younger work
// survives. The load re-forwards the store's value; every transitive
// consumer is reset to re-issue.
func (p *Pipeline) selectiveInvalidate(load, st *robEntry) {
	p.res.Misspeculations++
	p.trainPredictors(load.di.PC, st.di.PC)

	// The load re-executes by forwarding the just-completed store.
	load.valueSource = st.di.Seq
	load.specValue = st.di.StoreVal
	load.propagated = false
	nd := max64(p.cycle+1+int64(p.cfg.SquashOverhead), st.memDone+1)
	load.memDone, load.doneCycle = nd, nd
	p.res.SquashedInsts++ // work redone

	// Transitively reset consumers of invalidated values.
	invalid := map[int64]bool{load.di.Seq: true}
	for seq := load.di.Seq + 1; seq < p.dispatchSeq; seq++ {
		e := p.slot(seq)
		if !e.valid || e.di.Seq != seq {
			continue
		}
		depends := invalid[e.dep1] || invalid[e.dep2] ||
			(e.di.IsLoad() && e.memIssued && invalid[e.valueSource])
		if !depends {
			continue
		}
		if p.resetForReexecution(e) {
			invalid[seq] = true
			p.res.SquashedInsts++
		}
	}
}

// trainPredictors records a violation with whichever dependence
// predictor the active policy uses.
func (p *Pipeline) trainPredictors(loadPC, storePC uint32) {
	switch p.cfg.Policy {
	case config.Selective:
		p.sel.RecordViolation(loadPC, p.cycle)
	case config.StoreBarrier:
		p.sbar.RecordViolation(storePC, p.cycle)
	case config.Sync:
		p.mdpt.RecordViolation(loadPC, storePC, p.cycle)
	case config.StoreSets:
		p.ssets.RecordViolation(loadPC, storePC, p.cycle)
	}
}

// resetForReexecution rewinds one in-flight instruction so it issues
// again with corrected inputs. It reports whether the entry actually
// had produced (possibly wrong) state worth invalidating.
func (p *Pipeline) resetForReexecution(e *robEntry) bool {
	d := &e.di
	switch {
	case d.IsLoad():
		if !e.agenIssued && !e.memIssued {
			return false // never produced anything wrong
		}
		if e.memIssued {
			p.removeAddrMap(p.loadsByAddr, d.Addr, d.Seq)
		}
		// If the base register value was wrong the address regenerates;
		// the memory phase always redoes.
		e.agenIssued = false
		e.addrReady = notYet
		e.memIssued = false
		e.memDone = notYet
		e.doneCycle = notYet
		e.memIssue = 0
		e.valueSource = noSeq
		e.propagated = false
		e.fdCounted, e.fdFalse = false, false
		e.couldIssue = notYet
		e.state = stWaiting
		return true
	case d.IsStore():
		if !e.agenIssued && !e.memIssued && e.state == stWaiting {
			return false
		}
		if e.completed || p.storePosted(e) {
			p.removeAddrMap(p.storesByAddr, d.Addr, d.Seq)
		}
		if e.completed {
			// It left the pending sets at completion; make it pending
			// again (stores still in compQ were never removed).
			insertSorted(&p.pendingStores, d.Seq)
			if e.barrier {
				insertSorted(&p.pendingBarriers, d.Seq)
			}
			e.completed = false
		}
		if p.cfg.UseAddressScheduler && e.agenIssued {
			insertSorted(&p.unpostedStores, d.Seq)
		}
		e.agenIssued = false
		e.addrReady = notYet
		e.addrPosted = notYet
		e.memIssued = false
		e.memDone = notYet
		e.doneCycle = notYet
		e.state = stWaiting
		return true
	default:
		if e.state == stWaiting {
			return false
		}
		e.state = stWaiting
		e.doneCycle = notYet
		return true
	}
}

// storePosted reports whether an AS store's address has been published.
func (p *Pipeline) storePosted(e *robEntry) bool {
	return p.cfg.UseAddressScheduler && e.agenIssued && p.cycle >= e.addrPosted
}

// squashFrom performs squash invalidation: the misspeculated load and
// every younger instruction are thrown away, fetch rewinds to the load,
// and the active dependence predictor is trained with the violation.
func (p *Pipeline) squashFrom(load, st *robEntry) {
	loadSeq := load.di.Seq
	loadPC, storePC := load.di.PC, st.di.PC
	p.res.Misspeculations++
	p.squashes++
	p.trainPredictors(loadPC, storePC)

	// Invalidate every in-flight instruction at or after the load.
	for seq := loadSeq; seq < p.dispatchSeq; seq++ {
		e := p.slot(seq)
		if !e.valid || e.di.Seq != seq {
			continue
		}
		p.res.SquashedInsts++
		d := &e.di
		if d.Inst.Op.IsMem() {
			p.memInFlight--
		}
		switch {
		case d.IsStore():
			removeSorted(&p.pendingStores, seq)
			removeSorted(&p.unpostedStores, seq)
			if e.barrier {
				removeSorted(&p.pendingBarriers, seq)
			}
			p.removeAddrMap(p.storesByAddr, d.Addr, seq)
		case d.IsLoad():
			if e.memIssued {
				p.removeAddrMap(p.loadsByAddr, d.Addr, seq)
			}
		}
		e.valid = false
	}

	// Drop squashed front-end instructions and rewind fetch.
	keep := p.fetchQ[:0]
	for _, rec := range p.fetchQ {
		if rec.seq < loadSeq {
			keep = append(keep, rec)
		}
	}
	p.fetchQ = keep

	resume := p.cycle + int64(p.cfg.SquashOverhead)
	if p.cfg.SplitWindow {
		units := p.cfg.SplitUnits
		taskSize := int64(p.cfg.Window / units)
		t0 := loadSeq / taskSize
		u0 := int(t0 % int64(units))
		for u := 0; u < units; u++ {
			// The first sequence >= loadSeq belonging to unit u.
			var cand int64
			if u == u0 {
				cand = loadSeq
			} else {
				dt := int64((u - u0 + units) % units)
				cand = (t0 + dt) * taskSize
			}
			if p.unitFetchSeq[u] == noSeq || p.unitFetchSeq[u] > cand {
				p.unitFetchSeq[u] = cand
			}
			if p.unitBlockedOn[u] >= loadSeq {
				p.unitBlockedOn[u] = noSeq
			}
			p.unitResumeAt[u] = max64(p.unitResumeAt[u], resume)
			p.unitHaveBlock[u] = false
		}
	} else {
		p.dispatchSeq = loadSeq
		p.fetchSeq = loadSeq
		p.blockedOnBranch = noSeq
		p.fetchResumeAt = max64(p.fetchResumeAt, resume)
		p.haveFetchBlock = false
	}
}

// removeAddrMap removes seq from the per-address list, deleting the
// entry when it empties.
func (p *Pipeline) removeAddrMap(m map[uint32][]int64, addr uint32, seq int64) {
	lst, ok := m[addr]
	if !ok {
		return
	}
	removeSorted(&lst, seq)
	if len(lst) == 0 {
		delete(m, addr)
	} else {
		m[addr] = lst
	}
}
