package core

import (
	"mdspec/internal/config"
	"mdspec/internal/isa"
)

// agenLatency is address generation: one cycle to fetch the base
// register plus one cycle for the add (§3.4.1's discussion).
const agenLatency = 2

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// issue is the out-of-order issue stage. The continuous window examines
// entries strictly oldest-first (program order priority, §2.2); the
// split window rotates across units, giving no global program-order
// priority. The event-driven walks visit only wakeup candidates; the
// scan walks (scan mode) visit the whole in-flight range. Both reach
// issuable entries in the same order with the same issue-width cutoff,
// so they issue identically cycle for cycle.
func (p *Pipeline) issue() {
	switch {
	case p.scanMode && p.cfg.SplitWindow:
		p.issueSplitScan()
	case p.scanMode:
		p.issueScan()
	case p.cfg.SplitWindow:
		p.issueSplitEvent()
	default:
		p.issueEvent()
	}
}

// issueScan is the legacy continuous-window issue stage: a full
// headSeq→dispatchSeq scan every cycle.
func (p *Pipeline) issueScan() {
	for seq := p.headSeq; seq < p.dispatchSeq && p.issueLeft > 0; seq++ {
		s := p.slotIndex(seq)
		if p.rob.seq[s] != seq {
			continue
		}
		p.tryIssue(s)
	}
}

// issueEvent is the event-driven continuous-window issue stage: it
// examines only the wakeup candidates, oldest first — the same order
// the scan reaches them in, because parked entries are exactly those
// whose examination neither issues nor has side effects. Loads past
// address generation stay candidates even while blocked, since
// examining them drives the false-dependence accounting (couldIssue,
// fdCounted) that must match the scan cycle for cycle. Ascending
// sequence order is the bitmap's rotated slot order: slots [head, W)
// first, then the wrapped slots [0, head).
func (p *Pipeline) issueEvent() {
	w := int32(p.cfg.Window)
	h := p.slotIndex(p.headSeq)
	lo, hi := h, w
	for phase := 0; phase < 2 && p.issueLeft > 0; phase++ {
		for s := p.cand.next(lo, hi); s != nilSlot && p.issueLeft > 0; s = p.cand.next(s+1, hi) {
			if !p.rob.live(s) {
				p.cand.clear(s) // candidate committed or squashed since
				continue
			}
			p.parkReq = parkNone
			if p.tryIssue(s) {
				p.activity = true
				p.afterIssue(s)
			} else {
				p.applyParkReq(s)
			}
		}
		lo, hi = 0, h
	}
}

// issueSplitScan is the legacy split-window issue stage: round-robin
// across units, each pass offering one issue opportunity per unit,
// starting from a rotating unit, until the issue width is exhausted or
// nothing can issue.
func (p *Pipeline) issueSplitScan() {
	units := p.cfg.SplitUnits
	taskSize := int64(p.cfg.Window / units)
	// Per-unit cursors over the in-flight range (the buffer is allocated
	// once in New and reused every cycle).
	cursors := p.scanCursors
	for u := range cursors {
		cursors[u] = p.headSeq
	}
	for p.issueLeft > 0 {
		progress := false
		for off := 0; off < units && p.issueLeft > 0; off++ {
			u := (p.issueRotate + off) % units
			// Advance this unit's cursor to its next issuable uop.
			for seq := cursors[u]; seq < p.headSeq+int64(p.cfg.Window); seq++ {
				if int((seq/taskSize)%int64(units)) != u {
					continue
				}
				s := p.slotIndex(seq)
				if p.rob.seq[s] != seq {
					continue
				}
				if p.tryIssue(s) {
					cursors[u] = seq // revisit: entry may have a second uop
					progress = true
					break
				}
			}
		}
		if !progress {
			break
		}
	}
	p.issueRotate++
}

// issueSplitEvent is the event-driven split-window issue stage: the
// same rotating per-unit passes as issueSplitScan, walking each unit's
// candidates instead of its whole sub-window. Each unit's task occupies
// the contiguous slot range [u*task, (u+1)*task), so its candidates are
// a sub-range of the shared bitmap, iterated in the rotated order that
// matches ascending sequence numbers. Per-unit cursors persist across
// passes; nothing unblocks within a cycle (all completion conditions
// are of the form "cycle >= t" with t strictly in the future at issue),
// so an exhausted unit stays exhausted for the rest of the cycle.
func (p *Pipeline) issueSplitEvent() {
	units := p.cfg.SplitUnits
	w := int32(p.cfg.Window)
	task := w / int32(units)
	h := p.slotIndex(p.headSeq)
	cur := p.splitCursors
	for u := range cur {
		cur[u] = 0
	}
	for p.issueLeft > 0 {
		progress := false
		for off := 0; off < units && p.issueLeft > 0; off++ {
			u := (p.issueRotate + off) % units
			a := int32(u) * task
			b := a + task
			st := a // rotation point: the unit's oldest possible slot
			if h > a && h < b {
				st = h
			}
			v := cur[u]
			for v < task {
				// Map the rotated cursor back to a slot: positions
				// [0, b-st) are slots [st, b); the rest wrap to [a, st).
				var s int32
				if v < b-st {
					s = p.cand.next(st+v, b)
					if s == nilSlot {
						v = b - st
						continue
					}
					v = s - st
				} else {
					s = p.cand.next(a+(v-(b-st)), st)
					if s == nilSlot {
						v = task
						break
					}
					v = (b - st) + (s - a)
				}
				if !p.rob.live(s) {
					p.cand.clear(s) // candidate committed or squashed since
					v++
					continue
				}
				p.parkReq = parkNone
				if p.tryIssue(s) {
					p.activity = true
					p.afterIssue(s)
					if !p.cand.has(s) {
						// Fully issued or parked; otherwise stay to
						// revisit: the entry may have a second uop.
						v++
					}
					progress = true
					break
				}
				p.applyParkReq(s)
				v++
			}
			cur[u] = v
		}
		if !progress {
			break
		}
	}
	p.issueRotate++
}

// afterIssue updates the candidate set after a successful issue: a
// fully issued entry leaves; an entry whose next phase is purely timed
// (its address generation is in flight) parks until the event it
// scheduled for itself fires.
func (p *Pipeline) afterIssue(s int32) {
	if p.parkReq == parkTimer {
		p.parkTimed(s)
		return
	}
	if p.entryFullyIssued(s) {
		p.cand.clear(s)
	}
}

// entryFullyIssued reports that the entry has no pending uop left to
// issue (its remaining progress is pure latency).
func (p *Pipeline) entryFullyIssued(s int32) bool {
	f := p.rob.flags[s]
	if f&fMem != 0 {
		return f&fMemIssued != 0
	}
	return f&fIssued != 0
}

// applyParkReq parks a blocked candidate when its failed issue attempt
// named a wakeup source. Entries blocked on policy conditions or
// per-cycle resources stay candidates and are re-examined every cycle —
// their examination performs the same (idempotent) accounting the
// scan's would, and their unblocking is not tied to a single event.
func (p *Pipeline) applyParkReq(s int32) {
	switch p.parkReq {
	case parkNone:
	case parkTimer:
		p.parkTimed(s)
	default:
		p.parkOn(s, p.parkReq)
	}
}

// requestParkDep asks the issue walk to park the current candidate on
// the window slot of its unready producer. This is safe even when
// (split window) the producer has not been dispatched yet: dep lies in
// [headSeq, headSeq+Window), so slot dep%Window can only be occupied by
// dep itself until dep commits, and dep's own issue will push the
// wakeup event.
func (p *Pipeline) requestParkDep(dep int64) {
	p.parkReq = p.slotIndex(dep)
}

// unitOf returns the split-window unit owning seq.
func (p *Pipeline) unitOf(seq int64) int {
	taskSize := int64(p.cfg.Window / p.cfg.SplitUnits)
	return int((seq / taskSize) % int64(p.cfg.SplitUnits))
}

// tryIssue attempts to issue the next pending uop of the entry in slot
// s; it reports whether anything issued this call.
func (p *Pipeline) tryIssue(s int32) bool {
	f := p.rob.flags[s]
	switch {
	case f&fLoad != 0:
		return p.tryIssueLoad(s)
	case f&fStore != 0:
		return p.tryIssueStore(s)
	default:
		return p.tryIssueSimple(s)
	}
}

// depReady reports whether the operand produced by dep is available.
func (p *Pipeline) depReady(dep int64) bool {
	if dep == noSeq || dep < p.headSeq {
		return true // from the register file
	}
	s := p.slotIndex(dep)
	r := &p.rob
	if r.seq[s] != dep {
		// Split window: the producer has not even been fetched yet.
		return false
	}
	f := r.flags[s]
	if f&fMem != 0 {
		return f&fMemIssued != 0 && p.cycle >= r.memDone[s]
	}
	return f&fIssued != 0 && p.cycle >= r.doneCycle[s]
}

// markPropagated flags producing loads whose value this issue consumed
// (used by the AS/NAV misspeculation conditions, §3.4).
func (p *Pipeline) markPropagated(deps ...int64) {
	for _, dep := range deps {
		if dep == noSeq || dep < p.headSeq {
			continue
		}
		s := p.slotIndex(dep)
		if p.rob.seq[s] == dep && p.rob.flags[s]&fLoad != 0 {
			p.rob.set(s, fPropagated)
		}
	}
}

// takeFU consumes a functional unit of the class, reporting success.
// The issue slot itself is consumed by the caller on success.
func (p *Pipeline) takeFU(c isa.Class) bool {
	switch c {
	case isa.ClassIntMult, isa.ClassIntDiv:
		if p.mulLeft == 0 {
			return false
		}
		p.mulLeft--
	case isa.ClassFPAdd, isa.ClassFPMulS, isa.ClassFPMulD, isa.ClassFPDivS, isa.ClassFPDivD:
		if p.fpLeft == 0 {
			return false
		}
		p.fpLeft--
	case isa.ClassNop:
		// No functional unit.
	default: // integer ALU, branches, address adds
		if p.aluLeft == 0 {
			return false
		}
		p.aluLeft--
	}
	return true
}

// tryIssueSimple handles non-memory instructions (ALU, FP, branches).
func (p *Pipeline) tryIssueSimple(s int32) bool {
	r := &p.rob
	if r.flags[s]&fIssued != 0 {
		return false
	}
	if !p.depReady(r.dep1[s]) {
		p.requestParkDep(r.dep1[s])
		return false
	}
	if !p.depReady(r.dep2[s]) {
		p.requestParkDep(r.dep2[s])
		return false
	}
	if p.issueLeft == 0 || !p.takeFU(r.class[s]) {
		return false
	}
	p.issueLeft--
	r.set(s, fIssued)
	r.doneCycle[s] = p.cycle + int64(r.class[s].Latency())
	p.schedule(r.doneCycle[s], s)
	p.markPropagated(r.dep1[s], r.dep2[s])
	if r.flags[s]&fBranch != 0 {
		p.resolveBranch(s)
	}
	return true
}

// resolveBranch trains the predictor and, on a misprediction, schedules
// the fetch redirect for when the branch completes.
func (p *Pipeline) resolveBranch(s int32) {
	r := &p.rob
	f := r.flags[s]
	seq := r.seq[s]
	if f&fBpIsCond != 0 {
		p.bp.Resolve(r.pc[s], r.bpHist[s], f&fBpPred != 0, f&fTaken != 0)
	}
	if f&fJR != 0 {
		p.bp.UpdateTarget(r.pc[s], r.nextPC[s])
	}
	if f&fBpWrong == 0 {
		return
	}
	resume := r.doneCycle[s] + 1
	if p.cfg.SplitWindow {
		u := p.unitOf(seq)
		if p.unitBlockedOn[u] == seq {
			p.unitBlockedOn[u] = noSeq
			p.unitResumeAt[u] = max64(p.unitResumeAt[u], resume)
			p.unitHaveBlock[u] = false
		}
		return
	}
	if p.blockedOnBranch == seq {
		p.blockedOnBranch = noSeq
		p.fetchResumeAt = max64(p.fetchResumeAt, resume)
		p.haveFetchBlock = false
	}
}

// tryIssueStore advances a store: under AS, address generation issues as
// soon as the base register is ready (consuming issue bandwidth and an
// ALU — the §3.4.1 resource cost) and the address is posted to the
// scheduler after the scheduler latency; the data-merge issues when the
// value arrives. Under NAS, the store issues once, when both address and
// data operands are ready.
func (p *Pipeline) tryIssueStore(s int32) bool {
	r := &p.rob
	if r.flags[s]&fMemIssued != 0 {
		return false
	}
	seq := r.seq[s]
	if p.cfg.UseAddressScheduler {
		if r.flags[s]&fAgen == 0 {
			if !p.depReady(r.dep1[s]) {
				p.requestParkDep(r.dep1[s])
				return false
			}
			if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
				return false
			}
			p.issueLeft--
			r.set(s, fAgen)
			r.addrReady[s] = p.cycle + agenLatency
			r.addrPosted[s] = r.addrReady[s] + int64(p.cfg.SchedulerLatency)
			//md:allocok amortized: postQ is drained each cycle, capacity is retained
			p.postQ = append(p.postQ, seq)
			p.schedule(r.addrReady[s], s)  // wake the data-merge phase
			p.schedule(r.addrPosted[s], s) // fire the posting in postQ
			p.parkReq = parkTimer
			p.markPropagated(r.dep1[s])
			return true
		}
		if p.cycle < r.addrReady[s] {
			p.parkReq = parkTimer // the agen event is already scheduled
			return false
		}
		if !p.depReady(r.dep2[s]) {
			p.requestParkDep(r.dep2[s])
			return false
		}
		if p.issueLeft == 0 {
			return false
		}
		p.issueLeft--
		r.set(s, fMemIssued|fIssued)
		r.memIssue[s] = p.cycle
		r.memDone[s] = p.cycle + 1 // merge the data into the buffer entry
		r.doneCycle[s] = r.memDone[s]
		//md:allocok amortized: compQ is drained each cycle, capacity is retained
		p.compQ = append(p.compQ, seq)
		p.schedule(r.memDone[s], s)
		p.markPropagated(r.dep2[s])
		return true
	}
	// NAS: single issue event needing base and data.
	if !p.depReady(r.dep1[s]) {
		p.requestParkDep(r.dep1[s])
		return false
	}
	if !p.depReady(r.dep2[s]) {
		p.requestParkDep(r.dep2[s])
		return false
	}
	if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
		return false
	}
	p.issueLeft--
	r.set(s, fMemIssued|fIssued)
	r.memIssue[s] = p.cycle
	r.memDone[s] = p.cycle + agenLatency // operand fetch + address add
	r.doneCycle[s] = r.memDone[s]
	r.addrReady[s] = r.memDone[s]
	//md:allocok amortized: compQ is drained each cycle, capacity is retained
	p.compQ = append(p.compQ, seq)
	p.schedule(r.memDone[s], s)
	p.markPropagated(r.dep1[s], r.dep2[s])
	return true
}

// tryIssueLoad advances a load through its two phases: address
// generation (register-scheduled), then the memory access (scheduled by
// the active load/store policy).
func (p *Pipeline) tryIssueLoad(s int32) bool {
	r := &p.rob
	if r.flags[s]&fAgen == 0 {
		if !p.depReady(r.dep1[s]) {
			p.requestParkDep(r.dep1[s])
			return false
		}
		if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
			return false
		}
		p.issueLeft--
		r.set(s, fAgen)
		r.addrReady[s] = p.cycle + agenLatency
		p.schedule(r.addrReady[s], s)
		p.parkReq = parkTimer
		p.markPropagated(r.dep1[s])
		return true
	}
	if r.flags[s]&fMemIssued != 0 {
		return false
	}
	if p.cycle < r.addrReady[s] {
		p.parkReq = parkTimer // the agen event is already scheduled
		return false
	}
	if r.couldIssue[s] == notYet {
		r.couldIssue[s] = max64(r.addrReady[s], p.cycle)
	}
	eligible, storeWait := p.loadEligible(s)
	if !eligible {
		if storeWait && r.flags[s]&fFdCounted == 0 {
			// Table 3 accounting: at the moment the load could otherwise
			// access memory, does a true dependence actually exist?
			r.set(s, fFdCounted)
			if !p.trueDepPending(s) {
				r.set(s, fFdFalse)
			}
		}
		p.parkOnStoreBlock(s)
		return false
	}
	if p.issueLeft == 0 || p.portLeft == 0 {
		return false
	}
	p.issueLeft--
	p.portLeft--
	p.issueLoadMem(s)
	return true
}

// loadEligible applies the active policy. storeWait reports that the
// load is (or would be) blocked behind unresolved earlier stores — used
// for false-dependence accounting.
func (p *Pipeline) loadEligible(s int32) (eligible, storeWait bool) {
	r := &p.rob
	seq := r.seq[s]
	if p.cfg.UseAddressScheduler {
		return p.loadEligibleAS(s)
	}
	switch p.cfg.Policy {
	case config.NoSpec:
		if p.anyPendingStoreBefore(seq) {
			return false, true
		}
		return true, false
	case config.Naive:
		return true, false
	case config.Selective:
		if r.flags[s]&fWaitAll != 0 && p.anyPendingStoreBefore(seq) {
			return false, true
		}
		return true, false
	case config.StoreBarrier:
		if !p.pendingBarriers.empty() && p.pendingBarriers.minSeq() < seq {
			return false, true
		}
		return true, false
	case config.Sync, config.StoreSets:
		if r.flags[s]&fHasSyn != 0 && r.syncOnSeq[s] != noSeq {
			syn := r.syncOnSeq[s]
			ss := p.slotIndex(syn)
			if r.seq[ss] == syn && r.flags[ss]&fStore != 0 {
				// Free to issue one cycle after the producer issues.
				if r.flags[ss]&fMemIssued == 0 || p.cycle < r.memIssue[ss]+1 {
					return false, true
				}
			}
		}
		return true, false
	case config.Oracle:
		// Perfect knowledge: wait exactly for the producing store, even
		// if (split window) it has not been fetched yet.
		prod := r.prod[s]
		if prod != noSeq && prod >= p.headSeq {
			ps := p.slotIndex(prod)
			if r.seq[ps] != prod || r.flags[ps]&fMemIssued == 0 || p.cycle < r.memIssue[ps]+1 {
				return false, true
			}
		}
		return true, false
	}
	return true, false
}

// loadEligibleAS implements the address-based scheduler: the load
// compares its address against the posted addresses of earlier stores.
// A posted match always makes the load wait for that store's data; under
// AS/NO, unposted earlier stores also block the load.
func (p *Pipeline) loadEligibleAS(s int32) (eligible, storeWait bool) {
	r := &p.rob
	seq := r.seq[s]
	if p.cfg.Policy == config.NoSpec && p.anyUnpostedStoreBefore(seq) {
		return false, true
	}
	if m := p.youngestPostedMatch(r.addr[s], seq); m != nilSlot {
		if r.flags[m]&fMemIssued == 0 || p.cycle < r.memIssue[m]+1 {
			return false, true
		}
	}
	return true, false
}

// anyPendingStoreBefore reports whether any store older than seq has not
// yet executed.
func (p *Pipeline) anyPendingStoreBefore(seq int64) bool {
	return !p.pendingStores.empty() && p.pendingStores.minSeq() < seq
}

// anyUnpostedStoreBefore reports whether any store older than seq has
// not yet posted its address to the scheduler.
func (p *Pipeline) anyUnpostedStoreBefore(seq int64) bool {
	return !p.unpostedStores.empty() && p.unpostedStores.minSeq() < seq
}

// youngestPostedMatch returns the window slot of the youngest store
// older than loadSeq whose posted address matches addr, or nilSlot. The
// bucket chain is sequence-sorted, so the first youngest-first hit on
// addr wins.
func (p *Pipeline) youngestPostedMatch(addr uint32, loadSeq int64) int32 {
	t := &p.stores
	b := t.bucket(addr)
	for s := t.btail[b]; s != nilSlot; s = t.prev[s] {
		if t.addr[s] != addr || t.seq[s] >= loadSeq {
			continue
		}
		if p.rob.seq[s] == t.seq[s] {
			return s
		}
	}
	return nilSlot
}

// parkOnStoreBlock parks a policy-blocked load on the store responsible
// for the block, for the policies whose block releases only at a store
// completion (or address posting) — both event-covered on the store's
// slot, so the load is re-examined the cycle its eligibility can first
// change. The load may wake to find a different store now blocking; it
// then re-parks on that one. Policies whose blocks release on store
// *issue* (Sync, StoreSets, Oracle, posted-address matches) keep the
// load as a candidate: their release cycle (memIssue+1) precedes the
// store's completion event, so a park could wake too late.
func (p *Pipeline) parkOnStoreBlock(s int32) {
	seq := p.rob.seq[s]
	if p.cfg.UseAddressScheduler {
		if p.cfg.Policy == config.NoSpec {
			if q := p.unpostedStores.youngestBelow(seq); q != nilSlot {
				p.parkReq = q
			}
		}
		return
	}
	switch p.cfg.Policy {
	case config.NoSpec:
		p.parkReq = p.pendingStores.youngestBelow(seq)
	case config.Selective:
		if p.rob.flags[s]&fWaitAll != 0 {
			if q := p.pendingStores.youngestBelow(seq); q != nilSlot {
				p.parkReq = q
			}
		}
	case config.StoreBarrier:
		if q := p.pendingBarriers.youngestBelow(seq); q != nilSlot {
			p.parkReq = q
		}
	}
}

// trueDepPending reports whether the load's architectural producer store
// is uncommitted and not yet executed (including, in the split window,
// producers that have not even been fetched).
func (p *Pipeline) trueDepPending(s int32) bool {
	r := &p.rob
	prod := r.prod[s]
	if prod == noSeq || prod < p.headSeq {
		return false
	}
	ps := p.slotIndex(prod)
	if r.seq[ps] != prod {
		return true // not yet dispatched (split window)
	}
	return r.flags[ps]&fMemIssued == 0 || p.cycle < r.memDone[ps]
}

// issueLoadMem launches the load's memory access: forwarding from the
// store buffer when the producing store has executed, otherwise a
// (possibly stale) D-cache access. Under AS the scheduler latency is
// added in front of the access.
func (p *Pipeline) issueLoadMem(s int32) {
	r := &p.rob
	seq := r.seq[s]
	eff := p.cycle
	if p.cfg.UseAddressScheduler {
		eff += int64(p.cfg.SchedulerLatency)
	}
	var done int64
	prod := r.prod[s]
	if prod != noSeq && prod >= p.headSeq {
		// The producing store has not committed: it is either in flight
		// or (split window) not yet fetched.
		ps := p.slotIndex(prod)
		if r.seq[ps] == prod && r.flags[ps]&fMemIssued != 0 {
			// Store buffer forward of the correct value.
			done = max64(eff, r.memDone[ps]) + 1
			r.valueSource[s] = prod
			r.specValue[s] = r.loadVal[s]
			p.res.Forwards++
		} else if src := p.youngestExecutedMatch(r.addr[s], seq); src != nilSlot {
			// Speculative forward from an older (stale) store.
			done = max64(eff, r.memDone[src]) + 1
			r.valueSource[s] = r.seq[src]
			r.specValue[s] = r.storeVal[src]
			p.res.Forwards++
		} else {
			// Speculative read around the pending producer: the load
			// obtains the pre-store memory value.
			done = p.hier.D.Access(r.addr[s], eff, false)
			r.valueSource[s] = noSeq
			r.specValue[s] = p.trace.At(prod).OldVal
		}
	} else {
		// No in-window producer: architecturally clean access.
		done = p.hier.D.Access(r.addr[s], eff, false)
		r.valueSource[s] = noSeq
		r.specValue[s] = r.loadVal[s]
	}
	r.set(s, fMemIssued|fIssued)
	r.memIssue[s] = p.cycle
	r.memDone[s] = done
	r.doneCycle[s] = done
	p.schedule(done, s)
	// Loads issue out of order; the table keeps per-address chains
	// sequence-sorted for the violation scan.
	p.loads.insert(s, r.addr[s], seq)
}

// youngestExecutedMatch returns the window slot of the youngest executed
// in-window store older than loadSeq writing addr, or nilSlot.
func (p *Pipeline) youngestExecutedMatch(addr uint32, loadSeq int64) int32 {
	t := &p.stores
	b := t.bucket(addr)
	r := &p.rob
	for s := t.btail[b]; s != nilSlot; s = t.prev[s] {
		if t.addr[s] != addr || t.seq[s] >= loadSeq {
			continue
		}
		if r.seq[s] == t.seq[s] && r.flags[s]&fMemIssued != 0 && p.cycle >= r.memDone[s] {
			return s
		}
	}
	return nilSlot
}
