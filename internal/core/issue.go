package core

import (
	"mdspec/internal/config"
	"mdspec/internal/isa"
)

// agenLatency is address generation: one cycle to fetch the base
// register plus one cycle for the add (§3.4.1's discussion).
const agenLatency = 2

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// issue is the out-of-order issue stage. The continuous window examines
// entries strictly oldest-first (program order priority, §2.2); the
// split window rotates across units, giving no global program-order
// priority. The event-driven walks visit only wakeup candidates; the
// scan walks (scan mode) visit the whole in-flight range. Both reach
// issuable entries in the same order with the same issue-width cutoff,
// so they issue identically cycle for cycle.
func (p *Pipeline) issue() {
	switch {
	case p.scanMode && p.cfg.SplitWindow:
		p.issueSplitScan()
	case p.scanMode:
		p.issueScan()
	case p.cfg.SplitWindow:
		p.issueSplitEvent()
	default:
		p.issueEvent()
	}
}

// issueScan is the legacy continuous-window issue stage: a full
// headSeq→dispatchSeq scan every cycle.
func (p *Pipeline) issueScan() {
	for seq := p.headSeq; seq < p.dispatchSeq && p.issueLeft > 0; seq++ {
		e := p.slot(seq)
		if !e.valid || e.di.Seq != seq {
			continue
		}
		p.tryIssue(e)
	}
}

// issueEvent is the event-driven continuous-window issue stage: it
// examines only the wakeup candidates, oldest first — the same order
// the scan reaches them in, because parked entries are exactly those
// whose examination neither issues nor has side effects. Loads past
// address generation stay candidates even while blocked, since
// examining them drives the false-dependence accounting (couldIssue,
// fdCounted) that must match the scan cycle for cycle. Ascending
// sequence order is the bitmap's rotated slot order: slots [head, W)
// first, then the wrapped slots [0, head).
func (p *Pipeline) issueEvent() {
	w := int32(p.cfg.Window)
	h := p.slotIndex(p.headSeq)
	lo, hi := h, w
	for phase := 0; phase < 2 && p.issueLeft > 0; phase++ {
		for s := p.cand.next(lo, hi); s != nilSlot && p.issueLeft > 0; s = p.cand.next(s+1, hi) {
			e := &p.rob[s]
			if !e.valid {
				p.cand.clear(s) // candidate committed or squashed since
				continue
			}
			p.parkReq = parkNone
			if p.tryIssue(e) {
				p.activity = true
				p.afterIssue(s, e)
			} else {
				p.applyParkReq(s)
			}
		}
		lo, hi = 0, h
	}
}

// issueSplitScan is the legacy split-window issue stage: round-robin
// across units, each pass offering one issue opportunity per unit,
// starting from a rotating unit, until the issue width is exhausted or
// nothing can issue.
func (p *Pipeline) issueSplitScan() {
	units := p.cfg.SplitUnits
	taskSize := int64(p.cfg.Window / units)
	// Per-unit cursors over the in-flight range (the buffer is allocated
	// once in New and reused every cycle).
	cursors := p.scanCursors
	for u := range cursors {
		cursors[u] = p.headSeq
	}
	for p.issueLeft > 0 {
		progress := false
		for off := 0; off < units && p.issueLeft > 0; off++ {
			u := (p.issueRotate + off) % units
			// Advance this unit's cursor to its next issuable uop.
			for seq := cursors[u]; seq < p.headSeq+int64(p.cfg.Window); seq++ {
				if int((seq/taskSize)%int64(units)) != u {
					continue
				}
				e := p.slot(seq)
				if !e.valid || e.di.Seq != seq {
					continue
				}
				if p.tryIssue(e) {
					cursors[u] = seq // revisit: entry may have a second uop
					progress = true
					break
				}
			}
		}
		if !progress {
			break
		}
	}
	p.issueRotate++
}

// issueSplitEvent is the event-driven split-window issue stage: the
// same rotating per-unit passes as issueSplitScan, walking each unit's
// candidates instead of its whole sub-window. Each unit's task occupies
// the contiguous slot range [u*task, (u+1)*task), so its candidates are
// a sub-range of the shared bitmap, iterated in the rotated order that
// matches ascending sequence numbers. Per-unit cursors persist across
// passes; nothing unblocks within a cycle (all completion conditions
// are of the form "cycle >= t" with t strictly in the future at issue),
// so an exhausted unit stays exhausted for the rest of the cycle.
func (p *Pipeline) issueSplitEvent() {
	units := p.cfg.SplitUnits
	w := int32(p.cfg.Window)
	task := w / int32(units)
	h := p.slotIndex(p.headSeq)
	cur := p.splitCursors
	for u := range cur {
		cur[u] = 0
	}
	for p.issueLeft > 0 {
		progress := false
		for off := 0; off < units && p.issueLeft > 0; off++ {
			u := (p.issueRotate + off) % units
			a := int32(u) * task
			b := a + task
			st := a // rotation point: the unit's oldest possible slot
			if h > a && h < b {
				st = h
			}
			v := cur[u]
			for v < task {
				// Map the rotated cursor back to a slot: positions
				// [0, b-st) are slots [st, b); the rest wrap to [a, st).
				var s int32
				if v < b-st {
					s = p.cand.next(st+v, b)
					if s == nilSlot {
						v = b - st
						continue
					}
					v = s - st
				} else {
					s = p.cand.next(a+(v-(b-st)), st)
					if s == nilSlot {
						v = task
						break
					}
					v = (b - st) + (s - a)
				}
				e := &p.rob[s]
				if !e.valid {
					p.cand.clear(s) // candidate committed or squashed since
					v++
					continue
				}
				p.parkReq = parkNone
				if p.tryIssue(e) {
					p.activity = true
					p.afterIssue(s, e)
					if !p.cand.has(s) {
						// Fully issued or parked; otherwise stay to
						// revisit: the entry may have a second uop.
						v++
					}
					progress = true
					break
				}
				p.applyParkReq(s)
				v++
			}
			cur[u] = v
		}
		if !progress {
			break
		}
	}
	p.issueRotate++
}

// afterIssue updates the candidate set after a successful issue: a
// fully issued entry leaves; an entry whose next phase is purely timed
// (its address generation is in flight) parks until the event it
// scheduled for itself fires.
func (p *Pipeline) afterIssue(s int32, e *robEntry) {
	if p.parkReq == parkTimer {
		p.parkTimed(s)
		return
	}
	if entryFullyIssued(e) {
		p.cand.clear(s)
	}
}

// entryFullyIssued reports that the entry has no pending uop left to
// issue (its remaining progress is pure latency).
func entryFullyIssued(e *robEntry) bool {
	if e.isMem {
		return e.memIssued
	}
	return e.state != stWaiting
}

// applyParkReq parks a blocked candidate when its failed issue attempt
// named a wakeup source. Entries blocked on policy conditions or
// per-cycle resources stay candidates and are re-examined every cycle —
// their examination performs the same (idempotent) accounting the
// scan's would, and their unblocking is not tied to a single event.
func (p *Pipeline) applyParkReq(s int32) {
	switch p.parkReq {
	case parkNone:
	case parkTimer:
		p.parkTimed(s)
	default:
		p.parkOn(s, p.parkReq)
	}
}

// requestParkDep asks the issue walk to park the current candidate on
// the window slot of its unready producer. This is safe even when
// (split window) the producer has not been dispatched yet: dep lies in
// [headSeq, headSeq+Window), so slot dep%Window can only be occupied by
// dep itself until dep commits, and dep's own issue will push the
// wakeup event.
func (p *Pipeline) requestParkDep(dep int64) {
	p.parkReq = p.slotIndex(dep)
}

// unitOf returns the split-window unit owning seq.
func (p *Pipeline) unitOf(seq int64) int {
	taskSize := int64(p.cfg.Window / p.cfg.SplitUnits)
	return int((seq / taskSize) % int64(p.cfg.SplitUnits))
}

// tryIssue attempts to issue the entry's next pending uop; it reports
// whether anything issued this call.
func (p *Pipeline) tryIssue(e *robEntry) bool {
	switch {
	case e.isLoad:
		return p.tryIssueLoad(e)
	case e.isStore:
		return p.tryIssueStore(e)
	default:
		return p.tryIssueSimple(e)
	}
}

// depReady reports whether the operand produced by dep is available.
func (p *Pipeline) depReady(dep int64) bool {
	if dep == noSeq || dep < p.headSeq {
		return true // from the register file
	}
	e := p.slot(dep)
	if !e.valid || e.di.Seq != dep {
		// Split window: the producer has not even been fetched yet.
		return false
	}
	if e.isMem {
		return e.memIssued && p.cycle >= e.memDone
	}
	return e.state == stIssued && p.cycle >= e.doneCycle
}

// markPropagated flags producing loads whose value this issue consumed
// (used by the AS/NAV misspeculation conditions, §3.4).
func (p *Pipeline) markPropagated(deps ...int64) {
	for _, dep := range deps {
		if dep == noSeq || dep < p.headSeq {
			continue
		}
		e := p.slot(dep)
		if e.valid && e.di.Seq == dep && e.isLoad {
			e.propagated = true
		}
	}
}

// takeFU consumes a functional unit of the class, reporting success.
// The issue slot itself is consumed by the caller on success.
func (p *Pipeline) takeFU(c isa.Class) bool {
	switch c {
	case isa.ClassIntMult, isa.ClassIntDiv:
		if p.mulLeft == 0 {
			return false
		}
		p.mulLeft--
	case isa.ClassFPAdd, isa.ClassFPMulS, isa.ClassFPMulD, isa.ClassFPDivS, isa.ClassFPDivD:
		if p.fpLeft == 0 {
			return false
		}
		p.fpLeft--
	case isa.ClassNop:
		// No functional unit.
	default: // integer ALU, branches, address adds
		if p.aluLeft == 0 {
			return false
		}
		p.aluLeft--
	}
	return true
}

// tryIssueSimple handles non-memory instructions (ALU, FP, branches).
func (p *Pipeline) tryIssueSimple(e *robEntry) bool {
	if e.state != stWaiting {
		return false
	}
	if !p.depReady(e.dep1) {
		p.requestParkDep(e.dep1)
		return false
	}
	if !p.depReady(e.dep2) {
		p.requestParkDep(e.dep2)
		return false
	}
	if p.issueLeft == 0 || !p.takeFU(e.class) {
		return false
	}
	p.issueLeft--
	e.state = stIssued
	e.issueCycle = p.cycle
	e.doneCycle = p.cycle + e.latency
	p.schedule(e.doneCycle, p.slotIndex(e.di.Seq))
	p.markPropagated(e.dep1, e.dep2)
	if e.isBranch {
		p.resolveBranch(e)
	}
	return true
}

// resolveBranch trains the predictor and, on a misprediction, schedules
// the fetch redirect for when the branch completes.
func (p *Pipeline) resolveBranch(e *robEntry) {
	d := &e.di
	if e.bpIsCond {
		p.bp.Resolve(d.PC, e.bpHist, e.bpPred, d.Taken)
	}
	if d.Inst.Op == isa.JR {
		p.bp.UpdateTarget(d.PC, d.NextPC)
	}
	if !e.bpWrong {
		return
	}
	resume := e.doneCycle + 1
	if p.cfg.SplitWindow {
		u := p.unitOf(d.Seq)
		if p.unitBlockedOn[u] == d.Seq {
			p.unitBlockedOn[u] = noSeq
			p.unitResumeAt[u] = max64(p.unitResumeAt[u], resume)
			p.unitHaveBlock[u] = false
		}
		return
	}
	if p.blockedOnBranch == d.Seq {
		p.blockedOnBranch = noSeq
		p.fetchResumeAt = max64(p.fetchResumeAt, resume)
		p.haveFetchBlock = false
	}
}

// tryIssueStore advances a store: under AS, address generation issues as
// soon as the base register is ready (consuming issue bandwidth and an
// ALU — the §3.4.1 resource cost) and the address is posted to the
// scheduler after the scheduler latency; the data-merge issues when the
// value arrives. Under NAS, the store issues once, when both address and
// data operands are ready.
func (p *Pipeline) tryIssueStore(e *robEntry) bool {
	if e.memIssued {
		return false
	}
	if p.cfg.UseAddressScheduler {
		if !e.agenIssued {
			if !p.depReady(e.dep1) {
				p.requestParkDep(e.dep1)
				return false
			}
			if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
				return false
			}
			p.issueLeft--
			e.agenIssued = true
			e.addrReady = p.cycle + agenLatency
			e.addrPosted = e.addrReady + int64(p.cfg.SchedulerLatency)
			//md:allocok amortized: postQ is drained each cycle, capacity is retained
			p.postQ = append(p.postQ, e.di.Seq)
			s := p.slotIndex(e.di.Seq)
			p.schedule(e.addrReady, s)  // wake the data-merge phase
			p.schedule(e.addrPosted, s) // fire the posting in postQ
			p.parkReq = parkTimer
			p.markPropagated(e.dep1)
			return true
		}
		if p.cycle < e.addrReady {
			p.parkReq = parkTimer // the agen event is already scheduled
			return false
		}
		if !p.depReady(e.dep2) {
			p.requestParkDep(e.dep2)
			return false
		}
		if p.issueLeft == 0 {
			return false
		}
		p.issueLeft--
		e.memIssued = true
		e.memIssue = p.cycle
		e.memDone = p.cycle + 1 // merge the data into the buffer entry
		e.state = stIssued
		e.doneCycle = e.memDone
		//md:allocok amortized: compQ is drained each cycle, capacity is retained
		p.compQ = append(p.compQ, e.di.Seq)
		p.schedule(e.memDone, p.slotIndex(e.di.Seq))
		p.markPropagated(e.dep2)
		return true
	}
	// NAS: single issue event needing base and data.
	if !p.depReady(e.dep1) {
		p.requestParkDep(e.dep1)
		return false
	}
	if !p.depReady(e.dep2) {
		p.requestParkDep(e.dep2)
		return false
	}
	if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
		return false
	}
	p.issueLeft--
	e.memIssued = true
	e.memIssue = p.cycle
	e.memDone = p.cycle + agenLatency // operand fetch + address add
	e.state = stIssued
	e.doneCycle = e.memDone
	e.addrReady = e.memDone
	//md:allocok amortized: compQ is drained each cycle, capacity is retained
	p.compQ = append(p.compQ, e.di.Seq)
	p.schedule(e.memDone, p.slotIndex(e.di.Seq))
	p.markPropagated(e.dep1, e.dep2)
	return true
}

// tryIssueLoad advances a load through its two phases: address
// generation (register-scheduled), then the memory access (scheduled by
// the active load/store policy).
func (p *Pipeline) tryIssueLoad(e *robEntry) bool {
	if !e.agenIssued {
		if !p.depReady(e.dep1) {
			p.requestParkDep(e.dep1)
			return false
		}
		if p.issueLeft == 0 || !p.takeFU(isa.ClassIntALU) {
			return false
		}
		p.issueLeft--
		e.agenIssued = true
		e.addrReady = p.cycle + agenLatency
		p.schedule(e.addrReady, p.slotIndex(e.di.Seq))
		p.parkReq = parkTimer
		p.markPropagated(e.dep1)
		return true
	}
	if e.memIssued {
		return false
	}
	if p.cycle < e.addrReady {
		p.parkReq = parkTimer // the agen event is already scheduled
		return false
	}
	if e.couldIssue == notYet {
		e.couldIssue = max64(e.addrReady, p.cycle)
	}
	eligible, storeWait := p.loadEligible(e)
	if !eligible {
		if storeWait && !e.fdCounted {
			// Table 3 accounting: at the moment the load could otherwise
			// access memory, does a true dependence actually exist?
			e.fdCounted = true
			e.fdFalse = !p.trueDepPending(e)
		}
		p.parkOnStoreBlock(e)
		return false
	}
	if p.issueLeft == 0 || p.portLeft == 0 {
		return false
	}
	p.issueLeft--
	p.portLeft--
	p.issueLoadMem(e)
	return true
}

// loadEligible applies the active policy. storeWait reports that the
// load is (or would be) blocked behind unresolved earlier stores — used
// for false-dependence accounting.
func (p *Pipeline) loadEligible(e *robEntry) (eligible, storeWait bool) {
	seq := e.di.Seq
	if p.cfg.UseAddressScheduler {
		return p.loadEligibleAS(e)
	}
	switch p.cfg.Policy {
	case config.NoSpec:
		if p.anyPendingStoreBefore(seq) {
			return false, true
		}
		return true, false
	case config.Naive:
		return true, false
	case config.Selective:
		if e.waitAll && p.anyPendingStoreBefore(seq) {
			return false, true
		}
		return true, false
	case config.StoreBarrier:
		if !p.pendingBarriers.empty() && p.pendingBarriers.minSeq() < seq {
			return false, true
		}
		return true, false
	case config.Sync, config.StoreSets:
		if e.hasSyn && e.syncOnSeq != noSeq {
			s := p.slot(e.syncOnSeq)
			if s.valid && s.di.Seq == e.syncOnSeq && s.isStore {
				// Free to issue one cycle after the producer issues.
				if !s.memIssued || p.cycle < s.memIssue+1 {
					return false, true
				}
			}
		}
		return true, false
	case config.Oracle:
		// Perfect knowledge: wait exactly for the producing store, even
		// if (split window) it has not been fetched yet.
		prod := e.di.ProducerSeq
		if prod != noSeq && prod >= p.headSeq {
			s := p.slot(prod)
			if !s.valid || s.di.Seq != prod || !s.memIssued || p.cycle < s.memIssue+1 {
				return false, true
			}
		}
		return true, false
	}
	return true, false
}

// loadEligibleAS implements the address-based scheduler: the load
// compares its address against the posted addresses of earlier stores.
// A posted match always makes the load wait for that store's data; under
// AS/NO, unposted earlier stores also block the load.
func (p *Pipeline) loadEligibleAS(e *robEntry) (eligible, storeWait bool) {
	seq := e.di.Seq
	if p.cfg.Policy == config.NoSpec && p.anyUnpostedStoreBefore(seq) {
		return false, true
	}
	if m := p.youngestPostedMatch(e.di.Addr, seq); m != nil {
		if !m.memIssued || p.cycle < m.memIssue+1 {
			return false, true
		}
	}
	return true, false
}

// anyPendingStoreBefore reports whether any store older than seq has not
// yet executed.
func (p *Pipeline) anyPendingStoreBefore(seq int64) bool {
	return !p.pendingStores.empty() && p.pendingStores.minSeq() < seq
}

// anyUnpostedStoreBefore reports whether any store older than seq has
// not yet posted its address to the scheduler.
func (p *Pipeline) anyUnpostedStoreBefore(seq int64) bool {
	return !p.unpostedStores.empty() && p.unpostedStores.minSeq() < seq
}

// youngestPostedMatch returns the youngest store older than loadSeq
// whose posted address matches addr, or nil. The bucket chain is
// sequence-sorted, so the first youngest-first hit on addr wins.
func (p *Pipeline) youngestPostedMatch(addr uint32, loadSeq int64) *robEntry {
	t := &p.stores
	b := t.bucket(addr)
	for s := t.btail[b]; s != nilSlot; s = t.prev[s] {
		if t.addr[s] != addr || t.seq[s] >= loadSeq {
			continue
		}
		e := &p.rob[s]
		if e.valid && e.di.Seq == t.seq[s] {
			return e
		}
	}
	return nil
}

// parkOnStoreBlock parks a policy-blocked load on the store responsible
// for the block, for the policies whose block releases only at a store
// completion (or address posting) — both event-covered on the store's
// slot, so the load is re-examined the cycle its eligibility can first
// change. The load may wake to find a different store now blocking; it
// then re-parks on that one. Policies whose blocks release on store
// *issue* (Sync, StoreSets, Oracle, posted-address matches) keep the
// load as a candidate: their release cycle (memIssue+1) precedes the
// store's completion event, so a park could wake too late.
func (p *Pipeline) parkOnStoreBlock(e *robEntry) {
	seq := e.di.Seq
	if p.cfg.UseAddressScheduler {
		if p.cfg.Policy == config.NoSpec && p.anyUnpostedStoreBefore(seq) {
			p.parkReq = p.slotIndex(p.unpostedStores.minSeq())
		}
		return
	}
	switch p.cfg.Policy {
	case config.NoSpec:
		p.parkReq = p.slotIndex(p.pendingStores.minSeq())
	case config.Selective:
		if e.waitAll && p.anyPendingStoreBefore(seq) {
			p.parkReq = p.slotIndex(p.pendingStores.minSeq())
		}
	case config.StoreBarrier:
		if !p.pendingBarriers.empty() && p.pendingBarriers.minSeq() < seq {
			p.parkReq = p.slotIndex(p.pendingBarriers.minSeq())
		}
	}
}

// trueDepPending reports whether the load's architectural producer store
// is uncommitted and not yet executed (including, in the split window,
// producers that have not even been fetched).
func (p *Pipeline) trueDepPending(e *robEntry) bool {
	prod := e.di.ProducerSeq
	if prod == noSeq || prod < p.headSeq {
		return false
	}
	s := p.slot(prod)
	if !s.valid || s.di.Seq != prod {
		return true // not yet dispatched (split window)
	}
	return !s.memIssued || p.cycle < s.memDone
}

// issueLoadMem launches the load's memory access: forwarding from the
// store buffer when the producing store has executed, otherwise a
// (possibly stale) D-cache access. Under AS the scheduler latency is
// added in front of the access.
func (p *Pipeline) issueLoadMem(e *robEntry) {
	eff := p.cycle
	if p.cfg.UseAddressScheduler {
		eff += int64(p.cfg.SchedulerLatency)
	}
	var done int64
	prod := e.di.ProducerSeq
	if prod != noSeq && prod >= p.headSeq {
		// The producing store has not committed: it is either in flight
		// or (split window) not yet fetched.
		pe := p.slot(prod)
		if pe.valid && pe.di.Seq == prod && pe.memIssued {
			// Store buffer forward of the correct value.
			done = max64(eff, pe.memDone) + 1
			e.valueSource = prod
			e.specValue = e.di.LoadVal
			p.res.Forwards++
		} else if src := p.youngestExecutedMatch(e.di.Addr, e.di.Seq); src != nil {
			// Speculative forward from an older (stale) store.
			done = max64(eff, src.memDone) + 1
			e.valueSource = src.di.Seq
			e.specValue = src.di.StoreVal
			p.res.Forwards++
		} else {
			// Speculative read around the pending producer: the load
			// obtains the pre-store memory value.
			done = p.hier.D.Access(e.di.Addr, eff, false)
			e.valueSource = noSeq
			e.specValue = p.trace.At(prod).OldVal
		}
	} else {
		// No in-window producer: architecturally clean access.
		done = p.hier.D.Access(e.di.Addr, eff, false)
		e.valueSource = noSeq
		e.specValue = e.di.LoadVal
	}
	e.memIssued = true
	e.memIssue = p.cycle
	e.memDone = done
	e.doneCycle = done
	e.state = stIssued
	s := p.slotIndex(e.di.Seq)
	p.schedule(done, s)
	// Loads issue out of order; the table keeps per-address chains
	// sequence-sorted for the violation scan.
	p.loads.insert(s, e.di.Addr, e.di.Seq)
}

// youngestExecutedMatch returns the youngest executed in-window store
// older than loadSeq writing addr, or nil.
func (p *Pipeline) youngestExecutedMatch(addr uint32, loadSeq int64) *robEntry {
	t := &p.stores
	b := t.bucket(addr)
	for s := t.btail[b]; s != nilSlot; s = t.prev[s] {
		if t.addr[s] != addr || t.seq[s] >= loadSeq {
			continue
		}
		e := &p.rob[s]
		if e.valid && e.di.Seq == t.seq[s] && e.memIssued && p.cycle >= e.memDone {
			return e
		}
	}
	return nil
}
