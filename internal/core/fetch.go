package core

import (
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
)

// iCacheBlockShift matches the 32-byte I-cache blocks of Table 2.
const iCacheBlockShift = 5

// maxFetchBlocks is the fetch unit's per-cycle limit on distinct
// (possibly non-contiguous) instruction blocks (Table 2: "Combining of
// up to 4 non-continuous blocks").
const maxFetchBlocks = 4

// fetch implements the continuous-window front end: instructions are
// fetched strictly in program order; a mispredicted branch stalls fetch
// until the branch executes.
// wrongPathBlockBudget caps how far down the wrong path the front end
// streams before it would realistically have filled its fetch buffers.
const wrongPathBlockBudget = 8

func (p *Pipeline) fetch() {
	if p.blockedOnBranch != noSeq && p.cfg.WrongPathFetch && p.wrongPathBlocks > 0 {
		// Pollute the I-cache along the mispredicted path, one block per
		// cycle, until the branch resolves.
		p.hier.I.Access(p.wrongPathPC, p.cycle, false)
		p.wrongPathPC += 1 << iCacheBlockShift
		p.wrongPathBlocks--
		p.activity = true
	}
	if p.draining || p.blockedOnBranch != noSeq || p.cycle < p.fetchResumeAt {
		return
	}
	if p.traceEnded && p.fetchSeq >= p.traceLen {
		return
	}
	fetched, branches, blocks := 0, 0, 0
	for fetched < p.cfg.FetchWidth {
		// Respect the window: never run further than Window ahead of
		// commit (the front-end queue is part of that budget).
		if p.fetchSeq >= p.headSeq+int64(p.cfg.Window) {
			break
		}
		d := p.trace.At(p.fetchSeq)
		if d == nil {
			p.markTraceEnd()
			return
		}
		// Instruction cache: charge one access per block transition.
		blk := d.PC >> iCacheBlockShift
		if !p.haveFetchBlock || blk != p.lastFetchBlock {
			if blocks == maxFetchBlocks {
				break
			}
			blocks++
			done := p.hier.I.Access(d.PC, p.cycle, false)
			p.activity = true
			p.lastFetchBlock, p.haveFetchBlock = blk, true
			if done > p.cycle+p.hier.I.Config().HitLatency {
				// Miss: these instructions arrive when the fill does.
				p.fetchResumeAt = done
				break
			}
		}
		rec := fetchRec{seq: p.fetchSeq, ready: p.cycle + int64(p.cfg.FrontEndDepth), isMem: d.Inst.Op.IsMem()}
		if d.IsBranch() {
			if branches == p.cfg.BranchesPerCycle {
				break
			}
			branches++
			p.predictBranch(d, &rec)
		}
		//md:allocok amortized: fetchQ reaches its steady capacity and is reused
		p.fetchQ = append(p.fetchQ, rec)
		p.fetchSeq++
		fetched++
		p.activity = true
		if rec.bpWrong {
			// Stall until the branch resolves; optionally stream
			// wrong-path fetches meanwhile.
			p.blockedOnBranch = rec.seq
			p.wrongPathPC = rec.wrongPC
			p.wrongPathBlocks = wrongPathBlockBudget
			break
		}
	}
}

// predictBranch runs the branch predictor for the fetched branch d and
// records the prediction in rec. rec.bpWrong is set when the predicted
// next PC differs from the architectural one.
func (p *Pipeline) predictBranch(d *emu.DynInst, rec *fetchRec) {
	in := d.Inst
	fallthrough_ := d.PC + isa.InstBytes
	if in.Op.IsCondBranch() {
		rec.bpIsCond = true
		rec.bpHist = p.bp.History()
		pred := p.bp.PredictDirection(d.PC)
		rec.bpPred = pred
		p.bp.SpeculateHistory(pred)
		rec.bpWrong = pred != d.Taken
		if pred {
			rec.wrongPC = in.Target
		} else {
			rec.wrongPC = fallthrough_
		}
		return
	}
	_, tgt := p.bp.Predict(d.PC, in, fallthrough_)
	rec.bpWrong = tgt != d.NextPC
	rec.wrongPC = tgt
}

// fetchSplit implements the distributed, split-window front end of §3.7:
// the window is divided into SplitUnits sub-windows; tasks (contiguous
// trace chunks the size of a sub-window) are assigned round-robin; each
// unit fetches its own task independently, so younger instructions may
// be fetched long before older ones.
func (p *Pipeline) fetchSplit() {
	units := p.cfg.SplitUnits
	perUnit := p.cfg.FetchWidth / units
	if perUnit == 0 {
		perUnit = 1
	}
	taskSize := int64(p.cfg.Window / units)
	for u := 0; u < units; u++ {
		if p.unitFetchSeq[u] == noSeq {
			p.unitFetchSeq[u] = int64(u) * taskSize // initial task
		}
		if p.unitBlockedOn[u] != noSeq || p.cycle < p.unitResumeAt[u] {
			continue
		}
		fetched, branches, blocks := 0, 0, 0
		for fetched < perUnit {
			seq := p.unitFetchSeq[u]
			if p.traceEnded && seq >= p.traceLen {
				break // this unit has run off the end of the program
			}
			// The slot must be free (previous occupant committed).
			if seq >= p.headSeq+int64(p.cfg.Window) {
				break
			}
			d := p.trace.At(seq)
			if d == nil {
				p.markTraceEnd()
				break
			}
			blk := d.PC >> iCacheBlockShift
			if !p.unitHaveBlock[u] || blk != p.unitFetchBlock[u] {
				if blocks == maxFetchBlocks {
					break
				}
				blocks++
				done := p.hier.I.Access(d.PC, p.cycle, false)
				p.activity = true
				p.unitFetchBlock[u], p.unitHaveBlock[u] = blk, true
				if done > p.cycle+p.hier.I.Config().HitLatency {
					p.unitResumeAt[u] = done
					break
				}
			}
			rec := fetchRec{seq: seq, ready: p.cycle + int64(p.cfg.FrontEndDepth), isMem: d.Inst.Op.IsMem(), unit: u}
			if d.IsBranch() {
				if branches == p.cfg.BranchesPerCycle {
					break
				}
				branches++
				p.predictBranch(d, &rec)
			}
			//md:allocok amortized: fetchQ reaches its steady capacity and is reused
			p.fetchQ = append(p.fetchQ, rec)
			p.advanceUnitFetch(u, taskSize)
			fetched++
			p.activity = true
			if rec.bpWrong {
				p.unitBlockedOn[u] = rec.seq
				break
			}
		}
	}
}

// advanceUnitFetch moves unit u's fetch pointer to the next instruction
// of its current task, or to the start of its next task.
func (p *Pipeline) advanceUnitFetch(u int, taskSize int64) {
	seq := p.unitFetchSeq[u] + 1
	if seq%taskSize == 0 {
		// Finished the task: skip to this unit's next one.
		seq += int64(p.cfg.SplitUnits-1) * taskSize
	}
	p.unitFetchSeq[u] = seq
}

// dispatch moves front-end instructions into the window, resolving
// register dependences and applying per-policy dispatch-time work
// (predictor lookups, synonym matching).
func (p *Pipeline) dispatch() {
	width := p.cfg.IssueWidth
	lsq := p.cfg.LSQSize
	if lsq == 0 {
		lsq = p.cfg.Window
	}
	out := p.fetchQ[:0]
	dispatched := 0
	for i := range p.fetchQ {
		rec := p.fetchQ[i]
		lsqFull := p.memInFlight >= lsq && rec.isMem
		if dispatched >= width || rec.ready > p.cycle || rec.seq >= p.headSeq+int64(p.cfg.Window) || lsqFull {
			if !p.cfg.SplitWindow {
				// Program order: nothing younger can go either.
				//md:allocok reuse-append into fetchQ[:0]; never exceeds the old length
				out = append(out, p.fetchQ[i:]...)
				break
			}
			//md:allocok reuse-append into fetchQ[:0]; never exceeds the old length
			out = append(out, rec)
			continue
		}
		p.dispatchOne(rec)
		dispatched++
	}
	if dispatched > 0 {
		p.activity = true
	}
	p.fetchQ = out
}

// dispatchOne installs one instruction into its window slot.
func (p *Pipeline) dispatchOne(rec fetchRec) {
	d := p.trace.At(rec.seq)
	e := p.slot(rec.seq)
	*e = robEntry{
		di:          *d,
		dep1:        d.Dep1Seq,
		dep2:        d.Dep2Seq,
		addrReady:   notYet,
		addrPosted:  notYet,
		memDone:     notYet,
		doneCycle:   notYet,
		valueSource: noSeq,
		syncOnSeq:   noSeq,
		bpHist:      rec.bpHist,
		bpPred:      rec.bpPred,
		bpWrong:     rec.bpWrong,
		bpIsCond:    rec.bpIsCond,
		couldIssue:  notYet,
		valid:       true,
	}
	if rec.seq >= p.dispatchSeq {
		p.dispatchSeq = rec.seq + 1
	}

	op := d.Inst.Op
	e.isLoad = op.IsLoad()
	e.isStore = op.IsStore()
	e.isMem = e.isLoad || e.isStore
	e.isBranch = op.IsBranch()
	e.class = op.Class()
	e.latency = int64(e.class.Latency())
	switch {
	case e.isStore:
		p.memInFlight++
		p.dispatchStore(e)
	case e.isLoad:
		p.memInFlight++
		p.dispatchLoad(e)
	}
	p.candInsert(rec.seq)
}

// dispatchStore applies store-side policy work at dispatch.
func (p *Pipeline) dispatchStore(e *robEntry) {
	seq := e.di.Seq
	s := p.slotIndex(seq)
	p.pendingStores.insert(s, seq)
	if p.cfg.UseAddressScheduler {
		p.unpostedStores.insert(s, seq)
	}
	switch p.cfg.Policy {
	case config.StoreBarrier:
		if p.sbar.Predict(e.di.PC, p.cycle) {
			e.barrier = true
			p.pendingBarriers.insert(s, seq)
		}
	case config.Sync:
		if syn, ok := p.mdpt.StoreSynonym(e.di.PC, p.cycle); ok {
			e.storeIsSyn, e.synonym = true, syn
		}
	case config.StoreSets:
		if id, ok := p.ssets.SSID(e.di.PC, p.cycle); ok {
			e.storeIsSyn, e.synonym = true, id
		}
	}
}

// dispatchLoad applies load-side policy work at dispatch.
func (p *Pipeline) dispatchLoad(e *robEntry) {
	switch p.cfg.Policy {
	case config.Selective:
		e.waitAll = p.sel.Predict(e.di.PC, p.cycle)
	case config.Sync:
		if syn, ok := p.mdpt.LoadSynonym(e.di.PC, p.cycle); ok {
			e.hasSyn, e.synonym = true, syn
			e.syncOnSeq = p.closestSynonymStore(e.di.Seq, syn)
		}
	case config.StoreSets:
		if id, ok := p.ssets.SSID(e.di.PC, p.cycle); ok {
			e.hasSyn, e.synonym = true, id
			e.syncOnSeq = p.closestSynonymStore(e.di.Seq, id)
		}
	}
}

// closestSynonymStore returns the youngest in-window store older than
// loadSeq marked as a producer of synonym syn, or noSeq.
func (p *Pipeline) closestSynonymStore(loadSeq int64, syn uint32) int64 {
	lo := p.headSeq
	for s := loadSeq - 1; s >= lo; s-- {
		e := p.slot(s)
		if !e.valid || e.di.Seq != s {
			continue
		}
		if e.isStore && e.storeIsSyn && e.synonym == syn {
			return s
		}
	}
	return noSeq
}

// markTraceEnd records the program's exact dynamic length the first time
// fetch runs off the end of the trace. Other fetch sequencers (split
// window) keep fetching instructions below this bound.
func (p *Pipeline) markTraceEnd() {
	p.traceEnded = true
	p.traceLen = p.trace.Len()
}
