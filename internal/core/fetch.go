package core

import (
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
)

// iCacheBlockShift matches the 32-byte I-cache blocks of Table 2.
const iCacheBlockShift = 5

// maxFetchBlocks is the fetch unit's per-cycle limit on distinct
// (possibly non-contiguous) instruction blocks (Table 2: "Combining of
// up to 4 non-continuous blocks").
const maxFetchBlocks = 4

// fetch implements the continuous-window front end: instructions are
// fetched strictly in program order; a mispredicted branch stalls fetch
// until the branch executes.
// wrongPathBlockBudget caps how far down the wrong path the front end
// streams before it would realistically have filled its fetch buffers.
const wrongPathBlockBudget = 8

func (p *Pipeline) fetch() {
	if p.blockedOnBranch != noSeq && p.cfg.WrongPathFetch && p.wrongPathBlocks > 0 {
		// Pollute the I-cache along the mispredicted path, one block per
		// cycle, until the branch resolves.
		p.hier.I.Access(p.wrongPathPC, p.cycle, false)
		p.wrongPathPC += 1 << iCacheBlockShift
		p.wrongPathBlocks--
		p.activity = true
	}
	if p.draining || p.blockedOnBranch != noSeq || p.cycle < p.fetchResumeAt {
		return
	}
	if p.traceEnded && p.fetchSeq >= p.traceLen {
		return
	}
	fetched, branches, blocks := 0, 0, 0
	for fetched < p.cfg.FetchWidth {
		// Respect the window: never run further than Window ahead of
		// commit (the front-end queue is part of that budget).
		if p.fetchSeq >= p.headSeq+int64(p.cfg.Window) {
			break
		}
		d := p.trace.At(p.fetchSeq)
		if d == nil {
			p.markTraceEnd()
			return
		}
		// Instruction cache: charge one access per block transition.
		blk := d.PC >> iCacheBlockShift
		if !p.haveFetchBlock || blk != p.lastFetchBlock {
			if blocks == maxFetchBlocks {
				break
			}
			blocks++
			done := p.hier.I.Access(d.PC, p.cycle, false)
			p.activity = true
			p.lastFetchBlock, p.haveFetchBlock = blk, true
			if done > p.cycle+p.hier.I.Config().HitLatency {
				// Miss: these instructions arrive when the fill does.
				p.fetchResumeAt = done
				break
			}
		}
		rec := fetchRec{di: *d, seq: p.fetchSeq, ready: p.cycle + int64(p.cfg.FrontEndDepth), isMem: d.Inst.Op.IsMem()}
		if d.IsBranch() {
			if branches == p.cfg.BranchesPerCycle {
				break
			}
			branches++
			p.predictBranch(d, &rec)
		}
		//md:allocok amortized: fetchQ reaches its steady capacity and is reused
		p.fetchQ = append(p.fetchQ, rec)
		p.fetchSeq++
		fetched++
		p.activity = true
		if rec.bpWrong {
			// Stall until the branch resolves; optionally stream
			// wrong-path fetches meanwhile.
			p.blockedOnBranch = rec.seq
			p.wrongPathPC = rec.wrongPC
			p.wrongPathBlocks = wrongPathBlockBudget
			break
		}
	}
}

// predictBranch runs the branch predictor for the fetched branch d and
// records the prediction in rec. rec.bpWrong is set when the predicted
// next PC differs from the architectural one.
func (p *Pipeline) predictBranch(d *emu.DynInst, rec *fetchRec) {
	in := d.Inst
	fallthrough_ := d.PC + isa.InstBytes
	if in.Op.IsCondBranch() {
		rec.bpIsCond = true
		rec.bpHist = p.bp.History()
		pred := p.bp.PredictDirection(d.PC)
		rec.bpPred = pred
		p.bp.SpeculateHistory(pred)
		rec.bpWrong = pred != d.Taken
		if pred {
			rec.wrongPC = in.Target
		} else {
			rec.wrongPC = fallthrough_
		}
		return
	}
	_, tgt := p.bp.Predict(d.PC, in, fallthrough_)
	rec.bpWrong = tgt != d.NextPC
	rec.wrongPC = tgt
}

// fetchSplit implements the distributed, split-window front end of §3.7:
// the window is divided into SplitUnits sub-windows; tasks (contiguous
// trace chunks the size of a sub-window) are assigned round-robin; each
// unit fetches its own task independently, so younger instructions may
// be fetched long before older ones.
func (p *Pipeline) fetchSplit() {
	units := p.cfg.SplitUnits
	perUnit := p.cfg.FetchWidth / units
	if perUnit == 0 {
		perUnit = 1
	}
	taskSize := int64(p.cfg.Window / units)
	for u := 0; u < units; u++ {
		if p.unitFetchSeq[u] == noSeq {
			p.unitFetchSeq[u] = int64(u) * taskSize // initial task
		}
		if p.unitBlockedOn[u] != noSeq || p.cycle < p.unitResumeAt[u] {
			continue
		}
		fetched, branches, blocks := 0, 0, 0
		for fetched < perUnit {
			seq := p.unitFetchSeq[u]
			if p.traceEnded && seq >= p.traceLen {
				break // this unit has run off the end of the program
			}
			// The slot must be free (previous occupant committed).
			if seq >= p.headSeq+int64(p.cfg.Window) {
				break
			}
			d := p.trace.At(seq)
			if d == nil {
				p.markTraceEnd()
				break
			}
			blk := d.PC >> iCacheBlockShift
			if !p.unitHaveBlock[u] || blk != p.unitFetchBlock[u] {
				if blocks == maxFetchBlocks {
					break
				}
				blocks++
				done := p.hier.I.Access(d.PC, p.cycle, false)
				p.activity = true
				p.unitFetchBlock[u], p.unitHaveBlock[u] = blk, true
				if done > p.cycle+p.hier.I.Config().HitLatency {
					p.unitResumeAt[u] = done
					break
				}
			}
			rec := fetchRec{di: *d, seq: seq, ready: p.cycle + int64(p.cfg.FrontEndDepth), isMem: d.Inst.Op.IsMem(), unit: u}
			if d.IsBranch() {
				if branches == p.cfg.BranchesPerCycle {
					break
				}
				branches++
				p.predictBranch(d, &rec)
			}
			//md:allocok amortized: fetchQ reaches its steady capacity and is reused
			p.fetchQ = append(p.fetchQ, rec)
			p.advanceUnitFetch(u, taskSize)
			fetched++
			p.activity = true
			if rec.bpWrong {
				p.unitBlockedOn[u] = rec.seq
				break
			}
		}
	}
}

// advanceUnitFetch moves unit u's fetch pointer to the next instruction
// of its current task, or to the start of its next task.
func (p *Pipeline) advanceUnitFetch(u int, taskSize int64) {
	seq := p.unitFetchSeq[u] + 1
	if seq%taskSize == 0 {
		// Finished the task: skip to this unit's next one.
		seq += int64(p.cfg.SplitUnits-1) * taskSize
	}
	p.unitFetchSeq[u] = seq
}

// dispatch moves front-end instructions into the window, resolving
// register dependences and applying per-policy dispatch-time work
// (predictor lookups, synonym matching).
func (p *Pipeline) dispatch() {
	width := p.cfg.IssueWidth
	lsq := p.cfg.LSQSize
	if lsq == 0 {
		lsq = p.cfg.Window
	}
	dispatched := 0
	if !p.cfg.SplitWindow {
		// Program order: a stalled record stalls everything younger, so
		// the queue is consumed from the head and the cursor advances.
		h := p.fetchHead
		for ; h < len(p.fetchQ); h++ {
			rec := &p.fetchQ[h]
			lsqFull := p.memInFlight >= lsq && rec.isMem
			if dispatched >= width || rec.ready > p.cycle || rec.seq >= p.headSeq+int64(p.cfg.Window) || lsqFull {
				break
			}
			p.dispatchOne(rec)
			dispatched++
		}
		p.fetchHead = h
		if h == len(p.fetchQ) {
			p.fetchQ = p.fetchQ[:0]
			p.fetchHead = 0
		} else if h > 0 && 2*h >= cap(p.fetchQ) {
			// Normalize occasionally so fetch's tail appends reuse the
			// front of the array instead of growing it without bound.
			n := copy(p.fetchQ, p.fetchQ[h:])
			p.fetchQ = p.fetchQ[:n]
			p.fetchHead = 0
		}
	} else {
		// Split window: units dispatch independently, so stalled records
		// are skipped and the queue is compacted in place.
		out := p.fetchQ[:0]
		for i := range p.fetchQ {
			rec := &p.fetchQ[i]
			lsqFull := p.memInFlight >= lsq && rec.isMem
			if dispatched >= width || rec.ready > p.cycle || rec.seq >= p.headSeq+int64(p.cfg.Window) || lsqFull {
				//md:allocok reuse-append into fetchQ[:0]; never exceeds the old length
				out = append(out, *rec)
				continue
			}
			p.dispatchOne(rec)
			dispatched++
		}
		p.fetchQ = out
	}
	if dispatched > 0 {
		p.activity = true
	}
}

// opMeta precomputes the dispatch-time window flags and functional-unit
// class per opcode, replacing a handful of per-instruction predicate
// calls with one table read. Indexed by the full uint8 opcode range so
// the lookup never bounds-checks.
var opMeta [256]struct {
	flags uint32
	class isa.Class
}

func init() {
	for i := range opMeta {
		op := isa.Op(i)
		f := uint32(0)
		if op.IsLoad() {
			f |= fLoad | fMem
		}
		if op.IsStore() {
			f |= fStore | fMem
		}
		if op.IsBranch() {
			f |= fBranch
		}
		if op == isa.JR {
			f |= fJR
		}
		opMeta[i].flags = f
		opMeta[i].class = op.Class()
	}
}

// dispatchOne installs one instruction into its window slot. Every
// column is written explicitly: slots are reused and carry a previous
// occupant's values; colparity enforces the every-column contract.
//
//md:hotpath
//md:soalifecycle robCols
func (p *Pipeline) dispatchOne(rec *fetchRec) {
	d := &rec.di
	s := p.slotIndex(rec.seq)
	r := &p.rob
	r.seq[s] = rec.seq
	m := &opMeta[d.Inst.Op]
	f := m.flags
	if rec.bpPred {
		f |= fBpPred
	}
	if rec.bpWrong {
		f |= fBpWrong
	}
	if rec.bpIsCond {
		f |= fBpIsCond
	}
	if d.Taken {
		f |= fTaken
	}
	isLoad := f&fLoad != 0
	isStore := f&fStore != 0
	r.flags[s] = f
	r.class[s] = m.class
	r.doneCycle[s] = notYet
	r.addrReady[s] = notYet
	r.addrPosted[s] = notYet
	r.memIssue[s] = 0
	r.memDone[s] = notYet
	r.couldIssue[s] = notYet
	r.dep1[s] = d.Dep1Seq
	r.dep2[s] = d.Dep2Seq
	r.prod[s] = d.ProducerSeq
	r.valueSource[s] = noSeq
	r.syncOnSeq[s] = noSeq
	r.specValue[s] = 0
	r.loadVal[s] = d.LoadVal
	r.storeVal[s] = d.StoreVal
	r.pc[s] = d.PC
	r.addr[s] = d.Addr
	r.nextPC[s] = d.NextPC
	r.synonym[s] = 0
	r.bpHist[s] = rec.bpHist
	if rec.seq >= p.dispatchSeq {
		p.dispatchSeq = rec.seq + 1
	}
	switch {
	case isStore:
		p.memInFlight++
		p.dispatchStore(s)
	case isLoad:
		p.memInFlight++
		p.dispatchLoad(s)
	}
	p.candInsert(rec.seq)
}

// dispatchStore applies store-side policy work at dispatch.
func (p *Pipeline) dispatchStore(s int32) {
	r := &p.rob
	seq := r.seq[s]
	p.pendingStores.insert(s, seq)
	if p.cfg.UseAddressScheduler {
		p.unpostedStores.insert(s, seq)
	}
	switch p.cfg.Policy {
	case config.StoreBarrier:
		if p.sbar.Predict(r.pc[s], p.cycle) {
			r.set(s, fBarrier)
			p.pendingBarriers.insert(s, seq)
		}
	case config.Sync:
		if syn, ok := p.mdpt.StoreSynonym(r.pc[s], p.cycle); ok {
			r.set(s, fStoreIsSyn)
			r.synonym[s] = syn
		}
	case config.StoreSets:
		if id, ok := p.ssets.SSID(r.pc[s], p.cycle); ok {
			r.set(s, fStoreIsSyn)
			r.synonym[s] = id
		}
	}
}

// dispatchLoad applies load-side policy work at dispatch.
func (p *Pipeline) dispatchLoad(s int32) {
	r := &p.rob
	switch p.cfg.Policy {
	case config.Selective:
		if p.sel.Predict(r.pc[s], p.cycle) {
			r.set(s, fWaitAll)
		}
	case config.Sync:
		if syn, ok := p.mdpt.LoadSynonym(r.pc[s], p.cycle); ok {
			r.set(s, fHasSyn)
			r.synonym[s] = syn
			r.syncOnSeq[s] = p.closestSynonymStore(r.seq[s], syn)
		}
	case config.StoreSets:
		if id, ok := p.ssets.SSID(r.pc[s], p.cycle); ok {
			r.set(s, fHasSyn)
			r.synonym[s] = id
			r.syncOnSeq[s] = p.closestSynonymStore(r.seq[s], id)
		}
	}
}

// closestSynonymStore returns the youngest in-window store older than
// loadSeq marked as a producer of synonym syn, or noSeq.
func (p *Pipeline) closestSynonymStore(loadSeq int64, syn uint32) int64 {
	lo := p.headSeq
	for q := loadSeq - 1; q >= lo; q-- {
		s := p.slotIndex(q)
		if p.rob.seq[s] != q {
			continue
		}
		f := p.rob.flags[s]
		if f&fStore != 0 && f&fStoreIsSyn != 0 && p.rob.synonym[s] == syn {
			return q
		}
	}
	return noSeq
}

// markTraceEnd records the program's exact dynamic length the first time
// fetch runs off the end of the trace. Other fetch sequencers (split
// window) keep fetching instructions below this bound.
func (p *Pipeline) markTraceEnd() {
	p.traceEnded = true
	p.traceLen = p.trace.Len()
}
