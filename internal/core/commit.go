package core

import "mdspec/internal/config"

// commit retires completed instructions in program order, up to
// CommitWidth per cycle. Stores drain to the D-cache at commit through
// the store buffer, consuming a memory port (contending with loads; the
// store buffer does not combine writes to L1, per Table 2).
func (p *Pipeline) commit() {
	if p.commitEntries() == 0 {
		p.classifyStall()
	}
}

// commitEntries retires what it can this cycle and reports how many
// instructions committed. The early returns model the in-order commit
// stage blocking on its oldest instruction.
func (p *Pipeline) commitEntries() (committed int) {
	r := &p.rob
	for n := 0; n < p.cfg.CommitWidth; n++ {
		s := p.slotIndex(p.headSeq)
		if r.seq[s] != p.headSeq {
			break // empty or not yet dispatched (split-window hole)
		}
		f := r.flags[s]
		switch {
		case f&fStore != 0:
			if f&fMemIssued == 0 || p.cycle < r.memDone[s] {
				return
			}
			if p.portLeft == 0 {
				return // no D-cache write port this cycle
			}
			p.portLeft--
			p.hier.D.Access(r.addr[s], p.cycle, true)
			p.stores.removeSeq(s, r.addr[s], p.headSeq)
			p.res.CommittedStores++
			p.memInFlight--
		case f&fLoad != 0:
			if f&fMemIssued == 0 || p.cycle < r.memDone[s] {
				return
			}
			p.loads.removeSeq(s, r.addr[s], p.headSeq)
			p.res.CommittedLoads++
			p.memInFlight--
			if f&fFdCounted != 0 && f&fFdFalse != 0 {
				p.res.FalseDepLoads++
				p.res.FalseDepDelay += r.memIssue[s] - r.couldIssue[s]
			}
			if r.memIssue[s] > r.couldIssue[s] && policyDelaysLoads(p.cfg.Policy) {
				p.res.SyncWaits++
			}
		default:
			if f&fIssued == 0 || p.cycle < r.doneCycle[s] {
				return
			}
		}
		if f&fBranch != 0 {
			p.res.Branches++
			if f&fBpWrong != 0 {
				p.res.BranchMispredicts++
			}
		}
		r.seq[s] = noSeq
		p.headSeq++
		p.res.Committed++
		committed++
		p.activity = true // commit frees window space: fetch may resume
	}
	// Committed records can never be referenced again; let the trace
	// reclaim them (amortized internally).
	p.trace.Release(p.headSeq)
	return committed
}

// classifyStall attributes a zero-commit cycle to its cause: an empty
// window (front-end starvation), the oldest instruction waiting on the
// memory system or the load/store policy, or plain execution latency.
func (p *Pipeline) classifyStall() {
	s := p.slotIndex(p.headSeq)
	if p.rob.seq[s] != p.headSeq {
		p.res.StallEmpty++
		return
	}
	if p.rob.flags[s]&fMem != 0 {
		p.res.StallMem++
		return
	}
	p.res.StallExec++
}

// policyDelaysLoads reports whether the policy can delay loads via
// predictions (for the SyncWaits statistic).
func policyDelaysLoads(pol config.Policy) bool {
	switch pol {
	case config.Selective, config.StoreBarrier, config.Sync, config.StoreSets:
		return true
	}
	return false
}
