package core

import "mdspec/internal/config"

// commit retires completed instructions in program order, up to
// CommitWidth per cycle. Stores drain to the D-cache at commit through
// the store buffer, consuming a memory port (contending with loads; the
// store buffer does not combine writes to L1, per Table 2).
func (p *Pipeline) commit() {
	if p.commitEntries() == 0 {
		p.classifyStall()
	}
}

// commitEntries retires what it can this cycle and reports how many
// instructions committed. The early returns model the in-order commit
// stage blocking on its oldest instruction.
func (p *Pipeline) commitEntries() (committed int) {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		e := p.slot(p.headSeq)
		if !e.valid || e.di.Seq != p.headSeq {
			break // empty or not yet dispatched (split-window hole)
		}
		d := &e.di
		switch {
		case e.isStore:
			if !e.memIssued || p.cycle < e.memDone {
				return
			}
			if p.portLeft == 0 {
				return // no D-cache write port this cycle
			}
			p.portLeft--
			p.hier.D.Access(d.Addr, p.cycle, true)
			p.stores.removeSeq(p.slotIndex(d.Seq), d.Addr, d.Seq)
			p.res.CommittedStores++
			p.memInFlight--
		case e.isLoad:
			if !e.memIssued || p.cycle < e.memDone {
				return
			}
			p.loads.removeSeq(p.slotIndex(d.Seq), d.Addr, d.Seq)
			p.res.CommittedLoads++
			p.memInFlight--
			if e.fdCounted && e.fdFalse {
				p.res.FalseDepLoads++
				p.res.FalseDepDelay += e.memIssue - e.couldIssue
			}
			if e.memIssue > e.couldIssue && policyDelaysLoads(p.cfg.Policy) {
				p.res.SyncWaits++
			}
		default:
			if e.state != stIssued || p.cycle < e.doneCycle {
				return
			}
		}
		if e.isBranch {
			p.res.Branches++
			if e.bpWrong {
				p.res.BranchMispredicts++
			}
		}
		e.valid = false
		p.headSeq++
		p.res.Committed++
		committed++
		p.activity = true // commit frees window space: fetch may resume
	}
	// Committed records can never be referenced again; let the trace
	// reclaim them (amortized internally).
	p.trace.Release(p.headSeq)
	return committed
}

// classifyStall attributes a zero-commit cycle to its cause: an empty
// window (front-end starvation), the oldest instruction waiting on the
// memory system or the load/store policy, or plain execution latency.
func (p *Pipeline) classifyStall() {
	e := p.slot(p.headSeq)
	if !e.valid || e.di.Seq != p.headSeq {
		p.res.StallEmpty++
		return
	}
	if e.isMem {
		p.res.StallMem++
		return
	}
	p.res.StallExec++
}

// policyDelaysLoads reports whether the policy can delay loads via
// predictions (for the SyncWaits statistic).
func policyDelaysLoads(pol config.Policy) bool {
	switch pol {
	case config.Selective, config.StoreBarrier, config.Sync, config.StoreSets:
		return true
	}
	return false
}
