package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestSelectiveInvalidationCompletesExactly(t *testing.T) {
	// The differential property must hold for selective invalidation
	// too: exact commit counts on random programs.
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
		config.Default128().WithPolicy(config.Sync).WithRecovery(config.RecoverySelective),
		config.Small64().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
	}
	for seed := uint64(1); seed <= 15; seed++ {
		p := randProgram(seed * 104729)
		want := dynLen(p)
		for _, cfg := range cfgs {
			pl, err := New(cfg, emu.NewTrace(emu.New(p)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := pl.Run(1 << 22)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, cfg.Name(), err)
			}
			if r.Committed != want {
				t.Fatalf("seed %d, %s: committed %d, want %d", seed, cfg.Name(), r.Committed, want)
			}
		}
	}
}

func TestSelectiveInvalidationLosesLessWork(t *testing.T) {
	// §2: selective invalidation minimizes the work lost on
	// misspeculation. On a heavily misspeculating workload it must
	// discard far fewer instructions than squash invalidation and must
	// not be slower.
	p := workload.KernelRecurrence(0)
	squash, err := New(config.Default128().WithPolicy(config.Naive), emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	sq, err := squash.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	selective, err := New(config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
		emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := selective.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Misspeculations == 0 || sel.Misspeculations == 0 {
		t.Fatal("test needs a misspeculating workload")
	}
	perSquash := float64(sq.SquashedInsts) / float64(sq.Misspeculations)
	perSel := float64(sel.SquashedInsts) / float64(sel.Misspeculations)
	if perSel >= perSquash {
		t.Errorf("selective invalidation redoes %.1f insts/violation, squash %.1f — should be far less",
			perSel, perSquash)
	}
	if sel.IPC() < sq.IPC() {
		t.Errorf("selective invalidation IPC %.3f below squash %.3f", sel.IPC(), sq.IPC())
	}
}

func TestSelectiveInvalidationOnSuite(t *testing.T) {
	// Works on a real workload without deadlock, and trains SYNC as usual.
	p := workload.MustBuild("129.compress")
	pl, err := New(config.Default128().WithPolicy(config.Sync).WithRecovery(config.RecoverySelective),
		emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 40_000 {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.MisspecRate() > 0.02 {
		t.Errorf("SYNC should still learn under selective invalidation (misspec %.4f)", r.MisspecRate())
	}
}

func TestSelectiveInvalidationRejectedWithAS(t *testing.T) {
	cfg := config.Default128().WithPolicy(config.Naive).
		WithAddressScheduler(0).WithRecovery(config.RecoverySelective)
	if _, err := New(cfg, emu.NewTrace(emu.New(workload.KernelStream(10)))); err == nil {
		t.Fatal("AS + selective invalidation should be rejected")
	}
}

func TestRecoveryNames(t *testing.T) {
	cfg := config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective)
	if got := cfg.Name(); got != "NAS/NAV/selinv" {
		t.Errorf("Name() = %q", got)
	}
}
