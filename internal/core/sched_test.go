package core

import (
	"fmt"
	"strings"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
	"mdspec/internal/workload"
)

// twoLoadProgram builds the checkViolations regression workload: a store
// whose operands hang off a serial multiply chain, followed by two loads
// of the same word. Under NAV both loads issue speculatively long before
// the store executes, so the store's completion scan finds both in the
// same address chain.
func twoLoadProgram() *prog.Program {
	b := prog.NewBuilder()
	arena := b.AllocInit(7)
	b.Li(isa.R1, int64(arena))
	b.Li(isa.R2, 3)
	for i := 0; i < 6; i++ {
		b.Mult(isa.R2, isa.R2)
		b.Mflo(isa.R2)
	}
	b.Sw(isa.R2, isa.R1, 0)
	b.Lw(isa.R3, isa.R1, 0)
	b.Lw(isa.R4, isa.R1, 0)
	b.Add(isa.R5, isa.R3, isa.R4)
	b.Halt()
	return b.MustProgram()
}

// TestTwoViolatingLoadsSameAddress pins down checkViolations' mid-scan
// behavior when one store completion catches two misspeculated loads of
// the same word. Under squash invalidation the first (oldest) load's
// squash kills the second too, so returning mid-scan loses nothing and
// exactly one violation is recorded. Under selective invalidation the
// scan must keep going and correct each load individually.
func TestTwoViolatingLoadsSameAddress(t *testing.T) {
	p := twoLoadProgram()
	want := dynLen(p)

	run := func(cfg config.Machine) *struct {
		committed, misspec, squashed int64
	} {
		pl, err := New(cfg, emu.NewTrace(emu.New(p)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return &struct{ committed, misspec, squashed int64 }{r.Committed, r.Misspeculations, r.SquashedInsts}
	}

	sq := run(config.Default128().WithPolicy(config.Naive))
	if sq.committed != want {
		t.Errorf("squash: committed %d, want %d", sq.committed, want)
	}
	if sq.misspec != 1 {
		t.Errorf("squash: %d misspeculations, want 1 (one squash covers both loads)", sq.misspec)
	}
	if sq.squashed < 2 {
		t.Errorf("squash: only %d squashed instructions, both loads should be thrown away", sq.squashed)
	}

	sel := run(config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective))
	if sel.committed != want {
		t.Errorf("selinv: committed %d, want %d", sel.committed, want)
	}
	if sel.misspec != 2 {
		t.Errorf("selinv: %d misspeculations, want 2 (the scan must correct BOTH loads)", sel.misspec)
	}
}

// checkAddrMapsMirrorROB is the reverse direction of the invariant
// checker's table checks: every window entry that should be published in
// an address map or pending list is, under the exact publication rules
// (loads at memory issue; stores at completion under NAS, at address
// posting under AS; pending stores until completion).
func (p *Pipeline) checkAddrMapsMirrorROB() error {
	r := &p.rob
	for seq := p.headSeq; seq < p.dispatchSeq; seq++ {
		s := p.slotIndex(seq)
		if r.seq[s] != seq {
			continue
		}
		f := r.flags[s]
		switch {
		case f&fLoad != 0:
			want := f&fMemIssued != 0
			got := p.loads.in[s] && p.loads.seq[s] == seq && p.loads.addr[s] == r.addr[s]
			if got != want {
				return fmt.Errorf("load %d: in loads table %v, memIssued %v", seq, got, want)
			}
		case f&fStore != 0:
			completed := f&fCompleted != 0
			want := completed
			if p.cfg.UseAddressScheduler {
				// Posting fires in processStoreEvents at the start of the
				// cycle after addrPosted is reached, so a store whose
				// posting time equals the current cycle is not visible yet.
				want = f&fAgen != 0 && r.addrPosted[s] < p.cycle
			}
			got := p.stores.in[s] && p.stores.seq[s] == seq && p.stores.addr[s] == r.addr[s]
			if got != want {
				return fmt.Errorf("store %d: in stores table %v, want %v", seq, got, want)
			}
			if gotPend := p.pendingStores.in[s]; gotPend != !completed {
				return fmt.Errorf("store %d: in pendingStores %v, completed %v", seq, gotPend, completed)
			}
		}
	}
	return nil
}

// TestAddrMapsMirrorROBUnderSquashStorms drives random same-arena
// programs — dense with memory-order violations — through the squash and
// selective-invalidation recovery paths, checking after every cycle that
// the intrusive address maps mirror the window exactly in both
// directions.
func TestAddrMapsMirrorROBUnderSquashStorms(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
		config.Small64().WithPolicy(config.Naive),
	}
	for _, cfg := range cfgs {
		for seed := uint64(1); seed <= 6; seed++ {
			p := randProgram(seed * 15485863)
			want := dynLen(p)
			pl, err := New(cfg, emu.NewTrace(emu.New(p)))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1<<16 && pl.res.Committed < want; i++ {
				pl.step()
				if err := pl.checkAddrMapsMirrorROB(); err != nil {
					t.Fatalf("%s seed %d cycle %d: %v", cfg.Name(), seed, i, err)
				}
				if err := pl.checkInvariants(); err != nil {
					t.Fatalf("%s seed %d cycle %d: %v", cfg.Name(), seed, i, err)
				}
			}
			if pl.res.Committed != want {
				t.Fatalf("%s seed %d: committed %d, want %d", cfg.Name(), seed, pl.res.Committed, want)
			}
		}
		// The recurrence kernel misspeculates constantly, so the storm
		// exercises the recovery removal paths, not just clean commits.
		pl, err := New(cfg, emu.NewTrace(emu.New(workload.KernelRecurrence(0))))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			pl.step()
			if err := pl.checkAddrMapsMirrorROB(); err != nil {
				t.Fatalf("%s recurrence cycle %d: %v", cfg.Name(), i, err)
			}
			if err := pl.checkInvariants(); err != nil {
				t.Fatalf("%s recurrence cycle %d: %v", cfg.Name(), i, err)
			}
		}
		// AS/NAV corrects most violations silently (§3.4), so only the
		// NAS configurations are required to squash during the storm.
		if pl.res.Misspeculations == 0 && !cfg.UseAddressScheduler {
			t.Errorf("%s: storm produced no violations; property not exercised", cfg.Name())
		}
	}
}

// TestStepZeroAllocSteadyState holds the event-driven core to zero
// allocations per cycle once warm: all scheduling state (wheel buckets,
// waiter lists, candidate bitmap, address maps) reuses its backing
// storage, and the shared recording serves reads without copying.
func TestStepZeroAllocSteadyState(t *testing.T) {
	rec := emu.NewRecording(emu.New(workload.MustBuild("126.gcc")))
	cfgs := []struct {
		name string
		cfg  config.Machine
	}{
		{"NAS/SYNC", config.Default128().WithPolicy(config.Sync)},
		{"AS/NAIVE", config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1)},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := New(tc.cfg, rec.NewReplay())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20_000; i++ {
				pl.step()
			}
			if avg := testing.AllocsPerRun(2000, func() { pl.step() }); avg != 0 {
				t.Errorf("steady-state step allocates %.2f times per cycle, want 0", avg)
			}
		})
	}
}

// TestDeadlockSnapshotRenders exercises the watchdog's one-shot state
// dump against a live mid-flight pipeline; the watchdog itself is
// unreachable in a healthy build, so the renderer gets its own test.
func TestDeadlockSnapshotRenders(t *testing.T) {
	rec := emu.NewRecording(emu.New(workload.MustBuild("126.gcc")))
	pl, err := New(config.Default128().WithPolicy(config.Sync), rec.NewReplay())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		pl.step()
	}
	snap := pl.deadlockSnapshot()
	for _, want := range []string{"window: head=", "next event:", "pendingStores="} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
