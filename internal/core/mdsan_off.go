//go:build !mdsan

package core

// mdsanState carries the sanitizer's preallocated scratch; it is empty
// (and sanitize a no-op the compiler erases) unless the build carries
// the mdsan tag. See mdsan_on.go for the checks.
type mdsanState struct{}

func (*mdsanState) init(int) {}

// sanitize is compiled out in normal builds; `go test -tags mdsan`
// arms the cycle-level invariant checks.
func (p *Pipeline) sanitize() {}
