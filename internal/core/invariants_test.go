package core

import (
	"fmt"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

// checkInvariants validates the pipeline's internal bookkeeping; tests
// call it between steps to catch state corruption early.
func (p *Pipeline) checkInvariants() error {
	// Occupancy bounded by the window.
	if p.dispatchSeq-p.headSeq > int64(p.cfg.Window) {
		return fmt.Errorf("window over-full: head=%d dispatch=%d", p.headSeq, p.dispatchSeq)
	}
	// Pending store lists contain only valid, in-flight stores, in
	// strictly ascending order, with consistent intrusive links.
	checkList := func(name string, l *seqList) error {
		count, prev := 0, int64(-1)
		for s := l.head; s != nilSlot; s = l.next[s] {
			if count++; count > p.cfg.Window {
				return fmt.Errorf("%s: link cycle", name)
			}
			if !l.in[s] {
				return fmt.Errorf("%s: slot %d linked but not marked present", name, s)
			}
			seq := l.seq[s]
			if seq <= prev {
				return fmt.Errorf("%s not strictly ascending: %d after %d", name, seq, prev)
			}
			prev = seq
			if p.rob.seq[p.slotIndex(seq)] != seq {
				return fmt.Errorf("%s references dead seq %d", name, seq)
			}
			if p.rob.flags[p.slotIndex(seq)]&fStore == 0 {
				return fmt.Errorf("%s references non-store seq %d", name, seq)
			}
		}
		if count != l.n {
			return fmt.Errorf("%s: chain length %d != recorded %d", name, count, l.n)
		}
		return nil
	}
	if err := checkList("pendingStores", &p.pendingStores); err != nil {
		return err
	}
	if err := checkList("unpostedStores", &p.unpostedStores); err != nil {
		return err
	}
	if err := checkList("pendingBarriers", &p.pendingBarriers); err != nil {
		return err
	}
	// A completed store must not be in pendingStores.
	for s := p.pendingStores.head; s != nilSlot; s = p.pendingStores.next[s] {
		if p.rob.flags[s]&fCompleted != 0 {
			return fmt.Errorf("completed store %d still pending", p.pendingStores.seq[s])
		}
	}
	// Address tables reference live entries of the right kind, hashed to
	// the right bucket, with each chain in ascending sequence order.
	checkTable := func(name string, t *addrTable, wantLoad bool) error {
		for b := range t.bhead {
			prev := int64(-1)
			for s := t.bhead[b]; s != nilSlot; s = t.next[s] {
				if !t.in[s] {
					return fmt.Errorf("%s: slot %d linked but not marked present", name, s)
				}
				if int(t.bucket(t.addr[s])) != b {
					return fmt.Errorf("%s: addr %#x in bucket %d", name, t.addr[s], b)
				}
				seq := t.seq[s]
				if seq <= prev {
					return fmt.Errorf("%s bucket %d not ascending: %d after %d", name, b, seq, prev)
				}
				prev = seq
				rs := p.slotIndex(seq)
				if p.rob.seq[rs] != seq || p.rob.addr[rs] != t.addr[s] {
					return fmt.Errorf("%s stale seq %d", name, seq)
				}
				if wantLoad != (p.rob.flags[rs]&fLoad != 0) {
					return fmt.Errorf("%s references wrong-kind seq %d", name, seq)
				}
			}
		}
		return nil
	}
	if err := checkTable("stores", &p.stores, false); err != nil {
		return err
	}
	if err := checkTable("loads", &p.loads, true); err != nil {
		return err
	}
	// Scheduling state: candidates are never parked; a slot parked on a
	// producer appears exactly once on that producer's waiter list, and
	// waiter lists are consistent with the parkedOn map.
	if !p.scanMode {
		for s := int32(0); s < int32(p.cfg.Window); s++ {
			if p.cand.has(s) && p.parkedOn[s] != parkNone {
				return fmt.Errorf("candidate slot %d is parked on %d", s, p.parkedOn[s])
			}
		}
		for q := range p.wHead {
			for w := p.wHead[q]; w != nilSlot; w = p.wNext[w] {
				if p.parkedOn[w] != int32(q) {
					return fmt.Errorf("waiter %d on list %d but parked on %d", w, q, p.parkedOn[w])
				}
				if nw := p.wNext[w]; nw != nilSlot && p.wPrev[nw] != w {
					return fmt.Errorf("waiter list %d back-link broken at %d", q, w)
				}
			}
		}
		for s := range p.parkedOn {
			q := p.parkedOn[s]
			if q < 0 {
				continue // not parked, or waiting on a timed event
			}
			found := false
			for w := p.wHead[q]; w != nilSlot; w = p.wNext[w] {
				if w == int32(s) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("slot %d parked on %d but not on its waiter list", s, q)
			}
		}
	}
	// Commit pointer sanity.
	if p.res.Committed != p.headSeq-p.res.Skipped {
		return fmt.Errorf("committed %d != head %d - skipped %d", p.res.Committed, p.headSeq, p.res.Skipped)
	}
	// LSQ occupancy must equal the in-flight memory instructions.
	memCount := 0
	for seq := p.headSeq; seq < p.dispatchSeq; seq++ {
		s := p.slotIndex(seq)
		if p.rob.seq[s] == seq && p.rob.flags[s]&fMem != 0 {
			memCount++
		}
	}
	if memCount != p.memInFlight {
		return fmt.Errorf("memInFlight %d != actual %d", p.memInFlight, memCount)
	}
	return nil
}

// TestInvariantsUnderAllPolicies steps several configurations cycle by
// cycle with the invariant checker armed.
func TestInvariantsUnderAllPolicies(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.NoSpec),
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.StoreBarrier),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(0),
		config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
	}
	for _, cfg := range cfgs {
		for _, scan := range []bool{false, true} {
			cfg, scan := cfg, scan
			mode := "event"
			if scan {
				mode = "scan"
			}
			t.Run(cfg.Name()+"/"+mode, func(t *testing.T) {
				pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild("129.compress"))))
				if err != nil {
					t.Fatal(err)
				}
				pl.SetScanScheduler(scan)
				for i := 0; i < 4000; i++ {
					pl.step()
					if i%7 == 0 { // checking every cycle is slow; sample densely
						if err := pl.checkInvariants(); err != nil {
							t.Fatalf("cycle %d: %v", i, err)
						}
					}
				}
				if pl.res.Committed == 0 {
					t.Fatal("no progress")
				}
			})
		}
	}
}

// TestSimulationDeterministic runs identical simulations twice and
// requires bit-identical statistics.
func TestSimulationDeterministic(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
	}
	for _, cfg := range cfgs {
		for _, bench := range []string{"126.gcc", "104.hydro2d"} {
			run := func() string {
				pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild(bench))))
				if err != nil {
					t.Fatal(err)
				}
				r, err := pl.Run(20_000)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%d/%d/%d/%d/%d", r.Cycles, r.Committed,
					r.Misspeculations, r.SquashedInsts, r.BranchMispredicts)
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("%s on %s not deterministic: %s vs %s", cfg.Name(), bench, a, b)
			}
		}
	}
}
