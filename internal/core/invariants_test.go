package core

import (
	"fmt"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

// checkInvariants validates the pipeline's internal bookkeeping; tests
// call it between steps to catch state corruption early.
func (p *Pipeline) checkInvariants() error {
	// Occupancy bounded by the window.
	if p.dispatchSeq-p.headSeq > int64(p.cfg.Window) {
		return fmt.Errorf("window over-full: head=%d dispatch=%d", p.headSeq, p.dispatchSeq)
	}
	// Sorted pending lists contain only valid, in-flight, un-completed stores.
	checkList := func(name string, lst []int64) error {
		for i, s := range lst {
			if i > 0 && lst[i-1] >= s {
				return fmt.Errorf("%s not strictly ascending at %d: %v", name, i, lst)
			}
			e := p.slot(s)
			if !e.valid || e.di.Seq != s {
				return fmt.Errorf("%s references dead seq %d", name, s)
			}
			if !e.di.IsStore() {
				return fmt.Errorf("%s references non-store seq %d", name, s)
			}
		}
		return nil
	}
	if err := checkList("pendingStores", p.pendingStores); err != nil {
		return err
	}
	if err := checkList("unpostedStores", p.unpostedStores); err != nil {
		return err
	}
	if err := checkList("pendingBarriers", p.pendingBarriers); err != nil {
		return err
	}
	// A completed store must not be in pendingStores.
	for _, s := range p.pendingStores {
		if p.slot(s).completed {
			return fmt.Errorf("completed store %d still pending", s)
		}
	}
	// Address maps reference live entries of the right kind.
	for addr, lst := range p.storesByAddr {
		for _, s := range lst {
			e := p.slot(s)
			if !e.valid || e.di.Seq != s || !e.di.IsStore() || e.di.Addr != addr {
				return fmt.Errorf("storesByAddr[%#x] stale seq %d", addr, s)
			}
		}
	}
	for addr, lst := range p.loadsByAddr {
		for _, s := range lst {
			e := p.slot(s)
			if !e.valid || e.di.Seq != s || !e.di.IsLoad() || e.di.Addr != addr {
				return fmt.Errorf("loadsByAddr[%#x] stale seq %d", addr, s)
			}
		}
	}
	// Commit pointer sanity.
	if p.res.Committed != p.headSeq-p.res.Skipped {
		return fmt.Errorf("committed %d != head %d - skipped %d", p.res.Committed, p.headSeq, p.res.Skipped)
	}
	// LSQ occupancy must equal the in-flight memory instructions.
	memCount := 0
	for seq := p.headSeq; seq < p.dispatchSeq; seq++ {
		e := p.slot(seq)
		if e.valid && e.di.Seq == seq && e.di.Inst.Op.IsMem() {
			memCount++
		}
	}
	if memCount != p.memInFlight {
		return fmt.Errorf("memInFlight %d != actual %d", p.memInFlight, memCount)
	}
	return nil
}

// TestInvariantsUnderAllPolicies steps several configurations cycle by
// cycle with the invariant checker armed.
func TestInvariantsUnderAllPolicies(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.NoSpec),
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.StoreBarrier),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(0),
		config.Default128().WithPolicy(config.Naive).WithRecovery(config.RecoverySelective),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild("129.compress"))))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4000; i++ {
				pl.step()
				if i%7 == 0 { // checking every cycle is slow; sample densely
					if err := pl.checkInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", i, err)
					}
				}
			}
			if pl.res.Committed == 0 {
				t.Fatal("no progress")
			}
		})
	}
}

// TestSimulationDeterministic runs identical simulations twice and
// requires bit-identical statistics.
func TestSimulationDeterministic(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
	}
	for _, cfg := range cfgs {
		for _, bench := range []string{"126.gcc", "104.hydro2d"} {
			run := func() string {
				pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild(bench))))
				if err != nil {
					t.Fatal(err)
				}
				r, err := pl.Run(20_000)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%d/%d/%d/%d/%d", r.Cycles, r.Committed,
					r.Misspeculations, r.SquashedInsts, r.BranchMispredicts)
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("%s on %s not deterministic: %s vs %s", cfg.Name(), bench, a, b)
			}
		}
	}
}
