// Package core implements the cycle-level, execution-driven timing model
// of the paper's centralized, continuous-window superscalar processor
// (Table 2), including every load/store execution policy studied in §3:
//
//	NAS/NO, NAS/NAV, NAS/SEL, NAS/STORE, NAS/SYNC, NAS/ORACLE
//	AS/NO,  AS/NAV (with configurable address-scheduler latency)
//
// and, for §3.7, the distributed split-window variant in which fetch
// proceeds independently per unit and issue does not use global program
// order priority.
//
// The pipeline consumes the correct-path dynamic instruction stream from
// an emu.Stream (a lazily emulated emu.Trace, or a shared emu.Recording
// replayed across a sweep). Branch mispredictions stall fetch until the
// branch resolves (no wrong-path execution); memory-order violations
// squash the offending load and everything younger and rewind fetch
// (squash invalidation).
//
// The issue stage is event-driven: completing instructions wake the
// consumers parked on them, timed phases (address generation, memory
// access, store posting) push events onto a per-cycle calendar wheel,
// and cycles in which provably nothing can happen are skipped in one
// jump to the next event. A legacy full-window scan scheduler is kept
// behind SetScanScheduler as the executable specification; the golden
// equivalence test holds the two to bit-identical statistics.
package core

import (
	"fmt"
	"strings"

	"mdspec/internal/bpred"
	"mdspec/internal/cache"
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/mdp"
	"mdspec/internal/stats"
)

// noSeq marks "no sequence number".
const noSeq int64 = -1

// Per-entry flag bits, packed one word per window slot in robCols.flags.
// The low bit is the only mutable scheduling state (waiting vs issued);
// the opcode predicates and policy annotations are decoded once at
// dispatch and read on every examination, so keeping them in one word
// turns the issue stage's predicate cascade into a couple of masked
// loads instead of a scatter of bool columns.
const (
	// fIssued: executing (or executed); result at doneCycle. Clear means
	// the old stWaiting — dispatched, not all uops issued.
	fIssued uint32 = 1 << iota
	fLoad
	fStore
	fMem
	fBranch
	fJR    // indirect jump (the only opcode identity issue still needs)
	fTaken // architectural branch direction

	// Memory-operation bookkeeping.
	fAgen      // address-generation uop has issued
	fMemIssued // load: memory access launched; store: executed into buffer
	fCompleted // store completion event processed (left the pending sets)

	// Load speculation tracking.
	fPropagated // a dependent instruction has consumed the load's value

	// Policy annotations (set at dispatch).
	fWaitAll    // SEL: predicted dependent, wait for all prior stores
	fBarrier    // STORE: this store is a predicted barrier
	fHasSyn     // SYNC/SSET: synchronize via synonym
	fStoreIsSyn // store: marked as a synonym producer

	// Branch bookkeeping.
	fBpPred   // predicted direction
	fBpWrong  // misprediction (direction or target)
	fBpIsCond // conditional branch

	// False-dependence accounting (NO policies).
	fFdCounted
	fFdFalse
)

// robCols is the instruction window (RUU) in structure-of-arrays form:
// one dense column per field, indexed by window slot. The issue stage
// touches only the columns a given check needs (liveness is one int64
// compare, the predicate cascade one uint32 load), so a window walk
// streams a few cache lines per column instead of dragging a ~200-byte
// robEntry struct through the cache per entry, and dispatch writes
// columns instead of a duffcopy of the whole struct.
//
//md:soa
type robCols struct {
	// seq is the occupying sequence number, or noSeq for a free slot.
	// It replaces the AoS valid flag + di.Seq pair: every liveness check
	// ("is seq still dispatched here?") is a single column compare.
	seq []int64

	// Packed predicates and scheduling state; see the f* bits above.
	flags []uint32

	// class is the execution class (functional unit + latency), decoded
	// at dispatch.
	class []isa.Class

	// Cycle columns (notYet until known).
	doneCycle  []int64 // result available
	addrReady  []int64 // effective address available
	addrPosted []int64 // AS: address visible to the scheduler
	memIssue   []int64 // cycle the memory uop issued
	memDone    []int64 // load: data available; store: buffer entry valid
	couldIssue []int64 // cycle the load could otherwise have accessed memory

	// Dependence columns: producer sequence numbers (noSeq = none).
	dep1, dep2  []int64
	prod        []int64 // architectural producer store (oracle/fd accounting)
	valueSource []int64 // seq of the store the load's value came from (noSeq = memory)
	syncOnSeq   []int64 // load: closest preceding synonym store to wait for

	// Value columns (from the trace, needed for AS value comparison and
	// store-buffer forwarding without re-touching the trace).
	specValue []int64 // the value the load actually obtained
	loadVal   []int64 // architectural load result
	storeVal  []int64 // architectural store value

	// Architectural scalars copied from the trace at dispatch.
	pc, addr, nextPC []uint32
	synonym          []uint32 // SYNC/SSET synonym or store-set ID
	bpHist           []uint32 // predictor history at prediction time
}

// init allocates every column at the window size; colparity keeps the
// column list in lockstep with the struct.
//
//md:soalifecycle robCols
func (r *robCols) init(w int) {
	r.seq = make([]int64, w)
	for i := range r.seq {
		r.seq[i] = noSeq
	}
	r.flags = make([]uint32, w)
	r.class = make([]isa.Class, w)
	r.doneCycle = make([]int64, w)
	r.addrReady = make([]int64, w)
	r.addrPosted = make([]int64, w)
	r.memIssue = make([]int64, w)
	r.memDone = make([]int64, w)
	r.couldIssue = make([]int64, w)
	r.dep1 = make([]int64, w)
	r.dep2 = make([]int64, w)
	r.prod = make([]int64, w)
	r.valueSource = make([]int64, w)
	r.syncOnSeq = make([]int64, w)
	r.specValue = make([]int64, w)
	r.loadVal = make([]int64, w)
	r.storeVal = make([]int64, w)
	r.pc = make([]uint32, w)
	r.addr = make([]uint32, w)
	r.nextPC = make([]uint32, w)
	r.synonym = make([]uint32, w)
	r.bpHist = make([]uint32, w)
}

// live reports whether slot s holds a dispatched, in-flight instruction.
//
//md:hotpath
func (r *robCols) live(s int32) bool { return r.seq[s] != noSeq }

// has reports whether any of the flag bits f are set on slot s.
//
//md:hotpath
func (r *robCols) has(s int32, f uint32) bool { return r.flags[s]&f != 0 }

// set sets the flag bits f on slot s.
//
//md:hotpath
func (r *robCols) set(s int32, f uint32) { r.flags[s] |= f }

// clear clears the flag bits f on slot s.
//
//md:hotpath
func (r *robCols) clear(s int32, f uint32) { r.flags[s] &^= f }

const notYet int64 = 1 << 62

// fetchRec is an instruction moving through the front end.
type fetchRec struct {
	di       emu.DynInst // decoded at fetch; dispatch reads it without re-decoding
	seq      int64
	ready    int64 // dispatchable at this cycle
	isMem    bool  // decoded at fetch, for the dispatch LSQ check
	bpHist   uint32
	bpPred   bool
	bpWrong  bool
	bpIsCond bool
	wrongPC  uint32 // predicted (wrong) next PC, for wrong-path fetch
	unit     int    // split-window fetch unit
}

// Pipeline is one configured simulation instance.
type Pipeline struct {
	cfg   config.Machine
	trace emu.Stream
	hier  *cache.Hierarchy
	bp    *bpred.Predictor

	sel   *mdp.Selective
	sbar  *mdp.StoreBarrier
	mdpt  *mdp.MDPT
	ssets *mdp.StoreSets

	cycle int64
	rob   robCols

	headSeq     int64 // oldest in-flight (next to commit)
	dispatchSeq int64 // next sequence number to dispatch
	fetchSeq    int64 // next sequence number to fetch
	traceEnded  bool  // the program's end has been observed
	traceLen    int64 // exact dynamic length, valid once traceEnded

	// fetchQ holds fetched-but-undispatched instructions; the live
	// records are fetchQ[fetchHead:]. The continuous window consumes the
	// queue strictly in order, so dispatch advances the cursor instead of
	// compacting the slice every cycle (fetch records are wide — they
	// carry the decoded instruction). Split-window dispatch skips stalled
	// records out of order and still compacts, leaving fetchHead at 0.
	fetchQ    []fetchRec
	fetchHead int

	// Fetch stall state.
	blockedOnBranch int64 // seq of unresolved mispredicted branch (noSeq = none)
	fetchResumeAt   int64 // earliest cycle fetch may proceed
	lastFetchBlock  uint32
	haveFetchBlock  bool

	// Wrong-path fetch state (cfg.WrongPathFetch): while blocked on a
	// mispredicted branch, the front end streams I-cache accesses down
	// the wrong path.
	wrongPathPC     uint32
	wrongPathBlocks int

	// Split-window state (cfg.SplitWindow).
	unitFetchSeq   []int64 // per-unit next fetch seq
	unitBlockedOn  []int64 // per-unit unresolved mispredicted branch
	unitResumeAt   []int64
	unitFetchBlock []uint32
	unitHaveBlock  []bool
	issueRotate    int

	// Ordered (ascending seq) lists of in-window stores in various states.
	pendingStores   seqList // dispatched, not yet executed
	unpostedStores  seqList // AS: dispatched, address not yet posted
	pendingBarriers seqList // STORE: predicted barrier stores not yet executed

	// stores: in-window stores whose address is known to the hardware
	// (NAS: executed; AS: posted), keyed by word address.
	// loads: in-window loads that have performed their access.
	stores addrTable
	loads  addrTable

	// postQ holds stores whose addresses are travelling to the address
	// scheduler; compQ holds stores whose execution is completing.
	postQ []int64
	compQ []int64

	// memInFlight counts dispatched, uncommitted loads and stores (the
	// LSQ occupancy).
	memInFlight int

	// Per-cycle resource pools (reset each cycle).
	issueLeft, aluLeft, mulLeft, fpLeft, portLeft int

	res stats.Run

	// draining pauses fetch so the window can empty (sampling).
	draining bool

	// maxSquashDepth guards against pathological livelock (debugging).
	squashes int64

	// Event-driven scheduler state. scanMode selects the legacy
	// full-window scan instead (candidate queues, parking, and the event
	// heap then stay empty).
	scanMode bool
	cand     candSet    // wakeup candidate slots (iterated in rotated seq order)
	events   eventWheel // pending completions / postings / corrections
	activity bool       // anything happened this cycle (guards the cycle skip)

	// slotMask is Window-1 when the window is a power of two (the common
	// case), letting the slot mapping avoid an integer division.
	slotMask int64

	// Parking: parkedOn[s] is parkNone, parkTimer, or the producer slot
	// whose waiter list (wHead/wNext/wPrev) slot s is linked into.
	parkedOn            []int32
	wHead, wNext, wPrev []int32

	// parkReq carries a failed issue attempt's wakeup source out of
	// tryIssue* (parkNone: stay a candidate; parkTimer: an event is
	// already scheduled; else: the producer slot to park on).
	parkReq int32

	// splitCursors is the reusable per-unit cursor buffer of the
	// split-window issue walk: each holds the unit's position in its
	// rotated candidate sub-range. scanCursors is its counterpart for
	// the legacy scan walk (per-unit sequence cursors); both live for
	// the pipeline's lifetime so the per-cycle issue stage allocates
	// nothing.
	splitCursors []int32
	scanCursors  []int64

	// Generation-stamped invalidation marks (selectiveInvalidate's
	// transitive-consumer set; replaces a per-call map).
	invGen, invSeq []int64
	curGen         int64

	// violScratch snapshots matching loads in checkViolations so
	// recovery actions can edit the address chains mid-walk.
	violScratch []int64

	// warm replays functional windows (and interval-parallel warm-up)
	// into this pipeline's caches and branch predictor; see warm.go.
	warm Warmer

	// cycleBase is subtracted from the cycle counter when reporting
	// Cycles: a sampled segment's detailed warm-up advances the clock but
	// is erased from the statistics (see Pipeline.resetStats).
	cycleBase int64

	// san holds the mdsan sanitizer's preallocated scratch; empty (and
	// sanitize a no-op) unless built with -tags mdsan.
	san mdsanState
}

// New builds a pipeline over the given dynamic instruction stream.
func New(cfg config.Machine, trace emu.Stream) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, bp := newWarmState(cfg.PerfectCaches, cfg.BranchPredictor)
	p := &Pipeline{
		cfg:             cfg,
		trace:           trace,
		hier:            h,
		bp:              bp,
		blockedOnBranch: noSeq,
	}
	w := cfg.Window
	p.rob.init(w)
	p.stores.init(w)
	p.loads.init(w)
	p.pendingStores.init(w)
	p.unpostedStores.init(w)
	p.pendingBarriers.init(w)
	if w&(w-1) == 0 {
		p.slotMask = int64(w - 1)
	}
	units := 1
	if cfg.SplitWindow {
		units = cfg.SplitUnits
	}
	p.cand.init(w)
	p.splitCursors = make([]int32, units)
	p.scanCursors = make([]int64, units)
	p.parkedOn = make([]int32, w)
	p.wHead = make([]int32, w)
	p.wNext = make([]int32, w)
	p.wPrev = make([]int32, w)
	for i := 0; i < w; i++ {
		p.parkedOn[i] = parkNone
		p.wHead[i] = nilSlot
	}
	p.invGen = make([]int64, w)
	p.invSeq = make([]int64, w)
	p.events.init()
	p.violScratch = make([]int64, 0, 64)
	p.san.init(w)
	switch cfg.Policy {
	case config.Selective:
		p.sel = mdp.NewSelective(cfg.PredictorTable)
	case config.StoreBarrier:
		p.sbar = mdp.NewStoreBarrier(cfg.PredictorTable)
	case config.Sync:
		p.mdpt = mdp.NewMDPT(cfg.PredictorTable)
	case config.StoreSets:
		p.ssets = mdp.NewStoreSets(cfg.PredictorTable)
	}
	if cfg.SplitWindow {
		u := cfg.SplitUnits
		p.unitFetchSeq = make([]int64, u)
		p.unitBlockedOn = make([]int64, u)
		p.unitResumeAt = make([]int64, u)
		p.unitFetchBlock = make([]uint32, u)
		p.unitHaveBlock = make([]bool, u)
		for i := 0; i < u; i++ {
			p.unitBlockedOn[i] = noSeq
			p.unitFetchSeq[i] = noSeq
		}
	}
	p.warm = Warmer{trace: trace, hier: h, bp: p.bp}
	p.res.Config = cfg.Name()
	return p, nil
}

// Hierarchy exposes the memory system (for inspection in tests/examples).
func (p *Pipeline) Hierarchy() *cache.Hierarchy { return p.hier }

// SetScanScheduler selects the legacy full-window scan issue stage
// instead of the event-driven scheduler. The two produce bit-identical
// statistics (enforced by the golden equivalence test); the scan
// version is kept as the executable specification the event-driven core
// is validated against. Must be called before the first cycle runs.
func (p *Pipeline) SetScanScheduler(on bool) { p.scanMode = on }

// windowHas reports whether seq is currently dispatched and in-flight.
func (p *Pipeline) windowHas(seq int64) bool {
	if seq < p.headSeq || seq >= p.dispatchSeq {
		return false
	}
	return p.rob.seq[p.slotIndex(seq)] == seq
}

// Run simulates until maxInsts instructions have committed (or the trace
// ends) and returns the collected statistics.
func (p *Pipeline) Run(maxInsts int64) (*stats.Run, error) {
	if p.cycle != 0 || p.res.Committed != 0 {
		return nil, fmt.Errorf("core: Run called twice on one Pipeline")
	}
	maxCycles := maxInsts*200 + 100_000 // livelock guard (IPC < 0.005 means a bug)
	for p.res.Committed < maxInsts {
		if p.traceEnded && p.headSeq >= p.traceLen {
			break // every instruction has committed
		}
		p.step()
		if p.cycle > maxCycles {
			return nil, &DeadlockError{
				Config: p.cfg.Name(), Phase: "run",
				Cycles: p.cycle, Committed: p.res.Committed, Target: maxInsts,
				Snapshot: p.deadlockSnapshot(),
			}
		}
	}
	p.captureMemStats()
	return &p.res, nil
}

// captureMemStats copies the memory system's counters into the result at
// the end of a run.
func (p *Pipeline) captureMemStats() {
	p.res.Cycles = p.cycle - p.cycleBase
	p.res.DCacheAccesses = p.hier.D.Stats.Accesses
	p.res.DCacheMisses = p.hier.D.Stats.Misses
	p.res.ICacheAccesses = p.hier.I.Stats.Accesses
	p.res.ICacheMisses = p.hier.I.Stats.Misses
}

// deadlockSnapshot renders a one-shot dump of the machine state for the
// Run watchdog's error: where the window stands, what the head is stuck
// on, which slots are parked on what, and when the scheduler next
// expects anything to happen. It runs once, on the failure path only,
// so readability beats allocation discipline here.
func (p *Pipeline) deadlockSnapshot() string {
	r := &p.rob
	var b strings.Builder
	fmt.Fprintf(&b, "  cycle=%d scanMode=%v window: head=%d dispatch=%d occupancy=%d/%d\n",
		p.cycle, p.scanMode, p.headSeq, p.dispatchSeq, p.dispatchSeq-p.headSeq, p.cfg.Window)
	if hs := p.slotIndex(p.headSeq); r.seq[hs] == p.headSeq {
		f := r.flags[hs]
		fmt.Fprintf(&b, "  head seq=%d load=%v store=%v branch=%v agen=%v memIssued=%v completed=%v addrReady=%d memDone=%d dep1=%d dep2=%d parkedOn=%d\n",
			p.headSeq, f&fLoad != 0, f&fStore != 0, f&fBranch != 0, f&fAgen != 0, f&fMemIssued != 0,
			f&fCompleted != 0, r.addrReady[hs], r.memDone[hs], r.dep1[hs], r.dep2[hs], p.parkedOn[hs])
	} else {
		fmt.Fprintf(&b, "  head seq=%d not dispatched (window empty or hole)\n", p.headSeq)
	}
	if next := p.nextEventCycle(); next >= notYet {
		fmt.Fprintf(&b, "  next event: none (wheel n=%d overflow=%d)\n", p.events.n, len(p.events.over))
	} else {
		fmt.Fprintf(&b, "  next event: cycle %d (wheel n=%d overflow=%d)\n", next, p.events.n, len(p.events.over))
	}
	const maxParked = 16
	parked := 0
	for s := range p.parkedOn {
		q := p.parkedOn[s]
		if q == parkNone {
			continue
		}
		if parked++; parked > maxParked {
			continue
		}
		f := r.flags[s]
		on := "timer"
		if q >= 0 {
			on = fmt.Sprintf("slot %d (seq %d)", q, r.seq[q])
		}
		fmt.Fprintf(&b, "  parked: slot %d seq=%d load=%v store=%v on %s\n",
			s, r.seq[s], f&fLoad != 0, f&fStore != 0, on)
	}
	if parked > maxParked {
		fmt.Fprintf(&b, "  ... and %d more parked slots\n", parked-maxParked)
	}
	fmt.Fprintf(&b, "  parked=%d pendingStores=%d unpostedStores=%d fetchQ=%d postQ=%d compQ=%d",
		parked, p.pendingStores.n, p.unpostedStores.n, len(p.fetchQ)-p.fetchHead, len(p.postQ), len(p.compQ))
	return b.String()
}

// step advances the machine by one cycle. It is the zero-allocation
// warm path: after warmup, steady-state stepping must not allocate
// (pinned by TestStepZeroAllocSteadyState and enforced statically by
// mdlint's hotpathalloc walk rooted here).
//
//md:hotpath
func (p *Pipeline) step() {
	// Reset per-cycle resource pools.
	p.issueLeft = p.cfg.IssueWidth
	p.aluLeft = p.cfg.IntALUs
	p.mulLeft = p.cfg.IntMulDivs
	p.fpLeft = p.cfg.FPUnits
	p.portLeft = p.cfg.MemPorts
	p.activity = false

	if !p.scanMode {
		p.processWakeups()
	}
	// Stages are processed commit-first so that results produced this
	// cycle are consumed no earlier than the next cycle.
	p.processStoreEvents()
	p.commit()
	p.issue()
	p.dispatch()
	if p.cfg.SplitWindow {
		p.fetchSplit()
	} else {
		p.fetch()
	}
	p.cycle++
	if !p.scanMode && !p.activity {
		p.trySkip()
	}
	// No-op unless built with -tags mdsan; see mdsan_on.go.
	p.sanitize()
}
