// Package core implements the cycle-level, execution-driven timing model
// of the paper's centralized, continuous-window superscalar processor
// (Table 2), including every load/store execution policy studied in §3:
//
//	NAS/NO, NAS/NAV, NAS/SEL, NAS/STORE, NAS/SYNC, NAS/ORACLE
//	AS/NO,  AS/NAV (with configurable address-scheduler latency)
//
// and, for §3.7, the distributed split-window variant in which fetch
// proceeds independently per unit and issue does not use global program
// order priority.
//
// The pipeline consumes the correct-path dynamic instruction stream from
// an emu.Stream (a lazily emulated emu.Trace, or a shared emu.Recording
// replayed across a sweep). Branch mispredictions stall fetch until the
// branch resolves (no wrong-path execution); memory-order violations
// squash the offending load and everything younger and rewind fetch
// (squash invalidation).
//
// The issue stage is event-driven: completing instructions wake the
// consumers parked on them, timed phases (address generation, memory
// access, store posting) push events onto a per-cycle calendar wheel,
// and cycles in which provably nothing can happen are skipped in one
// jump to the next event. A legacy full-window scan scheduler is kept
// behind SetScanScheduler as the executable specification; the golden
// equivalence test holds the two to bit-identical statistics.
package core

import (
	"fmt"
	"strings"

	"mdspec/internal/bpred"
	"mdspec/internal/cache"
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/mdp"
	"mdspec/internal/stats"
)

// entryState tracks an instruction's progress through the window.
type entryState uint8

const (
	// stWaiting: dispatched, operands not all ready / not yet issued.
	stWaiting entryState = iota
	// stIssued: executing; result at doneCycle.
	stIssued
	// stDone: result available.
	stDone
)

// noSeq marks "no sequence number".
const noSeq int64 = -1

// robEntry is one in-flight instruction (an RUU entry).
type robEntry struct {
	di    emu.DynInst // copied from the trace (stable across compaction)
	state entryState

	// Opcode predicates and execution class, decoded once at dispatch:
	// the issue and commit stages consult them on every examination.
	isLoad, isStore, isMem, isBranch bool
	class                            isa.Class
	latency                          int64

	issueCycle int64
	doneCycle  int64

	// Register dependences: sequence numbers of producing instructions,
	// or noSeq when the operand comes from the register file.
	dep1, dep2 int64

	// Memory-operation bookkeeping.
	agenIssued bool  // address-generation uop has issued
	addrReady  int64 // cycle the effective address is available (else notYet)
	addrPosted int64 // AS: cycle the address is visible to the scheduler
	memIssued  bool  // load: memory access launched; store: executed into buffer
	memIssue   int64 // cycle the memory uop issued
	memDone    int64 // load: data available; store: buffer entry valid

	// Load speculation tracking.
	valueSource int64 // seq of the store the load's value came from (noSeq = memory)
	specValue   int64 // the value the load actually obtained
	propagated  bool  // a dependent instruction has consumed the load's value

	// Policy annotations (set at dispatch).
	waitAll    bool   // SEL: predicted dependent, wait for all prior stores
	barrier    bool   // STORE: this store is a predicted barrier
	hasSyn     bool   // SYNC/SSET: synchronize via synonym
	synonym    uint32 // the synonym / store-set ID
	syncOnSeq  int64  // load: closest preceding producer store to wait for (noSeq = none)
	storeIsSyn bool   // store: marked as a synonym producer

	// Branch bookkeeping.
	bpHist   uint32
	bpPred   bool // predicted direction
	bpWrong  bool // misprediction (direction or target)
	bpIsCond bool

	// False-dependence accounting (NO policies).
	couldIssue int64 // cycle the load could otherwise have accessed memory
	fdCounted  bool
	fdFalse    bool

	// completed marks a store whose completion event has been processed
	// (it left the pending sets and entered the disambiguation tables).
	completed bool

	// valid marks the slot as occupied by this entry (split-window mode
	// dispatches out of order, leaving holes).
	valid bool
}

const notYet int64 = 1 << 62

// fetchRec is an instruction moving through the front end.
type fetchRec struct {
	seq      int64
	ready    int64 // dispatchable at this cycle
	isMem    bool  // decoded at fetch, for the dispatch LSQ check
	bpHist   uint32
	bpPred   bool
	bpWrong  bool
	bpIsCond bool
	wrongPC  uint32 // predicted (wrong) next PC, for wrong-path fetch
	unit     int    // split-window fetch unit
}

// Pipeline is one configured simulation instance.
type Pipeline struct {
	cfg   config.Machine
	trace emu.Stream
	hier  *cache.Hierarchy
	bp    *bpred.Predictor

	sel   *mdp.Selective
	sbar  *mdp.StoreBarrier
	mdpt  *mdp.MDPT
	ssets *mdp.StoreSets

	cycle int64
	rob   []robEntry

	headSeq     int64 // oldest in-flight (next to commit)
	dispatchSeq int64 // next sequence number to dispatch
	fetchSeq    int64 // next sequence number to fetch
	traceEnded  bool  // the program's end has been observed
	traceLen    int64 // exact dynamic length, valid once traceEnded

	fetchQ []fetchRec

	// Fetch stall state.
	blockedOnBranch int64 // seq of unresolved mispredicted branch (noSeq = none)
	fetchResumeAt   int64 // earliest cycle fetch may proceed
	lastFetchBlock  uint32
	haveFetchBlock  bool

	// Wrong-path fetch state (cfg.WrongPathFetch): while blocked on a
	// mispredicted branch, the front end streams I-cache accesses down
	// the wrong path.
	wrongPathPC     uint32
	wrongPathBlocks int

	// Split-window state (cfg.SplitWindow).
	unitFetchSeq   []int64 // per-unit next fetch seq
	unitBlockedOn  []int64 // per-unit unresolved mispredicted branch
	unitResumeAt   []int64
	unitFetchBlock []uint32
	unitHaveBlock  []bool
	issueRotate    int

	// Ordered (ascending seq) lists of in-window stores in various states.
	pendingStores   seqList // dispatched, not yet executed
	unpostedStores  seqList // AS: dispatched, address not yet posted
	pendingBarriers seqList // STORE: predicted barrier stores not yet executed

	// stores: in-window stores whose address is known to the hardware
	// (NAS: executed; AS: posted), keyed by word address.
	// loads: in-window loads that have performed their access.
	stores addrTable
	loads  addrTable

	// postQ holds stores whose addresses are travelling to the address
	// scheduler; compQ holds stores whose execution is completing.
	postQ []int64
	compQ []int64

	// memInFlight counts dispatched, uncommitted loads and stores (the
	// LSQ occupancy).
	memInFlight int

	// Per-cycle resource pools (reset each cycle).
	issueLeft, aluLeft, mulLeft, fpLeft, portLeft int

	res stats.Run

	// draining pauses fetch so the window can empty (sampling).
	draining bool

	// maxSquashDepth guards against pathological livelock (debugging).
	squashes int64

	// Event-driven scheduler state. scanMode selects the legacy
	// full-window scan instead (candidate queues, parking, and the event
	// heap then stay empty).
	scanMode bool
	cand     candSet    // wakeup candidate slots (iterated in rotated seq order)
	events   eventWheel // pending completions / postings / corrections
	activity bool       // anything happened this cycle (guards the cycle skip)

	// slotMask is Window-1 when the window is a power of two (the common
	// case), letting the slot mapping avoid an integer division.
	slotMask int64

	// Parking: parkedOn[s] is parkNone, parkTimer, or the producer slot
	// whose waiter list (wHead/wNext/wPrev) slot s is linked into.
	parkedOn            []int32
	wHead, wNext, wPrev []int32

	// parkReq carries a failed issue attempt's wakeup source out of
	// tryIssue* (parkNone: stay a candidate; parkTimer: an event is
	// already scheduled; else: the producer slot to park on).
	parkReq int32

	// splitCursors is the reusable per-unit cursor buffer of the
	// split-window issue walk: each holds the unit's position in its
	// rotated candidate sub-range. scanCursors is its counterpart for
	// the legacy scan walk (per-unit sequence cursors); both live for
	// the pipeline's lifetime so the per-cycle issue stage allocates
	// nothing.
	splitCursors []int32
	scanCursors  []int64

	// Generation-stamped invalidation marks (selectiveInvalidate's
	// transitive-consumer set; replaces a per-call map).
	invGen, invSeq []int64
	curGen         int64

	// violScratch snapshots matching loads in checkViolations so
	// recovery actions can edit the address chains mid-walk.
	violScratch []int64

	// warm replays functional windows (and interval-parallel warm-up)
	// into this pipeline's caches and branch predictor; see warm.go.
	warm Warmer

	// cycleBase is subtracted from the cycle counter when reporting
	// Cycles: a sampled segment's detailed warm-up advances the clock but
	// is erased from the statistics (see Pipeline.resetStats).
	cycleBase int64

	// san holds the mdsan sanitizer's preallocated scratch; empty (and
	// sanitize a no-op) unless built with -tags mdsan.
	san mdsanState
}

// New builds a pipeline over the given dynamic instruction stream.
func New(cfg config.Machine, trace emu.Stream) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := cache.Table2()
	if cfg.PerfectCaches {
		h = cache.Perfect()
	}
	bpCfg := bpred.Default()
	bpCfg.Kind = cfg.BranchPredictor
	p := &Pipeline{
		cfg:             cfg,
		trace:           trace,
		hier:            h,
		bp:              bpred.New(bpCfg),
		rob:             make([]robEntry, cfg.Window),
		blockedOnBranch: noSeq,
	}
	w := cfg.Window
	p.stores.init(w)
	p.loads.init(w)
	p.pendingStores.init(w)
	p.unpostedStores.init(w)
	p.pendingBarriers.init(w)
	if w&(w-1) == 0 {
		p.slotMask = int64(w - 1)
	}
	units := 1
	if cfg.SplitWindow {
		units = cfg.SplitUnits
	}
	p.cand.init(w)
	p.splitCursors = make([]int32, units)
	p.scanCursors = make([]int64, units)
	p.parkedOn = make([]int32, w)
	p.wHead = make([]int32, w)
	p.wNext = make([]int32, w)
	p.wPrev = make([]int32, w)
	for i := 0; i < w; i++ {
		p.parkedOn[i] = parkNone
		p.wHead[i] = nilSlot
	}
	p.invGen = make([]int64, w)
	p.invSeq = make([]int64, w)
	p.events.init()
	p.violScratch = make([]int64, 0, 64)
	p.san.init(w)
	switch cfg.Policy {
	case config.Selective:
		p.sel = mdp.NewSelective(cfg.PredictorTable)
	case config.StoreBarrier:
		p.sbar = mdp.NewStoreBarrier(cfg.PredictorTable)
	case config.Sync:
		p.mdpt = mdp.NewMDPT(cfg.PredictorTable)
	case config.StoreSets:
		p.ssets = mdp.NewStoreSets(cfg.PredictorTable)
	}
	if cfg.SplitWindow {
		u := cfg.SplitUnits
		p.unitFetchSeq = make([]int64, u)
		p.unitBlockedOn = make([]int64, u)
		p.unitResumeAt = make([]int64, u)
		p.unitFetchBlock = make([]uint32, u)
		p.unitHaveBlock = make([]bool, u)
		for i := 0; i < u; i++ {
			p.unitBlockedOn[i] = noSeq
			p.unitFetchSeq[i] = noSeq
		}
	}
	p.warm = Warmer{trace: trace, hier: h, bp: p.bp}
	p.res.Config = cfg.Name()
	return p, nil
}

// Hierarchy exposes the memory system (for inspection in tests/examples).
func (p *Pipeline) Hierarchy() *cache.Hierarchy { return p.hier }

// SetScanScheduler selects the legacy full-window scan issue stage
// instead of the event-driven scheduler. The two produce bit-identical
// statistics (enforced by the golden equivalence test); the scan
// version is kept as the executable specification the event-driven core
// is validated against. Must be called before the first cycle runs.
func (p *Pipeline) SetScanScheduler(on bool) { p.scanMode = on }

func (p *Pipeline) slot(seq int64) *robEntry {
	if p.slotMask != 0 {
		return &p.rob[seq&p.slotMask]
	}
	return &p.rob[seq%int64(p.cfg.Window)]
}

// windowHas reports whether seq is currently dispatched and in-flight.
func (p *Pipeline) windowHas(seq int64) bool {
	if seq < p.headSeq || seq >= p.dispatchSeq {
		return false
	}
	e := p.slot(seq)
	return e.valid && e.di.Seq == seq
}

// Run simulates until maxInsts instructions have committed (or the trace
// ends) and returns the collected statistics.
func (p *Pipeline) Run(maxInsts int64) (*stats.Run, error) {
	if p.cycle != 0 || p.res.Committed != 0 {
		return nil, fmt.Errorf("core: Run called twice on one Pipeline")
	}
	maxCycles := maxInsts*200 + 100_000 // livelock guard (IPC < 0.005 means a bug)
	for p.res.Committed < maxInsts {
		if p.traceEnded && p.headSeq >= p.traceLen {
			break // every instruction has committed
		}
		p.step()
		if p.cycle > maxCycles {
			return nil, &DeadlockError{
				Config: p.cfg.Name(), Phase: "run",
				Cycles: p.cycle, Committed: p.res.Committed, Target: maxInsts,
				Snapshot: p.deadlockSnapshot(),
			}
		}
	}
	p.captureMemStats()
	return &p.res, nil
}

// captureMemStats copies the memory system's counters into the result at
// the end of a run.
func (p *Pipeline) captureMemStats() {
	p.res.Cycles = p.cycle - p.cycleBase
	p.res.DCacheAccesses = p.hier.D.Stats.Accesses
	p.res.DCacheMisses = p.hier.D.Stats.Misses
	p.res.ICacheAccesses = p.hier.I.Stats.Accesses
	p.res.ICacheMisses = p.hier.I.Stats.Misses
}

// deadlockSnapshot renders a one-shot dump of the machine state for the
// Run watchdog's error: where the window stands, what the head is stuck
// on, which slots are parked on what, and when the scheduler next
// expects anything to happen. It runs once, on the failure path only,
// so readability beats allocation discipline here.
func (p *Pipeline) deadlockSnapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  cycle=%d scanMode=%v window: head=%d dispatch=%d occupancy=%d/%d\n",
		p.cycle, p.scanMode, p.headSeq, p.dispatchSeq, p.dispatchSeq-p.headSeq, p.cfg.Window)
	if e := p.slot(p.headSeq); e.valid && e.di.Seq == p.headSeq {
		fmt.Fprintf(&b, "  head seq=%d load=%v store=%v branch=%v agen=%v memIssued=%v completed=%v addrReady=%d memDone=%d dep1=%d dep2=%d parkedOn=%d\n",
			p.headSeq, e.isLoad, e.isStore, e.isBranch, e.agenIssued, e.memIssued,
			e.completed, e.addrReady, e.memDone, e.dep1, e.dep2, p.parkedOn[p.slotIndex(p.headSeq)])
	} else {
		fmt.Fprintf(&b, "  head seq=%d not dispatched (window empty or hole)\n", p.headSeq)
	}
	if next := p.nextEventCycle(); next >= notYet {
		fmt.Fprintf(&b, "  next event: none (wheel n=%d overflow=%d)\n", p.events.n, len(p.events.over))
	} else {
		fmt.Fprintf(&b, "  next event: cycle %d (wheel n=%d overflow=%d)\n", next, p.events.n, len(p.events.over))
	}
	const maxParked = 16
	parked := 0
	for s := range p.parkedOn {
		q := p.parkedOn[s]
		if q == parkNone {
			continue
		}
		if parked++; parked > maxParked {
			continue
		}
		e := &p.rob[s]
		on := "timer"
		if q >= 0 {
			on = fmt.Sprintf("slot %d (seq %d)", q, p.rob[q].di.Seq)
		}
		fmt.Fprintf(&b, "  parked: slot %d seq=%d load=%v store=%v on %s\n",
			s, e.di.Seq, e.isLoad, e.isStore, on)
	}
	if parked > maxParked {
		fmt.Fprintf(&b, "  ... and %d more parked slots\n", parked-maxParked)
	}
	fmt.Fprintf(&b, "  parked=%d pendingStores=%d unpostedStores=%d fetchQ=%d postQ=%d compQ=%d",
		parked, p.pendingStores.n, p.unpostedStores.n, len(p.fetchQ), len(p.postQ), len(p.compQ))
	return b.String()
}

// step advances the machine by one cycle. It is the zero-allocation
// warm path: after warmup, steady-state stepping must not allocate
// (pinned by TestStepZeroAllocSteadyState and enforced statically by
// mdlint's hotpathalloc walk rooted here).
//
//md:hotpath
func (p *Pipeline) step() {
	// Reset per-cycle resource pools.
	p.issueLeft = p.cfg.IssueWidth
	p.aluLeft = p.cfg.IntALUs
	p.mulLeft = p.cfg.IntMulDivs
	p.fpLeft = p.cfg.FPUnits
	p.portLeft = p.cfg.MemPorts
	p.activity = false

	if !p.scanMode {
		p.processWakeups()
	}
	// Stages are processed commit-first so that results produced this
	// cycle are consumed no earlier than the next cycle.
	p.processStoreEvents()
	p.commit()
	p.issue()
	p.dispatch()
	if p.cfg.SplitWindow {
		p.fetchSplit()
	} else {
		p.fetch()
	}
	p.cycle++
	if !p.scanMode && !p.activity {
		p.trySkip()
	}
	// No-op unless built with -tags mdsan; see mdsan_on.go.
	p.sanitize()
}
