package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
	"mdspec/internal/workload"
)

// randProgram builds a random but always-terminating program: straight
// line blocks of random ALU/memory instructions with forward branches,
// wrapped in one bounded counted loop. Register and address usage is
// constrained to stay valid; the dynamic length is bounded by
// construction.
func randProgram(seed uint64) *prog.Program {
	rng := seed
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	b := prog.NewBuilder()
	arena := b.AllocAligned(512, 4096)
	b.Li(isa.R1, int64(arena))
	b.Li(isa.R9, int64(10+next(20))) // loop count
	regs := []isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7}
	b.Label("top")
	blocks := 2 + next(4)
	for blk := 0; blk < blocks; blk++ {
		n := 3 + next(10)
		for i := 0; i < n; i++ {
			d := regs[next(len(regs))]
			a := regs[next(len(regs))]
			c := regs[next(len(regs))]
			switch next(8) {
			case 0:
				b.Lw(d, isa.R1, int64(next(64)*prog.WordBytes))
			case 1:
				b.Sw(a, isa.R1, int64(next(64)*prog.WordBytes))
			case 2:
				b.Add(d, a, c)
			case 3:
				b.Addi(d, a, int64(next(32)-16))
			case 4:
				b.Xor(d, a, c)
			case 5:
				b.Mult(a, c)
			case 6:
				b.Mflo(d)
			default:
				b.Slt(d, a, c)
			}
		}
		// Forward branch over a couple of instructions.
		lbl := b.PC() // unique-enough label name from the PC
		name := labelName(int(lbl), blk)
		b.Beq(regs[next(len(regs))], regs[next(len(regs))], name)
		b.Addi(regs[next(len(regs))], regs[next(len(regs))], 1)
		b.Nop()
		b.Label(name)
	}
	b.Addi(isa.R9, isa.R9, -1)
	b.Bne(isa.R9, isa.R0, "top")
	b.Halt()
	return b.MustProgram()
}

func labelName(pc, blk int) string {
	return "fwd_" + string(rune('a'+blk%26)) + "_" + itoa(pc)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// dynLen runs the program functionally and returns its dynamic length.
func dynLen(p *prog.Program) int64 {
	m := emu.New(p)
	var d emu.DynInst
	var n int64
	for m.Step(&d) {
		n++
	}
	return n
}

// TestRandomProgramsCommitExactly is the central differential property:
// for random programs, every policy must commit exactly the dynamic
// instruction count the functional emulator produces — no lost, dropped,
// duplicated or phantom instructions, no deadlock — on both the
// continuous and the split window, with and without the address
// scheduler.
func TestRandomProgramsCommitExactly(t *testing.T) {
	cfgs := []config.Machine{
		config.Default128().WithPolicy(config.NoSpec),
		config.Default128().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Selective),
		config.Default128().WithPolicy(config.StoreBarrier),
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.Oracle),
		config.Default128().WithPolicy(config.StoreSets),
		config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(1),
		config.Default128().WithPolicy(config.Naive).WithAddressScheduler(2),
		config.Small64().WithPolicy(config.Naive),
		config.Default128().WithPolicy(config.Naive).WithSplitWindow(4),
		config.Default128().WithPolicy(config.Sync).WithSplitWindow(2),
	}
	for seed := uint64(1); seed <= 25; seed++ {
		p := randProgram(seed * 7919)
		want := dynLen(p)
		for _, cfg := range cfgs {
			pl, err := New(cfg, emu.NewTrace(emu.New(p)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := pl.Run(1 << 22)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, cfg.Name(), err)
			}
			if r.Committed != want {
				t.Fatalf("seed %d, %s: committed %d, want %d", seed, cfg.Name(), r.Committed, want)
			}
		}
	}
}

// TestPolicyOrderingInvariants checks the partial order the paper's
// arguments rely on, across several real workloads: ORACLE is an upper
// bound among NAS policies, and NO/ORACLE never misspeculate.
func TestPolicyOrderingInvariants(t *testing.T) {
	for _, bench := range []string{"129.compress", "134.perl", "104.hydro2d"} {
		p := workload.MustBuild(bench)
		ipc := map[config.Policy]float64{}
		for _, pol := range []config.Policy{config.NoSpec, config.Naive, config.Sync, config.Oracle} {
			pl, err := New(config.Default128().WithPolicy(pol), emu.NewTrace(emu.New(p)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := pl.Run(40_000)
			if err != nil {
				t.Fatal(err)
			}
			ipc[pol] = r.IPC()
			switch pol {
			case config.NoSpec, config.Oracle:
				if r.Misspeculations != 0 {
					t.Errorf("%s/%v misspeculated", bench, pol)
				}
			}
		}
		const slack = 0.02 // measurement noise tolerance
		if ipc[config.Oracle] < ipc[config.NoSpec]-slack {
			t.Errorf("%s: ORACLE (%.3f) below NO (%.3f)", bench, ipc[config.Oracle], ipc[config.NoSpec])
		}
		if ipc[config.Oracle] < ipc[config.Naive]-slack {
			t.Errorf("%s: ORACLE (%.3f) below NAV (%.3f)", bench, ipc[config.Oracle], ipc[config.Naive])
		}
		if ipc[config.Oracle] < ipc[config.Sync]-slack {
			t.Errorf("%s: ORACLE (%.3f) below SYNC (%.3f)", bench, ipc[config.Oracle], ipc[config.Sync])
		}
	}
}
