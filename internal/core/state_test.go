package core

import (
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestWarmerStateRoundTrip(t *testing.T) {
	p := workload.MustBuild("129.compress")
	cfg := config.Default128().WithPolicy(config.Sync)
	rec := emu.NewRecording(emu.New(p))
	rec.Record(60_000)

	src := NewMachineWarmer(cfg, rec.NewReplay())
	src.Advance(30_000)
	b := src.AppendState(nil)
	if len(b) != src.StateLen() {
		t.Fatalf("state length = %d, want %d", len(b), src.StateLen())
	}

	dst := NewMachineWarmer(cfg, rec.NewReplay())
	n, err := dst.RestoreState(b)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if dst.Seq() != 30_000 || dst.Ended() {
		t.Fatalf("restored cursor = %d (ended %v), want 30000", dst.Seq(), dst.Ended())
	}

	// The restored warmer and the original must stay bit-identical
	// through further warming.
	src.Advance(10_000)
	dst.Advance(10_000)
	sb := src.AppendState(nil)
	db := dst.AppendState(nil)
	if !reflect.DeepEqual(sb, db) {
		t.Fatal("warmers diverged after restore")
	}

	if _, err := dst.RestoreState(b[:len(b)-1]); err == nil {
		t.Fatal("truncated restore should fail")
	}
}

// TestRestoreWarmBitIdentical is the core checkpointing contract: a
// segment entered through a warm-state snapshot produces exactly the
// statistics of one entered through a full functional fast-forward.
func TestRestoreWarmBitIdentical(t *testing.T) {
	p := workload.MustBuild("102.swim")
	rec := emu.NewRecording(emu.New(p))
	rec.Record(80_000)

	const start, end, tw, fw, warmup = 45_000, 75_000, 5_000, 10_000, 5_000
	for _, cfg := range []config.Machine{
		config.Default128().WithPolicy(config.Sync),
		config.Default128().WithPolicy(config.Naive),
	} {
		// Reference: fresh machine, full fast-forward from sequence 0.
		ref, err := New(cfg, rec.NewReplay())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.RunSampledInterval(start, end, tw, fw, warmup)
		if err != nil {
			t.Fatal(err)
		}

		// Capture a snapshot mid-way through the warm-up fast-forward
		// region (strictly before start-warmup, leaving a residue).
		w := NewMachineWarmer(cfg, rec.NewReplay())
		w.Advance(30_000)
		snap := w.AppendState(nil)

		pl, err := New(cfg, rec.NewReplay())
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.RestoreWarm(snap); err != nil {
			t.Fatal(err)
		}
		got, err := pl.RunSampledInterval(start, end, tw, fw, warmup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: checkpoint-resumed stats differ from fast-forwarded:\nwant %+v\ngot  %+v",
				cfg.Name(), want, got)
		}

		// A snapshot landing exactly on the warm-up start (zero residue)
		// must also match.
		w2 := NewMachineWarmer(cfg, rec.NewReplay())
		w2.Advance(start - warmup)
		pl2, err := New(cfg, rec.NewReplay())
		if err != nil {
			t.Fatal(err)
		}
		if err := pl2.RestoreWarm(w2.AppendState(nil)); err != nil {
			t.Fatal(err)
		}
		got2, err := pl2.RunSampledInterval(start, end, tw, fw, warmup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got2) {
			t.Errorf("%s: zero-residue resume differs from fast-forwarded", cfg.Name())
		}
	}
}

func TestRestoreWarmRejects(t *testing.T) {
	p := workload.KernelRecurrence(500)
	cfg := config.Default128()
	rec := emu.NewRecording(emu.New(p))
	rec.Record(2_000)

	w := NewMachineWarmer(cfg, rec.NewReplay())
	w.Advance(1_000)
	snap := w.AppendState(nil)

	// Used pipeline: rejected.
	pl, err := New(cfg, rec.NewReplay())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(500); err != nil {
		t.Fatal(err)
	}
	if err := pl.RestoreWarm(snap); err != ErrPipelineUsed {
		t.Fatalf("used pipeline: err = %v, want ErrPipelineUsed", err)
	}

	// Double restore: rejected (the warmer is already mid-stream).
	pl2, _ := New(cfg, rec.NewReplay())
	if err := pl2.RestoreWarm(snap); err != nil {
		t.Fatal(err)
	}
	if err := pl2.RestoreWarm(snap); err != ErrPipelineUsed {
		t.Fatalf("double restore: err = %v, want ErrPipelineUsed", err)
	}

	// A snapshot past the interval's warm-up start: rejected by the run.
	pl3, _ := New(cfg, rec.NewReplay())
	if err := pl3.RestoreWarm(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := pl3.RunSampledInterval(500, 1_500, 100, 200, 0); err == nil {
		t.Fatal("restore past warm-up start should error")
	}
}
