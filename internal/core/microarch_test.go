package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
)

// runCycles simulates p to completion and returns total cycles.
func runCycles(t *testing.T, p *prog.Program, cfg config.Machine) int64 {
	t.Helper()
	pl, err := New(cfg, emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycles
}

func perfect(cfg config.Machine) config.Machine {
	cfg.PerfectCaches = true
	return cfg
}

func TestDivideLatencyOnCriticalPath(t *testing.T) {
	// A serial chain of n divides must cost ~12 cycles each; the same
	// chain of adds ~1 cycle each.
	chain := func(op func(b *prog.Builder)) *prog.Program {
		b := prog.NewBuilder()
		b.Li(isa.R1, 7)
		b.Li(isa.R2, 3)
		for i := 0; i < 200; i++ {
			op(b)
		}
		b.Halt()
		return b.MustProgram()
	}
	divs := chain(func(b *prog.Builder) {
		b.Div(isa.R1, isa.R2)
		b.Mflo(isa.R1) // serialize through LO
	})
	adds := chain(func(b *prog.Builder) {
		b.Add(isa.R1, isa.R1, isa.R2)
		b.Add(isa.R1, isa.R1, isa.R2)
	})
	cfg := perfect(config.Default128())
	cd := runCycles(t, divs, cfg)
	ca := runCycles(t, adds, cfg)
	// 200 * (12+1) vs 200 * 2 cycles of chain latency.
	if cd < ca*4 {
		t.Errorf("divide chain (%d cycles) should dwarf add chain (%d)", cd, ca)
	}
}

func TestFPLatencyClasses(t *testing.T) {
	chain := func(op isa.Op) *prog.Program {
		b := prog.NewBuilder()
		b.Li(isa.R1, 3)
		b.Mtf(isa.F1, isa.R1)
		b.Mtf(isa.F2, isa.R1)
		for i := 0; i < 300; i++ {
			b.Op3(op, isa.F1, isa.F1, isa.F2)
		}
		b.Halt()
		return b.MustProgram()
	}
	cfg := perfect(config.Default128())
	add := runCycles(t, chain(isa.FADD), cfg)   // 2-cycle class
	muld := runCycles(t, chain(isa.FMULD), cfg) // 5-cycle class
	divd := runCycles(t, chain(isa.FDIVD), cfg) // 15-cycle class
	if muld < add*2 {
		t.Errorf("fmul.d chain (%d) should be ~2.5x fadd chain (%d)", muld, add)
	}
	if divd < muld*2 {
		t.Errorf("fdiv.d chain (%d) should be ~3x fmul.d chain (%d)", divd, muld)
	}
}

func TestIssueWidthBindsIndependentWork(t *testing.T) {
	// 4000 independent adds: an 8-wide machine should need roughly half
	// the cycles of a 2-wide one.
	b := prog.NewBuilder()
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8}
	for i := 0; i < 4000; i++ {
		r := regs[i%len(regs)]
		b.Addi(r, r, 1)
	}
	b.Halt()
	p := b.MustProgram()
	wide := perfect(config.Default128())
	narrow := wide
	narrow.IssueWidth = 2
	narrow.FetchWidth = 2
	narrow.CommitWidth = 2
	cw := runCycles(t, p, wide)
	cn := runCycles(t, p, narrow)
	if cn < cw*2 {
		t.Errorf("2-wide (%d cycles) should be >= 2x slower than 8-wide (%d)", cn, cw)
	}
}

func TestFUContentionMulDiv(t *testing.T) {
	// Independent multiplies: with a single mul/div unit they issue one
	// per cycle; with 8 units, up to the issue width.
	b := prog.NewBuilder()
	b.Li(isa.R1, 3)
	b.Li(isa.R2, 5)
	for i := 0; i < 1000; i++ {
		b.Mult(isa.R1, isa.R2) // independent: result unread
	}
	b.Halt()
	p := b.MustProgram()
	many := perfect(config.Default128())
	one := many
	one.IntMulDivs = 1
	cm := runCycles(t, p, many)
	co := runCycles(t, p, one)
	if co < cm*3 {
		t.Errorf("1 mul unit (%d cycles) should be much slower than 8 (%d)", co, cm)
	}
}

func TestMemPortContention(t *testing.T) {
	// Independent loads: 4 ports vs 1 port.
	b := prog.NewBuilder()
	arr := b.Alloc(1024)
	b.Li(isa.R1, int64(arr))
	regs := []isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5}
	for i := 0; i < 1200; i++ {
		b.Lw(regs[i%4], isa.R1, int64((i%64)*prog.WordBytes))
	}
	b.Halt()
	p := b.MustProgram()
	four := perfect(config.Default128())
	oneP := four
	oneP.MemPorts = 1
	c4 := runCycles(t, p, four)
	c1 := runCycles(t, p, oneP)
	if c1 < c4*2 {
		t.Errorf("1 memory port (%d cycles) should be much slower than 4 (%d)", c1, c4)
	}
}

func TestWindowSizeBindsLatencyTolerance(t *testing.T) {
	// Long-latency independent loads (cache misses): a big window
	// overlaps more of them.
	b := prog.NewBuilder()
	arr := b.Alloc(1 << 18)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R5, 400)
	b.Label("loop")
	b.Lw(isa.R2, isa.R1, 0)
	b.Lw(isa.R3, isa.R1, 4096)
	b.Lw(isa.R4, isa.R1, 8192)
	b.Addi(isa.R1, isa.R1, 64)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	big := config.Default128().WithPolicy(config.Oracle)
	small := big
	small.Window = 16
	cb := runCycles(t, p, big)
	cs := runCycles(t, p, small)
	if cs <= cb {
		t.Errorf("16-entry window (%d cycles) should lose to 128-entry (%d) on miss-heavy code", cs, cb)
	}
}

func TestMispredictionStallsFetch(t *testing.T) {
	// A data-dependent branch (effectively random) costs many cycles
	// per iteration versus a perfectly-predictable one.
	mk := func(noisy bool) *prog.Program {
		b := prog.NewBuilder()
		arr := b.Alloc(4096)
		// Fill with a pattern that defeats the predictor when used.
		r := uint64(12345)
		for i := 0; i < 4096; i++ {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			b.SetData(arr+uint32(i*prog.WordBytes), int64(r%2))
		}
		b.Li(isa.R1, int64(arr))
		b.Li(isa.R5, 2000)
		b.Label("loop")
		b.Lw(isa.R2, isa.R1, 0)
		b.Addi(isa.R1, isa.R1, prog.WordBytes)
		if noisy {
			b.Bne(isa.R2, isa.R0, "skip") // random direction
		} else {
			b.Bne(isa.R0, isa.R0, "skip") // never taken
		}
		b.Addi(isa.R3, isa.R3, 1)
		b.Label("skip")
		b.Addi(isa.R5, isa.R5, -1)
		b.Bne(isa.R5, isa.R0, "loop")
		b.Halt()
		return b.MustProgram()
	}
	cfg := perfect(config.Default128().WithPolicy(config.Oracle))
	noisy := runCycles(t, mk(true), cfg)
	calm := runCycles(t, mk(false), cfg)
	if noisy < calm*2 {
		t.Errorf("random branches (%d cycles) should be much slower than predictable (%d)", noisy, calm)
	}
}

func TestStallBreakdownSumsToCycles(t *testing.T) {
	pl, err := New(config.Default128().WithPolicy(config.NoSpec),
		emu.NewTrace(emu.New(slowStoreFastLoad(500))))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	stalls := r.StallEmpty + r.StallMem + r.StallExec
	if stalls > r.Cycles {
		t.Fatalf("stall cycles %d exceed total %d", stalls, r.Cycles)
	}
	if r.StallMem == 0 {
		t.Error("a store-bound kernel should show memory stalls at the head")
	}
	e, m, x := r.StallBreakdown()
	if e < 0 || m < 0 || x < 0 || e+m+x > 1.0000001 {
		t.Errorf("breakdown out of range: %v %v %v", e, m, x)
	}
}

func TestLSQSizeBindsMemoryParallelism(t *testing.T) {
	// Miss-heavy independent loads: a 4-entry LSQ strangles memory-level
	// parallelism relative to the full-window LSQ.
	b := prog.NewBuilder()
	arr := b.Alloc(1 << 18)
	b.Li(isa.R1, int64(arr))
	b.Li(isa.R5, 300)
	b.Label("loop")
	b.Lw(isa.R2, isa.R1, 0)
	b.Lw(isa.R3, isa.R1, 4096)
	b.Lw(isa.R4, isa.R1, 8192)
	b.Lw(isa.R6, isa.R1, 12288)
	b.Addi(isa.R1, isa.R1, 64)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	full := config.Default128().WithPolicy(config.Oracle)
	tiny := full
	tiny.LSQSize = 4
	cf := runCycles(t, p, full)
	ct := runCycles(t, p, tiny)
	if ct <= cf {
		t.Errorf("4-entry LSQ (%d cycles) should lose to the full LSQ (%d)", ct, cf)
	}
}

func TestLSQValidation(t *testing.T) {
	bad := config.Default128()
	bad.LSQSize = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative LSQ size should be rejected")
	}
}
