package core

import "fmt"

// DeadlockError is the watchdog's report that a simulation stopped
// making forward progress (IPC collapsed below the livelock guard's
// threshold). It is a typed error so the robustness layer above the
// core can escalate it into a retry: a watchdog trip is treated as
// transient — the retried cell gets a fresh Pipeline, and sampled runs
// can fall back to a serial pass — rather than aborting a whole sweep.
//
// Phase names which engine tripped ("run" for Pipeline.Run, or the
// sampled phases "sampled-warmup", "sampled-drain", "sampled-segment");
// Snapshot, when present, carries the one-shot machine-state dump of
// the continuous-run watchdog.
type DeadlockError struct {
	Config    string
	Phase     string
	Cycles    int64
	Committed int64
	Target    int64
	Snapshot  string
}

func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("core: no forward progress in %s after %d cycles (committed %d",
		e.Phase, e.Cycles, e.Committed)
	if e.Target > 0 {
		msg += fmt.Sprintf("/%d", e.Target)
	}
	msg += fmt.Sprintf(", config %s)", e.Config)
	if e.Snapshot != "" {
		msg += "\n" + e.Snapshot
	}
	return msg
}
