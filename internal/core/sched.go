package core

import "math/bits"

// This file holds the reusable, allocation-free structures behind the
// event-driven issue stage:
//
//   - seqList: intrusive sequence-ordered lists over window slots,
//     replacing the sorted []int64 slices (pending stores, unposted
//     stores, pending barriers) and backing the per-unit wakeup
//     candidate queues.
//   - addrTable: an intrusive hash table over window slots, replacing
//     the map[uint32][]int64 address maps used for memory disambiguation.
//   - eventHeap: the pending-completion min-heap that drives wakeups and
//     the next-event cycle skip.
//   - the parking machinery: blocked instructions wait on their
//     producer's slot (or on a timed event) instead of being rescanned
//     every cycle.
//
// Everything is sized to the window at construction; the steady-state
// simulation loop performs no allocation.

const (
	// nilSlot terminates intrusive links.
	nilSlot int32 = -1
	// parkNone / parkTimer are parkedOn states: not parked, or waiting
	// for an already-scheduled event (e.g. address generation completing).
	parkNone  int32 = -1
	parkTimer int32 = -2
)

// seqList is an intrusive doubly-linked list over window slots, ordered
// by ascending sequence number. Membership is tracked per slot, so
// insert and remove are O(1) plus a (usually empty) tail walk to find
// the insertion point; entries arrive mostly in program order.
type seqList struct {
	head, tail int32
	next, prev []int32
	seq        []int64
	in         []bool
	n          int
}

func (l *seqList) init(w int) {
	l.head, l.tail = nilSlot, nilSlot
	l.next = make([]int32, w)
	l.prev = make([]int32, w)
	l.seq = make([]int64, w)
	l.in = make([]bool, w)
	l.n = 0
}

// insert places slot s (holding seq) at its ascending-seq position.
// Re-inserting a present slot with the same seq is a no-op; a slot
// present under a stale seq is relinked.
func (l *seqList) insert(s int32, seq int64) {
	if l.in[s] {
		if l.seq[s] == seq {
			return
		}
		l.unlink(s)
	}
	l.in[s] = true
	l.seq[s] = seq
	l.n++
	at := l.tail
	for at != nilSlot && l.seq[at] > seq {
		at = l.prev[at]
	}
	if at == nilSlot { // new head
		l.prev[s] = nilSlot
		l.next[s] = l.head
		if l.head != nilSlot {
			l.prev[l.head] = s
		} else {
			l.tail = s
		}
		l.head = s
		return
	}
	l.next[s] = l.next[at]
	l.prev[s] = at
	if l.next[at] != nilSlot {
		l.prev[l.next[at]] = s
	} else {
		l.tail = s
	}
	l.next[at] = s
}

// remove unlinks slot s if it is present under seq; like the sorted
// slices it replaces, removing an absent element is a no-op.
func (l *seqList) remove(s int32, seq int64) {
	if !l.in[s] || l.seq[s] != seq {
		return
	}
	l.unlink(s)
}

func (l *seqList) unlink(s int32) {
	if l.prev[s] != nilSlot {
		l.next[l.prev[s]] = l.next[s]
	} else {
		l.head = l.next[s]
	}
	if l.next[s] != nilSlot {
		l.prev[l.next[s]] = l.prev[s]
	} else {
		l.tail = l.prev[s]
	}
	l.in[s] = false
	l.n--
}

func (l *seqList) empty() bool { return l.head == nilSlot }

// minSeq returns the oldest member; the list must be non-empty.
func (l *seqList) minSeq() int64 { return l.seq[l.head] }

// youngestBelow returns the slot of the youngest member with seq
// strictly below bound, or nilSlot. Entries arrive mostly in program
// order, so the walk from the tail is usually a step or two.
func (l *seqList) youngestBelow(bound int64) int32 {
	at := l.tail
	for at != nilSlot && l.seq[at] >= bound {
		at = l.prev[at]
	}
	return at
}

// addrTable is an intrusive hash table of in-window memory operations
// keyed by word address. Each window slot appears at most once; bucket
// chains are kept in ascending sequence order, so violation checks walk
// oldest-first and match queries walk youngest-first, exactly like the
// sorted per-address slices this replaces. All storage is preallocated.
type addrTable struct {
	mask  uint32
	bhead []int32 // per-bucket chain head (oldest seq)
	btail []int32 // per-bucket chain tail (youngest seq)
	next  []int32 // per-slot links within the bucket chain
	prev  []int32
	in    []bool
	addr  []uint32
	seq   []int64
}

func (t *addrTable) init(w int) {
	nb := 4
	for nb < 2*w {
		nb <<= 1
	}
	t.mask = uint32(nb - 1)
	t.bhead = make([]int32, nb)
	t.btail = make([]int32, nb)
	for i := range t.bhead {
		t.bhead[i] = nilSlot
		t.btail[i] = nilSlot
	}
	t.next = make([]int32, w)
	t.prev = make([]int32, w)
	t.in = make([]bool, w)
	t.addr = make([]uint32, w)
	t.seq = make([]int64, w)
}

func (t *addrTable) bucket(addr uint32) uint32 {
	h := addr * 2654435761 // Fibonacci hashing; addresses are word-aligned
	h ^= h >> 15
	return h & t.mask
}

// insert places slot s (a memory op at addr with sequence seq) at its
// ascending-seq position in addr's bucket chain. Re-inserting the same
// (slot, addr, seq) is a no-op; a stale occupant is relinked.
func (t *addrTable) insert(s int32, addr uint32, seq int64) {
	if t.in[s] {
		if t.addr[s] == addr && t.seq[s] == seq {
			return
		}
		t.unlink(s)
	}
	t.in[s] = true
	t.addr[s] = addr
	t.seq[s] = seq
	b := t.bucket(addr)
	at := t.btail[b]
	for at != nilSlot && t.seq[at] > seq {
		at = t.prev[at]
	}
	if at == nilSlot {
		t.prev[s] = nilSlot
		t.next[s] = t.bhead[b]
		if t.bhead[b] != nilSlot {
			t.prev[t.bhead[b]] = s
		} else {
			t.btail[b] = s
		}
		t.bhead[b] = s
		return
	}
	t.next[s] = t.next[at]
	t.prev[s] = at
	if t.next[at] != nilSlot {
		t.prev[t.next[at]] = s
	} else {
		t.btail[b] = s
	}
	t.next[at] = s
}

// removeSeq unlinks slot s if it is present under exactly (addr, seq);
// removing an absent pair is a no-op, mirroring the old removeAddrMap.
func (t *addrTable) removeSeq(s int32, addr uint32, seq int64) {
	if !t.in[s] || t.addr[s] != addr || t.seq[s] != seq {
		return
	}
	t.unlink(s)
}

func (t *addrTable) unlink(s int32) {
	b := t.bucket(t.addr[s])
	if t.prev[s] != nilSlot {
		t.next[t.prev[s]] = t.next[s]
	} else {
		t.bhead[b] = t.next[s]
	}
	if t.next[s] != nilSlot {
		t.prev[t.next[s]] = t.prev[s]
	} else {
		t.btail[b] = t.prev[s]
	}
	t.in[s] = false
}

// candSet is the wakeup candidate set: one bit per window slot. Slot
// numbers rotate monotonically with sequence numbers (slot = seq mod W
// and at most W instructions are in flight), so iterating the bitmap in
// rotated order — starting at the head's slot — visits candidates in
// ascending sequence order. That makes insertion O(1) where an ordered
// list would pay an O(n) walk on every out-of-order wakeup.
type candSet struct {
	w []uint64
}

func (c *candSet) init(nbits int) {
	c.w = make([]uint64, (nbits+63)/64)
}

func (c *candSet) set(s int32)   { c.w[s>>6] |= 1 << uint(s&63) }
func (c *candSet) clear(s int32) { c.w[s>>6] &^= 1 << uint(s&63) }
func (c *candSet) has(s int32) bool {
	return c.w[s>>6]&(1<<uint(s&63)) != 0
}

// next returns the smallest member in [from, to), or nilSlot.
func (c *candSet) next(from, to int32) int32 {
	if from >= to {
		return nilSlot
	}
	wi := from >> 6
	word := c.w[wi] &^ (1<<uint(from&63) - 1)
	for {
		if word != 0 {
			s := wi<<6 + int32(bits.TrailingZeros64(word))
			if s >= to {
				return nilSlot
			}
			return s
		}
		wi++
		if wi<<6 >= to {
			return nilSlot
		}
		word = c.w[wi]
	}
}

// schedEvent is a pending state change at a known future cycle: a uop
// completion, a store address posting, or a deferred load-value
// correction. Events are advisory — squashes can orphan them — so
// consumers revalidate on pop; a spurious event at worst causes one
// extra idempotent examination of the slot.
type schedEvent struct {
	at   int64
	slot int32
}

// wheelHorizon bounds how far ahead the event wheel addresses cycles
// directly. Every schedule() delta is at most an op latency or a full
// memory-hierarchy miss chain (far below this), so ring aliasing never
// happens in practice; anything further out falls back to a linearly
// scanned overflow slice. Must be a power of two.
const wheelHorizon = 4096

// eventWheel is a calendar queue over the near future: the bucket at
// index c&mask holds the slots whose events fire at cycle c. Pushing
// and draining are O(1) per event (a binary heap's O(log n) sift was a
// measurable share of the simulation loop), at the cost of walking
// empty buckets across skipped cycles — a walk no longer than the skip
// itself.
type eventWheel struct {
	mask    int64
	buckets [][]int32
	drained int64 // every bucket for a cycle <= drained is empty
	n       int   // events in the ring
	over    []schedEvent
}

func (w *eventWheel) init() {
	w.mask = wheelHorizon - 1
	w.buckets = make([][]int32, wheelHorizon)
	w.drained = -1
}

func (w *eventWheel) push(at int64, slot int32) {
	if at > w.drained+wheelHorizon {
		//md:allocok amortized: the overflow list is rare and retains capacity
		w.over = append(w.over, schedEvent{at, slot})
		return
	}
	b := at & w.mask
	//md:allocok amortized: buckets grow to their steady per-cycle depth and are reused
	w.buckets[b] = append(w.buckets[b], slot)
	w.n++
}

// next returns the earliest event cycle at or after from, or notYet.
// The caller drains strictly before from, so ring events all lie in
// (from-1, drained+horizon] and the scan stops at the first nonempty
// bucket; overflow events are likewise all at or after from.
func (w *eventWheel) next(from int64) int64 {
	t := notYet
	if w.n > 0 {
		for c := from; c <= w.drained+wheelHorizon; c++ {
			if len(w.buckets[c&w.mask]) > 0 {
				t = c
				break
			}
		}
	}
	for _, e := range w.over {
		if e.at < t {
			t = e.at
		}
	}
	return t
}

// schedule records that the uop in slot s reaches a scheduling-relevant
// state at cycle at. In scan mode no events are consumed, so none are
// produced (the heap would otherwise grow without bound).
func (p *Pipeline) schedule(at int64, s int32) {
	if p.scanMode {
		return
	}
	p.events.push(at, s)
}

func (p *Pipeline) slotIndex(seq int64) int32 {
	if p.slotMask != 0 {
		return int32(seq & p.slotMask)
	}
	return int32(seq % int64(p.cfg.Window))
}

// candInsert makes the entry at seq a wakeup candidate: the issue stage
// examines it every cycle until it fully issues or parks. Split-window
// units need no separate queues: each unit's task occupies a contiguous
// slot range, so the per-unit walk is a sub-range of the same bitmap.
func (p *Pipeline) candInsert(seq int64) {
	if p.scanMode {
		return
	}
	s := p.slotIndex(seq)
	p.unpark(s)
	p.cand.set(s)
}

// unpark detaches slot s from wherever it is parked (a producer's
// waiter list or a completion timer). Candidate queues are untouched.
func (p *Pipeline) unpark(s int32) {
	q := p.parkedOn[s]
	if q == parkNone {
		return
	}
	if q != parkTimer {
		if p.wPrev[s] != nilSlot {
			p.wNext[p.wPrev[s]] = p.wNext[s]
		} else {
			p.wHead[q] = p.wNext[s]
		}
		if p.wNext[s] != nilSlot {
			p.wPrev[p.wNext[s]] = p.wPrev[s]
		}
	}
	p.parkedOn[s] = parkNone
}

// parkOn moves the candidate in slot s onto the waiter list of producer
// slot q: it is not examined again until q's completion event fires (or
// a squash/reset intervenes). Spurious wakeups are safe — the entry
// just re-parks — but a missed wakeup is a correctness bug, so callers
// park only on producers whose completion is event-covered.
func (p *Pipeline) parkOn(s, q int32) {
	p.cand.clear(s)
	p.unpark(s)
	p.parkedOn[s] = q
	p.wPrev[s] = nilSlot
	p.wNext[s] = p.wHead[q]
	if p.wHead[q] != nilSlot {
		p.wPrev[p.wHead[q]] = s
	}
	p.wHead[q] = s
}

// parkTimed removes the candidate until a previously scheduled event
// (e.g. its own address generation completing) wakes it.
func (p *Pipeline) parkTimed(s int32) {
	p.cand.clear(s)
	p.unpark(s)
	p.parkedOn[s] = parkTimer
}

// processWakeups drains due events, returning parked entries to the
// candidate set. Events carry no payload beyond the slot; the issue
// walk revalidates everything, so an event orphaned by a squash or a
// slot reuse at worst causes one extra idempotent examination.
func (p *Pipeline) processWakeups() {
	w := &p.events
	for c := w.drained + 1; c <= p.cycle; c++ {
		b := c & w.mask
		bk := w.buckets[b]
		if len(bk) == 0 {
			continue
		}
		w.n -= len(bk)
		for _, s := range bk {
			p.wake(s)
		}
		w.buckets[b] = bk[:0]
	}
	w.drained = p.cycle
	if len(w.over) > 0 {
		keep := w.over[:0]
		for _, e := range w.over {
			if e.at <= p.cycle {
				p.wake(e.slot)
			} else {
				//md:allocok reuse-append into over[:0]; never exceeds the old length
				keep = append(keep, e)
			}
		}
		w.over = keep
	}
}

// wake fires one event for slot s: a timer-parked occupant and every
// entry parked on s return to the candidate set.
func (p *Pipeline) wake(s int32) {
	if p.parkedOn[s] == parkTimer {
		p.parkedOn[s] = parkNone
		if p.rob.live(s) {
			p.cand.set(s)
		}
	}
	for w := p.wHead[s]; w != nilSlot; {
		nw := p.wNext[w]
		p.parkedOn[w] = parkNone
		if p.rob.live(w) {
			p.cand.set(w)
		}
		w = nw
	}
	p.wHead[s] = nilSlot
}

// nextEventCycle returns the earliest upcoming cycle at which machine
// state can change: the top pending completion event, a fetch-stall
// expiry, or the front-end queue's next ready time. notYet when none.
// It is called after p.cycle has advanced to the next cycle to run, so
// times at exactly p.cycle count as upcoming (they make the skip a
// no-op); only times already in the past are ignored.
func (p *Pipeline) nextEventCycle() int64 {
	t := p.events.next(p.cycle)
	if p.cfg.SplitWindow {
		for u := range p.unitResumeAt {
			if r := p.unitResumeAt[u]; r >= p.cycle && r < t {
				t = r
			}
		}
	} else if p.fetchResumeAt >= p.cycle && p.fetchResumeAt < t {
		t = p.fetchResumeAt
	}
	if len(p.fetchQ) > p.fetchHead {
		if r := p.fetchQ[p.fetchHead].ready; r >= p.cycle && r < t {
			t = r
		}
	}
	return t
}

// trySkip advances the clock directly to the next event after a cycle
// in which nothing happened (no issue, commit, dispatch, fetch, or
// store event). Every mechanism that could act earlier is event-covered,
// so the skipped cycles are exactly the cycles the scan-based core
// would burn discovering that nothing can proceed. The zero-commit
// stall taxonomy (whose classification cannot change while the head is
// frozen) and the split-window rotation are batch-updated so statistics
// stay bit-identical to the scan core's.
func (p *Pipeline) trySkip() {
	target := p.nextEventCycle()
	if target <= p.cycle || target >= notYet {
		return
	}
	skipped := target - p.cycle
	s := p.slotIndex(p.headSeq)
	switch {
	case p.rob.seq[s] != p.headSeq:
		p.res.StallEmpty += skipped
	case p.rob.flags[s]&fMem != 0:
		p.res.StallMem += skipped
	default:
		p.res.StallExec += skipped
	}
	if p.cfg.SplitWindow {
		p.issueRotate += int(skipped)
	}
	p.cycle = target
}
