package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/workload"
)

func TestSanitySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	run := func(name string, cfg config.Machine) float64 {
		pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild(name))))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pl.Run(60_000)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-14s %-10s IPC=%.3f misspec=%.3f%% fd=%.1f%%/%.1fcyc bmiss=%.1f%% fwd=%d",
			name, cfg.Name(), r.IPC(), 100*r.MisspecRate(), 100*r.FalseDepRate(), r.FalseDepLatency(), 100*r.BranchMissRate(), r.Forwards)
		return r.IPC()
	}
	for _, name := range []string{"126.gcc", "129.compress", "102.swim", "107.mgrid"} {
		base := config.Default128()
		run(name, base.WithPolicy(config.NoSpec))
		run(name, base.WithPolicy(config.Naive))
		run(name, base.WithPolicy(config.Sync))
		run(name, base.WithPolicy(config.Oracle))
		run(name, base.WithPolicy(config.NoSpec).WithAddressScheduler(0))
		run(name, base.WithPolicy(config.Naive).WithAddressScheduler(0))
	}
}
