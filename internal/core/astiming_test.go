package core

import (
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/isa"
	"mdspec/internal/prog"
	"mdspec/internal/workload"
)

// slowStoreFastLoad builds a loop where the store's DATA arrives late
// (behind a divide) while its address and an independent later load's
// address are ready immediately. Under AS the store posts its address
// early so the independent load proceeds; under NAS/NO it waits for the
// store to execute.
func slowStoreFastLoad(iters int64) *prog.Program {
	b := prog.NewBuilder()
	src := b.AllocInit(1, 2, 3, 4)
	dst := b.Alloc(64)
	b.Li(isa.R1, int64(src))
	b.Li(isa.R2, int64(dst))
	b.Li(isa.R5, iters)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Div(isa.R5, isa.R7) // slow data producer
	b.Mflo(isa.R8)
	b.Sw(isa.R8, isa.R2, 0) // address ready instantly, data late
	b.Lw(isa.R3, isa.R1, 0) // different address: a false dependence
	b.Add(isa.R4, isa.R3, isa.R3)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	return b.MustProgram()
}

func run(t *testing.T, p *prog.Program, cfg config.Machine) *statsRun {
	t.Helper()
	pl, err := New(cfg, emu.NewTrace(emu.New(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(1 << 21)
	if err != nil {
		t.Fatal(err)
	}
	return &statsRun{r.IPC(), r.Misspeculations, r.FalseDepLoads, r.Forwards, r.Cycles}
}

type statsRun struct {
	ipc      float64
	misspec  int64
	fdLoads  int64
	forwards int64
	cycles   int64
}

func TestASNoReleasesFalseDependentLoads(t *testing.T) {
	// The point of posting addresses early: under NAS/NO nearly every
	// load stalls behind the divide-fed store; under AS/NO the store's
	// address posts within a couple of cycles, so almost no load is
	// delayed by the false dependence.
	p := slowStoreFastLoad(800)
	nasNo := run(t, p, config.Default128().WithPolicy(config.NoSpec))
	asNo := run(t, p, config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(0))
	if nasNo.fdLoads < 400 {
		t.Fatalf("NAS/NO should delay most of the ~800 loads; delayed %d", nasNo.fdLoads)
	}
	if asNo.fdLoads > nasNo.fdLoads/2 {
		t.Errorf("AS/NO delayed %d loads, NAS/NO %d — posting addresses should release them",
			asNo.fdLoads, nasNo.fdLoads)
	}
}

func TestASWaitsOnPostedMatch(t *testing.T) {
	// A load whose address matches a posted, unexecuted store must wait
	// for the store and forward — never misspeculate, under both AS/NO
	// and AS/NAV.
	b := prog.NewBuilder()
	g := b.AllocInit(7)
	b.Li(isa.R1, int64(g))
	b.Li(isa.R5, 500)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Div(isa.R5, isa.R7)
	b.Mflo(isa.R8)
	b.Sw(isa.R8, isa.R1, 0) // address posts early, data late
	b.Lw(isa.R3, isa.R1, 0) // same address: must wait + forward
	b.Add(isa.R4, isa.R3, isa.R3)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	for _, pol := range []config.Policy{config.NoSpec, config.Naive} {
		r := run(t, p, config.Default128().WithPolicy(pol).WithAddressScheduler(0))
		if r.misspec != 0 {
			t.Errorf("AS/%v misspeculated %d times on a posted match", pol, r.misspec)
		}
		if r.forwards < 400 {
			t.Errorf("AS/%v forwarded only %d of ~500 matched loads", pol, r.forwards)
		}
	}
}

func TestASNavSpeculatesPastUnpostedStores(t *testing.T) {
	// Same program as TestASNoBeatsNASNoOnLateStoreData, but the store
	// ADDRESS is late too (behind the divide). AS/NO must wait for the
	// posting; AS/NAV speculates past it (different addresses, so no
	// misspeculation) and wins.
	b := prog.NewBuilder()
	src := b.AllocInit(1)
	dst := b.Alloc(4096)
	b.Li(isa.R1, int64(src))
	b.Li(isa.R2, int64(dst))
	b.Li(isa.R5, 800)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Div(isa.R5, isa.R7)
	b.Mflo(isa.R8)
	b.Andi(isa.R9, isa.R8, 0x1f8)
	b.Add(isa.R9, isa.R2, isa.R9)
	b.Sw(isa.R8, isa.R9, 0) // address depends on the divide: posts late
	b.Lw(isa.R3, isa.R1, 0) // reads the src arena: unrelated
	b.Add(isa.R4, isa.R3, isa.R3)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	asNo := run(t, p, config.Default128().WithPolicy(config.NoSpec).WithAddressScheduler(0))
	asNav := run(t, p, config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0))
	if asNav.ipc <= asNo.ipc*1.02 {
		t.Errorf("AS/NAV (%.3f) should beat AS/NO (%.3f) when store addresses post late",
			asNav.ipc, asNo.ipc)
	}
	if asNav.misspec != 0 {
		t.Errorf("no true dependences here, yet AS/NAV misspeculated %d times", asNav.misspec)
	}
}

func TestASSilentViolationAbsorbed(t *testing.T) {
	// A load that speculatively reads around a pending same-address
	// store whose value happens to EQUAL what the load read (a silent
	// store) must not squash under AS/NAV (§3.4's value condition).
	b := prog.NewBuilder()
	g := b.AllocInit(7)
	b.Li(isa.R1, int64(g))
	b.Li(isa.R5, 300)
	b.Li(isa.R6, 21)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Div(isa.R6, isa.R7) // LO = 7 always
	b.Mflo(isa.R8)
	b.Andi(isa.R9, isa.R8, 0x7) // = 7: address varies formally with data
	b.Sll(isa.R9, isa.R9, 3)
	b.Add(isa.R9, isa.R1, isa.R9)
	b.Sw(isa.R8, isa.R9, -56) // stores 7 to g, address late (after divide)
	b.Lw(isa.R3, isa.R1, 0)   // reads g speculatively: gets 7 (the old value)
	b.Add(isa.R4, isa.R3, isa.R3)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	r := run(t, p, config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0))
	if r.misspec != 0 {
		t.Errorf("silent violations should be absorbed, got %d squashes", r.misspec)
	}
}

func TestSchedulerLatencyAddsLoadLatency(t *testing.T) {
	// On a load-latency-bound kernel, each cycle of scheduler latency
	// must cost cycles end to end.
	p := workload.KernelPointerChase(64, 2000) // serial loads
	r0 := run(t, p, config.Default128().WithPolicy(config.Naive).WithAddressScheduler(0))
	r2 := run(t, p, config.Default128().WithPolicy(config.Naive).WithAddressScheduler(2))
	if r2.cycles <= r0.cycles {
		t.Errorf("2-cycle scheduler should take longer: %d vs %d cycles", r2.cycles, r0.cycles)
	}
	// The chase is one load per ~6 instructions and fully serial, so two
	// extra cycles per load ≈ 2 * iterations extra cycles; allow slack.
	extra := r2.cycles - r0.cycles
	if extra < 2000 {
		t.Errorf("expected >= ~1 extra cycle per serial load, got %d total", extra)
	}
}

func TestWordGranularFalseSharing(t *testing.T) {
	// A byte store and a word load touching the SAME word but logically
	// disjoint bytes still conflict in the word-granular detection
	// hardware: NAS/NAV squashes (false sharing), ORACLE synchronizes,
	// and both commit the right count.
	b := prog.NewBuilder()
	g := b.AllocInit(0)
	b.Li(isa.R1, int64(g))
	b.Li(isa.R5, 400)
	b.Li(isa.R7, 3)
	b.Label("loop")
	b.Div(isa.R5, isa.R7) // delay the store's data
	b.Mflo(isa.R8)
	b.Sb(isa.R8, isa.R1, 6) // byte 6 of the word, late
	b.Lw(isa.R3, isa.R1, 0) // whole word: conflicts at word granularity
	b.Add(isa.R4, isa.R3, isa.R3)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	p := b.MustProgram()
	nav := run(t, p, config.Default128().WithPolicy(config.Naive))
	if nav.misspec == 0 {
		t.Error("word-granular detection should flag the byte/word false sharing")
	}
	oracle := run(t, p, config.Default128().WithPolicy(config.Oracle))
	if oracle.misspec != 0 {
		t.Error("oracle should never squash")
	}
}
