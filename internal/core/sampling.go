package core

import (
	"fmt"

	"mdspec/internal/cache"
	"mdspec/internal/stats"
)

// RunSampled simulates with the paper's sampling methodology (§3.1):
// timing windows of timingInsts committed instructions alternate with
// functional-only windows of functionalInsts instructions during which
// the caches and the branch predictor stay warm but no cycles are
// charged. It covers ceil(totalTiming/timingInsts) sampling periods (or
// stops when the trace ends), committing at least totalTiming
// instructions in timing mode. A 1:2 "timing:functional" ratio from the
// paper's Table 1 corresponds to functionalInsts = 2*timingInsts.
//
// The sampling periods are anchored at fixed stream positions
// (k * (timingInsts+functionalInsts)), so a serial RunSampled simulates
// exactly the same timing regions as the interval-parallel engine
// (internal/parsim) at the same budget — the two differ only in how the
// microarchitectural state reaching each segment was warmed.
func (p *Pipeline) RunSampled(totalTiming, timingInsts, functionalInsts int64) (*stats.Run, error) {
	if err := p.checkSampled(timingInsts, functionalInsts); err != nil {
		return nil, err
	}
	nPeriods := (totalTiming + timingInsts - 1) / timingInsts
	return p.RunSampledInterval(0, nPeriods*(timingInsts+functionalInsts), timingInsts, functionalInsts, 0)
}

// RunSampledInterval runs the timing/functional alternation over the
// stream region [start, end): the machine is functionally fast-forwarded
// toward start (caches and branch predictor warm, no cycles charged, no
// statistics recorded), then sampling periods of timingInsts +
// functionalInsts instructions are simulated back to back, each anchored
// at the absolute stream position start + k*period.
//
// warmupInsts requests a detailed-but-unmeasured warm-up: the last
// warmupInsts instructions before start are simulated in full timing
// mode and then erased from the statistics. Functional warming cannot
// train state that only timing exposes — above all the memory dependence
// predictors, which learn from violations and synchronizations — so a
// mid-stream segment entered with a purely functional warm-up starts
// with a cold MDPT and overstates misspeculation. The warm-up stretch
// covers the tail of the preceding functional region (positions serial
// sampling merely warms), closing that gap.
//
// It is the per-segment engine of the interval-parallel orchestrator
// (internal/parsim), which decomposes one sampled run into such segments
// on period boundaries. Because every window is delimited by absolute
// stream positions rather than committed-instruction counts, a segment's
// result depends only on (configuration, stream, bounds, windows) —
// never on which worker ran it or when — so the merged result is
// bit-identical for any worker count.
func (p *Pipeline) RunSampledInterval(start, end, timingInsts, functionalInsts, warmupInsts int64) (*stats.Run, error) {
	if err := p.checkSampled(timingInsts, functionalInsts); err != nil {
		return nil, err
	}
	if start < 0 || end <= start {
		return nil, fmt.Errorf("core: invalid sampling interval [%d, %d)", start, end)
	}
	if warmupInsts < 0 {
		return nil, fmt.Errorf("core: invalid warm-up length %d", warmupInsts)
	}
	if warmupInsts > start {
		warmupInsts = start
	}
	if p.warm.seq > start-warmupInsts {
		return nil, fmt.Errorf("core: restored warm state at %d is past the warm-up start %d",
			p.warm.seq, start-warmupInsts)
	}
	period := timingInsts + functionalInsts
	maxCycles := (end-start+warmupInsts)*200 + 100_000
	p.prewarm(start - warmupInsts)
	if warmupInsts > 0 && !p.finished() {
		// Detailed warm-up: timing-simulate [start-warmupInsts, start),
		// then drain and erase every trace of it from the statistics.
		for p.headSeq < start && !p.finished() {
			p.step()
			if p.cycle > maxCycles {
				return nil, p.sampledDeadlock("sampled-warmup")
			}
		}
		if !p.finished() {
			if err := p.drainWindow(maxCycles); err != nil {
				return nil, err
			}
			if n := start - p.fetchSeq; n > 0 {
				p.skipFunctional(n)
			}
		}
		p.resetStats()
	}
	for pStart := start; pStart < end && !p.finished(); pStart += period {
		boundary := pStart + period
		if boundary > end {
			boundary = end
		}
		if p.headSeq >= boundary {
			continue // an earlier drain overshot this entire period
		}
		if tEnd := min64(pStart+timingInsts, end); p.headSeq < tEnd {
			// Timing window, delimited by stream position.
			for p.headSeq < tEnd && !p.finished() {
				p.step()
				if p.cycle > maxCycles {
					return nil, p.sampledDeadlock("sampled-segment")
				}
			}
			if p.finished() {
				break
			}
			if err := p.drainWindow(maxCycles); err != nil {
				return nil, err
			}
		}
		// Functional window: skip to the next period boundary (the drain
		// may already have carried the machine into, or past, it). The
		// last period's trailing window warms state no further timing
		// window will observe, so it is elided.
		if boundary < end {
			if n := boundary - p.fetchSeq; n > 0 {
				p.skipFunctional(n)
			}
		}
	}
	p.captureMemStats()
	return &p.res, nil
}

// sampledDeadlock builds the typed watchdog error for a stalled sampled
// phase, with the same machine-state snapshot the continuous-run
// watchdog emits.
func (p *Pipeline) sampledDeadlock(phase string) *DeadlockError {
	return &DeadlockError{
		Config: p.cfg.Name(), Phase: phase,
		Cycles: p.cycle, Committed: p.res.Committed,
		Snapshot: p.deadlockSnapshot(),
	}
}

// checkSampled validates the shared preconditions of the sampled entry
// points: a continuous window, sane window sizes, an unused pipeline.
func (p *Pipeline) checkSampled(timingInsts, functionalInsts int64) error {
	if p.cfg.SplitWindow {
		return fmt.Errorf("core: sampling is not supported with a split window")
	}
	if timingInsts <= 0 || functionalInsts < 0 {
		return fmt.Errorf("core: invalid sampling windows %d:%d", timingInsts, functionalInsts)
	}
	if p.cycle != 0 || p.res.Committed != 0 || p.headSeq != 0 {
		return fmt.Errorf("core: sampled run called on a used Pipeline")
	}
	return nil
}

// prewarm functionally advances a fresh pipeline to stream position seq
// and re-anchors the empty window there. The warm-up leaves no trace in
// the statistics: nothing is counted as skipped, and the cache and
// memory counters are reset afterwards, so the pipeline reports only its
// own segment's behavior.
//
// A pipeline that imported a checkpoint (RestoreWarm) arrives here with
// its warmer already mid-stream; AdvanceTo then replays only the residue
// between the checkpoint position and seq, which is the whole point of
// checkpointing. For a fresh pipeline AdvanceTo(seq) is identical to the
// full Advance(seq) fast-forward.
func (p *Pipeline) prewarm(seq int64) {
	if seq > 0 || p.warm.seq > 0 {
		p.warm.AdvanceTo(seq)
		p.fetchSeq = p.warm.seq
		if p.warm.ended {
			p.markTraceEnd()
		}
		p.headSeq = p.fetchSeq
		p.dispatchSeq = p.fetchSeq
		p.trace.Release(p.headSeq)
	}
	p.hier.D.Stats = cache.Stats{}
	p.hier.I.Stats = cache.Stats{}
	p.hier.L2.Stats = cache.Stats{}
	p.hier.Mem.Accesses = 0
}

// resetStats erases everything simulated so far from the statistics —
// the detailed warm-up of a mid-stream segment trains predictors and
// caches but must not be measured. Identity fields survive; cycles are
// reported relative to the new base from here on.
func (p *Pipeline) resetStats() {
	cfgName, wl := p.res.Config, p.res.Workload
	p.res = stats.Run{Config: cfgName, Workload: wl}
	p.cycleBase = p.cycle
	p.hier.D.Stats = cache.Stats{}
	p.hier.I.Stats = cache.Stats{}
	p.hier.L2.Stats = cache.Stats{}
	p.hier.Mem.Accesses = 0
}

// drainWindow pauses fetch and steps until the window is architecturally
// clean (everything fetched has committed).
func (p *Pipeline) drainWindow(maxCycles int64) error {
	p.draining = true
	for p.headSeq < p.dispatchSeq || len(p.fetchQ) > p.fetchHead {
		p.step()
		if p.cycle > maxCycles {
			p.draining = false
			return p.sampledDeadlock("sampled-drain")
		}
	}
	p.draining = false
	return nil
}

// finished reports whether every instruction of a finite program has
// committed.
func (p *Pipeline) finished() bool {
	return p.traceEnded && p.headSeq >= p.traceLen
}

// skipFunctional advances n instructions functionally via the embedded
// Warmer: branch predictor and caches observe the stream (staying warm)
// but no pipeline timing is modeled. The window must be empty.
func (p *Pipeline) skipFunctional(n int64) {
	// Each functional window re-observes its first instruction block; the
	// warmer's block-transition state does not survive the timing window
	// in between.
	p.warm.seq = p.fetchSeq
	p.warm.haveBlock = false
	p.res.Skipped += p.warm.Advance(n)
	p.fetchSeq = p.warm.seq
	if p.warm.ended && !p.traceEnded {
		p.markTraceEnd()
	}
	// Re-anchor the (empty) window after the skipped region.
	p.headSeq = p.fetchSeq
	p.dispatchSeq = p.fetchSeq
	p.haveFetchBlock = false
	p.blockedOnBranch = noSeq
	if p.fetchResumeAt < p.cycle {
		p.fetchResumeAt = p.cycle
	}
	p.trace.Release(p.headSeq)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
