package core

import (
	"fmt"

	"mdspec/internal/stats"
)

// RunSampled simulates with the paper's sampling methodology (§3.1):
// timing windows of timingInsts committed instructions alternate with
// functional-only windows of functionalInsts instructions during which
// the caches and the branch predictor stay warm but no cycles are
// charged. It stops once totalTiming instructions have committed in
// timing mode (or the trace ends). A 1:2 "timing:functional" ratio from
// the paper's Table 1 corresponds to functionalInsts = 2*timingInsts.
func (p *Pipeline) RunSampled(totalTiming, timingInsts, functionalInsts int64) (*stats.Run, error) {
	if p.cfg.SplitWindow {
		return nil, fmt.Errorf("core: sampling is not supported with a split window")
	}
	if timingInsts <= 0 || functionalInsts < 0 {
		return nil, fmt.Errorf("core: invalid sampling windows %d:%d", timingInsts, functionalInsts)
	}
	if p.cycle != 0 || p.res.Committed != 0 {
		return nil, fmt.Errorf("core: RunSampled called on a used Pipeline")
	}
	maxCycles := totalTiming*200 + 100_000
	for p.res.Committed < totalTiming && !p.finished() {
		target := p.res.Committed + timingInsts
		if target > totalTiming {
			target = totalTiming
		}
		// Timing window.
		for p.res.Committed < target && !p.finished() {
			p.step()
			if p.cycle > maxCycles {
				return nil, fmt.Errorf("core: no forward progress in sampled run (%s)", p.cfg.Name())
			}
		}
		if p.res.Committed >= totalTiming || p.finished() {
			break
		}
		// Drain the window so the machine is architecturally clean.
		p.draining = true
		for p.headSeq < p.dispatchSeq || len(p.fetchQ) > 0 {
			p.step()
			if p.cycle > maxCycles {
				p.draining = false
				return nil, fmt.Errorf("core: drain stalled in sampled run (%s)", p.cfg.Name())
			}
		}
		p.draining = false
		// Functional window: warm structures, charge no cycles.
		p.skipFunctional(functionalInsts)
	}
	p.res.Cycles = p.cycle
	p.res.DCacheAccesses = p.hier.D.Stats.Accesses
	p.res.DCacheMisses = p.hier.D.Stats.Misses
	p.res.ICacheAccesses = p.hier.I.Stats.Accesses
	p.res.ICacheMisses = p.hier.I.Stats.Misses
	return &p.res, nil
}

// finished reports whether every instruction of a finite program has
// committed.
func (p *Pipeline) finished() bool {
	return p.traceEnded && p.headSeq >= p.traceLen
}

// skipFunctional advances n instructions functionally: branch predictor
// and caches observe the stream (staying warm) but no pipeline timing is
// modeled. The window must be empty.
func (p *Pipeline) skipFunctional(n int64) {
	var lastBlock uint32
	haveBlock := false
	for i := int64(0); i < n; i++ {
		d := p.trace.At(p.fetchSeq)
		if d == nil {
			p.markTraceEnd()
			break
		}
		if blk := d.PC >> iCacheBlockShift; !haveBlock || blk != lastBlock {
			p.hier.I.Warm(d.PC, false)
			lastBlock, haveBlock = blk, true
		}
		switch {
		case d.IsLoad():
			p.hier.D.Warm(d.Addr, false)
		case d.IsStore():
			p.hier.D.Warm(d.Addr, true)
		case d.Inst.Op.IsCondBranch():
			pred := p.bp.PredictDirection(d.PC)
			hist := p.bp.History()
			p.bp.SpeculateHistory(pred)
			p.bp.Resolve(d.PC, hist, pred, d.Taken)
		}
		p.fetchSeq++
		p.res.Skipped++
	}
	// Re-anchor the (empty) window after the skipped region.
	p.headSeq = p.fetchSeq
	p.dispatchSeq = p.fetchSeq
	p.haveFetchBlock = false
	p.blockedOnBranch = noSeq
	if p.fetchResumeAt < p.cycle {
		p.fetchResumeAt = p.cycle
	}
	p.trace.Release(p.headSeq)
}
