package core

import (
	"reflect"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

// goldenConfigs enumerates every valid combination of policy, window
// shape, and recovery mechanism: the full matrix the event-driven
// scheduler must reproduce bit-for-bit.
func goldenConfigs() []config.Machine {
	nasPolicies := []config.Policy{
		config.NoSpec, config.Naive, config.Selective, config.StoreBarrier,
		config.Sync, config.Oracle, config.StoreSets,
	}
	shape := func(cfg config.Machine, split bool) config.Machine {
		if split {
			return cfg.WithSplitWindow(4)
		}
		return cfg
	}
	var cfgs []config.Machine
	for _, pol := range nasPolicies {
		for _, split := range []bool{false, true} {
			base := shape(config.Default128().WithPolicy(pol), split)
			cfgs = append(cfgs, base)
			cfgs = append(cfgs, base.WithRecovery(config.RecoverySelective))
		}
	}
	// AS supports only NO and NAV, squash recovery.
	for _, pol := range []config.Policy{config.NoSpec, config.Naive} {
		for _, split := range []bool{false, true} {
			cfgs = append(cfgs, shape(config.Default128().WithPolicy(pol).WithAddressScheduler(1), split))
		}
	}
	return cfgs
}

func goldenName(cfg config.Machine) string {
	name := cfg.Name()
	if cfg.Recovery == config.RecoverySelective {
		name += "+selinv"
	}
	if cfg.SplitWindow {
		name += "+split"
	}
	return name
}

func goldenRun(t *testing.T, cfg config.Machine, bench string, scan bool, insts int64) *stats.Run {
	t.Helper()
	pl, err := New(cfg, emu.NewTrace(emu.New(workload.MustBuild(bench))))
	if err != nil {
		t.Fatal(err)
	}
	pl.SetScanScheduler(scan)
	res, err := pl.Run(insts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEventSchedulerGoldenEquivalence runs every configuration of the
// policy x shape x recovery matrix under both the event-driven scheduler
// and the reference per-cycle scan, and requires the complete statistics
// records to be bit-identical. This is the correctness contract of the
// event-driven core: it changes when window entries are examined, never
// what the machine does.
func TestEventSchedulerGoldenEquivalence(t *testing.T) {
	const insts = 20_000
	const bench = "126.gcc"
	for _, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(goldenName(cfg), func(t *testing.T) {
			t.Parallel()
			if err := cfg.Validate(); err != nil {
				t.Fatalf("matrix produced invalid config: %v", err)
			}
			event := goldenRun(t, cfg, bench, false, insts)
			scan := goldenRun(t, cfg, bench, true, insts)
			if !reflect.DeepEqual(event, scan) {
				t.Errorf("event and scan schedulers diverge:\nevent: %+v\nscan:  %+v", event, scan)
			}
		})
	}
}
