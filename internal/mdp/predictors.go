package mdp

// violationThreshold is how many misspeculations a specific load or
// store accumulates before a dependence is predicted (paper §3.5: "It
// takes 3 miss-speculations ... before the existence of a dependence is
// predicted"). The counters are 2-bit saturating.
const violationThreshold = 3

type confidence struct {
	count uint8
}

func (c *confidence) bump() {
	if c.count < 3 {
		c.count++
	}
}

func (c *confidence) predicted() bool { return c.count >= violationThreshold }

// Selective is the selective-speculation predictor: it guesses whether a
// LOAD has a true dependence; predicted-dependent loads are not
// speculated (they wait for all prior stores to resolve).
type Selective struct {
	t *table[confidence]
	// Predictions and Hits count lookups and positive predictions.
	Predictions, Positives uint64
}

// NewSelective returns a selective predictor with cfg.
func NewSelective(cfg TableConfig) *Selective {
	return &Selective{t: newTable[confidence](cfg)}
}

// Predict reports whether the load at loadPC is predicted to have a
// dependence (and therefore should not be speculated).
func (s *Selective) Predict(loadPC uint32, cycle int64) bool {
	s.Predictions++
	e := s.t.get(loadPC, cycle)
	pred := e != nil && e.val.predicted()
	if pred {
		s.Positives++
	}
	return pred
}

// RecordViolation notes that the load at loadPC misspeculated.
func (s *Selective) RecordViolation(loadPC uint32, cycle int64) {
	e, _ := s.t.put(loadPC, cycle)
	e.val.bump()
}

// Flushes returns the number of periodic resets performed so far.
func (s *Selective) Flushes() uint64 { return s.t.Flushes }

// StoreBarrier is the store-barrier predictor: it guesses whether a
// STORE has dependences that would get violated; if so, all loads
// following it wait for its address and data.
type StoreBarrier struct {
	t                      *table[confidence]
	Predictions, Positives uint64
}

// NewStoreBarrier returns a store-barrier predictor with cfg.
func NewStoreBarrier(cfg TableConfig) *StoreBarrier {
	return &StoreBarrier{t: newTable[confidence](cfg)}
}

// Predict reports whether the store at storePC is predicted to be a
// barrier (later loads must wait for it).
func (s *StoreBarrier) Predict(storePC uint32, cycle int64) bool {
	s.Predictions++
	e := s.t.get(storePC, cycle)
	pred := e != nil && e.val.predicted()
	if pred {
		s.Positives++
	}
	return pred
}

// RecordViolation notes that the store at storePC had a dependence
// violated by some speculative load.
func (s *StoreBarrier) RecordViolation(storePC uint32, cycle int64) {
	e, _ := s.t.put(storePC, cycle)
	e.val.bump()
}

// Flushes returns the number of periodic resets performed so far.
func (s *StoreBarrier) Flushes() uint64 { return s.t.Flushes }

// MDPT is the memory dependence prediction table used by
// speculation/synchronization (§3.6). Separate entries are allocated for
// loads and stores; a dependence is represented by a synonym (a level of
// indirection). There is no confidence mechanism: once allocated,
// synchronization is always enforced, and the whole table is flushed
// every FlushInterval cycles to shed stale dependences.
type MDPT struct {
	loads  *table[uint32]
	stores *table[uint32]
	// Violations counts RecordViolation calls (MDPT allocations).
	Violations uint64
}

// NewMDPT returns an MDPT with cfg (applied to each of the load and
// store sides, matching the paper's "separate entries ... for stores and
// loads" in one 4K 2-way table).
func NewMDPT(cfg TableConfig) *MDPT {
	half := cfg
	half.Entries = cfg.Entries / 2
	if half.Entries < half.Assoc {
		half.Entries = half.Assoc
	}
	return &MDPT{loads: newTable[uint32](half), stores: newTable[uint32](half)}
}

// RecordViolation allocates (or refreshes) the dependence (loadPC,
// storePC) using the store PC as the synonym.
func (m *MDPT) RecordViolation(loadPC, storePC uint32, cycle int64) {
	m.Violations++
	le, _ := m.loads.put(loadPC, cycle)
	le.val = synonymOf(storePC)
	se, _ := m.stores.put(storePC, cycle)
	se.val = synonymOf(storePC)
}

// LoadSynonym returns the synonym the load at loadPC should synchronize
// on, if a dependence is predicted.
func (m *MDPT) LoadSynonym(loadPC uint32, cycle int64) (uint32, bool) {
	if e := m.loads.get(loadPC, cycle); e != nil {
		return e.val, true
	}
	return 0, false
}

// StoreSynonym returns the synonym the store at storePC produces, if it
// is a predicted dependence source.
func (m *MDPT) StoreSynonym(storePC uint32, cycle int64) (uint32, bool) {
	if e := m.stores.get(storePC, cycle); e != nil {
		return e.val, true
	}
	return 0, false
}

// synonymOf maps a store PC to its synonym. Using the PC itself keeps
// synonyms unique per static store while remaining a pure level of
// indirection (the consumers never interpret it as an address).
func synonymOf(storePC uint32) uint32 { return storePC }

// StoreSets is the store-set predictor of Chrysos & Emer (reference [4]
// in the paper), provided as an extension for the ablation experiments.
// The SSIT maps PCs (of both loads and stores) to store-set IDs; the
// core synchronizes a load against the most recent in-window store
// sharing its SSID (an idealized LFST).
type StoreSets struct {
	ssit   *table[uint32]
	nextID uint32
	// Merges counts set-merge events (both PCs already had sets).
	Merges uint64
}

// NewStoreSets returns a store-set predictor with cfg.
func NewStoreSets(cfg TableConfig) *StoreSets {
	return &StoreSets{ssit: newTable[uint32](cfg)}
}

// RecordViolation applies the store-set assignment rules to the violating
// (load, store) pair.
func (s *StoreSets) RecordViolation(loadPC, storePC uint32, cycle int64) {
	le := s.ssit.get(loadPC, cycle)
	se := s.ssit.get(storePC, cycle)
	switch {
	case le == nil && se == nil:
		s.nextID++
		id := s.nextID
		e1, _ := s.ssit.put(loadPC, cycle)
		e1.val = id
		e2, _ := s.ssit.put(storePC, cycle)
		e2.val = id
	case le == nil:
		e, _ := s.ssit.put(loadPC, cycle)
		e.val = se.val
	case se == nil:
		e, _ := s.ssit.put(storePC, cycle)
		e.val = le.val
	default:
		// Both assigned: the smaller ID wins ("declare winner" rule).
		if le.val != se.val {
			s.Merges++
			id := le.val
			if se.val < id {
				id = se.val
			}
			le.val = id
			se.val = id
		}
	}
}

// SSID returns the store-set ID of the instruction at pc, if assigned.
func (s *StoreSets) SSID(pc uint32, cycle int64) (uint32, bool) {
	if e := s.ssit.get(pc, cycle); e != nil {
		return e.val, true
	}
	return 0, false
}
