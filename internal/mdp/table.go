// Package mdp implements the memory dependence prediction hardware the
// paper evaluates: the selective-speculation predictor (§3.5), the
// store-barrier predictor (§3.5), the MDPT used by
// speculation/synchronization (§3.6), and — as an extension — the
// store-set predictor of Chrysos & Emer (the paper's reference [4]).
//
// All predictors are PC-indexed, set-associative tables with periodic
// flushing (the paper resets/flushes every one million cycles to adapt
// back after stale dependences).
package mdp

// TableConfig sizes a predictor table.
type TableConfig struct {
	Entries int // total entries (must be a multiple of Assoc)
	Assoc   int
	// FlushInterval clears the table every so many cycles; 0 disables.
	FlushInterval int64
}

// DefaultTable is the paper's 4K-entry, 2-way configuration with a
// one-million-cycle flush interval.
func DefaultTable() TableConfig {
	return TableConfig{Entries: 4096, Assoc: 2, FlushInterval: 1_000_000}
}

type entry[T any] struct {
	tag   uint32
	valid bool
	used  int64
	val   T
}

// table is a PC-indexed set-associative structure with LRU replacement
// and lazy periodic flushing.
type table[T any] struct {
	sets      [][]entry[T]
	setMask   uint32
	clock     int64
	flushEach int64
	nextFlush int64
	// Flushes counts how many times the table has been cleared.
	Flushes uint64
}

func newTable[T any](cfg TableConfig) *table[T] {
	nSets := cfg.Entries / cfg.Assoc
	t := &table[T]{
		sets:      make([][]entry[T], nSets),
		setMask:   uint32(nSets - 1),
		flushEach: cfg.FlushInterval,
		nextFlush: cfg.FlushInterval,
	}
	for i := range t.sets {
		t.sets[i] = make([]entry[T], cfg.Assoc)
	}
	return t
}

func (t *table[T]) maybeFlush(cycle int64) {
	if t.flushEach <= 0 || cycle < t.nextFlush {
		return
	}
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry[T]{}
		}
	}
	t.Flushes++
	for t.nextFlush <= cycle {
		t.nextFlush += t.flushEach
	}
}

func (t *table[T]) setOf(pc uint32) []entry[T] { return t.sets[(pc>>2)&t.setMask] }

// get returns the entry for pc, or nil.
func (t *table[T]) get(pc uint32, cycle int64) *entry[T] {
	t.maybeFlush(cycle)
	t.clock++
	set := t.setOf(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].used = t.clock
			return &set[i]
		}
	}
	return nil
}

// put returns the entry for pc, allocating (with LRU replacement) if
// absent. The second result reports whether the entry already existed.
func (t *table[T]) put(pc uint32, cycle int64) (*entry[T], bool) {
	if e := t.get(pc, cycle); e != nil {
		return e, true
	}
	set := t.setOf(pc)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].used < v.used {
			v = &set[i]
		}
	}
	var zero T
	*v = entry[T]{tag: pc, valid: true, used: t.clock, val: zero}
	return v, false
}
