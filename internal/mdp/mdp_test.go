package mdp

import (
	"testing"
	"testing/quick"
)

func TestSelectiveThreeStrikes(t *testing.T) {
	s := NewSelective(DefaultTable())
	pc := uint32(0x400100)
	for i := 0; i < 2; i++ {
		s.RecordViolation(pc, int64(i))
		if s.Predict(pc, int64(i)) {
			t.Fatalf("predicted after %d violations; threshold is 3", i+1)
		}
	}
	s.RecordViolation(pc, 2)
	if !s.Predict(pc, 3) {
		t.Fatal("should predict after 3 violations")
	}
	if s.Predict(0x400200, 3) {
		t.Fatal("unrelated PC should not be predicted")
	}
}

func TestSelectiveFlushResets(t *testing.T) {
	cfg := DefaultTable()
	cfg.FlushInterval = 100
	s := NewSelective(cfg)
	pc := uint32(0x400100)
	for i := 0; i < 3; i++ {
		s.RecordViolation(pc, 10)
	}
	if !s.Predict(pc, 50) {
		t.Fatal("should predict before flush")
	}
	if s.Predict(pc, 150) {
		t.Fatal("flush should clear the prediction")
	}
	if s.Flushes() != 1 {
		t.Errorf("flushes = %d, want 1", s.Flushes())
	}
}

func TestStoreBarrierThreeStrikes(t *testing.T) {
	s := NewStoreBarrier(DefaultTable())
	pc := uint32(0x400300)
	s.RecordViolation(pc, 0)
	s.RecordViolation(pc, 1)
	if s.Predict(pc, 2) {
		t.Fatal("2 violations should not predict")
	}
	s.RecordViolation(pc, 2)
	if !s.Predict(pc, 3) {
		t.Fatal("3 violations should predict")
	}
	if s.Positives != 1 || s.Predictions != 2 {
		t.Errorf("counters: positives=%d predictions=%d", s.Positives, s.Predictions)
	}
}

func TestConfidenceSaturates(t *testing.T) {
	var c confidence
	for i := 0; i < 10; i++ {
		c.bump()
	}
	if c.count != 3 {
		t.Errorf("count = %d, want saturation at 3", c.count)
	}
}

func TestMDPTImmediateSynchronization(t *testing.T) {
	m := NewMDPT(DefaultTable())
	loadPC, storePC := uint32(0x400100), uint32(0x400200)
	if _, ok := m.LoadSynonym(loadPC, 0); ok {
		t.Fatal("cold MDPT should not predict")
	}
	// Unlike selective/store-barrier, a single violation allocates and
	// synchronization is always enforced afterwards.
	m.RecordViolation(loadPC, storePC, 0)
	ls, ok1 := m.LoadSynonym(loadPC, 1)
	ss, ok2 := m.StoreSynonym(storePC, 1)
	if !ok1 || !ok2 {
		t.Fatal("both sides should be allocated after one violation")
	}
	if ls != ss {
		t.Errorf("load synonym %#x != store synonym %#x", ls, ss)
	}
}

func TestMDPTDistinctPairsDistinctSynonyms(t *testing.T) {
	m := NewMDPT(DefaultTable())
	m.RecordViolation(0x400100, 0x400200, 0)
	m.RecordViolation(0x400300, 0x400400, 0)
	s1, _ := m.LoadSynonym(0x400100, 1)
	s2, _ := m.LoadSynonym(0x400300, 1)
	if s1 == s2 {
		t.Error("independent dependences should get distinct synonyms")
	}
}

func TestMDPTFlush(t *testing.T) {
	cfg := DefaultTable()
	cfg.FlushInterval = 1000
	m := NewMDPT(cfg)
	m.RecordViolation(0x400100, 0x400200, 0)
	if _, ok := m.LoadSynonym(0x400100, 1500); ok {
		t.Error("load side should flush")
	}
	if _, ok := m.StoreSynonym(0x400200, 1500); ok {
		t.Error("store side should flush")
	}
}

func TestMDPTLoadWithMultipleStores(t *testing.T) {
	// A load that violates against two different stores keeps the most
	// recent synonym (single entry per load PC).
	m := NewMDPT(DefaultTable())
	m.RecordViolation(0x400100, 0x400200, 0)
	m.RecordViolation(0x400100, 0x400300, 1)
	ls, _ := m.LoadSynonym(0x400100, 2)
	ss, _ := m.StoreSynonym(0x400300, 2)
	if ls != ss {
		t.Error("load should synchronize with the latest violating store")
	}
	// The first store's entry still exists (separate entries per store).
	if _, ok := m.StoreSynonym(0x400200, 2); !ok {
		t.Error("earlier store entry should persist")
	}
}

func TestStoreSetsAssignmentRules(t *testing.T) {
	s := NewStoreSets(DefaultTable())
	// Rule 1: neither assigned -> both get a fresh common set.
	s.RecordViolation(0x100, 0x200, 0)
	l1, ok1 := s.SSID(0x100, 1)
	s1, ok2 := s.SSID(0x200, 1)
	if !ok1 || !ok2 || l1 != s1 {
		t.Fatal("rule 1 failed")
	}
	// Rule 2: load assigned, store not -> store joins load's set.
	s.RecordViolation(0x100, 0x300, 2)
	s2, ok := s.SSID(0x300, 3)
	if !ok || s2 != l1 {
		t.Fatal("rule 2 failed")
	}
	// Rule 3: store assigned, load not -> load joins store's set.
	s.RecordViolation(0x400, 0x300, 4)
	l2, ok := s.SSID(0x400, 5)
	if !ok || l2 != s2 {
		t.Fatal("rule 3 failed")
	}
	// Rule 4: both assigned to different sets -> merged to the smaller ID.
	s.RecordViolation(0x500, 0x600, 6) // new set, ID 2
	before, _ := s.SSID(0x500, 7)
	s.RecordViolation(0x500, 0x300, 8) // 0x500 (set 2) vs 0x300 (set 1)
	after, _ := s.SSID(0x500, 9)
	other, _ := s.SSID(0x300, 9)
	if after != other {
		t.Fatal("rule 4: sets should merge")
	}
	if after > before {
		t.Error("rule 4: merge should keep the smaller ID")
	}
	if s.Merges != 1 {
		t.Errorf("merges = %d, want 1", s.Merges)
	}
}

func TestTableLRUWithinSet(t *testing.T) {
	cfg := TableConfig{Entries: 4, Assoc: 2} // 2 sets
	tb := newTable[int](cfg)
	// PCs mapping to set 0: (pc>>2)&1 == 0.
	pcA, pcB, pcC := uint32(0x0), uint32(0x10), uint32(0x20)
	e, _ := tb.put(pcA, 0)
	e.val = 1
	e, _ = tb.put(pcB, 1)
	e.val = 2
	tb.get(pcA, 2) // touch A so B is LRU
	e, _ = tb.put(pcC, 3)
	e.val = 3
	if tb.get(pcB, 4) != nil {
		t.Error("B should have been evicted")
	}
	if got := tb.get(pcA, 5); got == nil || got.val != 1 {
		t.Error("A should survive")
	}
}

func TestTablePutIdempotent(t *testing.T) {
	tb := newTable[int](TableConfig{Entries: 8, Assoc: 2})
	e1, existed := tb.put(0x40, 0)
	if existed {
		t.Fatal("first put should allocate")
	}
	e1.val = 7
	e2, existed := tb.put(0x40, 1)
	if !existed || e2.val != 7 {
		t.Fatal("second put should find the same entry")
	}
}

func TestTableNeverPanicsProperty(t *testing.T) {
	tb := newTable[uint32](TableConfig{Entries: 64, Assoc: 2, FlushInterval: 500})
	cycle := int64(0)
	f := func(pc uint32, adv uint8, write bool) bool {
		cycle += int64(adv)
		if write {
			e, _ := tb.put(pc, cycle)
			e.val = pc
			return true
		}
		e := tb.get(pc, cycle)
		return e == nil || e.val == e.tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
