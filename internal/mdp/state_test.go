package mdp

import (
	"reflect"
	"testing"
)

func TestPredictorStateRoundTrip(t *testing.T) {
	rng := uint64(9)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	sel := NewSelective(DefaultTable())
	sb := NewStoreBarrier(DefaultTable())
	mdpt := NewMDPT(DefaultTable())
	ss := NewStoreSets(DefaultTable())
	for i := 0; i < 30000; i++ {
		v := next()
		pc := uint32(v) &^ 3
		pc2 := uint32(v>>24) &^ 3
		cycle := int64(i * 37)
		sel.Predict(pc, cycle)
		sb.Predict(pc2, cycle)
		if v&7 == 0 {
			sel.RecordViolation(pc, cycle)
			sb.RecordViolation(pc2, cycle)
			mdpt.RecordViolation(pc, pc2, cycle)
			ss.RecordViolation(pc, pc2, cycle)
		}
		mdpt.LoadSynonym(pc, cycle)
		ss.SSID(pc2, cycle)
	}

	t.Run("selective", func(t *testing.T) {
		b := sel.AppendState(nil)
		got := NewSelective(DefaultTable())
		roundTrip(t, b, got.RestoreState, sel, got)
	})
	t.Run("storebarrier", func(t *testing.T) {
		b := sb.AppendState(nil)
		got := NewStoreBarrier(DefaultTable())
		roundTrip(t, b, got.RestoreState, sb, got)
	})
	t.Run("mdpt", func(t *testing.T) {
		b := mdpt.AppendState(nil)
		got := NewMDPT(DefaultTable())
		roundTrip(t, b, got.RestoreState, mdpt, got)
	})
	t.Run("storesets", func(t *testing.T) {
		b := ss.AppendState(nil)
		got := NewStoreSets(DefaultTable())
		roundTrip(t, b, got.RestoreState, ss, got)
	})
}

func roundTrip(t *testing.T, b []byte, restore func([]byte) (int, error), want, got any) {
	t.Helper()
	n, err := restore(b)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored predictor differs from source")
	}
	if _, err := restore(b[:len(b)-1]); err != ErrStateTruncated {
		t.Fatalf("truncated: err = %v, want ErrStateTruncated", err)
	}
	if _, err := restore(b[:6]); err != ErrStateTruncated {
		t.Fatalf("short header: err = %v, want ErrStateTruncated", err)
	}
}

func TestRestoreGeometryMismatch(t *testing.T) {
	small := TableConfig{Entries: 64, Assoc: 2, FlushInterval: 1000}
	src := NewSelective(DefaultTable())
	src.RecordViolation(0x1000, 1)
	b := src.AppendState(nil)
	got := NewSelective(small)
	if _, err := got.RestoreState(b); err != ErrStateGeometry {
		t.Fatalf("geometry: err = %v, want ErrStateGeometry", err)
	}
}
