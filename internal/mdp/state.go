package mdp

import (
	"encoding/binary"
	"errors"
)

// Warm-state serialization hooks for the dependence predictors, mirroring
// cache.AppendState/RestoreState. The functional warming pass used for
// checkpoint capture never trains these tables (they learn only from
// timing-mode misspeculations), so today's checkpoint frames carry them
// empty — but the hooks give detailed-state checkpoints and tests a
// bit-exact way to move predictor contents between machines.

// Sentinel decode errors (RestoreState is a hot path).
var (
	// ErrStateTruncated reports a state buffer shorter than its own
	// geometry implies.
	ErrStateTruncated = errors.New("mdp: warm state truncated")
	// ErrStateGeometry reports a state captured from a differently
	// shaped table.
	ErrStateGeometry = errors.New("mdp: warm state geometry mismatch")
)

const tableHdrBytes = 4 + 4 + 8 + 8 + 8 // nSets, assoc, clock, nextFlush, Flushes

// entryBytes is the fixed wire size of one entry minus its value.
const entryKeyBytes = 4 + 1 + 8

// appendTable flattens t; val encodes one entry value.
func appendTable[T any](b []byte, t *table[T], val func([]byte, T) []byte) []byte {
	assoc := 0
	if len(t.sets) > 0 {
		assoc = len(t.sets[0])
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.sets)))
	b = binary.LittleEndian.AppendUint32(b, uint32(assoc))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.clock))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.nextFlush))
	b = binary.LittleEndian.AppendUint64(b, t.Flushes)
	for _, set := range t.sets {
		for i := range set {
			e := &set[i]
			b = binary.LittleEndian.AppendUint32(b, e.tag)
			if e.valid {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint64(b, uint64(e.used))
			b = val(b, e.val)
		}
	}
	return b
}

// restoreTable is the inverse of appendTable; valBytes is the fixed wire
// size of one value and val decodes it.
//
//md:hotpath
func restoreTable[T any](t *table[T], b []byte, valBytes int, val func([]byte) T) (int, error) {
	if len(b) < tableHdrBytes {
		return 0, ErrStateTruncated
	}
	assoc := 0
	if len(t.sets) > 0 {
		assoc = len(t.sets[0])
	}
	if int(binary.LittleEndian.Uint32(b)) != len(t.sets) ||
		int(binary.LittleEndian.Uint32(b[4:])) != assoc {
		return 0, ErrStateGeometry
	}
	total := tableHdrBytes + len(t.sets)*assoc*(entryKeyBytes+valBytes)
	if len(b) < total {
		return 0, ErrStateTruncated
	}
	t.clock = int64(binary.LittleEndian.Uint64(b[8:]))
	t.nextFlush = int64(binary.LittleEndian.Uint64(b[16:]))
	t.Flushes = binary.LittleEndian.Uint64(b[24:])
	off := tableHdrBytes
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry[T]{
				tag:   binary.LittleEndian.Uint32(b[off:]),
				valid: b[off+4] != 0,
				used:  int64(binary.LittleEndian.Uint64(b[off+5:])),
				val:   val(b[off+entryKeyBytes:]), //md:allocok tiny leaf decoder (decodeConfidence/decodeU32): pure byte reads, no allocation
			}
			off += entryKeyBytes + valBytes
		}
	}
	return off, nil
}

func appendConfidence(b []byte, c confidence) []byte { return append(b, c.count) }

func decodeConfidence(b []byte) confidence { return confidence{count: b[0]} }

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func decodeU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// AppendState appends the predictor's warm state to b.
func (s *Selective) AppendState(b []byte) []byte {
	b = appendTable(b, s.t, appendConfidence)
	b = binary.LittleEndian.AppendUint64(b, s.Predictions)
	return binary.LittleEndian.AppendUint64(b, s.Positives)
}

// RestoreState overwrites the predictor's warm state from the front of b.
//
//md:hotpath
func (s *Selective) RestoreState(b []byte) (int, error) {
	n, err := restoreTable(s.t, b, 1, decodeConfidence)
	if err != nil || len(b) < n+16 {
		return n, errOrTruncated(err)
	}
	s.Predictions = binary.LittleEndian.Uint64(b[n:])
	s.Positives = binary.LittleEndian.Uint64(b[n+8:])
	return n + 16, nil
}

// AppendState appends the predictor's warm state to b.
func (s *StoreBarrier) AppendState(b []byte) []byte {
	b = appendTable(b, s.t, appendConfidence)
	b = binary.LittleEndian.AppendUint64(b, s.Predictions)
	return binary.LittleEndian.AppendUint64(b, s.Positives)
}

// RestoreState overwrites the predictor's warm state from the front of b.
//
//md:hotpath
func (s *StoreBarrier) RestoreState(b []byte) (int, error) {
	n, err := restoreTable(s.t, b, 1, decodeConfidence)
	if err != nil || len(b) < n+16 {
		return n, errOrTruncated(err)
	}
	s.Predictions = binary.LittleEndian.Uint64(b[n:])
	s.Positives = binary.LittleEndian.Uint64(b[n+8:])
	return n + 16, nil
}

// AppendState appends the table's warm state to b.
func (m *MDPT) AppendState(b []byte) []byte {
	b = appendTable(b, m.loads, appendU32)
	b = appendTable(b, m.stores, appendU32)
	return binary.LittleEndian.AppendUint64(b, m.Violations)
}

// RestoreState overwrites the table's warm state from the front of b.
//
//md:hotpath
func (m *MDPT) RestoreState(b []byte) (int, error) {
	n, err := restoreTable(m.loads, b, 4, decodeU32)
	if err != nil {
		return n, err
	}
	n2, err := restoreTable(m.stores, b[n:], 4, decodeU32)
	n += n2
	if err != nil || len(b) < n+8 {
		return n, errOrTruncated(err)
	}
	m.Violations = binary.LittleEndian.Uint64(b[n:])
	return n + 8, nil
}

// AppendState appends the predictor's warm state to b.
func (s *StoreSets) AppendState(b []byte) []byte {
	b = appendTable(b, s.ssit, appendU32)
	b = binary.LittleEndian.AppendUint32(b, s.nextID)
	return binary.LittleEndian.AppendUint64(b, s.Merges)
}

// RestoreState overwrites the predictor's warm state from the front of b.
//
//md:hotpath
func (s *StoreSets) RestoreState(b []byte) (int, error) {
	n, err := restoreTable(s.ssit, b, 4, decodeU32)
	if err != nil || len(b) < n+12 {
		return n, errOrTruncated(err)
	}
	s.nextID = binary.LittleEndian.Uint32(b[n:])
	s.Merges = binary.LittleEndian.Uint64(b[n+4:])
	return n + 12, nil
}

func errOrTruncated(err error) error {
	if err != nil {
		return err
	}
	return ErrStateTruncated
}
