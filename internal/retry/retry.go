// Package retry defines the deterministic retry policy the experiment
// runner applies to transient failures (worker panics, watchdog
// deadlock reports). The budget is counted in attempts, not wall-clock
// time, and the backoff schedule is a pure function of the attempt
// number — the package never reads a clock or a random source (enforced
// by mdlint's determinism analyzer), so two runs of the same failing
// sweep make identical retry decisions. Actually sleeping between
// attempts is the caller's concern; the policy only says for how long.
package retry

import "time"

// Policy bounds retries of one cell. The zero value means "use the
// defaults" (see Default); fields set to negative values disable the
// corresponding behavior explicitly.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (so 1 disables retries; 0 selects the default).
	MaxAttempts int
	// BaseDelay is the backoff suggested after the first failed attempt;
	// it doubles per subsequent failure up to MaxDelay (capped
	// exponential backoff). Zero selects the default; negative disables
	// delays entirely.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Zero selects the default.
	MaxDelay time.Duration
}

// Default is the runner's policy when none is configured: three
// attempts with a 50ms/100ms backoff suggestion.
var Default = Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}

// WithDefaults fills unset fields from Default.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = Default.MaxAttempts
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = Default.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = Default.MaxDelay
	}
	return p
}

// Backoff returns the delay to apply after the given failed attempt
// (1-based): BaseDelay << (attempt-1), capped at MaxDelay and
// overflow-safe. Attempt numbers below 1 and disabled (negative)
// base delays yield zero.
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.WithDefaults()
	if attempt < 1 || p.BaseDelay < 0 {
		return 0
	}
	// Compare via a right shift of the cap so the left shift below can
	// never overflow.
	shift := attempt - 1
	if shift >= 63 || p.BaseDelay > p.MaxDelay>>shift {
		return p.MaxDelay
	}
	return p.BaseDelay << shift
}
