package retry

import (
	"testing"
	"time"
)

func TestWithDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p != Default {
		t.Errorf("zero policy = %+v, want Default %+v", p, Default)
	}
	p = Policy{MaxAttempts: -1}.WithDefaults()
	if p.MaxAttempts != 1 {
		t.Errorf("negative attempts clamp = %d, want 1", p.MaxAttempts)
	}
	p = Policy{MaxAttempts: 7, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}.WithDefaults()
	if p.MaxAttempts != 7 || p.BaseDelay != time.Millisecond || p.MaxDelay != 4*time.Millisecond {
		t.Errorf("explicit fields overwritten: %+v", p)
	}
}

func TestBackoffIsCappedExponential(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	want := []time.Duration{
		0,                     // attempt 0: invalid
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		if got := p.Backoff(attempt); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffOverflowSafe(t *testing.T) {
	p := Policy{BaseDelay: time.Hour, MaxDelay: 2 * time.Hour}
	for attempt := 1; attempt < 200; attempt++ {
		if got := p.Backoff(attempt); got < 0 || got > 2*time.Hour {
			t.Fatalf("Backoff(%d) = %v, want within (0, 2h]", attempt, got)
		}
	}
}

func TestBackoffDisabled(t *testing.T) {
	p := Policy{BaseDelay: -1}
	if got := p.Backoff(3); got != 0 {
		t.Errorf("disabled backoff = %v, want 0", got)
	}
}

// TestBackoffDeterministic pins the schedule: the same policy and
// attempt always yield the same delay (the retry budget is counted in
// attempts, never in elapsed time).
func TestBackoffDeterministic(t *testing.T) {
	p := Policy{}
	for attempt := 1; attempt <= 8; attempt++ {
		a, b := p.Backoff(attempt), p.Backoff(attempt)
		if a != b {
			t.Fatalf("Backoff(%d) nondeterministic: %v vs %v", attempt, a, b)
		}
	}
}
