package fleet

// The fleet tests exercise real process supervision: TestMain detects
// the -fleet-stub-socket flag and turns the re-executed test binary
// into a stub worker — an HTTP server on the given unix socket that
// answers /v1/healthz and /v1/runs with deterministic fake stats.
// Failure modes (crash after N cells, hang on a cell, refuse to start)
// are selected through FLEET_STUB_* environment variables inherited
// from the test process, so each test picks its chaos before spawning.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

func TestMain(m *testing.M) {
	for i, a := range os.Args {
		if a == "-fleet-stub-socket" && i+1 < len(os.Args) {
			runStubWorker(os.Args[i+1], stubSlot())
			return
		}
	}
	os.Exit(m.Run())
}

func stubSlot() int {
	for i, a := range os.Args {
		if a == "-fleet-stub-slot" && i+1 < len(os.Args) {
			n, _ := strconv.Atoi(os.Args[i+1])
			return n
		}
	}
	return 0
}

// fakeStats must be deterministic and cell-distinguishable: the stub
// computes it in the worker process, the tests recompute it locally.
func fakeStats(bench string, cfg config.Machine) *stats.Run {
	return &stats.Run{
		Config: cfg.Name(), Workload: bench,
		Cycles: 1000 + int64(len(bench)), Committed: 2500,
		CommittedLoads: 500, Misspeculations: 7,
	}
}

// runStubWorker is the re-executed test binary acting as one worker.
func runStubWorker(socket string, slot int) {
	if os.Getenv("FLEET_STUB_FAIL_ALL") != "" {
		os.Exit(3)
	}
	if p := os.Getenv("FLEET_STUB_FAIL_WHILE_FILE"); p != "" {
		if _, err := os.Stat(p); err == nil {
			os.Exit(3)
		}
	}
	crashAfter := -1
	if v := os.Getenv("FLEET_STUB_CRASH_AFTER"); v != "" {
		crashAfter, _ = strconv.Atoi(v)
	}
	var slowDelay time.Duration
	if v := os.Getenv("FLEET_STUB_SLOW_MS"); v != "" {
		if s := os.Getenv("FLEET_STUB_SLOW_SLOT"); s == "" || s == strconv.Itoa(slot) {
			ms, _ := strconv.Atoi(v)
			slowDelay = time.Duration(ms) * time.Millisecond
		}
	}
	hangOnceFile := os.Getenv("FLEET_STUB_HANG_ONCE_FILE")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	go func() {
		<-sig
		os.Exit(0)
	}()

	var served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		if crashAfter >= 0 && served.Load() >= int64(crashAfter) {
			os.Exit(2) // crash instead of answering: the cell is in flight
		}
		if hangOnceFile != "" {
			if _, err := os.Stat(hangOnceFile); err != nil {
				os.WriteFile(hangOnceFile, []byte("hung"), 0o644)
				select {} // wedge forever; the supervisor's budget kill frees us
			}
		}
		var req runRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if slowDelay > 0 {
			time.Sleep(slowDelay)
		}
		st := fakeStats(req.Bench, req.Config)
		rec := experiments.NewRunRecord(req.Bench, req.Config, 0, time.Millisecond, st)
		served.Add(1)
		json.NewEncoder(w).Encode(runResponse{Record: rec, Source: experiments.SourceSimulated})
	})
	ln, err := net.Listen("unix", socket)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stub:", err)
		os.Exit(1)
	}
	if err := http.Serve(ln, mux); err != nil {
		fmt.Fprintln(os.Stderr, "stub:", err)
		os.Exit(1)
	}
}

// testConfig builds a fleet Config that re-executes this test binary
// as the worker. Fallback runs fakeStats in-process and counts calls.
func testConfig(t *testing.T, procs int, fallbackCalls *atomic.Int64) Config {
	t.Helper()
	return Config{
		Procs: procs,
		Exec:  os.Args[0],
		Args: func(slot int, socket string) []string {
			return []string{"-fleet-stub-socket", socket, "-fleet-stub-slot", strconv.Itoa(slot)}
		},
		Dir:             t.TempDir(),
		SpawnTimeout:    5 * time.Second,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 3,
		DegradeAfter:    2 * time.Second,
		Restart:         retry.Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		Fallback: func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
			if fallbackCalls != nil {
				fallbackCalls.Add(1)
			}
			return fakeStats(bench, cfg), nil
		},
	}
}

func startPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// sweep pushes n distinct cells through the pool concurrently and
// verifies every result against fakeStats.
func sweep(t *testing.T, p *Pool, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bench := fmt.Sprintf("bench%02d", i)
			cfg := config.Default128()
			st, err := p.Simulate(ctx, bench, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			if want := fakeStats(bench, cfg); !reflect.DeepEqual(st, want) {
				errs[i] = fmt.Errorf("cell %d: got %+v want %+v", i, st, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
	}
}

// A healthy two-worker fleet must complete a sweep with every cell
// answered by a worker process, and report both workers alive.
func TestFleetDispatchAndReport(t *testing.T) {
	p := startPool(t, testConfig(t, 2, nil))
	sweep(t, p, 8)
	r := p.Report()
	if r.Alive != 2 {
		t.Errorf("alive = %d, want 2", r.Alive)
	}
	if r.Degraded {
		t.Error("pool degraded with both workers alive")
	}
	var cells int64
	for _, w := range r.Workers {
		cells += w.Cells
	}
	if cells != 8 {
		t.Errorf("worker cells = %d, want 8", cells)
	}
	if r.FallbackCells != 0 {
		t.Errorf("fallback cells = %d, want 0", r.FallbackCells)
	}
}

// Workers that crash mid-sweep (each stub dies when asked for its 3rd
// cell) must be restarted, their in-flight cells re-queued, and the
// sweep must still complete with correct results and restarts > 0.
func TestFleetCrashRestartRequeue(t *testing.T) {
	t.Setenv("FLEET_STUB_CRASH_AFTER", "2")
	p := startPool(t, testConfig(t, 2, nil))
	sweep(t, p, 12)
	r := p.Report()
	var restarts int64
	for _, w := range r.Workers {
		restarts += w.Restarts
	}
	if restarts == 0 {
		t.Error("no worker restarts despite crash-after-2 stubs")
	}
}

// With one deliberately slow worker, the fast worker must steal from
// the slow worker's backlog rather than idle.
func TestFleetWorkStealing(t *testing.T) {
	t.Setenv("FLEET_STUB_SLOW_SLOT", "0")
	t.Setenv("FLEET_STUB_SLOW_MS", "150")
	cfg := testConfig(t, 2, nil)
	cfg.PerWorker = 1
	p := startPool(t, cfg)
	sweep(t, p, 10)
	r := p.Report()
	var steals int64
	for _, w := range r.Workers {
		steals += w.Steals
	}
	if steals == 0 {
		t.Error("no steals despite a 150ms-per-cell slow worker")
	}
}

// A fleet that never comes up must degrade to in-process execution:
// cells complete through Fallback and healthz state reports degraded.
func TestFleetDegradedFallback(t *testing.T) {
	t.Setenv("FLEET_STUB_FAIL_ALL", "1")
	var fallbackCalls atomic.Int64
	cfg := testConfig(t, 2, &fallbackCalls)
	cfg.DegradeAfter = 200 * time.Millisecond
	p := startPool(t, cfg)
	sweep(t, p, 4)
	if !p.Degraded() {
		t.Error("pool not degraded with zero live workers")
	}
	if fallbackCalls.Load() != 4 {
		t.Errorf("fallback calls = %d, want 4", fallbackCalls.Load())
	}
	if r := p.Report(); r.FallbackCells != 4 {
		t.Errorf("report fallback cells = %d, want 4", r.FallbackCells)
	}
}

// A degraded pool must recover when workers come back: the fail-gate
// file is removed mid-test, the next respawn succeeds, and the
// degraded flag clears.
func TestFleetRecoversFromDegraded(t *testing.T) {
	gate := filepath.Join(t.TempDir(), "down")
	if err := os.WriteFile(gate, []byte("down"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("FLEET_STUB_FAIL_WHILE_FILE", gate)
	var fallbackCalls atomic.Int64
	cfg := testConfig(t, 1, &fallbackCalls)
	cfg.DegradeAfter = 150 * time.Millisecond
	p := startPool(t, cfg)

	if !eventually(5*time.Second, p.Degraded) {
		t.Fatal("pool never degraded while workers were gated down")
	}
	sweep(t, p, 2) // degraded cells flow through the fallback
	if fallbackCalls.Load() == 0 {
		t.Error("no fallback executions while degraded")
	}

	if err := os.Remove(gate); err != nil {
		t.Fatal(err)
	}
	if !eventually(10*time.Second, func() bool { return !p.Degraded() && p.Report().Alive == 1 }) {
		t.Fatal("pool never recovered after the gate file was removed")
	}
	sweep(t, p, 2) // recovered cells flow through the worker again
	r := p.Report()
	if r.Workers[0].Cells == 0 {
		t.Error("no worker-served cells after recovery")
	}
}

// A worker wedged on one cell past the wall-clock budget must be
// killed and restarted, and the cell re-dispatched to completion.
func TestFleetCellBudgetKillsWedgedWorker(t *testing.T) {
	t.Setenv("FLEET_STUB_HANG_ONCE_FILE", filepath.Join(t.TempDir(), "hung"))
	cfg := testConfig(t, 1, nil)
	cfg.CellBudget = 200 * time.Millisecond
	cfg.PerWorker = 1
	p := startPool(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bench, mc := "hangcell", config.Default128()
	st, err := p.Simulate(ctx, bench, mc)
	if err != nil {
		t.Fatalf("cell never completed after budget kill: %v", err)
	}
	if want := fakeStats(bench, mc); !reflect.DeepEqual(st, want) {
		t.Errorf("got %+v want %+v", st, want)
	}
	if r := p.Report(); r.Workers[0].Restarts == 0 {
		t.Error("wedged worker was not restarted")
	}
}

// Simulate on a closed pool (and cells still queued at Close) must
// fail with ErrPoolClosed, not hang.
func TestFleetClosedPool(t *testing.T) {
	t.Setenv("FLEET_STUB_FAIL_ALL", "1") // nothing ever comes up: cells sit pending
	p := startPool(t, testConfig(t, 1, nil))
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := p.Simulate(ctx, "pending", config.Default128())
		done <- err
	}()
	// Let the cell land in the pending list, then close underneath it.
	time.Sleep(100 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Errorf("queued cell got %v, want ErrPoolClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued cell still blocked after Close")
	}
	if _, err := p.Simulate(ctx, "late", config.Default128()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Simulate on closed pool = %v, want ErrPoolClosed", err)
	}
}

// The wire structs restate internal/server's JSON contract (fleet
// cannot import server); this pins the field names so a protocol
// rename cannot silently desynchronize them.
func TestWireFormatMatchesServerProtocol(t *testing.T) {
	req := runRequest{Bench: "b", Config: config.Default128()}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"bench", "config"} {
		if _, ok := m[k]; !ok {
			t.Errorf("runRequest JSON missing %q (server.RunRequest contract)", k)
		}
	}
	rec := experiments.NewRunRecord("b", config.Default128(), 0, time.Millisecond, fakeStats("b", config.Default128()))
	rb, err := json.Marshal(runResponse{Record: rec, Source: experiments.SourceSimulated})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rb, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"record", "source"} {
		if _, ok := m[k]; !ok {
			t.Errorf("runResponse JSON missing %q (server.RunResponse contract)", k)
		}
	}
}

func eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cond()
}
