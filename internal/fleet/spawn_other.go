//go:build !linux

package fleet

import (
	"os"
	"syscall"
)

// sysProcAttr: parent-death signals are linux-only; elsewhere the
// supervisor's explicit SIGTERM/SIGKILL shutdown path is the only
// lifetime tie.
func sysProcAttr() *syscall.SysProcAttr { return nil }

// termSignal is the graceful-drain signal sent before escalating to
// a hard kill.
func termSignal() os.Signal { return syscall.SIGTERM }
