package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
)

// The control channel between the supervisor and its worker processes
// is plain HTTP over a per-worker unix socket: each worker is a full
// mdserve server (cmd/mdserve -worker) listening on its socket, and
// the supervisor drives it through the same /v1/runs and /v1/healthz
// endpoints a network client would use. The request/response structs
// below mirror internal/server's wire format field for field; fleet
// cannot import internal/server (the server imports fleet for health
// and metrics reporting), so the JSON contract is restated here and
// pinned by the round-trip tests.

// runRequest mirrors server.RunRequest.
type runRequest struct {
	Bench  string                   `json:"bench"`
	Config config.Machine           `json:"config"`
	Meta   *experiments.Fingerprint `json:"meta,omitempty"`
}

// runResponse mirrors server.RunResponse.
type runResponse struct {
	Record experiments.RunRecord `json:"record"`
	Source experiments.RunSource `json:"source"`
}

// errorResponse mirrors server.ErrorResponse's error field.
type errorResponse struct {
	Error string `json:"error"`
}

// socketClient returns an HTTP client pinned to one unix socket; the
// request URL's host is a placeholder.
func socketClient(path string) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", path)
		},
	}}
}

// workerBase is the placeholder URL base for socket-pinned clients.
const workerBase = "http://mdserve-worker"

// permanentError marks a worker answer that re-dispatching cannot fix
// (a provenance mismatch, a malformed cell): the pool delivers it to
// the caller instead of requeueing the cell.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// postRun asks the worker behind hc to simulate one cell. A non-nil
// error that is not a *permanentError means the worker gave no usable
// answer (transport failure, overload, truncated response) and the
// cell may be re-dispatched.
func postRun(ctx context.Context, hc *http.Client, bench string, cfg config.Machine, meta *experiments.Fingerprint) (*experiments.RunRecord, experiments.RunSource, error) {
	body, err := json.Marshal(runRequest{Bench: bench, Config: cfg, Meta: meta})
	if err != nil {
		return nil, "", &permanentError{fmt.Errorf("fleet: encoding cell: %w", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerBase+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, "", &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("fleet: worker rpc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<10))
		var er errorResponse
		errText := strings.TrimSpace(string(msg))
		if json.Unmarshal(msg, &er) == nil && er.Error != "" {
			errText = er.Error
		}
		werr := fmt.Errorf("fleet: worker HTTP %d: %s", resp.StatusCode, errText)
		// 4xx answers are judgments about the request itself; retrying
		// them against another worker cannot change the verdict. 5xx and
		// overload answers are about the worker, so the cell survives.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, "", &permanentError{werr}
		}
		return nil, "", werr
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, "", fmt.Errorf("fleet: decoding worker response: %w", err)
	}
	if rr.Record.Stats == nil {
		return nil, "", fmt.Errorf("fleet: worker response for %s carries no stats", bench)
	}
	return &rr.Record, rr.Source, nil
}

// probeHealthz checks worker liveness over the control socket.
func probeHealthz(ctx context.Context, hc *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerBase+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz HTTP %d", resp.StatusCode)
	}
	return nil
}
