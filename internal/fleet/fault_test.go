//go:build mdfault

package fleet

// Fault-injection coverage for the supervisor's recovery paths (run
// with `go test -tags mdfault`): a failed fork must be absorbed by the
// capped-backoff respawn loop, and persistent heartbeat-probe failures
// must get the worker recycled — in both cases without losing a cell.

import (
	"sync/atomic"
	"testing"
	"time"

	"mdspec/internal/faultinject"
)

// An injected spawn failure on the first fork must be retried under
// the backoff policy; the fleet still comes up and serves the sweep.
func TestFleetSpawnFaultRetried(t *testing.T) {
	faultinject.Arm(faultinject.Plan{Site: faultinject.SiteWorkerSpawn, N: 1, Kind: faultinject.KindError})
	defer faultinject.Disarm()
	p := startPool(t, testConfig(t, 1, nil))
	sweep(t, p, 4)
	if got := faultinject.Hits(faultinject.SiteWorkerSpawn); got < 2 {
		t.Errorf("spawn site hits = %d, want >= 2 (failed attempt + successful retry)", got)
	}
	if r := p.Report(); r.Alive != 1 {
		t.Errorf("alive = %d, want 1 after spawn-fault recovery", r.Alive)
	}
}

// Persistent heartbeat-probe failures must be treated as a dead
// worker: enough misses trigger a kill and respawn, and the sweep
// still completes (the respawned incarnation's probes keep failing,
// so the fleet flaps — cells ride the alive windows or the fallback).
func TestFleetHeartbeatFaultRecyclesWorker(t *testing.T) {
	faultinject.Arm(faultinject.Plan{Site: faultinject.SiteWorkerHeartbeat, N: 1, Kind: faultinject.KindError, Repeat: true})
	defer faultinject.Disarm()
	var fallbackCalls atomic.Int64
	cfg := testConfig(t, 1, &fallbackCalls)
	cfg.HeartbeatEvery = 20 * time.Millisecond
	cfg.HeartbeatMisses = 2
	cfg.DegradeAfter = 300 * time.Millisecond
	p := startPool(t, cfg)
	sweep(t, p, 4)
	if !eventually(10*time.Second, func() bool { return p.Report().Workers[0].HeartbeatMisses > 0 }) {
		t.Error("no heartbeat misses recorded despite a repeating probe fault")
	}
	if !eventually(10*time.Second, func() bool {
		return p.Report().Workers[0].Restarts > 0 || fallbackCalls.Load() > 0
	}) {
		t.Error("heartbeat loss neither recycled the worker nor degraded to fallback")
	}
}
