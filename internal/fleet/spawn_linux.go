//go:build linux

package fleet

import (
	"os"
	"syscall"
)

// sysProcAttr ties each worker's lifetime to the supervisor's: if the
// supervising thread dies without running its shutdown path (SIGKILL,
// OOM), the kernel delivers SIGKILL to the children, so a fleet can
// never outlive its supervisor as orphan processes squatting on
// journal leases.
func sysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}

// termSignal is the graceful-drain signal sent before escalating to
// SIGKILL.
func termSignal() os.Signal { return syscall.SIGTERM }
