// Package fleet shards mdserve simulation cells across a supervised
// fleet of worker processes. The supervisor (Pool) forks N `mdserve
// -worker` children over the same journal and recording directories,
// assigns sweep cells to them over HTTP-on-unix-socket control
// channels, and survives every worker failure mode the in-process
// robustness layer cannot contain: a panic that escapes recovery, a
// wedged cell exceeding its wall-clock budget, an OOM SIGKILL, a
// deadlocked scheduler. The containment argument is the paper's own
// (§4.2): pay only for the misspeculated slice — here, the one dead
// worker's in-flight cells — never the whole window.
//
// Journal ownership is lease-based: each worker appends to its own
// runs.<id>.journal segment under a heartbeat-stamped lease file
// (experiments.OpenJournalSegment); the supervisor breaks a lease only
// after waitpid confirms the owner is dead, and a restarted process
// merges every segment via experiments.ReplayJournalDir, so nothing a
// worker journaled before dying is ever re-simulated.
//
// Dispatch is work-stealing: cells land on the least-loaded live
// worker's queue, and an idle worker's delivery runners steal from the
// longest backlog. Cross-process dedup rides on the shared
// content-addressed recording cache plus the caller-side singleflight
// (the Pool is mounted behind experiments.Runner.UseBackend, which
// collapses identical concurrent cells before they reach dispatch).
//
// Degradation is graceful and total-loss-proof: while any worker
// lives, its queue absorbs the work; when the whole fleet is down
// longer than Config.DegradeAfter, the Pool flips to degraded and runs
// cells through Config.Fallback (the in-process simulation path),
// bounded by a semaphore so a dead fleet cannot oversubscribe the
// host. Liveness, steal, restart, and heartbeat-miss counters per
// worker are exported via Report for /v1/metrics; /v1/healthz reports
// `degraded: true` off the same state.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/experiments"
	"mdspec/internal/faultinject"
	"mdspec/internal/parsim"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

// ErrPoolClosed is returned for cells submitted to (or still queued
// in) a Pool that has been closed.
var ErrPoolClosed = errors.New("fleet: pool closed")

// Config describes a worker fleet.
type Config struct {
	// Procs is the number of worker processes to supervise.
	Procs int
	// Exec is the worker binary (normally os.Executable() — mdserve
	// re-executes itself with -worker).
	Exec string
	// Args builds the argv (minus argv[0]) for one worker slot; it must
	// include whatever flags put the child in worker mode listening on
	// the given unix socket with journal segment id WorkerID(slot).
	Args func(slot int, socket string) []string
	// Dir is where per-worker control sockets are created.
	Dir string
	// JournalDir, when set, is the shared journal directory: after
	// waitpid confirms a worker dead, the supervisor breaks the stale
	// lease on its runs.<id>.journal segment so the respawned process
	// can reclaim it immediately instead of waiting out the TTL.
	JournalDir string
	// Meta is the provenance fingerprint stamped on every dispatched
	// cell; a worker whose tuple diverged refuses it with 409.
	Meta *experiments.Fingerprint
	// PerWorker is the delivery concurrency per worker process (how
	// many cells one worker holds in flight). Default 2.
	PerWorker int
	// CellBudget bounds one cell's wall-clock on a worker; on expiry
	// the worker is presumed wedged, killed, and the cell re-queued.
	// Zero disables the budget.
	CellBudget time.Duration
	// SpawnTimeout bounds how long a freshly forked worker may take to
	// answer /v1/healthz before it is killed and counted as a failed
	// spawn. Default 10s.
	SpawnTimeout time.Duration
	// HeartbeatEvery is the supervisor's liveness probe period
	// (default 1s); HeartbeatMisses consecutive failed probes get the
	// worker SIGKILLed and respawned (default 3).
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// DegradeAfter is how long the Pool tolerates zero live workers
	// before flipping to degraded in-process execution. Default 5s.
	DegradeAfter time.Duration
	// Restart is the capped-backoff policy between respawns of one
	// slot. Only the delay schedule is used: a supervisor never gives
	// up on its slot (the delay saturates at Restart.MaxDelay), because
	// permanent abandonment would silently shrink the fleet.
	Restart retry.Policy
	// DispatchAttempts is how many worker deliveries one cell may
	// consume (crashed worker, transport error, budget kill) before
	// the Pool stops re-queueing it and completes it through Fallback
	// instead — a cell that kills every worker it touches must not
	// orbit forever. Default 5.
	DispatchAttempts int
	// Fallback executes a cell in-process when the fleet cannot
	// (degraded mode, or a cell out of dispatch attempts). Required.
	Fallback experiments.SimulateFunc
	// FallbackPar bounds concurrent Fallback executions. Default 2.
	FallbackPar int
	// Log receives supervision events; nil means log.Default().
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.PerWorker < 1 {
		c.PerWorker = 2
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMisses < 1 {
		c.HeartbeatMisses = 3
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 5 * time.Second
	}
	c.Restart = c.Restart.WithDefaults()
	if c.DispatchAttempts < 1 {
		c.DispatchAttempts = 5
	}
	if c.FallbackPar < 1 {
		c.FallbackPar = 2
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// WorkerID is the journal segment id for a worker slot ("w0", "w1",
// ...); cmd/mdserve passes it to the child as -worker-id so the
// supervisor knows which lease to break after the child dies.
func WorkerID(slot int) string { return fmt.Sprintf("w%d", slot) }

// worker is one supervised slot. Everything here is immutable after
// Start except the atomics, which are the per-worker counters Report
// exports; the mutable scheduling state (queue, liveness, in-flight
// count) lives in Pool-level slices guarded by Pool.mu.
type worker struct {
	slot    int
	id      string
	socket  string
	hc      *http.Client
	wake    chan struct{} // cap 1: nudges idle delivery runners
	killReq chan struct{} // cap 1: asks the supervisor to SIGKILL the child

	pid      atomic.Int64
	restarts atomic.Int64
	steals   atomic.Int64
	cells    atomic.Int64
	hbMisses atomic.Int64
}

// cell is one dispatched (bench, config) simulation. A cell has
// exactly one owner at a time — the enqueuer until it lands in a
// queue, then whichever delivery runner popped it — so attempts needs
// no lock; requeues hand ownership back through Pool.mu.
type cell struct {
	bench    string
	cfg      config.Machine
	ctx      context.Context
	done     chan cellResult // cap 1, single send via finish
	attempts int
}

type cellResult struct {
	rec *experiments.RunRecord
	err error
}

func (c *cell) finish(rec *experiments.RunRecord, err error) {
	select {
	case c.done <- cellResult{rec, err}:
	default:
	}
}

// Pool is the fleet supervisor: process lifecycle, work-stealing
// dispatch, and degraded fallback behind one Simulate entry point.
type Pool struct {
	cfg     Config
	workers []*worker // immutable after Start
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	fbSem         parsim.Sem
	fallbackCells atomic.Int64

	mu         sync.Mutex
	queues     [][]*cell //md:guardedby mu — per-slot backlog, popped front-first
	pending    []*cell   //md:guardedby mu — cells with no live worker to queue on
	alive      []bool    //md:guardedby mu
	inflight   []int     //md:guardedby mu — cells a slot's runners hold in flight
	aliveCount int       //md:guardedby mu
	downSince  time.Time //md:guardedby mu — when aliveCount last hit zero
	degraded   bool      //md:guardedby mu
	closed     bool      //md:guardedby mu
}

// Start forks and supervises the fleet. The returned Pool is live
// immediately: cells submitted before the first worker is ready wait
// in the pending list (or degrade to Fallback if no worker arrives
// within DegradeAfter). Close releases everything.
func Start(ctx context.Context, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Exec == "" || cfg.Args == nil {
		return nil, errors.New("fleet: Config.Exec and Config.Args are required")
	}
	if cfg.Fallback == nil {
		return nil, errors.New("fleet: Config.Fallback is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("fleet: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: socket dir: %w", err)
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{
		cfg:       cfg,
		ctx:       pctx,
		cancel:    cancel,
		fbSem:     parsim.NewSem(cfg.FallbackPar),
		queues:    make([][]*cell, cfg.Procs),
		alive:     make([]bool, cfg.Procs),
		inflight:  make([]int, cfg.Procs),
		downSince: time.Now(), // nobody alive yet: the degrade clock starts now
	}
	for slot := 0; slot < cfg.Procs; slot++ {
		w := &worker{
			slot:    slot,
			id:      WorkerID(slot),
			socket:  filepath.Join(cfg.Dir, fmt.Sprintf("worker%d.sock", slot)),
			wake:    make(chan struct{}, 1),
			killReq: make(chan struct{}, 1),
		}
		w.hc = socketClient(w.socket)
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.supervise(pctx, w)
		for i := 0; i < cfg.PerWorker; i++ {
			p.wg.Add(1)
			go p.runLoop(pctx, w)
		}
	}
	p.wg.Add(1)
	go p.degradeWatch(pctx)
	return p, nil
}

// Simulate runs one cell through the fleet and is the
// experiments.SimulateFunc mounted behind Runner.UseBackend. It blocks
// until a worker (or the degraded fallback) answers, the caller's ctx
// dies, or the pool closes.
func (p *Pool) Simulate(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	rec, err := p.SimulateRecord(ctx, bench, cfg)
	if err != nil {
		return nil, err
	}
	return rec.Stats, nil
}

// SimulateRecord is Simulate keeping the worker's full
// provenance-carrying record.
func (p *Pool) SimulateRecord(ctx context.Context, bench string, cfg config.Machine) (*experiments.RunRecord, error) {
	c := &cell{bench: bench, cfg: cfg, ctx: ctx, done: make(chan cellResult, 1)}
	useFallback, err := p.admit(c)
	if err != nil {
		return nil, err
	}
	if useFallback {
		p.runFallback(c)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-c.done:
		return r.rec, r.err
	}
}

// admit places a fresh cell: least-loaded live worker's queue, the
// pending list while the fleet is merely down, or (degraded, true) to
// tell the caller to run the fallback itself.
func (p *Pool) admit(c *cell) (useFallback bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, ErrPoolClosed
	}
	if p.aliveCount == 0 {
		if p.degraded {
			return true, nil
		}
		p.pending = append(p.pending, c)
		return false, nil
	}
	slot := p.leastLoadedLocked()
	p.queues[slot] = append(p.queues[slot], c)
	p.wakeAll()
	return false, nil
}

// leastLoadedLocked picks the live slot with the smallest backlog +
// in-flight load. Caller holds p.mu.
//
//md:locked mu
func (p *Pool) leastLoadedLocked() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for slot, ok := range p.alive {
		if !ok {
			continue
		}
		if load := len(p.queues[slot]) + p.inflight[slot]; load < bestLoad {
			best, bestLoad = slot, load
		}
	}
	return best
}

// requeue returns a cell whose delivery failed to the dispatch state;
// ownership passes back to the pool.
func (p *Pool) requeue(c *cell) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.finish(nil, ErrPoolClosed)
		return
	}
	if p.aliveCount > 0 {
		slot := p.leastLoadedLocked()
		p.queues[slot] = append(p.queues[slot], c)
		p.wakeAll()
		p.mu.Unlock()
		return
	}
	if p.degraded {
		p.mu.Unlock()
		p.asyncFallback(c)
		return
	}
	p.pending = append(p.pending, c)
	p.mu.Unlock()
}

// wakeAll nudges every delivery runner; non-blocking sends on cap-1
// channels make this safe to call under p.mu.
func (p *Pool) wakeAll() {
	for _, w := range p.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// next hands one cell to a delivery runner for slot w: its own backlog
// first, then a steal from the longest other backlog, then the pending
// list. ok=false means the pool is closed. A nil cell with ok=true
// means "nothing to do, wait for a wake".
func (p *Pool) next(w *worker) (c *cell, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	if !p.alive[w.slot] {
		return nil, true // our process is down; cells were redistributed
	}
	if len(p.queues[w.slot]) > 0 {
		c = p.popLocked(w.slot)
	} else if victim := p.longestQueueLocked(w.slot); victim >= 0 {
		c = p.popLocked(victim)
		w.steals.Add(1)
	} else if len(p.pending) > 0 {
		c = p.pending[0]
		p.pending = p.pending[1:]
	}
	if c != nil {
		p.inflight[w.slot]++
	}
	return c, true
}

// popLocked pops the front of slot's queue. Caller holds p.mu.
//
//md:locked mu
func (p *Pool) popLocked(slot int) *cell {
	c := p.queues[slot][0]
	p.queues[slot] = p.queues[slot][1:]
	return c
}

// longestQueueLocked finds the steal victim: the slot (other than
// thief) with the deepest non-empty backlog. Caller holds p.mu.
//
//md:locked mu
func (p *Pool) longestQueueLocked(thief int) int {
	best, bestLen := -1, 0
	for slot, q := range p.queues {
		if slot == thief {
			continue
		}
		if len(q) > bestLen {
			best, bestLen = slot, len(q)
		}
	}
	return best
}

// runLoop is one delivery runner for one worker slot: pop (or steal) a
// cell, deliver it over the control socket, repeat.
func (p *Pool) runLoop(ctx context.Context, w *worker) {
	defer p.wg.Done()
	for {
		c, ok := p.next(w)
		if !ok {
			return
		}
		if c == nil {
			select {
			case <-ctx.Done():
				return
			case <-w.wake:
			}
			continue
		}
		p.deliver(w, c)
		p.mu.Lock()
		p.inflight[w.slot]--
		p.mu.Unlock()
	}
}

// deliver runs one cell on worker w and routes the outcome: success
// and permanent refusals finish the cell; transport failures and
// budget kills re-queue it until DispatchAttempts is spent, after
// which the fallback completes it.
func (p *Pool) deliver(w *worker, c *cell) {
	if c.ctx.Err() != nil {
		c.finish(nil, c.ctx.Err())
		return
	}
	dctx, cancel := context.WithCancel(c.ctx)
	defer cancel()
	// The pool closing must abort an in-flight delivery even though the
	// delivery runs on the caller's ctx.
	stop := context.AfterFunc(p.ctx, cancel)
	defer stop()
	if p.cfg.CellBudget > 0 {
		var bcancel context.CancelFunc
		dctx, bcancel = context.WithTimeout(dctx, p.cfg.CellBudget)
		defer bcancel()
	}
	rec, _, err := postRun(dctx, w.hc, c.bench, c.cfg, p.cfg.Meta)
	if err == nil {
		w.cells.Add(1)
		c.finish(rec, nil)
		return
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		c.finish(nil, perm.err)
		return
	}
	if c.ctx.Err() != nil {
		c.finish(nil, c.ctx.Err())
		return
	}
	if p.ctx.Err() != nil {
		c.finish(nil, ErrPoolClosed)
		return
	}
	if errors.Is(dctx.Err(), context.DeadlineExceeded) {
		// The worker sat on this cell past its wall-clock budget: presume
		// it wedged (deadlock, livelock) and recycle the process. The
		// respawned worker re-primes from its own journal segment, so
		// everything it finished before wedging survives. Marking the
		// slot dead here (rather than waiting for the supervisor's
		// waitpid) stops dispatch to the doomed process immediately.
		p.cfg.Log.Printf("fleet: %s exceeded %v on %s/%s; recycling worker",
			w.id, p.cfg.CellBudget, c.bench, c.cfg.Name())
		select {
		case w.killReq <- struct{}{}:
		default:
		}
		p.markDead(w)
	}
	c.attempts++
	if c.attempts >= p.cfg.DispatchAttempts {
		p.cfg.Log.Printf("fleet: cell %s/%s out of dispatch attempts (%d), completing in-process: %v",
			c.bench, c.cfg.Name(), c.attempts, err)
		p.asyncFallback(c)
		return
	}
	// Pace the re-dispatch: a dying worker fails deliveries with
	// connection errors faster than the supervisor can observe the
	// death, and an unpaced retry loop would burn every dispatch
	// attempt in microseconds.
	if !p.pause(c.ctx, p.cfg.Restart.Backoff(c.attempts)) {
		c.finish(nil, c.ctx.Err())
		return
	}
	p.requeue(c)
}

// pause waits d out; false means the cell's own ctx died. Pool
// shutdown cuts the wait short so requeue can observe closed.
func (p *Pool) pause(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-p.ctx.Done():
		return true
	case <-t.C:
		return true
	}
}

// asyncFallback completes a cell through the in-process path without
// tying up the calling delivery runner.
func (p *Pool) asyncFallback(c *cell) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.runFallback(c)
	}()
}

// runFallback executes one cell via Config.Fallback, bounded by the
// fallback semaphore.
func (p *Pool) runFallback(c *cell) {
	if err := p.fbSem.Acquire(c.ctx); err != nil {
		c.finish(nil, err)
		return
	}
	defer p.fbSem.Release()
	p.fallbackCells.Add(1)
	start := time.Now()
	st, err := p.cfg.Fallback(c.ctx, c.bench, c.cfg)
	if err != nil {
		c.finish(nil, err)
		return
	}
	rec := experiments.NewRunRecord(c.bench, c.cfg, instsOf(p.cfg.Meta), time.Since(start), st)
	c.finish(&rec, nil)
}

func instsOf(fp *experiments.Fingerprint) int64 {
	if fp == nil {
		return 0
	}
	return fp.Insts
}

// degradeWatch flips the pool into degraded mode once the whole fleet
// has been down for DegradeAfter, draining the pending backlog through
// the fallback. Recovery (markAlive) clears the flag.
func (p *Pool) degradeWatch(ctx context.Context) {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.DegradeAfter / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		p.mu.Lock()
		if p.closed || p.aliveCount > 0 || p.degraded ||
			time.Since(p.downSince) < p.cfg.DegradeAfter {
			p.mu.Unlock()
			continue
		}
		p.degraded = true
		drain := p.pending
		p.pending = nil
		p.mu.Unlock()
		p.cfg.Log.Printf("fleet: no live workers for %v; degrading to in-process execution (%d pending cells)",
			p.cfg.DegradeAfter, len(drain))
		for _, c := range drain {
			p.asyncFallback(c)
		}
	}
}

// markAlive records a worker as ready: its slot rejoins dispatch, the
// degraded flag clears, and any pending backlog lands on its queue.
func (p *Pool) markAlive(w *worker) {
	p.mu.Lock()
	wasDegraded := p.degraded
	p.alive[w.slot] = true
	p.aliveCount++
	p.degraded = false
	p.downSince = time.Time{}
	if len(p.pending) > 0 {
		p.queues[w.slot] = append(p.queues[w.slot], p.pending...)
		p.pending = nil
	}
	p.wakeAll()
	p.mu.Unlock()
	if wasDegraded {
		p.cfg.Log.Printf("fleet: %s ready; leaving degraded mode", w.id)
	}
}

// markDead removes a worker from dispatch and redistributes its
// backlog. In-flight cells need no action here: their delivery runners
// observe the transport failure and re-queue them.
func (p *Pool) markDead(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive[w.slot] {
		return
	}
	p.alive[w.slot] = false
	p.aliveCount--
	if p.aliveCount == 0 {
		p.downSince = time.Now()
	}
	orphans := p.queues[w.slot]
	p.queues[w.slot] = nil
	for _, c := range orphans {
		if p.aliveCount > 0 {
			slot := p.leastLoadedLocked()
			p.queues[slot] = append(p.queues[slot], c)
		} else {
			p.pending = append(p.pending, c)
		}
	}
	p.wakeAll()
}

// Close tears the fleet down: workers get SIGTERM then SIGKILL (via
// supervisor ctx cancellation), queued and pending cells fail with
// ErrPoolClosed, and Close blocks until every goroutine is gone.
func (p *Pool) Close() error {
	p.cancel()
	p.mu.Lock()
	p.closed = true
	var orphans []*cell
	orphans = append(orphans, p.pending...)
	p.pending = nil
	for slot := range p.queues {
		orphans = append(orphans, p.queues[slot]...)
		p.queues[slot] = nil
	}
	p.wakeAll()
	p.mu.Unlock()
	for _, c := range orphans {
		c.finish(nil, ErrPoolClosed)
	}
	p.wg.Wait()
	return nil
}

// WorkerStatus is one slot's instantaneous state and lifetime
// counters, exported through /v1/metrics.
type WorkerStatus struct {
	ID              string `json:"id"`
	PID             int    `json:"pid,omitempty"`
	Alive           bool   `json:"alive"`
	QueueDepth      int    `json:"queue_depth"`
	Inflight        int    `json:"inflight"`
	Cells           int64  `json:"cells"`
	Steals          int64  `json:"steals"`
	Restarts        int64  `json:"restarts"`
	HeartbeatMisses int64  `json:"heartbeat_misses"`
}

// Report is the fleet's health snapshot: /v1/healthz keys `degraded`
// off it and /v1/metrics embeds it whole.
type Report struct {
	Procs         int            `json:"procs"`
	Alive         int            `json:"alive"`
	Degraded      bool           `json:"degraded"`
	Pending       int            `json:"pending"`
	FallbackCells int64          `json:"fallback_cells"`
	Workers       []WorkerStatus `json:"workers"`
}

// Report snapshots the fleet.
func (p *Pool) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := Report{
		Procs:         p.cfg.Procs,
		Alive:         p.aliveCount,
		Degraded:      p.degraded,
		Pending:       len(p.pending),
		FallbackCells: p.fallbackCells.Load(),
	}
	for _, w := range p.workers {
		r.Workers = append(r.Workers, WorkerStatus{
			ID:              w.id,
			PID:             int(w.pid.Load()),
			Alive:           p.alive[w.slot],
			QueueDepth:      len(p.queues[w.slot]),
			Inflight:        p.inflight[w.slot],
			Cells:           w.cells.Load(),
			Steals:          w.steals.Load(),
			Restarts:        w.restarts.Load(),
			HeartbeatMisses: w.hbMisses.Load(),
		})
	}
	return r
}

// Degraded reports whether the pool is currently executing in-process.
func (p *Pool) Degraded() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// ---- worker process supervision ----

// supervise owns one slot's process lifecycle: spawn, wait for
// readiness, monitor heartbeats until death, break the dead worker's
// journal lease, back off, respawn. It never abandons the slot — the
// backoff saturates at Restart.MaxDelay — so a long outage degrades
// the pool (degradeWatch) instead of silently shrinking it.
func (p *Pool) supervise(ctx context.Context, w *worker) {
	defer p.wg.Done()
	attempt := 0
	everReady := false
	for ctx.Err() == nil {
		cmd, err := p.spawn(w)
		if err != nil {
			p.cfg.Log.Printf("fleet: spawning %s: %v", w.id, err)
			attempt++
			if !p.backoff(ctx, attempt) {
				return
			}
			continue
		}
		exited := make(chan error, 1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			exited <- cmd.Wait() //md:ctxok cap-1 channel, single send
		}()
		ready, exitedEarly := p.waitReady(ctx, w, exited)
		if !ready {
			if !exitedEarly {
				p.cfg.Log.Printf("fleet: %s (pid %d) not ready within %v", w.id, cmd.Process.Pid, p.cfg.SpawnTimeout)
				_ = cmd.Process.Kill()
				<-exited //md:ctxok child was just SIGKILLed; Wait returns promptly
			}
			p.breakLease(w)
			if ctx.Err() != nil {
				return
			}
			attempt++
			if !p.backoff(ctx, attempt) {
				return
			}
			continue
		}
		attempt = 0
		if everReady {
			w.restarts.Add(1)
		}
		everReady = true
		p.markAlive(w)
		p.monitor(ctx, w, cmd, exited)
		p.markDead(w)
		// Only now — after waitpid — is breaking the lease safe: the dead
		// process cannot race us for its journal segment.
		p.breakLease(w)
		if ctx.Err() != nil {
			return
		}
		attempt++
		if !p.backoff(ctx, attempt) {
			return
		}
	}
}

// backoff waits out the restart delay; false means ctx died.
func (p *Pool) backoff(ctx context.Context, attempt int) bool {
	if attempt > p.cfg.Restart.MaxAttempts {
		attempt = p.cfg.Restart.MaxAttempts // saturate the delay, never give up
	}
	t := time.NewTimer(p.cfg.Restart.Backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// spawn forks one worker process.
func (p *Pool) spawn(w *worker) (*exec.Cmd, error) {
	if err := faultinject.PointErr(faultinject.SiteWorkerSpawn); err != nil {
		return nil, err
	}
	// A leftover socket from the previous incarnation would make the new
	// listener fail with EADDRINUSE.
	_ = os.Remove(w.socket)
	cmd := exec.Command(p.cfg.Exec, p.cfg.Args(w.slot, w.socket)...)
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = sysProcAttr() // Pdeathsig on linux: no orphans if the supervisor dies
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w.pid.Store(int64(cmd.Process.Pid))
	p.cfg.Log.Printf("fleet: spawned %s (pid %d)", w.id, cmd.Process.Pid)
	return cmd, nil
}

// waitReady polls the worker's healthz until it answers, exits, or
// SpawnTimeout expires. exitedEarly reports that the exited channel
// was consumed (the caller must not wait on it again).
func (p *Pool) waitReady(ctx context.Context, w *worker, exited <-chan error) (ready, exitedEarly bool) {
	deadline := time.NewTimer(p.cfg.SpawnTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return false, false
		case err := <-exited:
			p.cfg.Log.Printf("fleet: %s exited before ready: %v", w.id, err)
			return false, true
		case <-deadline.C:
			return false, false
		case <-tick.C:
			pctx, cancel := context.WithTimeout(ctx, time.Second)
			err := probeHealthz(pctx, w.hc)
			cancel()
			if err == nil {
				return true, false
			}
		}
	}
}

// monitor watches a ready worker until it dies: waitpid, the
// supervisor's heartbeat probes, kill requests from delivery runners
// (budget kills), and pool shutdown all converge here.
func (p *Pool) monitor(ctx context.Context, w *worker, cmd *exec.Cmd, exited <-chan error) {
	hb := time.NewTicker(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			// Graceful drain: SIGTERM, a bounded grace period, then SIGKILL.
			_ = cmd.Process.Signal(termSignal())
			grace := time.NewTimer(p.cfg.SpawnTimeout)
			defer grace.Stop()
			select {
			case <-exited: //md:ctxok the pool is already shutting down; this IS the ctx.Done path
			case <-grace.C: //md:ctxok bounded by the grace timer itself
				_ = cmd.Process.Kill()
				<-exited //md:ctxok child was just SIGKILLed; Wait returns promptly
			}
			return
		case err := <-exited:
			p.cfg.Log.Printf("fleet: %s (pid %d) exited: %v", w.id, cmd.Process.Pid, err)
			return
		case <-w.killReq:
			_ = cmd.Process.Kill()
		case <-hb.C:
			if err := p.heartbeat(ctx, w); err != nil {
				misses++
				w.hbMisses.Add(1)
				if misses >= p.cfg.HeartbeatMisses {
					p.cfg.Log.Printf("fleet: %s missed %d heartbeats (%v); killing", w.id, misses, err)
					_ = cmd.Process.Kill()
				}
			} else {
				misses = 0
			}
		}
	}
}

// heartbeat is one supervisor liveness probe.
func (p *Pool) heartbeat(ctx context.Context, w *worker) error {
	if err := faultinject.PointErr(faultinject.SiteWorkerHeartbeat); err != nil {
		return err
	}
	pctx, cancel := context.WithTimeout(ctx, p.cfg.HeartbeatEvery)
	defer cancel()
	return probeHealthz(pctx, w.hc)
}

// breakLease reclaims a dead worker's journal segment lease so its
// respawn (or a supervisor restart's merge) does not wait out the TTL.
func (p *Pool) breakLease(w *worker) {
	if p.cfg.JournalDir == "" {
		return
	}
	if err := experiments.BreakLease(p.cfg.JournalDir, w.id); err != nil {
		p.cfg.Log.Printf("fleet: breaking lease for %s: %v", w.id, err)
	}
}
