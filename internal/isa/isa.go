// Package isa defines the mini-RISC instruction set used by the
// reproduction. It is a MIPS-I-inspired, load/store architecture: 32
// integer registers (R0 hardwired to zero), 32 floating-point registers,
// and HI/LO for multiply/divide results. Instructions are fixed 4-byte
// units addressed by PC.
//
// The ISA exists so the timing simulator (internal/core) can be
// execution-driven: workloads (internal/workload) are assembled into
// isa.Program values, executed functionally by internal/emu, and timed by
// the out-of-order pipeline model.
package isa

import "fmt"

// Reg identifies an architectural register. Integer registers are
// R0..R31, floating-point registers are F0..F31, and HI/LO follow.
type Reg uint8

// Integer register names (MIPS-flavored conventions).
const (
	R0 Reg = iota // hardwired zero
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	SP // R29: stack pointer
	FP // R30: frame pointer
	RA // R31: return address
)

// Floating point registers.
const (
	F0 Reg = 32 + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// Special registers.
const (
	HI Reg = 64 + iota
	LO
	// NumRegs is the size of the architectural register file.
	NumRegs

	// NoReg marks an absent operand.
	NoReg Reg = 255
)

// IsInt reports whether r is one of the 32 integer registers.
func (r Reg) IsInt() bool { return r < 32 }

// IsFP reports whether r is one of the 32 floating-point registers.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r < 32:
		switch r {
		case SP:
			return "sp"
		case FP:
			return "fp"
		case RA:
			return "ra"
		}
		return fmt.Sprintf("r%d", uint8(r))
	case r < 64:
		return fmt.Sprintf("f%d", uint8(r)-32)
	case r == HI:
		return "hi"
	case r == LO:
		return "lo"
	}
	return fmt.Sprintf("reg?%d", uint8(r))
}

// Op is an operation code. Opcodes are grouped by functional-unit class;
// see Class.
type Op uint8

// Integer ALU operations (register-register unless suffixed I).
const (
	NOP Op = iota
	ADD
	ADDI
	SUB
	AND
	ANDI
	OR
	ORI
	XOR
	XORI
	SLL // shift left logical (by Imm)
	SRL // shift right logical (by Imm)
	SRA // shift right arithmetic (by Imm)
	SLT // set if less than
	SLTI
	LUI // load upper immediate

	// Integer multiply/divide (results in HI/LO, read back with MFHI/MFLO).
	MULT
	DIV
	MFHI
	MFLO

	// Floating point. SP = single precision latency class, DP = double.
	FADD // SP/DP add & subtract & compare share the 2-cycle class
	FSUB
	FCMP  // writes integer 0/1 into Rd (an int reg)
	FMULS // 4-cycle single multiply
	FMULD // 5-cycle double multiply
	FDIVS // 12-cycle single divide
	FDIVD // 15-cycle double divide
	FMOV  // fp move / convert, 2 cycles
	MTF   // move int reg -> fp reg
	MFF   // move fp reg -> int reg

	// Memory. Effective address = Rs1 + Imm. LW loads into Rd (int or fp
	// depending on Rd), SW stores Rs2. LB/LH load sign-extended bytes and
	// halfwords (LBU zero-extends); SB/SH store the low byte/halfword of
	// Rs2. Dependence detection in the core is word-granular, as in the
	// paper's hardware.
	LW
	SW
	LB
	LBU
	LH
	SB
	SH

	// Control. Conditional branches compare Rs1 against Rs2 (or zero) and
	// jump to Target. JAL writes the return PC into RA. JR jumps to the
	// address in Rs1 (returns, indirect calls).
	BEQ
	BNE
	BLT
	BGE
	J
	JAL
	JR

	// HALT stops the emulator (end of program).
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", ADDI: "addi", SUB: "sub", AND: "and",
	ANDI: "andi", OR: "or", ORI: "ori", XOR: "xor", XORI: "xori",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTI: "slti",
	LUI: "lui", MULT: "mult", DIV: "div", MFHI: "mfhi", MFLO: "mflo",
	FADD: "fadd", FSUB: "fsub", FCMP: "fcmp", FMULS: "fmul.s",
	FMULD: "fmul.d", FDIVS: "fdiv.s", FDIVD: "fdiv.d", FMOV: "fmov",
	MTF: "mtf", MFF: "mff", LW: "lw", SW: "sw", LB: "lb", LBU: "lbu",
	LH: "lh", SB: "sb", SH: "sh", BEQ: "beq", BNE: "bne",
	BLT: "blt", BGE: "bge", J: "j", JAL: "jal", JR: "jr", HALT: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Class partitions opcodes by the functional unit that executes them and
// therefore by latency (Table 2 of the paper).
type Class uint8

// Functional-unit classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMult
	ClassIntDiv
	ClassFPAdd  // add/sub/compare, 2 cycles
	ClassFPMulS // 4 cycles
	ClassFPMulD // 5 cycles
	ClassFPDivS // 12 cycles
	ClassFPDivD // 15 cycles
	ClassLoad
	ClassStore
	ClassBranch // includes jumps
)

// classOf memoizes classSwitch per opcode: the predicate methods
// (IsLoad, IsStore, IsBranch, ...) run on every decoded dynamic
// instruction, so the switch is evaluated once per opcode at package
// init instead of per call.
var classOf [numOps]Class

func init() {
	for o := Op(0); o < numOps; o++ {
		classOf[o] = o.classSwitch()
	}
}

// Class returns the functional-unit class of the opcode.
func (o Op) Class() Class {
	if int(o) < len(classOf) {
		return classOf[o]
	}
	return ClassIntALU
}

func (o Op) classSwitch() Class {
	switch o {
	case NOP, HALT:
		return ClassNop
	case MULT:
		return ClassIntMult
	case DIV:
		return ClassIntDiv
	case FADD, FSUB, FCMP, FMOV, MTF, MFF:
		return ClassFPAdd
	case FMULS:
		return ClassFPMulS
	case FMULD:
		return ClassFPMulD
	case FDIVS:
		return ClassFPDivS
	case FDIVD:
		return ClassFPDivD
	case LW, LB, LBU, LH:
		return ClassLoad
	case SW, SB, SH:
		return ClassStore
	case BEQ, BNE, BLT, BGE, J, JAL, JR:
		return ClassBranch
	default:
		return ClassIntALU
	}
}

// classLatency backs Class.Latency; unlisted classes execute in 1 cycle.
var classLatency = [ClassBranch + 1]int{
	ClassIntMult: 4, ClassIntDiv: 12, ClassFPAdd: 2, ClassFPMulS: 4,
	ClassFPMulD: 5, ClassFPDivS: 12, ClassFPDivD: 15,
}

func init() {
	for c := range classLatency {
		if classLatency[c] == 0 {
			classLatency[c] = 1
		}
	}
}

// Latency returns the execution latency in cycles for the class, per the
// paper's Table 2. Loads report the address-generation latency only; the
// cache model adds memory time. Branches and stores take one cycle of
// execution (condition evaluation / address+data merge).
func (c Class) Latency() int {
	if int(c) < len(classLatency) {
		return classLatency[c]
	}
	return 1
}

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsLoad reports whether the op is a load.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the op is a store.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// MemBytes returns the access width in bytes (0 for non-memory ops).
func (o Op) MemBytes() int {
	switch o {
	case LW, SW:
		return 8
	case LH, SH:
		return 2
	case LB, LBU, SB:
		return 1
	}
	return 0
}

// IsBranch reports whether the op redirects control flow (conditionals,
// jumps, calls, returns).
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsCondBranch reports whether the op is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// Inst is one static instruction. The interpretation of the fields
// depends on Op:
//
//	ALU reg-reg:  Rd <- Rs1 op Rs2
//	ALU reg-imm:  Rd <- Rs1 op Imm
//	LW:           Rd <- Mem[Rs1+Imm]
//	SW:           Mem[Rs1+Imm] <- Rs2
//	Bcc:          if Rs1 cc Rs2 goto Target
//	J/JAL:        goto Target (JAL: RA <- return PC)
//	JR:           goto Rs1
type Inst struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target uint32 // absolute byte PC for direct branches/jumps
}

// InstBytes is the size of one instruction in bytes; PCs advance by it.
const InstBytes = 4

// Dest returns the destination register or NoReg.
func (in *Inst) Dest() Reg {
	switch in.Op {
	case SW, SB, SH, BEQ, BNE, BLT, BGE, J, JR, NOP, HALT:
		return NoReg
	case JAL:
		return RA
	case MULT, DIV:
		return LO // model HI:LO pair as LO being the named result; MFHI reads HI
	}
	return in.Rd
}

// Src1 returns the first source register or NoReg.
func (in *Inst) Src1() Reg {
	switch in.Op {
	case NOP, HALT, J, JAL, LUI:
		return NoReg
	case MFHI:
		return HI
	case MFLO:
		return LO
	}
	return in.Rs1
}

// Src2 returns the second source register or NoReg.
func (in *Inst) Src2() Reg {
	switch in.Op {
	case ADD, SUB, AND, OR, XOR, SLT, MULT, DIV,
		FADD, FSUB, FCMP, FMULS, FMULD, FDIVS, FDIVD,
		SW, SB, SH, BEQ, BNE, BLT, BGE:
		return in.Rs2
	}
	return NoReg
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case LW, LB, LBU, LH:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case SW, SB, SH:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, in.Rs1, in.Rs2, in.Target)
	case J, JAL:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	case JR:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case ADDI, ANDI, ORI, XORI, SLTI, SLL, SRL, SRA:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LUI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case MFHI, MFLO:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case MULT, DIV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rs1, in.Rs2)
	case MTF, MFF, FMOV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
}
