package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R5, "r5"}, {SP, "sp"}, {FP, "fp"}, {RA, "ra"},
		{F0, "f0"}, {F31, "f31"}, {HI, "hi"}, {LO, "lo"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegClassPredicates(t *testing.T) {
	if !R7.IsInt() || R7.IsFP() {
		t.Error("R7 should be int, not fp")
	}
	if !F3.IsFP() || F3.IsInt() {
		t.Error("F3 should be fp, not int")
	}
	if HI.IsInt() || HI.IsFP() {
		t.Error("HI should be neither int nor fp")
	}
}

func TestOpClassLatencies(t *testing.T) {
	// Table 2 of the paper.
	cases := []struct {
		op   Op
		want int
	}{
		{ADD, 1}, {SUB, 1}, {SLT, 1},
		{MULT, 4}, {DIV, 12},
		{FADD, 2}, {FSUB, 2}, {FCMP, 2},
		{FMULS, 4}, {FMULD, 5}, {FDIVS, 12}, {FDIVD, 15},
	}
	for _, c := range cases {
		if got := c.op.Class().Latency(); got != c.want {
			t.Errorf("%v latency = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !LW.IsMem() || !LW.IsLoad() || LW.IsStore() {
		t.Error("LW predicates wrong")
	}
	if !SW.IsMem() || !SW.IsStore() || SW.IsLoad() {
		t.Error("SW predicates wrong")
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE, J, JAL, JR} {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE} {
		if !op.IsCondBranch() {
			t.Errorf("%v should be a conditional branch", op)
		}
	}
	for _, op := range []Op{J, JAL, JR, ADD, LW} {
		if op.IsCondBranch() {
			t.Errorf("%v should not be a conditional branch", op)
		}
	}
	if ADD.IsBranch() || ADD.IsMem() {
		t.Error("ADD predicates wrong")
	}
}

func TestInstOperands(t *testing.T) {
	add := Inst{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}
	if add.Dest() != R1 || add.Src1() != R2 || add.Src2() != R3 {
		t.Errorf("ADD operands wrong: %v %v %v", add.Dest(), add.Src1(), add.Src2())
	}
	lw := Inst{Op: LW, Rd: R4, Rs1: R5, Imm: 8}
	if lw.Dest() != R4 || lw.Src1() != R5 || lw.Src2() != NoReg {
		t.Error("LW operands wrong")
	}
	sw := Inst{Op: SW, Rs1: R5, Rs2: R6, Imm: 8}
	if sw.Dest() != NoReg || sw.Src1() != R5 || sw.Src2() != R6 {
		t.Error("SW operands wrong")
	}
	jal := Inst{Op: JAL, Target: 0x400010}
	if jal.Dest() != RA {
		t.Error("JAL should write RA")
	}
	jr := Inst{Op: JR, Rs1: RA}
	if jr.Dest() != NoReg || jr.Src1() != RA {
		t.Error("JR operands wrong")
	}
	mfhi := Inst{Op: MFHI, Rd: R2}
	if mfhi.Src1() != HI {
		t.Error("MFHI should read HI")
	}
	mflo := Inst{Op: MFLO, Rd: R2}
	if mflo.Src1() != LO {
		t.Error("MFLO should read LO")
	}
	mult := Inst{Op: MULT, Rs1: R1, Rs2: R2}
	if mult.Dest() != LO || mult.Src2() != R2 {
		t.Error("MULT operands wrong")
	}
	beq := Inst{Op: BEQ, Rs1: R1, Rs2: R2}
	if beq.Dest() != NoReg || beq.Src2() != R2 {
		t.Error("BEQ operands wrong")
	}
	lui := Inst{Op: LUI, Rd: R1, Imm: 5}
	if lui.Src1() != NoReg {
		t.Error("LUI should have no register source")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, "add r1, r2, r3"},
		{Inst{Op: LW, Rd: R4, Rs1: SP, Imm: 16}, "lw r4, 16(sp)"},
		{Inst{Op: SW, Rs2: R6, Rs1: SP, Imm: -8}, "sw r6, -8(sp)"},
		{Inst{Op: BNE, Rs1: R1, Rs2: R0, Target: 0x400020}, "bne r1, r0, 0x400020"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: JR, Rs1: RA}, "jr ra"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAllOpsHaveNames(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op?") {
			t.Errorf("op %d has no name", op)
		}
	}
}
