package stats

import (
	"reflect"
	"testing"
)

// TestMergeSumsEveryCounter merges via reflection-built parts so a new
// counter field added to Run cannot silently escape Merge: every
// exported numeric field must come back summed.
func TestMergeSumsEveryCounter(t *testing.T) {
	mk := func(scale int64) *Run {
		r := &Run{Config: "NAS/SYNC", Workload: "129.compress"}
		v := reflect.ValueOf(r).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Int64:
				f.SetInt(scale * int64(i+1))
			case reflect.Uint64:
				f.SetUint(uint64(scale) * uint64(i+1))
			case reflect.String:
				// identity fields, seeded above
			default:
				// A counter of a kind this test cannot build would dodge
				// the summation check below and vanish silently from
				// sampled results; refuse the blind spot.
				t.Fatalf("stats.Run field %s has kind %s: teach Merge and this test about it",
					v.Type().Field(i).Name, f.Kind())
			}
		}
		return r
	}
	m := Merge([]*Run{mk(1), mk(10), mk(100)})
	v := reflect.ValueOf(m).Elem()
	typ := v.Type()
	numeric := 0
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		want := 111 * int64(i+1)
		switch f.Kind() {
		case reflect.Int64:
			numeric++
			if f.Int() != want {
				t.Errorf("%s = %d, want %d (not summed by Merge?)", typ.Field(i).Name, f.Int(), want)
			}
		case reflect.Uint64:
			numeric++
			if f.Uint() != uint64(want) {
				t.Errorf("%s = %d, want %d (not summed by Merge?)", typ.Field(i).Name, f.Uint(), want)
			}
		}
	}
	if numeric < 10 {
		t.Fatalf("only %d numeric counters checked: reflection walk is broken", numeric)
	}
	if m.Config != "NAS/SYNC" || m.Workload != "129.compress" {
		t.Errorf("identity fields lost: Config=%q Workload=%q", m.Config, m.Workload)
	}
}

// TestMergeSkipsNilAndSeedsFromFirst: nil parts (skipped or failed
// segments) are ignored, and identity comes from the first non-nil.
func TestMergeSkipsNilAndSeedsFromFirst(t *testing.T) {
	a := &Run{Config: "NAS/NAV", Workload: "099.go", Committed: 5, Cycles: 2}
	b := &Run{Config: "NAS/NAV", Workload: "099.go", Committed: 7, Cycles: 3}
	m := Merge([]*Run{nil, a, nil, b})
	if m.Committed != 12 || m.Cycles != 5 {
		t.Errorf("merged Committed=%d Cycles=%d, want 12 and 5", m.Committed, m.Cycles)
	}
	if m.Config != "NAS/NAV" || m.Workload != "099.go" {
		t.Errorf("identity fields not taken from first non-nil part: %+v", m)
	}
	// IPC of the merge is the ratio of sums, not the mean of ratios.
	if got, want := m.IPC(), 12.0/5.0; got != want {
		t.Errorf("merged IPC = %v, want %v", got, want)
	}
}
