package stats

// Scale returns a copy of r with every raw counter multiplied by w —
// the statistics the machine would have accumulated had it simulated w
// back-to-back copies of the region r covers. Phase-aware sampling uses
// it to let one representative segment stand in for the w segments of
// its cluster before merging: derived metrics of the merged Run stay
// ratios of (now phase-weighted) sums, exactly as Merge documents.
// Identity fields pass through; w must be positive.
func Scale(r *Run, w int64) *Run {
	if r == nil {
		return nil
	}
	s := *r
	s.Cycles *= w
	s.Committed *= w
	s.CommittedLoads *= w
	s.CommittedStores *= w
	s.Misspeculations *= w
	s.SquashedInsts *= w
	s.FalseDepLoads *= w
	s.FalseDepDelay *= w
	s.Branches *= w
	s.BranchMispredicts *= w
	s.DCacheAccesses *= uint64(w)
	s.DCacheMisses *= uint64(w)
	s.ICacheAccesses *= uint64(w)
	s.ICacheMisses *= uint64(w)
	s.Forwards *= w
	s.SyncWaits *= w
	s.Skipped *= w
	s.StallEmpty *= w
	s.StallMem *= w
	s.StallExec *= w
	return &s
}
