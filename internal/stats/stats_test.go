package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDerivedMetrics(t *testing.T) {
	r := Run{
		Cycles: 1000, Committed: 2500,
		CommittedLoads: 500, Misspeculations: 5,
		FalseDepLoads: 100, FalseDepDelay: 1500,
		Branches: 200, BranchMispredicts: 10,
	}
	if got := r.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := r.MisspecRate(); got != 0.01 {
		t.Errorf("misspec = %v", got)
	}
	if got := r.FalseDepRate(); got != 0.2 {
		t.Errorf("FD = %v", got)
	}
	if got := r.FalseDepLatency(); got != 15 {
		t.Errorf("RL = %v", got)
	}
	if got := r.BranchMissRate(); got != 0.05 {
		t.Errorf("bmiss = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var r Run
	if r.IPC() != 0 || r.MisspecRate() != 0 || r.FalseDepRate() != 0 ||
		r.FalseDepLatency() != 0 || r.BranchMissRate() != 0 {
		t.Error("zero-value Run should produce zero metrics, not NaN")
	}
}

func TestSpeedup(t *testing.T) {
	a := Run{Cycles: 100, Committed: 300}
	b := Run{Cycles: 100, Committed: 200}
	if got := a.Speedup(&b); got != 1.5 {
		t.Errorf("speedup = %v", got)
	}
	var zero Run
	if got := a.Speedup(&zero); got != 0 {
		t.Errorf("speedup over zero base = %v", got)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v", got)
	}
}

func TestGeoMeanNonPositiveIsNaN(t *testing.T) {
	// Library code must not panic on corrupt input: a non-positive value
	// yields NaN (plus a logged warning) so callers can see the damage.
	if got := GeoMean([]float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("GeoMean with zero = %v, want NaN", got)
	}
	if got := GeoMean([]float64{2, -3}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("beta", "2")
	tb.Add("alpha", "1")
	out := tb.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "beta") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Error("second line should be the rule")
	}
	tb.SortRows()
	if tb.Rows[0][0] != "alpha" {
		t.Error("SortRows should order by first column")
	}
}

func TestTableRaggedRowsAlign(t *testing.T) {
	// Rows wider than the header used to be crammed into the last header
	// column's width, misaligning every extra column.
	tb := &Table{Header: []string{"name", "v"}}
	tb.Add("a", "1", "extra-wide-cell", "tail")
	tb.Add("b", "2", "x", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), tb.String())
	}
	// Both data rows must place the 4th column at the same offset.
	tail1 := strings.Index(lines[2], "tail")
	tail2 := strings.Index(lines[3], "y")
	if tail1 < 0 || tail1 != tail2 {
		t.Errorf("ragged columns misaligned (%d vs %d):\n%s", tail1, tail2, tb.String())
	}
}

func TestRunString(t *testing.T) {
	r := Run{Config: "NAS/SYNC", Workload: "126.gcc", Cycles: 10, Committed: 25}
	s := r.String()
	if !strings.Contains(s, "NAS/SYNC") || !strings.Contains(s, "126.gcc") ||
		!strings.Contains(s, "2.500") {
		t.Errorf("String() = %q", s)
	}
}
