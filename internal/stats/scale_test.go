package stats

import (
	"reflect"
	"testing"
)

// TestScaleCoversEveryCounter scales by 3 and checks, via reflection
// over the struct, that every numeric field either tripled or is an
// identity field — so a newly added counter cannot silently escape
// phase weighting.
func TestScaleCoversEveryCounter(t *testing.T) {
	src := &Run{Config: "cfg", Workload: "wl"}
	v := reflect.ValueOf(src).Elem()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(i + 1))
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		}
	}
	got := Scale(src, 3)
	if got.Config != "cfg" || got.Workload != "wl" {
		t.Fatal("identity fields must pass through")
	}
	gv := reflect.ValueOf(got).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			if gv.Field(i).Int() != 3*f.Int() {
				t.Errorf("field %s not scaled", typ.Field(i).Name)
			}
		case reflect.Uint64:
			if gv.Field(i).Uint() != 3*f.Uint() {
				t.Errorf("field %s not scaled", typ.Field(i).Name)
			}
		}
	}

	// Scale(x, 1) must be the identity; nil passes through.
	if one := Scale(src, 1); !reflect.DeepEqual(one, src) {
		t.Fatal("Scale by 1 must be the identity")
	}
	if Scale(nil, 2) != nil {
		t.Fatal("Scale(nil) must be nil")
	}
}
