// Package stats collects and reduces simulation statistics. A Run holds
// the raw counters one simulation produces; helpers compute the derived
// metrics the paper reports (IPC, misspeculation rate over committed
// loads, false-dependence ratio and resolution latency) and the
// arithmetic/geometric aggregates used in the paper's summary.
package stats

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
)

// Run is the outcome of a single simulation.
//
// Every exported counter added here must also reach the flat CSV
// schema in internal/experiments (the JSON artifact marshals the whole
// struct and cannot drift): mdlint's statsguard analyzer enforces the
// pairing between this annotation and the //md:statssink functions.
//
//md:statsstruct
type Run struct {
	Config    string // configuration name, e.g. "NAS/SYNC"
	Workload  string // benchmark name, e.g. "126.gcc"
	Cycles    int64
	Committed int64 // committed (retired) instructions

	CommittedLoads  int64
	CommittedStores int64

	// Misspeculations counts memory-order violations that triggered a
	// squash (per the paper: over all committed loads).
	Misspeculations int64
	// SquashedInsts counts instructions thrown away by memory-order
	// squashes (the "work lost" component of the penalty).
	SquashedInsts int64

	// FalseDepLoads counts committed loads that were delayed by at least
	// one false (ambiguous but untrue) dependence; FalseDepDelay is the
	// summed resolution latency in cycles (Table 3's definitions).
	FalseDepLoads int64
	FalseDepDelay int64

	// Branch statistics.
	Branches          int64
	BranchMispredicts int64

	// Memory system statistics.
	DCacheAccesses uint64
	DCacheMisses   uint64
	ICacheAccesses uint64
	ICacheMisses   uint64

	// Forwards counts loads satisfied from the store buffer.
	Forwards int64
	// SyncWaits counts loads delayed by predictor-enforced
	// synchronization (SYNC/SSET) or barriers (SEL/STORE).
	SyncWaits int64

	// Skipped counts instructions fast-forwarded functionally during
	// sampled simulation (not included in Committed or IPC).
	Skipped int64

	// Commit-stall breakdown: cycles in which nothing committed,
	// classified by what the oldest instruction was doing. Together with
	// the committing cycles these sum to Cycles.
	StallEmpty int64 // window empty (fetch starvation: misprediction, I-cache)
	StallMem   int64 // head is a load/store waiting on memory or the policy
	StallExec  int64 // head executing or waiting for operands/FUs
}

// StallBreakdown returns the fraction of cycles with no commit,
// split by cause (empty window / memory / execution).
func (r *Run) StallBreakdown() (empty, mem, exec float64) {
	if r.Cycles == 0 {
		return 0, 0, 0
	}
	c := float64(r.Cycles)
	return float64(r.StallEmpty) / c, float64(r.StallMem) / c, float64(r.StallExec) / c
}

// IPC returns committed instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// MisspecRate returns misspeculations per committed load.
func (r *Run) MisspecRate() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.Misspeculations) / float64(r.CommittedLoads)
}

// FalseDepRate returns the fraction of committed loads delayed by false
// dependences (Table 3 "FD").
func (r *Run) FalseDepRate() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.FalseDepLoads) / float64(r.CommittedLoads)
}

// FalseDepLatency returns the average false-dependence resolution
// latency in cycles (Table 3 "RL").
func (r *Run) FalseDepLatency() float64 {
	if r.FalseDepLoads == 0 {
		return 0
	}
	return float64(r.FalseDepDelay) / float64(r.FalseDepLoads)
}

// BranchMissRate returns mispredictions per executed branch.
func (r *Run) BranchMissRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.BranchMispredicts) / float64(r.Branches)
}

// String renders a one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("%-12s %-12s IPC=%.3f cycles=%d insts=%d misspec=%.4f%% bmiss=%.2f%%",
		r.Workload, r.Config, r.IPC(), r.Cycles, r.Committed,
		100*r.MisspecRate(), 100*r.BranchMissRate())
}

// Speedup returns the relative performance of r over base as a ratio of
// IPCs (1.0 = parity).
func (r *Run) Speedup(base *Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input). A
// non-positive value indicates a bug upstream; rather than panicking in
// library code, GeoMean logs a warning and returns NaN so the corrupt
// aggregate is visible but survivable.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			log.Printf("stats: GeoMean of non-positive value %v (returning NaN)", x)
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table formats rows of (label, columns...) with aligned columns; a
// minimal fixed-width renderer for the experiment CLIs.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cols ...string) { t.Rows = append(t.Rows, cols) }

// String renders the table. Rows may be ragged: columns beyond the
// header still get their own measured width instead of being crammed
// into the last header column's width.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRows sorts the table rows by the first column.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}
