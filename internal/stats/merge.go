package stats

// Merge combines per-segment Runs — in segment order — into one Run, as
// if the segments had been simulated back to back on one machine. Every
// raw counter is summed; Config and Workload are taken from the first
// part (the interval-parallel engine runs all segments under one
// configuration, so they agree by construction).
//
// Derived metrics of the merged Run are therefore ratios of sums:
// IPC = ΣCommitted/ΣCycles weights every segment by the cycles it
// simulated, and MisspecRate = ΣMisspeculations/ΣCommittedLoads weights
// by committed loads — the same totals a single serial pass over the
// whole stream would have accumulated, not an unweighted average of
// per-segment ratios.
//
// Merge is deterministic in its input order: the interval-parallel
// engine always passes segments in stream order regardless of which
// worker finished first, which is half of its bit-identical-results
// argument (the other half is that each segment's simulation depends
// only on the shared recording and the segment bounds).
func Merge(parts []*Run) *Run {
	var m Run
	seeded := false
	for _, p := range parts {
		if p == nil {
			continue
		}
		if !seeded {
			m.Config, m.Workload = p.Config, p.Workload
			seeded = true
		}
		m.Cycles += p.Cycles
		m.Committed += p.Committed
		m.CommittedLoads += p.CommittedLoads
		m.CommittedStores += p.CommittedStores
		m.Misspeculations += p.Misspeculations
		m.SquashedInsts += p.SquashedInsts
		m.FalseDepLoads += p.FalseDepLoads
		m.FalseDepDelay += p.FalseDepDelay
		m.Branches += p.Branches
		m.BranchMispredicts += p.BranchMispredicts
		m.DCacheAccesses += p.DCacheAccesses
		m.DCacheMisses += p.DCacheMisses
		m.ICacheAccesses += p.ICacheAccesses
		m.ICacheMisses += p.ICacheMisses
		m.Forwards += p.Forwards
		m.SyncWaits += p.SyncWaits
		m.Skipped += p.Skipped
		m.StallEmpty += p.StallEmpty
		m.StallMem += p.StallMem
		m.StallExec += p.StallExec
	}
	return &m
}
