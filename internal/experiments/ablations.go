package experiments

import (
	"context"
	"fmt"
	"strings"

	"mdspec/internal/bpred"
	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// ablationBenches is the default subset for the (expensive) sweeps: two
// high-misspeculation programs, one pointer-chaser, one streaming FP
// code.
var ablationBenches = []string{"129.compress", "104.hydro2d", "130.li", "102.swim"}

func (o Options) ablationSet() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return ablationBenches
}

// MDPTSizeRow reports SYNC performance and misspeculation against MDPT
// capacity (the paper fixes 4K entries; this sweep shows the sensitivity).
type MDPTSizeRow struct {
	Entries  int
	Bench    string
	IPC      float64
	Misspec  float64
	RelToNav float64
}

// AblationMDPTSize sweeps the MDPT size for NAS/SYNC.
func AblationMDPTSize(ctx context.Context, r *Runner) ([]MDPTSizeRow, error) {
	benches := r.opt.ablationSet()
	sizes := []int{256, 1024, 4096, 16384}
	var cfgs []config.Machine
	for _, s := range sizes {
		c := nas(config.Sync)
		c.PredictorTable.Entries = s
		cfgs = append(cfgs, c)
	}
	cfgs = append(cfgs, nas(config.Naive))
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	var rows []MDPTSizeRow
	for _, b := range benches {
		nv, err := r.Run(ctx, b, nas(config.Naive))
		if err != nil {
			return nil, err
		}
		for _, s := range sizes {
			c := nas(config.Sync)
			c.PredictorTable.Entries = s
			res, err := r.Run(ctx, b, c)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MDPTSizeRow{Entries: s, Bench: b, IPC: res.IPC(),
				Misspec: res.MisspecRate(), RelToNav: res.IPC()/nv.IPC() - 1})
		}
	}
	return rows, nil
}

// RenderMDPTSize formats the MDPT sweep.
func RenderMDPTSize(rows []MDPTSizeRow) string {
	t := &stats.Table{Header: []string{"bench", "entries", "IPC", "misspec", "vs NAV"}}
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprintf("%d", r.Entries), f3(r.IPC), pct2(r.Misspec), pct(r.RelToNav))
	}
	return "Ablation: MDPT size sweep for NAS/SYNC (paper uses 4K, 2-way)\n" + t.String()
}

// FlushRow reports SYNC sensitivity to the predictor flush interval
// (the paper flushes every one million cycles, after [4]).
type FlushRow struct {
	Interval int64
	Bench    string
	IPC      float64
	Misspec  float64
}

// AblationFlush sweeps the MDPT flush interval.
func AblationFlush(ctx context.Context, r *Runner) ([]FlushRow, error) {
	benches := r.opt.ablationSet()
	intervals := []int64{10_000, 100_000, 1_000_000, 0} // 0 = never flush
	var cfgs []config.Machine
	for _, iv := range intervals {
		c := nas(config.Sync)
		c.PredictorTable.FlushInterval = iv
		cfgs = append(cfgs, c)
	}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	var rows []FlushRow
	for _, b := range benches {
		for _, iv := range intervals {
			c := nas(config.Sync)
			c.PredictorTable.FlushInterval = iv
			res, err := r.Run(ctx, b, c)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FlushRow{Interval: iv, Bench: b, IPC: res.IPC(), Misspec: res.MisspecRate()})
		}
	}
	return rows, nil
}

// RenderFlush formats the flush-interval sweep.
func RenderFlush(rows []FlushRow) string {
	t := &stats.Table{Header: []string{"bench", "flush interval", "IPC", "misspec"}}
	for _, r := range rows {
		iv := "never"
		if r.Interval > 0 {
			iv = fmt.Sprintf("%d", r.Interval)
		}
		t.Add(r.Bench, iv, f3(r.IPC), pct2(r.Misspec))
	}
	return "Ablation: MDPT flush-interval sweep for NAS/SYNC (paper: 1M cycles)\n" + t.String()
}

// WindowRow reports how the policy gap scales with window size — the
// paper's §3.2 observation that load/store parallelism matters more as
// the window grows.
type WindowRow struct {
	Window int
	Bench  string
	NO     float64
	Naive  float64
	Sync   float64
	Oracle float64
}

// AblationWindow sweeps the instruction window from 32 to 256 entries.
func AblationWindow(ctx context.Context, r *Runner) ([]WindowRow, error) {
	benches := r.opt.ablationSet()
	windows := []int{32, 64, 128, 256}
	policies := []config.Policy{config.NoSpec, config.Naive, config.Sync, config.Oracle}
	var cfgs []config.Machine
	for _, w := range windows {
		for _, pol := range policies {
			c := nas(pol)
			c.Window = w
			cfgs = append(cfgs, c)
		}
	}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	var rows []WindowRow
	for _, b := range benches {
		for _, w := range windows {
			row := WindowRow{Window: w, Bench: b}
			get := func(pol config.Policy) float64 {
				c := nas(pol)
				c.Window = w
				res, err := r.Run(ctx, b, c)
				if err != nil {
					return 0
				}
				return res.IPC()
			}
			row.NO, row.Naive, row.Sync, row.Oracle =
				get(config.NoSpec), get(config.Naive), get(config.Sync), get(config.Oracle)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderWindow formats the window sweep.
func RenderWindow(rows []WindowRow) string {
	t := &stats.Table{Header: []string{"bench", "window", "NO", "NAV", "SYNC", "ORACLE", "ORACLE/NO"}}
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprintf("%d", r.Window), f3(r.NO), f3(r.Naive), f3(r.Sync), f3(r.Oracle),
			pct(r.Oracle/r.NO-1))
	}
	return "Ablation: window-size sweep (the §3.2 claim that parallelism matters more with bigger windows)\n" + t.String()
}

// StoreSetRow compares the store-set predictor (reference [4]) against
// the paper's MDPT speculation/synchronization.
type StoreSetRow struct {
	Bench           string
	SyncIPC         float64
	StoreSetIPC     float64
	SyncMisspec     float64
	StoreSetMisspec float64
}

// AblationStoreSets runs the store-set extension.
func AblationStoreSets(ctx context.Context, r *Runner) ([]StoreSetRow, error) {
	benches := r.opt.ablationSet()
	if err := r.prefetch(ctx, benches, nas(config.Sync), nas(config.StoreSets)); err != nil {
		return nil, err
	}
	var rows []StoreSetRow
	for _, b := range benches {
		sy, err := r.Run(ctx, b, nas(config.Sync))
		if err != nil {
			return nil, err
		}
		ss, err := r.Run(ctx, b, nas(config.StoreSets))
		if err != nil {
			return nil, err
		}
		rows = append(rows, StoreSetRow{Bench: b, SyncIPC: sy.IPC(), StoreSetIPC: ss.IPC(),
			SyncMisspec: sy.MisspecRate(), StoreSetMisspec: ss.MisspecRate()})
	}
	return rows, nil
}

// RenderStoreSets formats the store-set comparison.
func RenderStoreSets(rows []StoreSetRow) string {
	t := &stats.Table{Header: []string{"bench", "SYNC IPC", "SSET IPC", "SYNC misspec", "SSET misspec"}}
	for _, r := range rows {
		t.Add(r.Bench, f3(r.SyncIPC), f3(r.StoreSetIPC), pct2(r.SyncMisspec), pct2(r.StoreSetMisspec))
	}
	var b strings.Builder
	b.WriteString("Ablation: store-set predictor (Chrysos & Emer, the paper's [4]) vs MDPT speculation/synchronization\n")
	b.WriteString(t.String())
	return b.String()
}

// RecoveryRow compares squash invalidation against selective
// invalidation (§2's "minimize the amount of work lost" alternative)
// under naive speculation.
type RecoveryRow struct {
	Bench           string
	SquashIPC       float64
	SelectiveIPC    float64
	SquashWorkLost  float64 // squashed instructions per misspeculation
	SelectiveRedone float64 // re-executed instructions per misspeculation
}

// AblationRecovery runs the recovery-mechanism comparison.
func AblationRecovery(ctx context.Context, r *Runner) ([]RecoveryRow, error) {
	benches := r.opt.ablationSet()
	sq := nas(config.Naive)
	sel := nas(config.Naive).WithRecovery(config.RecoverySelective)
	if err := r.prefetch(ctx, benches, sq, sel); err != nil {
		return nil, err
	}
	var rows []RecoveryRow
	for _, b := range benches {
		a, err := r.Run(ctx, b, sq)
		if err != nil {
			return nil, err
		}
		c, err := r.Run(ctx, b, sel)
		if err != nil {
			return nil, err
		}
		perViol := func(work, viol int64) float64 {
			if viol == 0 {
				return 0
			}
			return float64(work) / float64(viol)
		}
		rows = append(rows, RecoveryRow{
			Bench:           b,
			SquashIPC:       a.IPC(),
			SelectiveIPC:    c.IPC(),
			SquashWorkLost:  perViol(a.SquashedInsts, a.Misspeculations),
			SelectiveRedone: perViol(c.SquashedInsts, c.Misspeculations),
		})
	}
	return rows, nil
}

// RenderRecovery formats the recovery comparison.
func RenderRecovery(rows []RecoveryRow) string {
	t := &stats.Table{Header: []string{"bench", "squash IPC", "selinv IPC", "gain",
		"lost/violation (squash)", "redone/violation (selinv)"}}
	for _, r := range rows {
		t.Add(r.Bench, f3(r.SquashIPC), f3(r.SelectiveIPC), pct(r.SelectiveIPC/r.SquashIPC-1),
			fmt.Sprintf("%.1f", r.SquashWorkLost), fmt.Sprintf("%.1f", r.SelectiveRedone))
	}
	return "Ablation: squash vs selective invalidation under NAS/NAV (paper §2's recovery alternatives)\n" + t.String()
}

// BPredRow reports sensitivity of the policy comparison to the branch
// predictor: misprediction stalls gate how much load/store parallelism
// is exposed at all.
type BPredRow struct {
	Bench     string
	Kind      string
	IPC       float64
	BMissRate float64
	OracleRel float64 // NAS/ORACLE over NAS/NO under this predictor
}

// AblationBPred sweeps the direction predictor (combined / gshare /
// bimodal / static-taken) and reports the oracle-over-no-speculation
// gain under each.
func AblationBPred(ctx context.Context, r *Runner) ([]BPredRow, error) {
	benches := r.opt.ablationSet()
	kinds := []bpred.Kind{bpred.Combined, bpred.GShare, bpred.Bimodal, bpred.StaticTaken}
	var cfgs []config.Machine
	for _, k := range kinds {
		no := nas(config.NoSpec)
		no.BranchPredictor = k
		or := nas(config.Oracle)
		or.BranchPredictor = k
		cfgs = append(cfgs, no, or)
	}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	var rows []BPredRow
	for _, b := range benches {
		for _, k := range kinds {
			no := nas(config.NoSpec)
			no.BranchPredictor = k
			or := nas(config.Oracle)
			or.BranchPredictor = k
			rn, err := r.Run(ctx, b, no)
			if err != nil {
				return nil, err
			}
			ro, err := r.Run(ctx, b, or)
			if err != nil {
				return nil, err
			}
			rows = append(rows, BPredRow{
				Bench: b, Kind: k.String(), IPC: ro.IPC(),
				BMissRate: ro.BranchMissRate(),
				OracleRel: ro.IPC()/rn.IPC() - 1,
			})
		}
	}
	return rows, nil
}

// RenderBPred formats the branch-predictor sweep.
func RenderBPred(rows []BPredRow) string {
	t := &stats.Table{Header: []string{"bench", "predictor", "ORACLE IPC", "branch miss", "ORACLE vs NO"}}
	for _, r := range rows {
		t.Add(r.Bench, r.Kind, f3(r.IPC), fmt.Sprintf("%.1f%%", 100*r.BMissRate), pct(r.OracleRel))
	}
	return "Ablation: branch-predictor sensitivity (Table 2 uses the McFarling combined predictor)\n" + t.String()
}
