//go:build mdfault

package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/faultinject"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

// TestInjectedJobPanicRetried: a seeded panic at the runner.job site is
// recovered into a *RunPanicError and retried; with the plan one-shot,
// the retry succeeds and the cell's record shows the extra attempt.
func TestInjectedJobPanicRetried(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 3}})
	r.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 2, Committed: 1}, nil
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteRunnerJob, N: 1, Kind: faultinject.KindPanic,
	})
	defer faultinject.Disarm()

	var sawPanic bool
	r.opt.Hooks.JobRetried = func(bench, cfg string, attempt int, err error) {
		var pe *RunPanicError
		if errors.As(err, &pe) {
			if _, ok := pe.Value.(*faultinject.InjectedPanic); ok {
				sawPanic = true
			}
		}
	}

	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatalf("retry should absorb the one-shot injected panic: %v", err)
	}
	if res == nil || !sawPanic {
		t.Fatalf("res=%v sawPanic=%v, want a result after retrying the injected panic", res, sawPanic)
	}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Attempts != 2 {
		t.Errorf("record = %+v, want Attempts=2 (injected panic + clean retry)", recs[0])
	}
}

// TestInjectedJournalAppendError: a seeded error at the journal.append
// site must not fail the cell or the sweep — it surfaces through
// JournalErr as degraded resumability, and the journal skips only the
// poisoned entry.
func TestInjectedJournalAppendError(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}
	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	opt.Journal = j

	r := NewRunner(opt)
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 2, Committed: 1}, nil
	}

	// Arm after the journal's init so its meta append is untouched;
	// counting starts at Arm, so N=1 fires on the next run's append.
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteJournalAppend, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil {
		t.Fatalf("journal failure must not fail the cell: %v", err)
	}
	if _, err := r.Run(bg, "126.gcc", nas(config.Sync)); err != nil {
		t.Fatal(err)
	}

	jerr := r.JournalErr()
	var inj *faultinject.InjectedError
	if jerr == nil || !errors.As(jerr, &inj) {
		t.Fatalf("JournalErr = %v, want the injected append error", jerr)
	}

	// The first cell's entry was lost (degraded resumability); the
	// second was journaled normally.
	j.Close()
	_, recs, err := OpenJournal(dir, Options{Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Config != "NAS/SYNC" {
		t.Fatalf("journal replayed %+v, want only the NAS/SYNC cell", recs)
	}
}

// faultCkptOpt mirrors ckptOpt from ckpt_test.go with a RecordingDir,
// at a geometry small enough for tagged CI runs.
func faultCkptOpt(dir string) Options {
	o := ckptOpt()
	o.RecordingDir = dir
	return o
}

// TestInjectedCkptWriteError: a seeded error at the ckpt.write site
// must not fail the cell — the sweep runs on the in-memory set, no
// file is published, and a later healthy runner re-captures it.
func TestInjectedCkptWriteError(t *testing.T) {
	const bench = "129.compress"
	cfg := nas(config.Sync)

	// Ground truth from an in-memory (never-written) checkpointed run.
	want, err := NewRunner(ckptOpt()).Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteCkptWrite, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	r := NewRunner(faultCkptOpt(dir))
	defer r.Close()
	got, err := r.Run(bg, bench, cfg)
	if err != nil {
		t.Fatalf("ckpt.write fault must not fail the cell: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("stats under a ckpt.write fault differ from the clean run")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.mdckpt")); len(files) != 0 {
		t.Errorf("failed checkpoint write still published %v", files)
	}

	// A healthy runner over the same directory captures the file.
	faultinject.Disarm()
	h := NewRunner(faultCkptOpt(dir))
	defer h.Close()
	if _, err := h.Run(bg, bench, cfg); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.mdckpt")); len(files) != 1 {
		t.Errorf("healthy runner did not re-capture the checkpoint file, got %v", files)
	}
}

// TestInjectedCkptLoadError: a seeded error at the ckpt.load site must
// fall back to functional fast-forward with bit-identical statistics,
// and the (actually healthy) file is re-captured in place.
func TestInjectedCkptLoadError(t *testing.T) {
	const bench = "129.compress"
	cfg := nas(config.Sync)
	dir := t.TempDir()

	seed := NewRunner(faultCkptOpt(dir))
	defer seed.Close()
	want, err := seed.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.mdckpt"))
	if len(files) != 1 {
		t.Fatalf("seed runner published %v, want one checkpoint file", files)
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteCkptLoad, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	r := NewRunner(faultCkptOpt(dir))
	defer r.Close()
	got, err := r.Run(bg, bench, cfg)
	if err != nil {
		t.Fatalf("ckpt.load fault must not fail the cell: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("stats under a ckpt.load fault differ — the fallback changed results")
	}
	c := r.Counters()
	if c.CheckpointMisses != 1 || c.CheckpointHits != 0 {
		t.Errorf("counters = %+v, want the load fault counted as a re-capture miss", c)
	}

	// The re-captured file is valid for the next runner.
	faultinject.Disarm()
	h := NewRunner(faultCkptOpt(dir))
	defer h.Close()
	if _, err := h.Run(bg, bench, cfg); err != nil {
		t.Fatal(err)
	}
	if hc := h.Counters(); hc.CheckpointHits != 1 || hc.CheckpointMisses != 0 {
		t.Errorf("counters after re-capture = %+v, want a clean hit", hc)
	}
}
