//go:build mdfault

package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/faultinject"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

// TestInjectedJobPanicRetried: a seeded panic at the runner.job site is
// recovered into a *RunPanicError and retried; with the plan one-shot,
// the retry succeeds and the cell's record shows the extra attempt.
func TestInjectedJobPanicRetried(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 3}})
	r.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 2, Committed: 1}, nil
	}

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteRunnerJob, N: 1, Kind: faultinject.KindPanic,
	})
	defer faultinject.Disarm()

	var sawPanic bool
	r.opt.Hooks.JobRetried = func(bench, cfg string, attempt int, err error) {
		var pe *RunPanicError
		if errors.As(err, &pe) {
			if _, ok := pe.Value.(*faultinject.InjectedPanic); ok {
				sawPanic = true
			}
		}
	}

	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatalf("retry should absorb the one-shot injected panic: %v", err)
	}
	if res == nil || !sawPanic {
		t.Fatalf("res=%v sawPanic=%v, want a result after retrying the injected panic", res, sawPanic)
	}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Attempts != 2 {
		t.Errorf("record = %+v, want Attempts=2 (injected panic + clean retry)", recs[0])
	}
}

// TestInjectedJournalAppendError: a seeded error at the journal.append
// site must not fail the cell or the sweep — it surfaces through
// JournalErr as degraded resumability, and the journal skips only the
// poisoned entry.
func TestInjectedJournalAppendError(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}
	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	opt.Journal = j

	r := NewRunner(opt)
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 2, Committed: 1}, nil
	}

	// Arm after the journal's init so its meta append is untouched;
	// counting starts at Arm, so N=1 fires on the next run's append.
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteJournalAppend, N: 1, Kind: faultinject.KindError,
	})
	defer faultinject.Disarm()

	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil {
		t.Fatalf("journal failure must not fail the cell: %v", err)
	}
	if _, err := r.Run(bg, "126.gcc", nas(config.Sync)); err != nil {
		t.Fatal(err)
	}

	jerr := r.JournalErr()
	var inj *faultinject.InjectedError
	if jerr == nil || !errors.As(jerr, &inj) {
		t.Fatalf("JournalErr = %v, want the injected append error", jerr)
	}

	// The first cell's entry was lost (degraded resumability); the
	// second was journaled normally.
	j.Close()
	_, recs, err := OpenJournal(dir, Options{Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Config != "NAS/SYNC" {
		t.Fatalf("journal replayed %+v, want only the NAS/SYNC cell", recs)
	}
}
