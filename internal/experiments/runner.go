// Package experiments reproduces every table and figure of the paper's
// evaluation (§3) over the synthetic SPEC'95-analog suite, plus the §4
// summary averages and a set of ablation studies. Each experiment
// returns typed rows and has a paper-style text renderer; cmd/mdexp and
// the repository's benchmarks drive them.
//
// The Runner at the center of the package is an instrumented execution
// layer: it memoizes (benchmark, configuration) simulations with
// singleflight semantics, honors context cancellation, aggregates every
// job failure of a sweep instead of dropping all but one, records
// per-run provenance (config name and hash, instruction budget, wall
// time) for the artifact layer, and exposes progress hooks plus atomic
// counters for live observability.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mdspec/internal/ckpt"
	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/faultinject"
	"mdspec/internal/parsim"
	"mdspec/internal/prog"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

// Options controls experiment scale.
type Options struct {
	// Insts is the number of committed instructions simulated per
	// (benchmark, configuration) pair.
	Insts int64
	// Benchmarks restricts the suite (default: all 18 of Table 1).
	Benchmarks []string
	// Parallel bounds concurrent simulations (default: GOMAXPROCS).
	// Sampled runs draw their segment workers from the same budget, so a
	// sweep never oversubscribes it.
	Parallel int
	// Sampled switches every simulation from full timing to the paper's
	// sampled methodology (§3.1), executed interval-parallel: Insts
	// becomes the committed-instruction budget summed over the timing
	// windows. Split-window configurations do not support sampling and
	// fall back to full timing runs.
	Sampled bool
	// TimingWindow and FunctionalWindow size one sampling period when
	// Sampled is set (defaults 5_000 and 2*TimingWindow — the paper's 1:2
	// timing:functional ratio).
	TimingWindow     int64
	FunctionalWindow int64
	// SegmentPeriods is the interval-parallel segment size in sampling
	// periods (default parsim.DefaultSegmentPeriods). It fixes the
	// decomposition, so results are independent of Parallel.
	SegmentPeriods int
	// PhaseSampled narrows a sampled sweep to phase-representative
	// segments: each benchmark's segments are summarized by basic-block
	// vectors, clustered into Phases groups with deterministic seeded
	// k-means, and only one representative per cluster is simulated, its
	// statistics weighted by the cluster population (SimPoint-style).
	// Requires Sampled; full-timing and split-window cells are
	// unaffected.
	PhaseSampled bool
	// Phases is the phase cluster count (default DefaultPhases). It
	// bounds, not fixes, how many segments per benchmark are simulated —
	// benchmarks with fewer segments than Phases run them all.
	Phases int
	// Retry bounds how often a cell whose simulation fails transiently
	// (worker panic, watchdog deadlock report) is re-attempted before
	// the sweep degrades. The zero value selects retry.Default; the
	// budget is counted in attempts, and the backoff schedule is a pure
	// function of the attempt number.
	Retry retry.Policy
	// RecordingDir, when set, caches each benchmark's columnar recording
	// on disk (<bench>.mdrec): a valid file is mmapped read-only, so
	// concurrent sweep processes share one physical copy per benchmark
	// through the page cache; a missing or damaged file is re-captured
	// and rewritten atomically. Unset keeps recordings in memory.
	RecordingDir string
	// Journal, when set, is the sweep's crash-safe checkpoint store:
	// every completed run is appended (and fsynced) as it finishes, and
	// cells primed from a replayed journal are served from the memo
	// cache without re-simulation. Open one with OpenJournal and seed
	// the runner with Prime.
	Journal *Journal
	// Hooks receives progress callbacks (all fields optional).
	Hooks Hooks
}

// DefaultOptions runs the full suite at a laptop-friendly budget.
func DefaultOptions() Options {
	return Options{Insts: 150_000}
}

// DefaultPhases is the default phase cluster count for PhaseSampled
// sweeps.
const DefaultPhases = 8

// phaseSeed fixes the k-means initialization so phase plans — and the
// sweep results built on them — are reproducible across processes.
const phaseSeed = 0x6d647370

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) timingWindow() int64 {
	if o.TimingWindow > 0 {
		return o.TimingWindow
	}
	return 5_000
}

func (o Options) functionalWindow() int64 {
	if o.FunctionalWindow > 0 {
		return o.FunctionalWindow
	}
	return 2 * o.timingWindow()
}

func (o Options) segmentPeriods() int {
	if o.SegmentPeriods > 0 {
		return o.SegmentPeriods
	}
	return parsim.DefaultSegmentPeriods
}

func (o Options) phases() int {
	if o.Phases > 0 {
		return o.Phases
	}
	return DefaultPhases
}

// checkpointSeqs is the warm-state checkpoint schedule these options
// induce: one frame at each interval-parallel segment's warm-up start,
// so a resumed segment fast-forwards zero residue. parsim defaults the
// warm-up length to the timing window.
func (o Options) checkpointSeqs() []int64 {
	return ckpt.Positions(o.Insts, o.timingWindow(), o.functionalWindow(),
		int64(o.segmentPeriods()), o.timingWindow())
}

// Hooks are optional progress callbacks a Runner invokes around each
// simulation. Callbacks may fire concurrently from sweep workers and
// must be safe for concurrent use. Configuration identity is passed as
// the paper-style name (e.g. "NAS/SYNC").
type Hooks struct {
	// JobStarted fires when a simulation actually begins (cache misses
	// only; deduplicated and memoized calls never start a job).
	JobStarted func(bench, cfg string)
	// JobFinished fires when a simulation completes, with its wall time
	// and error (nil on success).
	JobFinished func(bench, cfg string, d time.Duration, err error)
	// CacheHit fires when a Run call is satisfied from the memo cache or
	// joins an in-flight duplicate simulation.
	CacheHit func(bench, cfg string)
	// JobRetried fires when a transiently-failed simulation is about to
	// be re-attempted; attempt is the 1-based attempt that just failed
	// with err.
	JobRetried func(bench, cfg string, attempt int, err error)
}

// Counters is a snapshot of a Runner's lifetime metrics.
type Counters struct {
	JobsStarted  int64 `json:"jobs_started"`
	JobsFinished int64 `json:"jobs_finished"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsRetried  int64 `json:"jobs_retried"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	// Replayed counts cells served from a resumed journal instead of
	// being re-simulated.
	Replayed int64 `json:"replayed"`
	// RecordingHits/Misses/Bytes track the on-disk recording cache
	// (RecordingDir): a hit reuses an existing .mdrec file, a miss
	// captures and rewrites it, and bytes counts data served from or
	// published to disk.
	RecordingHits   int64 `json:"recording_hits"`
	RecordingMisses int64 `json:"recording_misses"`
	RecordingBytes  int64 `json:"recording_bytes"`
	// CheckpointHits/Misses/Bytes track the warmed-state checkpoint
	// cache the same way: a hit reopens a valid .mdckpt file, a miss
	// re-captures the warm state with a functional pass (and rewrites
	// the file when RecordingDir is set).
	CheckpointHits   int64 `json:"checkpoint_hits"`
	CheckpointMisses int64 `json:"checkpoint_misses"`
	CheckpointBytes  int64 `json:"checkpoint_bytes"`
	// SimSeconds is the summed wall time of all finished simulations
	// (CPU-parallel, so it exceeds elapsed time on multicore sweeps).
	SimSeconds float64 `json:"sim_seconds"`
}

// Runner executes and memoizes simulations: most experiments share
// baseline configurations, so each (benchmark, config) pair runs once,
// even under concurrent callers (singleflight).
type Runner struct {
	opt Options

	mu         sync.Mutex
	progs      map[string]*prog.Program          //md:guardedby mu
	recs       map[string]emu.ReplaySource       //md:guardedby mu
	cache      map[runKey]*stats.Run             //md:guardedby mu
	hashes     map[config.Machine]string         //md:guardedby mu
	inflight   map[runKey]*call                  //md:guardedby mu
	ckpts      map[ckptKey]*ckpt.Set             //md:guardedby mu
	ckptBusy   map[ckptKey]chan struct{}         //md:guardedby mu
	plans      map[string][]ckpt.WeightedSegment //md:guardedby mu
	planBusy   map[string]chan struct{}          //md:guardedby mu
	records    []RunRecord                       //md:guardedby mu
	recordIdx  map[runKeyID]int                  //md:guardedby mu
	primed     map[runKeyID]RunRecord            //md:guardedby mu
	abandoned  []AbandonedCell                   //md:guardedby mu
	abandonSet map[runKeyID]bool                 //md:guardedby mu
	journalErr error                             //md:guardedby mu

	jobsStarted  atomic.Int64
	jobsFinished atomic.Int64
	jobsFailed   atomic.Int64
	jobsRetried  atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	replayed     atomic.Int64
	recHits      atomic.Int64
	recMisses    atomic.Int64
	recBytes     atomic.Int64
	ckptHits     atomic.Int64
	ckptMisses   atomic.Int64
	ckptBytes    atomic.Int64
	simNanos     atomic.Int64

	// sem is the runner's parallelism budget, shared between sweep jobs
	// and (for sampled runs) each job's interval-parallel segment
	// workers: a job holds one token while it simulates, and parsim takes
	// extra tokens only when they are free, so the two levels together
	// never exceed Options.Parallel.
	sem parsim.Sem

	// sim is the simulation implementation; tests substitute stubs to
	// exercise singleflight, cancellation and error aggregation without
	// paying for real simulations. simSerial is the graceful-degradation
	// backend: the serial sampled run a cell falls back to when the
	// interval-parallel engine keeps failing transiently.
	sim       func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error)
	simSerial func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error)

	// sleep waits out a retry backoff (tests substitute an instant
	// stub); the schedule itself is deterministic, see internal/retry.
	sleep func(ctx context.Context, d time.Duration) error
}

type runKey struct {
	bench string
	cfg   config.Machine
}

// ckptKey identifies one warmed-state checkpoint set: functional
// warming sees only the warm configuration class, so every policy
// ablation of a sweep shares one set per benchmark.
type ckptKey struct {
	bench string
	warm  ckpt.WarmConfig
}

// call is an in-flight simulation that duplicate requests wait on.
type call struct {
	done chan struct{}
	res  *stats.Run
	err  error
}

// NewRunner returns a Runner with the given options.
func NewRunner(opt Options) *Runner {
	if opt.Insts <= 0 {
		opt.Insts = DefaultOptions().Insts
	}
	r := &Runner{
		opt:        opt,
		progs:      make(map[string]*prog.Program),
		recs:       make(map[string]emu.ReplaySource),
		cache:      make(map[runKey]*stats.Run),
		hashes:     make(map[config.Machine]string),
		inflight:   make(map[runKey]*call),
		ckpts:      make(map[ckptKey]*ckpt.Set),
		ckptBusy:   make(map[ckptKey]chan struct{}),
		plans:      make(map[string][]ckpt.WeightedSegment),
		planBusy:   make(map[string]chan struct{}),
		recordIdx:  make(map[runKeyID]int),
		primed:     make(map[runKeyID]RunRecord),
		abandonSet: make(map[runKeyID]bool),
		sem:        parsim.NewSem(opt.parallel()),
	}
	r.sim = r.simulate
	r.simSerial = r.simulateSerialSampled
	r.sleep = func(ctx context.Context, d time.Duration) error {
		if d <= 0 {
			return ctx.Err()
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return r
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opt }

// Counters returns a snapshot of the runner's lifetime metrics.
func (r *Runner) Counters() Counters {
	return Counters{
		JobsStarted:      r.jobsStarted.Load(),
		JobsFinished:     r.jobsFinished.Load(),
		JobsFailed:       r.jobsFailed.Load(),
		JobsRetried:      r.jobsRetried.Load(),
		CacheHits:        r.cacheHits.Load(),
		CacheMisses:      r.cacheMisses.Load(),
		Replayed:         r.replayed.Load(),
		RecordingHits:    r.recHits.Load(),
		RecordingMisses:  r.recMisses.Load(),
		RecordingBytes:   r.recBytes.Load(),
		CheckpointHits:   r.ckptHits.Load(),
		CheckpointMisses: r.ckptMisses.Load(),
		CheckpointBytes:  r.ckptBytes.Load(),
		SimSeconds:       time.Duration(r.simNanos.Load()).Seconds(),
	}
}

// Abandoned returns a copy of the cells this runner gave up on after
// exhausting retries (and, for sampled cells, the serial fallback).
// They are the partial-results envelope's "what is missing" list.
func (r *Runner) Abandoned() []AbandonedCell {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AbandonedCell(nil), r.abandoned...)
}

// JournalErr reports the first journal-append failure, if any. A
// failing journal degrades the sweep's resumability, never the sweep
// itself, so the error is surfaced here instead of failing Run.
func (r *Runner) JournalErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journalErr
}

// Prime seeds the memo cache with runs replayed from a journal: a
// primed cell is served without re-simulation, appears in Records (with
// its original provenance), and is not re-journaled. Entries from a
// different runner version or instruction budget are skipped — they
// belong to a sweep whose cells are not this sweep's cells. Returns how
// many records were accepted.
func (r *Runner) Prime(recs []RunRecord) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rec := range recs {
		if rec.Runner != RunnerVersion || rec.Insts != r.opt.Insts || rec.Stats == nil {
			continue
		}
		r.primed[runKeyID{rec.Bench, rec.ConfigHash}] = rec
		n++
	}
	return n
}

// Records returns a copy of the provenance records of every simulation
// this runner has executed (cache hits do not add records).
func (r *Runner) Records() []RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RunRecord(nil), r.records...)
}

// Record returns the provenance record of a completed (bench, config)
// cell — executed or replayed by this runner — so a service response
// can carry the cell's true wall time, attempts, and fallback marker
// rather than a reconstruction. The second result is false while the
// cell has not finished successfully.
func (r *Runner) Record(bench string, cfg config.Machine) (RunRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.recordIdx[runKeyID{bench, r.cfgHashLocked(cfg)}]
	if !ok {
		return RunRecord{}, false
	}
	return r.records[i], true
}

func (r *Runner) program(bench string) (*prog.Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.progs[bench]; ok {
		return p, nil
	}
	p, err := workload.Build(bench)
	if err != nil {
		return nil, err
	}
	r.progs[bench] = p
	return p, nil
}

// recording returns the shared dynamic-instruction replay source for
// bench, creating it on first use. Every configuration of a sweep
// replays the same recording, so the architectural stream is emulated
// exactly once per benchmark regardless of how many configurations run
// over it. With RecordingDir set, the recording additionally persists
// across processes as an mmapped column file.
func (r *Runner) recording(bench string) (emu.ReplaySource, error) {
	p, err := r.program(bench)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := r.recs[bench]; ok {
		return rec, nil
	}
	var src emu.ReplaySource
	if r.opt.RecordingDir != "" {
		src = r.fileRecording(bench, p)
	} else {
		src = emu.NewRecording(emu.New(p))
	}
	r.recs[bench] = src
	return src, nil
}

// fileRecording serves bench from the RecordingDir cache: an existing
// valid file is mmapped; otherwise the program is captured once, the
// file written atomically (temp + rename, safe against concurrent
// writers and crashes), and reopened mapped. Every failure path falls
// back to a live in-memory recording — the disk cache is an
// optimization, never a correctness dependency.
func (r *Runner) fileRecording(bench string, p *prog.Program) emu.ReplaySource {
	path := filepath.Join(r.opt.RecordingDir, bench+".mdrec")
	if f, err := emu.OpenRecordingFile(path, p); err == nil {
		r.recHits.Add(1)
		r.recBytes.Add(f.SizeBytes())
		return f
	}
	r.recMisses.Add(1)
	rec := emu.NewRecording(emu.New(p))
	rec.Record(r.opt.captureHorizon())
	if err := writeRecordingFile(path, rec); err != nil {
		return rec
	}
	if f, err := emu.OpenRecordingFile(path, p); err == nil {
		r.recBytes.Add(f.SizeBytes())
		return f
	}
	return rec
}

// captureHorizon bounds the stream prefix any simulation under these
// options can touch, so a sealed recording file covers every replay. A
// full timing run consumes Insts committed instructions plus the
// window's fetch-ahead; a sampled run additionally streams through the
// functional windows between timing windows. The pad covers warmup,
// the largest window ablation, and squash refetch slack.
func (o Options) captureHorizon() int64 {
	h := o.Insts
	if o.Sampled {
		tw, fw := o.timingWindow(), o.functionalWindow()
		periods := (o.Insts + tw - 1) / tw
		h = periods * (tw + fw)
	}
	return h + 1<<17
}

// writeRecordingFile publishes a completed recording at path via a
// same-directory temp file and an atomic rename.
func writeRecordingFile(path string, rec *emu.Recording) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := rec.WriteSealedTo(tmp); err != nil {
		tmp.Close() //md:errok cleanup on an already-failing write; the temp file is removed, not published
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //md:errok cleanup on an already-failing sync; the temp file is removed, not published
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Close releases resources held by the runner's replay sources (mmapped
// recording files). The runner must be idle.
func (r *Runner) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for bench, src := range r.recs {
		if f, ok := src.(*emu.FileRecording); ok {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		delete(r.recs, bench)
	}
	return firstErr
}

// checkpointSet returns the warmed-state checkpoint set for bench
// under cfg's warm configuration class, building it at most once per
// (bench, class) even under concurrent callers (the build costs one
// functional pass). A nil result means checkpointing is unavailable
// for these options; callers proceed without it — checkpoints are an
// optimization, never a correctness dependency.
func (r *Runner) checkpointSet(bench string, cfg config.Machine) *ckpt.Set {
	key := ckptKey{bench, ckpt.WarmConfigOf(cfg)}
	for {
		r.mu.Lock()
		if s, ok := r.ckpts[key]; ok {
			r.mu.Unlock()
			return s
		}
		if ch, ok := r.ckptBusy[key]; ok {
			r.mu.Unlock()
			<-ch //md:ctxok bounded CPU-only build; the builder always closes ch, no external wait
			continue
		}
		ch := make(chan struct{})
		r.ckptBusy[key] = ch
		r.mu.Unlock()
		s := r.buildCheckpointSet(bench, cfg)
		r.mu.Lock()
		r.ckpts[key] = s
		delete(r.ckptBusy, key)
		r.mu.Unlock()
		close(ch)
		return s
	}
}

// buildCheckpointSet opens, validates, or re-captures one checkpoint
// set. With RecordingDir set the set persists as
// <bench>-<warmhash>.mdckpt next to the benchmark's recording, shared
// by concurrent mdserve workers and resumed mdexp sweeps; a corrupt,
// mismatched, or stale file is silently re-captured and rewritten.
// Every failure path degrades to a smaller or nil set, never an error.
func (r *Runner) buildCheckpointSet(bench string, cfg config.Machine) *ckpt.Set {
	seqs := r.opt.checkpointSeqs()
	if len(seqs) == 0 {
		return nil // single-segment decomposition: nothing to resume
	}
	rec, err := r.recording(bench)
	if err != nil {
		return nil
	}
	p, err := r.program(bench)
	if err != nil {
		return nil
	}
	recFP := emu.ProgramFingerprint(p)
	warm := ckpt.WarmConfigOf(cfg)

	path := ""
	if r.opt.RecordingDir != "" {
		path = filepath.Join(r.opt.RecordingDir,
			fmt.Sprintf("%s-%016x.mdckpt", bench, warm.Hash()))
		s, err := ckpt.OpenFile(path, recFP, warm.Hash())
		if err == nil && !staleSeqs(s.Seqs(), seqs) {
			r.ckptHits.Add(1)
			r.ckptBytes.Add(s.SizeBytes())
			return s
		}
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			// Torn, corrupt, or foreign file: drop it before re-capture so
			// a failed rewrite cannot leave the damaged bytes in place.
			os.Remove(path) //md:errok re-capture below rewrites or works in memory
		}
	}
	r.ckptMisses.Add(1)
	s, err := ckpt.Build(cfg, rec, recFP, seqs)
	if err != nil {
		return nil
	}
	if path != "" && len(s.Frames) > 0 {
		if err := s.WriteFile(path); err == nil {
			r.ckptBytes.Add(s.SizeBytes())
		}
	}
	return s
}

// staleSeqs reports whether an on-disk checkpoint schedule no longer
// matches the sweep's. A file whose frames are a non-empty prefix of
// the desired positions is accepted — a trace shorter than the capture
// horizon truncates the tail identically on rebuild — while a file
// from a different window geometry is re-captured.
func staleSeqs(got, want []int64) bool {
	if len(got) == 0 || len(got) > len(want) {
		return true
	}
	for i, s := range got {
		if s != want[i] {
			return true
		}
	}
	return false
}

// phasePlan returns bench's phase-representative segment selection,
// computed at most once per benchmark (one streaming BBV pass plus
// k-means). A nil plan means every segment is simulated unweighted.
func (r *Runner) phasePlan(bench string) []ckpt.WeightedSegment {
	for {
		r.mu.Lock()
		if plan, ok := r.plans[bench]; ok {
			r.mu.Unlock()
			return plan
		}
		if ch, ok := r.planBusy[bench]; ok {
			r.mu.Unlock()
			<-ch //md:ctxok bounded CPU-only BBV pass; the builder always closes ch, no external wait
			continue
		}
		ch := make(chan struct{})
		r.planBusy[bench] = ch
		r.mu.Unlock()
		plan := r.buildPhasePlan(bench)
		r.mu.Lock()
		r.plans[bench] = plan
		delete(r.planBusy, bench)
		r.mu.Unlock()
		close(ch)
		return plan
	}
}

// buildPhasePlan computes per-segment basic-block vectors over the
// sweep's sampling horizon and clusters them into the configured
// number of phases. The segment size mirrors parsim's decomposition
// exactly, so plan indices are parsim segment indices.
func (r *Runner) buildPhasePlan(bench string) []ckpt.WeightedSegment {
	rec, err := r.recording(bench)
	if err != nil {
		return nil
	}
	tw, fw := r.opt.timingWindow(), r.opt.functionalWindow()
	periods := (r.opt.Insts + tw - 1) / tw
	segInsts := int64(r.opt.segmentPeriods()) * (tw + fw)
	vecs, err := ckpt.SegmentBBVs(rec, periods*(tw+fw), segInsts, ckpt.BBVDims)
	if err != nil || len(vecs) < 2 {
		return nil
	}
	return ckpt.Plan(vecs, r.opt.phases(), phaseSeed)
}

// simulate is the real simulation backend behind Run. With
// Options.Sampled it runs the interval-parallel sampled engine, whose
// segment workers borrow spare tokens from the runner's own parallelism
// budget (split-window machines fall back to a full timing run —
// sampling needs a continuous window).
func (r *Runner) simulate(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	rec, err := r.recording(bench)
	if err != nil {
		return nil, err
	}
	if r.opt.Sampled && !cfg.SplitWindow {
		popt := parsim.Options{
			TotalTiming:     r.opt.Insts,
			TimingInsts:     r.opt.timingWindow(),
			FunctionalInsts: r.opt.functionalWindow(),
			SegmentPeriods:  r.opt.SegmentPeriods,
			Sem:             r.sem,
			Checkpoints:     r.checkpointSet(bench, cfg),
		}
		if r.opt.PhaseSampled {
			popt.Select = r.phasePlan(bench)
		}
		res, err := parsim.Run(ctx, cfg, rec, popt)
		if err != nil {
			return nil, err
		}
		res.Workload = bench
		return res, nil
	}
	pl, err := core.New(cfg, rec.NewReplay())
	if err != nil {
		return nil, err
	}
	res, err := pl.Run(r.opt.Insts)
	if err != nil {
		return nil, err
	}
	res.Workload = bench
	return res, nil
}

// simulateSerialSampled is the graceful-degradation backend for sampled
// cells: one serial sampled pass on a private pipeline, touching none
// of the interval-parallel machinery that kept failing (checkpoints,
// phase selection, and segment workers included — a PhaseSampled cell
// degrades to the full, unweighted serial methodology, which is at
// least as accurate). Slower and warmed slightly differently than the
// segmented run (the paper's serial methodology), but it lets the sweep
// finish the cell instead of abandoning it.
func (r *Runner) simulateSerialSampled(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := r.recording(bench)
	if err != nil {
		return nil, err
	}
	pl, err := core.New(cfg, rec.NewReplay())
	if err != nil {
		return nil, err
	}
	res, err := pl.RunSampled(r.opt.Insts, r.opt.timingWindow(), r.opt.functionalWindow())
	if err != nil {
		return nil, err
	}
	res.Workload = bench
	return res, nil
}

// RunPanicError is a panic during one cell's simulation, converted into
// an error carrying the job's identity and the panicking goroutine's
// stack. It is classified as transient: the next attempt gets a fresh
// Pipeline over the shared recording.
type RunPanicError struct {
	Bench  string
	Config string
	Value  any
	Stack  []byte
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("panic simulating %s under %s: %v\n%s", e.Bench, e.Config, e.Value, e.Stack)
}

// transientError classifies failures worth retrying: a recovered panic
// (job- or segment-level) or a watchdog deadlock report. Context
// cancellation and plain errors (unknown benchmark, invalid config) are
// permanent.
func transientError(err error) bool {
	var jobPanic *RunPanicError
	var segPanic *parsim.PanicError
	var deadlock *core.DeadlockError
	return errors.As(err, &jobPanic) || errors.As(err, &segPanic) || errors.As(err, &deadlock)
}

// runProtected is one simulation attempt with panic isolation: a panic
// anywhere below (a worker bug, an injected fault) becomes a typed
// *RunPanicError instead of crashing the sweep and losing every other
// cell's work.
func (r *Runner) runProtected(ctx context.Context, bench string, cfg config.Machine, cfgName string, sim func(context.Context, string, config.Machine) (*stats.Run, error)) (res *stats.Run, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &RunPanicError{Bench: bench, Config: cfgName, Value: v, Stack: debug.Stack()}
		}
	}()
	// No-op unless built with -tags mdfault; see internal/faultinject.
	faultinject.Point(faultinject.SiteRunnerJob)
	return sim(ctx, bench, cfg)
}

// runWithRecovery drives one cell to a result, an exhausted-retries
// failure, or a degraded success: transient failures are re-attempted
// up to the retry policy's budget (with its deterministic capped
// exponential backoff between attempts), and a sampled cell whose
// interval-parallel runs keep failing falls back to one serial sampled
// pass. It returns the attempts consumed and the fallback marker for
// the cell's provenance record.
func (r *Runner) runWithRecovery(ctx context.Context, bench string, cfg config.Machine, cfgName string) (res *stats.Run, attempts int, fallback string, err error) {
	pol := r.opt.Retry.WithDefaults()
	for {
		attempts++
		res, err = r.runProtected(ctx, bench, cfg, cfgName, r.sim)
		if err == nil || !transientError(err) {
			return res, attempts, "", err
		}
		if cerr := ctx.Err(); cerr != nil {
			// Canceled mid-attempt: the cell is unfinished, not abandoned —
			// report the cancellation, not the attempt's transient failure.
			return nil, attempts, "", cerr
		}
		if attempts >= pol.MaxAttempts {
			break
		}
		r.jobsRetried.Add(1)
		if r.opt.Hooks.JobRetried != nil {
			r.opt.Hooks.JobRetried(bench, cfgName, attempts, err)
		}
		if werr := r.sleep(ctx, pol.Backoff(attempts)); werr != nil {
			return nil, attempts, "", werr
		}
	}
	if r.opt.Sampled && !cfg.SplitWindow {
		attempts++
		fres, ferr := r.runProtected(ctx, bench, cfg, cfgName, r.simSerial)
		if ferr == nil {
			return fres, attempts, FallbackSerialSampled, nil
		}
		err = fmt.Errorf("%w (serial fallback also failed: %v)", err, ferr)
	}
	return nil, attempts, "", err
}

// cfgHash returns cfg's provenance hash, memoized per Runner the way
// cfgName already is per call: Hash() renders every Machine field
// through fmt, and under mdserve the hash is consulted on every
// request (cache key, journal key, abandoned-cell identity).
func (r *Runner) cfgHash(cfg config.Machine) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfgHashLocked(cfg)
}

// cfgHashLocked is cfgHash for callers already holding r.mu.
//
//md:locked mu
func (r *Runner) cfgHashLocked(cfg config.Machine) string {
	if h, ok := r.hashes[cfg]; ok {
		return h
	}
	h := cfg.Hash()
	r.hashes[cfg] = h
	return h
}

// RunSource reports where a simulation result came from, for service
// responses and dedup accounting.
type RunSource string

// Run result sources.
const (
	// SourceSimulated is a fresh simulation executed by this call.
	SourceSimulated RunSource = "simulated"
	// SourceCache is a result served from the memo cache.
	SourceCache RunSource = "cache"
	// SourceDedup is a call that joined an in-flight duplicate
	// simulation started by a concurrent caller (singleflight).
	SourceDedup RunSource = "dedup"
	// SourceJournal is a cell replayed from a primed checkpoint journal
	// without re-simulation.
	SourceJournal RunSource = "journal"
)

// Run simulates bench under cfg. Results are memoized, and concurrent
// calls for the same (bench, cfg) pair share a single simulation
// (singleflight). A canceled context aborts before starting new work;
// an already-running duplicate is abandoned (it completes and populates
// the cache for later callers). Errors are returned naming the
// offending (bench, config) pair and are not cached.
func (r *Runner) Run(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	res, _, err := r.RunWithSource(ctx, bench, cfg)
	return res, err
}

// RunWithSource is Run, additionally reporting whether the result was
// freshly simulated, served from the memo cache, deduplicated against
// an in-flight duplicate, or replayed from a primed journal. mdserve
// responses carry the source so clients can tell a cache hit from a
// paid simulation.
func (r *Runner) RunWithSource(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, RunSource, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	key := runKey{bench, cfg}
	// Name() rebuilds the paper-style string on every call; the hook and
	// error paths below use it up to three times, so build it once.
	cfgName := cfg.Name()

	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.cacheHits.Add(1)
		if r.opt.Hooks.CacheHit != nil {
			r.opt.Hooks.CacheHit(bench, cfgName)
		}
		return res, SourceCache, nil
	}
	if len(r.primed) > 0 {
		// A cell replayed from a resumed journal: promote it into the
		// memo cache and the provenance records, skipping the simulation
		// entirely (its stats are bit-identical to re-running by the
		// determinism contract).
		id := runKeyID{bench, r.cfgHashLocked(cfg)}
		if rec, ok := r.primed[id]; ok {
			delete(r.primed, id)
			res := rec.Stats
			r.cache[key] = res
			r.records = append(r.records, rec)
			r.recordIdx[id] = len(r.records) - 1
			r.mu.Unlock()
			r.replayed.Add(1)
			if r.opt.Hooks.CacheHit != nil {
				r.opt.Hooks.CacheHit(bench, cfgName)
			}
			return res, SourceJournal, nil
		}
	}
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
			if c.err != nil {
				return nil, "", c.err
			}
			r.cacheHits.Add(1)
			if r.opt.Hooks.CacheHit != nil {
				r.opt.Hooks.CacheHit(bench, cfgName)
			}
			return c.res, SourceDedup, nil
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	r.cacheMisses.Add(1)
	r.jobsStarted.Add(1)
	if r.opt.Hooks.JobStarted != nil {
		r.opt.Hooks.JobStarted(bench, cfgName)
	}
	start := time.Now()
	res, attempts, fallback, err := r.runWithRecovery(ctx, bench, cfg, cfgName)
	wall := time.Since(start)
	if err != nil {
		err = fmt.Errorf("%s under %s: %w", bench, cfgName, err)
	}
	r.jobsFinished.Add(1)
	r.simNanos.Add(int64(wall))
	if err != nil {
		r.jobsFailed.Add(1)
	}
	if r.opt.Hooks.JobFinished != nil {
		r.opt.Hooks.JobFinished(bench, cfgName, wall, err)
	}

	var rec RunRecord
	r.mu.Lock()
	delete(r.inflight, key)
	if err == nil {
		cfgHash := r.cfgHashLocked(cfg)
		rec = newRunRecord(bench, cfgName, cfgHash, r.opt.Insts, wall, res)
		rec.Attempts = attempts
		rec.Fallback = fallback
		r.cache[key] = res
		r.records = append(r.records, rec)
		r.recordIdx[runKeyID{bench, cfgHash}] = len(r.records) - 1
	} else if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// The cell is abandoned (retries and any fallback exhausted, or
		// a permanent failure): name it so the partial-results envelope
		// can report exactly what is missing. Errors are not cached, so
		// a later Run of the same cell may retry it; keep one entry.
		id := runKeyID{bench, r.cfgHashLocked(cfg)}
		if !r.abandonSet[id] {
			r.abandonSet[id] = true
			r.abandoned = append(r.abandoned, AbandonedCell{
				Bench: bench, Config: cfgName, ConfigHash: id.configHash,
				Attempts: attempts, Error: err.Error(),
			})
		}
	}
	journal := r.opt.Journal
	r.mu.Unlock()

	if err == nil && journal != nil {
		// Make the finished cell durable before reporting it; a journal
		// failure costs resumability, not the sweep (see JournalErr).
		if jerr := journal.Append(rec); jerr != nil {
			r.mu.Lock()
			if r.journalErr == nil {
				r.journalErr = jerr
			}
			r.mu.Unlock()
		}
	}

	c.res, c.err = res, err
	close(c.done)
	return res, SourceSimulated, err
}

// SimulateFunc is the signature of a simulation backend: it turns one
// (benchmark, configuration) cell into a statistics run.
type SimulateFunc func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error)

// UseBackend replaces the runner's simulation backend — both the
// primary engine and the sampled serial fallback — while keeping the
// memo cache, singleflight dedup, journal priming, hooks and counters
// in front of it. mdexp -server uses it to point experiments at a
// remote mdserve daemon instead of simulating locally. Call it before
// the first Run; it is not safe to swap backends mid-sweep.
func (r *Runner) UseBackend(sim SimulateFunc) {
	r.sim = sim
	r.simSerial = sim
}

// LocalSimulate runs one cell on this process's own simulation engine,
// ignoring any remote backend mounted with UseBackend. It is the fleet
// supervisor's graceful-degradation path: when every worker process is
// down, the pool falls back to in-process execution — today's
// single-process path — through this method, while the runner's memo
// cache, journal, and counters in front of the pool stay intact.
func (r *Runner) LocalSimulate(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
	return r.simulate(ctx, bench, cfg)
}

// RunGuarded is Run behind the runner's parallelism budget: a call
// that will be answered without simulating — memo cache, primed
// journal, or joining an in-flight duplicate — proceeds immediately,
// anything else first acquires one token of Options.Parallel. It is
// the per-job step of the bounded sweep pool (runAll) and of the
// mdserve scheduler's workers, which must never let one queued request
// oversubscribe the shared simulation budget.
func (r *Runner) RunGuarded(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, RunSource, error) {
	key := runKey{bench, cfg}
	r.mu.Lock()
	_, settled := r.cache[key]
	if !settled && len(r.primed) > 0 {
		_, settled = r.primed[runKeyID{bench, r.cfgHashLocked(cfg)}]
	}
	if !settled {
		// Joining an in-flight duplicate blocks but performs no work;
		// holding a token for the wait would starve real simulations.
		_, settled = r.inflight[key]
	}
	r.mu.Unlock()
	if !settled {
		if err := r.sem.Acquire(ctx); err != nil {
			return nil, "", err
		}
		defer r.sem.Release()
	}
	return r.RunWithSource(ctx, bench, cfg)
}

// job is one (bench, config) simulation request.
type job struct {
	bench string
	cfg   config.Machine
}

// runAll executes all jobs with bounded parallelism: a fixed pool of
// at most Options.Parallel workers drains the job list, so a sweep of
// N cells costs O(parallel) goroutines instead of N (the same pool
// shape mdserve uses to absorb unbounded request streams). Unlike a
// first-error-wins sweep, it drains every job and returns the joined
// errors of all failures, each naming its (bench, config) pair. When
// ctx is canceled, jobs not yet running are abandoned and a single
// context error is reported alongside any real failures.
func (r *Runner) runAll(ctx context.Context, jobs []job) error {
	errs := make([]error, len(jobs))
	workers := r.opt.parallel()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				_, _, err := r.RunGuarded(ctx, jobs[i].bench, jobs[i].cfg)
				errs[i] = err
			}
		}()
	}
	// Submission is ctx-aware: once the sweep is canceled, stop feeding
	// the pool instead of blocking on workers that are themselves
	// unwinding; unsubmitted jobs keep their slot's nil error and the
	// single collapsed ctx.Err() below reports the cancellation.
	aborted := false
submit:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			aborted = true
			break submit
		}
	}
	close(idx)
	wg.Wait()

	var failures []error
	canceled := aborted
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded):
			canceled = true // collapse the cancellation storm into one error
		default:
			failures = append(failures, e)
		}
	}
	if canceled {
		failures = append(failures, ctx.Err())
	}
	return errors.Join(failures...)
}

// prefetch runs the cross product of benchmarks and configs in parallel
// so subsequent Run calls hit the memo.
func (r *Runner) prefetch(ctx context.Context, benches []string, cfgs ...config.Machine) error {
	jobs := make([]job, 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for _, c := range cfgs {
			jobs = append(jobs, job{b, c})
		}
	}
	return r.runAll(ctx, jobs)
}

// means computes arithmetic means of a metric over the SPECint and
// SPECfp subsets of rows (keyed by benchmark name). Names that are in
// neither subset (misspellings that slipped past CLI validation) are
// skipped rather than silently classified as FP.
func meansByClass(benches []string, metric func(bench string) float64) (intMean, fpMean float64) {
	intSet := make(map[string]bool)
	for _, n := range workload.IntNames() {
		intSet[n] = true
	}
	fpSet := make(map[string]bool)
	for _, n := range workload.FPNames() {
		fpSet[n] = true
	}
	var iv, fv []float64
	for _, b := range benches {
		switch {
		case intSet[b]:
			iv = append(iv, metric(b))
		case fpSet[b]:
			fv = append(fv, metric(b))
		}
	}
	return stats.Mean(iv), stats.Mean(fv)
}
