// Package experiments reproduces every table and figure of the paper's
// evaluation (§3) over the synthetic SPEC'95-analog suite, plus the §4
// summary averages and a set of ablation studies. Each experiment
// returns typed rows and has a paper-style text renderer; cmd/mdexp and
// the repository's benchmarks drive them.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/emu"
	"mdspec/internal/prog"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

// Options controls experiment scale.
type Options struct {
	// Insts is the number of committed instructions simulated per
	// (benchmark, configuration) pair.
	Insts int64
	// Benchmarks restricts the suite (default: all 18 of Table 1).
	Benchmarks []string
	// Parallel bounds concurrent simulations (default: GOMAXPROCS).
	Parallel int
}

// DefaultOptions runs the full suite at a laptop-friendly budget.
func DefaultOptions() Options {
	return Options{Insts: 150_000}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Runner executes and memoizes simulations: most experiments share
// baseline configurations, so each (benchmark, config) pair runs once.
type Runner struct {
	opt Options

	mu    sync.Mutex
	progs map[string]*prog.Program
	cache map[runKey]*stats.Run
}

type runKey struct {
	bench string
	cfg   config.Machine
}

// NewRunner returns a Runner with the given options.
func NewRunner(opt Options) *Runner {
	if opt.Insts <= 0 {
		opt.Insts = DefaultOptions().Insts
	}
	return &Runner{
		opt:   opt,
		progs: make(map[string]*prog.Program),
		cache: make(map[runKey]*stats.Run),
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opt }

func (r *Runner) program(bench string) (*prog.Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.progs[bench]; ok {
		return p, nil
	}
	p, err := workload.Build(bench)
	if err != nil {
		return nil, err
	}
	r.progs[bench] = p
	return p, nil
}

// Run simulates bench under cfg (memoized).
func (r *Runner) Run(bench string, cfg config.Machine) (*stats.Run, error) {
	key := runKey{bench, cfg}
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	p, err := r.program(bench)
	if err != nil {
		return nil, err
	}
	pl, err := core.New(cfg, emu.NewTrace(emu.New(p)))
	if err != nil {
		return nil, err
	}
	res, err := pl.Run(r.opt.Insts)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", bench, cfg.Name(), err)
	}
	res.Workload = bench

	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// job is one (bench, config) simulation request.
type job struct {
	bench string
	cfg   config.Machine
}

// runAll executes all jobs with bounded parallelism, returning the first
// error encountered.
func (r *Runner) runAll(jobs []job) error {
	sem := make(chan struct{}, r.opt.parallel())
	errCh := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := r.Run(j.bench, j.cfg); err != nil {
				errCh <- err
			}
		}(j)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// prefetch runs the cross product of benchmarks and configs in parallel
// so subsequent Run calls hit the memo.
func (r *Runner) prefetch(benches []string, cfgs ...config.Machine) error {
	var jobs []job
	for _, b := range benches {
		for _, c := range cfgs {
			jobs = append(jobs, job{b, c})
		}
	}
	return r.runAll(jobs)
}

// means computes arithmetic means of a metric over the SPECint and
// SPECfp subsets of rows (keyed by benchmark name).
func meansByClass(benches []string, metric func(bench string) float64) (intMean, fpMean float64) {
	intSet := make(map[string]bool)
	for _, n := range workload.IntNames() {
		intSet[n] = true
	}
	var iv, fv []float64
	for _, b := range benches {
		if intSet[b] {
			iv = append(iv, metric(b))
		} else {
			fv = append(fv, metric(b))
		}
	}
	return stats.Mean(iv), stats.Mean(fv)
}
