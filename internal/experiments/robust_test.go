package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/core"
	"mdspec/internal/parsim"
	"mdspec/internal/retry"
	"mdspec/internal/stats"
)

// instantSleep replaces the backoff wait in tests: the schedule is
// still consulted (a canceled context still aborts) but no time passes.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func okRun(bench string, cfg config.Machine) *stats.Run {
	return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 2, Committed: 1}
}

// TestRetryTransientThenSuccess: a cell whose first attempts die with a
// transient failure (here a segment panic) is retried within the policy
// budget and succeeds, recording the attempts consumed.
func TestRetryTransientThenSuccess(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 3}})
	r.sleep = instantSleep
	var calls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		if calls.Add(1) < 3 {
			return nil, &parsim.PanicError{Segment: 1, Value: "flaky"}
		}
		return okRun(bench, cfg), nil
	}

	var retried atomic.Int64
	r.opt.Hooks.JobRetried = func(bench, cfg string, attempt int, err error) { retried.Add(1) }

	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || calls.Load() != 3 {
		t.Fatalf("res=%v after %d sim calls, want success on attempt 3", res, calls.Load())
	}
	if got := r.Counters().JobsRetried; got != 2 {
		t.Errorf("JobsRetried = %d, want 2", got)
	}
	if retried.Load() != 2 {
		t.Errorf("JobRetried hook fired %d times, want 2", retried.Load())
	}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Attempts != 3 || recs[0].Fallback != "" {
		t.Errorf("record = %+v, want Attempts=3 Fallback=\"\"", recs[0])
	}
	if len(r.Abandoned()) != 0 {
		t.Errorf("successful cell listed as abandoned: %v", r.Abandoned())
	}
}

// TestPermanentErrorNotRetried: a plain error (unknown benchmark,
// invalid config — not a panic or deadlock) is permanent; the runner
// must not burn retry attempts on it.
func TestPermanentErrorNotRetried(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 5}})
	r.sleep = instantSleep
	var calls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		calls.Add(1)
		return nil, errors.New("permanent: bad input")
	}

	_, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 {
		t.Errorf("permanent failure simulated %d times, want 1", calls.Load())
	}
	if got := r.Counters().JobsRetried; got != 0 {
		t.Errorf("JobsRetried = %d, want 0", got)
	}
	ab := r.Abandoned()
	if len(ab) != 1 || ab[0].Bench != "126.gcc" || ab[0].Attempts != 1 {
		t.Fatalf("Abandoned() = %+v, want one entry for 126.gcc with 1 attempt", ab)
	}
	if !strings.Contains(ab[0].Error, "permanent: bad input") {
		t.Errorf("abandoned cell error %q should carry the cause", ab[0].Error)
	}
}

// TestPanicBecomesTypedError: a panic inside the simulation surfaces as
// a *RunPanicError carrying the cell's identity and a stack — and is
// classified transient, so it is retried.
func TestPanicBecomesTypedError(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 2}})
	r.sleep = instantSleep
	var calls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		calls.Add(1)
		panic("simulator bug")
	}

	_, err := r.Run(bg, "126.gcc", nas(config.Sync))
	if err == nil {
		t.Fatal("want error")
	}
	var pe *RunPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *RunPanicError", err)
	}
	if pe.Bench != "126.gcc" || pe.Config != "NAS/SYNC" || pe.Value != "simulator bug" || len(pe.Stack) == 0 {
		t.Errorf("RunPanicError = %+v, want identity + value + stack", pe)
	}
	if calls.Load() != 2 {
		t.Errorf("panicking cell attempted %d times, want MaxAttempts=2", calls.Load())
	}
}

// TestDeadlockErrorRetried: a watchdog deadlock report is transient
// (often a symptom of a poisoned shared structure a fresh pipeline
// avoids) and must be retried.
func TestDeadlockErrorRetried(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 3}})
	r.sleep = instantSleep
	var calls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		if calls.Add(1) == 1 {
			return nil, &core.DeadlockError{Config: cfg.Name(), Phase: "run", Cycles: 999}
		}
		return okRun(bench, cfg), nil
	}

	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("deadlocked cell attempted %d times, want retry to attempt 2", calls.Load())
	}
}

// TestExhaustedRetriesAbandonCell: when every attempt fails transiently
// and the cell is not sampled (no fallback applies), it lands in the
// partial-results envelope — and the rest of the sweep still completes.
func TestExhaustedRetriesAbandonCell(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 2}})
	r.sleep = instantSleep
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		if bench == "126.gcc" {
			return nil, &parsim.PanicError{Segment: 0, Value: "always broken"}
		}
		return okRun(bench, cfg), nil
	}

	err := r.runAll(bg, []job{
		{"126.gcc", nas(config.Naive)},
		{"102.swim", nas(config.Naive)},
	})
	if err == nil {
		t.Fatal("sweep with an abandoned cell should report the failure")
	}

	ab := r.Abandoned()
	if len(ab) != 1 || ab[0].Bench != "126.gcc" || ab[0].Attempts != 2 {
		t.Fatalf("Abandoned() = %+v, want one 126.gcc entry with 2 attempts", ab)
	}
	// The healthy cell finished despite its neighbor's abandonment.
	recs := r.Records()
	if len(recs) != 1 || recs[0].Bench != "102.swim" {
		t.Fatalf("Records() = %+v, want the healthy 102.swim cell", recs)
	}

	rs := NewResults("test", r.Options())
	rs.Attach(r)
	if !rs.Partial || len(rs.Abandoned) != 1 {
		t.Errorf("envelope Partial=%v Abandoned=%v, want partial with the abandoned cell", rs.Partial, rs.Abandoned)
	}
}

// TestSampledFallbackSerial: a sampled cell whose interval-parallel
// attempts keep failing degrades to one serial sampled pass; the run
// record carries the fallback marker.
func TestSampledFallbackSerial(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Sampled: true, Retry: retry.Policy{MaxAttempts: 2}})
	r.sleep = instantSleep
	var parallelCalls, serialCalls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		parallelCalls.Add(1)
		return nil, &parsim.PanicError{Segment: 3, Value: "engine fault"}
	}
	r.simSerial = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		serialCalls.Add(1)
		return okRun(bench, cfg), nil
	}

	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatalf("fallback should rescue the cell: %v", err)
	}
	if res == nil || parallelCalls.Load() != 2 || serialCalls.Load() != 1 {
		t.Fatalf("parallel=%d serial=%d, want 2 failed parallel attempts then 1 serial", parallelCalls.Load(), serialCalls.Load())
	}
	recs := r.Records()
	if len(recs) != 1 || recs[0].Fallback != FallbackSerialSampled || recs[0].Attempts != 3 {
		t.Errorf("record = %+v, want Fallback=%q Attempts=3", recs[0], FallbackSerialSampled)
	}
	if len(r.Abandoned()) != 0 {
		t.Errorf("rescued cell listed as abandoned: %v", r.Abandoned())
	}
}

// TestSampledFallbackAlsoFails: when the serial fallback fails too, the
// error names both causes and the cell is abandoned.
func TestSampledFallbackAlsoFails(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Sampled: true, Retry: retry.Policy{MaxAttempts: 1}})
	r.sleep = instantSleep
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return nil, &parsim.PanicError{Segment: 0, Value: "engine fault"}
	}
	r.simSerial = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return nil, errors.New("serial fault")
	}

	_, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "serial fallback also failed") {
		t.Errorf("error should name the fallback failure: %v", err)
	}
	ab := r.Abandoned()
	if len(ab) != 1 || ab[0].Attempts != 2 {
		t.Fatalf("Abandoned() = %+v, want one entry with 2 attempts (1 parallel + 1 serial)", ab)
	}
}

// TestRetryBackoffHonorsCancellation: a context canceled during the
// backoff wait aborts the retry loop immediately with the context
// error, not another simulation attempt.
func TestRetryBackoffHonorsCancellation(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Retry: retry.Policy{MaxAttempts: 5, BaseDelay: time.Hour}})
	ctx, cancel := context.WithCancel(bg)
	var calls atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		calls.Add(1)
		cancel() // fail and cancel: the backoff sleep must abort
		return nil, &parsim.PanicError{Segment: 0, Value: "flaky"}
	}

	_, err := r.Run(ctx, "126.gcc", nas(config.Naive))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("canceled cell attempted %d times, want 1", calls.Load())
	}
	// Cancellation is not abandonment: the cell is simply unfinished.
	if len(r.Abandoned()) != 0 {
		t.Errorf("canceled cell listed as abandoned: %v", r.Abandoned())
	}
}
