package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

func TestRunAllAggregatesAllErrors(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	jobs := []job{
		{"126.gcc", nas(config.NoSpec)},
		{"bogus.one", nas(config.NoSpec)},
		{"bogus.two", nas(config.Oracle)},
	}
	err := r.runAll(bg, jobs)
	if err == nil {
		t.Fatal("runAll with two failing jobs returned nil")
	}
	msg := err.Error()
	for _, want := range []string{"bogus.one", "bogus.two", "NAS/NO", "NAS/ORACLE"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %q:\n%s", want, msg)
		}
	}
}

func TestRunNamesFailingPair(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	_, err := r.Run(bg, "999.nope", nas(config.Sync))
	if err == nil {
		t.Fatal("unknown benchmark should error")
	}
	if !strings.Contains(err.Error(), "999.nope") || !strings.Contains(err.Error(), "NAS/SYNC") {
		t.Errorf("error should name the (bench, config) pair: %v", err)
	}
}

// TestRunnerSampled: with Options.Sampled, a continuous-window config
// runs the interval-parallel sampled engine (visible as functionally
// skipped instructions), a split-window config falls back to a full
// timing run, and both land in the memo cache as usual.
func TestRunnerSampled(t *testing.T) {
	r := NewRunner(Options{Insts: 12_000, Sampled: true, TimingWindow: 2_000, FunctionalWindow: 4_000})
	res, err := r.Run(bg, "129.compress", nas(config.Sync))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 12_000 {
		t.Errorf("sampled run committed %d, want >= 12000", res.Committed)
	}
	if res.Skipped == 0 {
		t.Error("sampled run should skip instructions functionally")
	}
	if res.Workload != "129.compress" {
		t.Errorf("Workload = %q, want 129.compress", res.Workload)
	}

	split, err := r.Run(bg, "129.compress", nas(config.Naive).WithSplitWindow(4))
	if err != nil {
		t.Fatalf("split-window config under Sampled should fall back to full timing: %v", err)
	}
	if split.Skipped != 0 {
		t.Errorf("split-window fallback skipped %d instructions, want 0", split.Skipped)
	}
}

func TestRunnerSingleflight(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	var sims atomic.Int64
	gate := make(chan struct{})
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		sims.Add(1)
		<-gate // hold every caller inside one simulated run
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 1, Committed: 1}, nil
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*stats.Run, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(bg, "126.gcc", nas(config.Naive))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	// Let every goroutine reach Run before releasing the simulation.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := sims.Load(); n != 1 {
		t.Errorf("concurrent identical runs started %d simulations, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different *stats.Run than caller 0", i)
		}
	}
	c := r.Counters()
	if c.CacheMisses != 1 || c.CacheHits != callers-1 {
		t.Errorf("counters = %+v, want 1 miss and %d hits", c, callers-1)
	}
}

func TestRunnerSharesRecordingAcrossConfigs(t *testing.T) {
	r := NewRunner(Options{Insts: 3000})
	for _, cfg := range []config.Machine{nas(config.NoSpec), nas(config.Naive), nas(config.Sync)} {
		if _, err := r.Run(bg, "129.compress", cfg); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	n := len(r.recs)
	r.mu.Unlock()
	if n != 1 {
		t.Errorf("three configs over one benchmark created %d recordings, want 1", n)
	}
	a, err := r.recording("129.compress")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.recording("129.compress")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("recording() returned distinct recordings for the same benchmark")
	}
}

func TestRunnerMemoizesStub(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	var sims atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		sims.Add(1)
		return &stats.Run{Workload: bench, Config: cfg.Name(), Cycles: 1, Committed: 1}, nil
	}
	a, err := r.Run(bg, "126.gcc", nas(config.NoSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(bg, "126.gcc", nas(config.NoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if a != b || sims.Load() != 1 {
		t.Errorf("repeated key should return the memoized pointer after one sim (got %d sims)", sims.Load())
	}
}

func TestRunnerCancellationAbortsSweep(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Parallel: 2})
	var started atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		started.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &stats.Run{Workload: bench, Cycles: 1, Committed: 1}, nil
		}
	}

	var jobs []job
	for _, b := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		jobs = append(jobs, job{b, nas(config.Naive)})
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := r.runAll(ctx, jobs)
	elapsed := time.Since(t0)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runAll after cancel = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
	if n := started.Load(); n > 2 {
		t.Errorf("%d sims started despite Parallel=2 and early cancel", n)
	}
	// New work after cancellation is refused immediately.
	if _, err := r.Run(ctx, "z", nas(config.Naive)); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestRunAllPreCanceledContext(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Parallel: 2})
	var started atomic.Int64
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		started.Add(1)
		return &stats.Run{Workload: bench, Cycles: 1, Committed: 1}, nil
	}

	var jobs []job
	for _, b := range []string{"a", "b", "c", "d"} {
		jobs = append(jobs, job{b, nas(config.Naive)})
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()

	t0 := time.Now()
	err := r.runAll(ctx, jobs)
	elapsed := time.Since(t0)

	// Submission is ctx-aware: a sweep handed a dead context reports the
	// cancellation instead of nil, runs no simulations, and returns
	// without waiting on anything.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runAll on pre-canceled ctx = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 0 {
		t.Errorf("%d sims started under a pre-canceled ctx, want 0", n)
	}
	if elapsed > time.Second {
		t.Errorf("pre-canceled runAll took %v, want immediate return", elapsed)
	}
}

func TestRunnerDeadline(t *testing.T) {
	r := NewRunner(Options{Insts: 1000, Parallel: 1})
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &stats.Run{Cycles: 1, Committed: 1}, nil
		}
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	err := r.prefetch(ctx, []string{"a", "b", "c"}, nas(config.Naive))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("prefetch past deadline = %v, want DeadlineExceeded", err)
	}
}

func TestRunnerRecordsProvenance(t *testing.T) {
	r := NewRunner(Options{Insts: 5_000})
	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil { // cache hit: no new record
		t.Fatal(err)
	}
	recs := r.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	rec := recs[0]
	switch {
	case rec.Bench != "126.gcc":
		t.Errorf("bench = %q", rec.Bench)
	case rec.Config != "NAS/NAV":
		t.Errorf("config = %q", rec.Config)
	case rec.ConfigHash != nas(config.Naive).Hash() || len(rec.ConfigHash) != 16:
		t.Errorf("config hash = %q", rec.ConfigHash)
	case rec.Insts != 5_000:
		t.Errorf("insts = %d", rec.Insts)
	case rec.WallSeconds <= 0:
		t.Errorf("wall seconds = %v", rec.WallSeconds)
	case rec.Runner != RunnerVersion:
		t.Errorf("runner version = %q", rec.Runner)
	case rec.Stats == nil || rec.Stats.Committed == 0:
		t.Error("record missing raw stats")
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	r := NewRunner(Options{Insts: 5_000, Benchmarks: []string{"126.gcc"}})
	rows, err := Table3(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResults("mdexp-test", r.Options())
	rs.AddExperiment("table3", rows, time.Second)
	rs.Attach(r)

	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Tool != "mdexp-test" || back.Runner != RunnerVersion || back.Insts != 5_000 {
		t.Errorf("envelope fields lost: %+v", back)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].Name != "table3" {
		t.Errorf("experiments lost: %+v", back.Experiments)
	}
	if len(back.Runs) == 0 {
		t.Fatal("no run records in artifact")
	}
	for _, rec := range back.Runs {
		if rec.Bench == "" || rec.Config == "" || rec.ConfigHash == "" ||
			rec.Insts != 5_000 || rec.WallSeconds <= 0 || rec.Runner != RunnerVersion {
			t.Errorf("run record missing provenance: %+v", rec.Provenance)
		}
		if rec.Stats == nil || rec.Stats.Cycles == 0 {
			t.Errorf("run record missing stats: %+v", rec.Provenance)
		}
	}
	if back.Metrics.JobsFinished == 0 || back.Metrics.CacheMisses == 0 {
		t.Errorf("metrics lost: %+v", back.Metrics)
	}
}

func TestResultsCSV(t *testing.T) {
	r := NewRunner(Options{Insts: 5_000, Benchmarks: []string{"126.gcc"}})
	if _, err := r.Run(bg, "126.gcc", nas(config.Naive)); err != nil {
		t.Fatal(err)
	}
	rs := NewResults("mdexp-test", r.Options())
	rs.Attach(r)
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // header + one run
		t.Fatalf("csv rows = %d, want 2", len(recs))
	}
	if recs[0][0] != "bench" || recs[1][0] != "126.gcc" || recs[1][1] != "NAS/NAV" {
		t.Errorf("csv content wrong: %v", recs)
	}
	if len(recs[1]) != len(csvHeader) {
		t.Errorf("csv row has %d fields, header %d", len(recs[1]), len(csvHeader))
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.interactive = true // pin the terminal mode; a buffer autodetects as non-TTY
	h := p.Hooks()
	h.JobStarted("126.gcc", "NAS/NAV")
	h.JobFinished("126.gcc", "NAS/NAV", time.Millisecond, nil)
	h.CacheHit("126.gcc", "NAS/NAV")
	h.JobStarted("102.swim", "NAS/SYNC")
	h.JobFinished("102.swim", "NAS/SYNC", time.Millisecond, errors.New("boom"))
	p.Done()
	out := buf.String()
	for _, want := range []string{"126.gcc", "cache hits 1", "2/2 jobs", "1 FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%q", want, out)
		}
	}
	// Done must leave the line cleared (ends with a carriage return).
	if !strings.HasSuffix(out, "\r") {
		t.Error("Done should clear the progress line")
	}
}

func TestMeansByClassSkipsUnknownNames(t *testing.T) {
	metric := func(b string) float64 {
		if b == "126.gcc" {
			return 1
		}
		if b == "102.swim" {
			return 3
		}
		return 1000 // a misspelled name must never reach the metric
	}
	im, fm := meansByClass([]string{"126.gcc", "102.swim", "126.gc"}, metric)
	if im != 1 || fm != 3 {
		t.Errorf("means = %v, %v: misspelled name contaminated a class mean", im, fm)
	}
}
