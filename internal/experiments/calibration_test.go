package experiments

import (
	"testing"

	"mdspec/internal/config"
)

// paperNavMisspec is Table 4's NAV column (misspeculations per committed
// load under NAS/NAV, 128-entry window).
var paperNavMisspec = map[string]float64{
	"099.go": .025, "124.m88ksim": .010, "126.gcc": .013, "129.compress": .078,
	"130.li": .032, "132.ijpeg": .008, "134.perl": .029, "147.vortex": .032,
	"101.tomcatv": .010, "102.swim": .009, "103.su2cor": .024, "104.hydro2d": .055,
	"107.mgrid": .001, "110.applu": .014, "125.turb3d": .007, "141.apsi": .021,
	"145.fpppp": .014, "146.wave5": .020,
}

// paperFD is Table 3's FD column (fraction of loads delayed by false
// dependences under NAS/NO).
var paperFD = map[string]float64{
	"099.go": .264, "124.m88ksim": .599, "126.gcc": .390, "129.compress": .703,
	"130.li": .442, "132.ijpeg": .703, "134.perl": .598, "147.vortex": .672,
	"101.tomcatv": .612, "102.swim": .910, "103.su2cor": .796, "104.hydro2d": .852,
	"107.mgrid": .454, "110.applu": .454, "125.turb3d": .770, "141.apsi": .775,
	"145.fpppp": .887, "146.wave5": .836,
}

// TestCalibrationAgainstTable4 is a regression net for the workload
// tuning: each benchmark's NAV misspeculation rate must stay within a
// loose band of the paper's Table 4 (a factor of 4 plus one percentage
// point of absolute slack — tight enough to catch an accidental
// re-tuning, loose enough for synthetic analogs).
func TestCalibrationAgainstTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	r := NewRunner(Options{Insts: 60_000})
	rows, err := Figure2(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		paper := paperNavMisspec[row.Bench]
		got := row.NaiveMisspec
		lo, hi := paper/4-0.01, paper*4+0.01
		if got < lo || got > hi {
			t.Errorf("%s: NAV misspec %.4f outside calibration band [%.4f, %.4f] (paper %.4f)",
				row.Bench, got, lo, hi, paper)
		}
	}
}

// TestCalibrationAgainstTable3 keeps the false-dependence fractions in a
// loose band of Table 3.
func TestCalibrationAgainstTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	r := NewRunner(Options{Insts: 60_000})
	rows, err := Table3(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		paper := paperFD[row.Bench]
		if row.FD < paper/3 || row.FD > min1(paper*2.5+0.1) {
			t.Errorf("%s: FD %.3f drifted too far from the paper's %.3f",
				row.Bench, row.FD, paper)
		}
	}
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// TestSummaryShapeRegression pins the §4 orderings that EXPERIMENTS.md
// documents, at a fast budget: ORACLE > NAV > nothing over NO; SYNC
// within two points of ORACLE; AS/NAV over AS/NO in low single digits.
func TestSummaryShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("summary sweep is slow")
	}
	r := NewRunner(Options{Insts: 60_000})
	rows, err := Summary(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SummaryRow{}
	for _, row := range rows {
		byName[row.Finding] = row
	}
	oracle := byName["NAS/ORACLE over NAS/NO"]
	nav := byName["NAS/NAV over NAS/NO"]
	sync := byName["NAS/SYNC over NAS/NAV"]
	oracleNav := byName["NAS/ORACLE over NAS/NAV"]
	asnav := byName["AS/NAV over AS/NO (0-cycle)"]

	if oracle.IntMeasured < 0.20 || oracle.FPMeasured < 0.40 {
		t.Errorf("oracle gains collapsed: %+v", oracle)
	}
	if nav.IntMeasured < 0.05 || nav.FPMeasured < 0.20 {
		t.Errorf("naive gains collapsed: %+v", nav)
	}
	if oracle.FPMeasured < oracle.IntMeasured {
		t.Error("fp codes should gain more than int codes from the oracle")
	}
	if d := oracleNav.IntMeasured - sync.IntMeasured; d < -0.005 || d > 0.05 {
		t.Errorf("SYNC should trail ORACLE by at most a couple points: sync=%+v oracle=%+v", sync, oracleNav)
	}
	if asnav.IntMeasured < 0.0 || asnav.IntMeasured > 0.15 {
		t.Errorf("AS/NAV over AS/NO out of the paper's low-single-digit regime: %+v", asnav)
	}
	_ = config.Default128 // keep the import for future extensions
}
