package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/emu"
)

// TestRecordingDirCachesAndReplays pins the on-disk recording cache:
// the first runner captures and publishes <bench>.mdrec, a second
// runner in the same dir serves replays from the mmapped file, and
// both produce statistics bit-identical to a runner with no cache.
func TestRecordingDirCachesAndReplays(t *testing.T) {
	dir := t.TempDir()
	const bench = "129.compress"
	cfg := config.Default128().WithPolicy(config.Naive)
	opt := Options{Insts: 10_000, Benchmarks: []string{bench}, RecordingDir: dir}

	key := func(r *Runner) string {
		res, err := r.Run(context.Background(), bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%d/%d/%d/%d", res.Cycles, res.Committed,
			res.Misspeculations, res.SquashedInsts, res.BranchMispredicts)
	}

	r1 := NewRunner(opt)
	got := key(r1)
	if err := r1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(dir, bench+".mdrec")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("first run did not publish the recording file: %v", err)
	}

	r2 := NewRunner(opt)
	if got2 := key(r2); got2 != got {
		t.Errorf("file-backed run diverged: %s vs %s", got2, got)
	}
	src, err := r2.recording(bench)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := src.(*emu.FileRecording)
	if !ok {
		t.Fatalf("second runner should replay from the file, got %T", src)
	}
	if !f.Mmapped() {
		t.Log("recording file loaded without mmap (fallback path)")
	}
	defer r2.Close()

	rLive := NewRunner(Options{Insts: 10_000, Benchmarks: []string{bench}})
	if gotLive := key(rLive); gotLive != got {
		t.Errorf("cached recording diverged from live emulation: %s vs %s", got, gotLive)
	}

	// A damaged file must be recaptured, not replayed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(opt)
	if got3 := key(r3); got3 != got {
		t.Errorf("recapture after corruption diverged: %s vs %s", got3, got)
	}
	defer r3.Close()
}
