package experiments

import (
	"context"
	"fmt"

	"mdspec/internal/config"
	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func nas(p config.Policy) config.Machine { return config.Default128().WithPolicy(p) }
func as(p config.Policy, lat int) config.Machine {
	return config.Default128().WithPolicy(p).WithAddressScheduler(lat)
}
func small(p config.Policy) config.Machine { return config.Small64().WithPolicy(p) }

// --- Figure 1 -------------------------------------------------------

// Figure1Row is one benchmark's bars in Figure 1: IPC for NAS/NO and
// NAS/ORACLE at 64- and 128-entry windows, with the oracle speedups the
// paper prints on top of the bars.
type Figure1Row struct {
	Bench                 string
	NO64, Oracle64        float64
	NO128, Oracle128      float64
	Speedup64, Speedup128 float64
}

// Figure1 reproduces Figure 1 (performance potential of load/store
// parallelism, §3.2).
func Figure1(ctx context.Context, r *Runner) ([]Figure1Row, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{small(config.NoSpec), small(config.Oracle), nas(config.NoSpec), nas(config.Oracle)}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure1Row, 0, len(benches))
	for _, b := range benches {
		var ipc [4]float64
		for i, c := range cfgs {
			res, err := r.Run(ctx, b, c)
			if err != nil {
				return nil, err
			}
			ipc[i] = res.IPC()
		}
		rows = append(rows, Figure1Row{
			Bench: b,
			NO64:  ipc[0], Oracle64: ipc[1], NO128: ipc[2], Oracle128: ipc[3],
			Speedup64:  ipc[1]/ipc[0] - 1,
			Speedup128: ipc[3]/ipc[2] - 1,
		})
	}
	return rows, nil
}

// --- Table 3 --------------------------------------------------------

// Table3Row is one benchmark's false-dependence statistics under the
// 128-entry NAS/NO machine: the fraction of committed loads delayed by
// false dependences (FD) and the mean resolution latency in cycles (RL).
type Table3Row struct {
	Bench string
	FD    float64
	RL    float64
}

// Table3 reproduces Table 3 (§3.2).
func Table3(ctx context.Context, r *Runner) ([]Table3Row, error) {
	benches := r.opt.benchmarks()
	if err := r.prefetch(ctx, benches, nas(config.NoSpec)); err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(benches))
	for _, b := range benches {
		res, err := r.Run(ctx, b, nas(config.NoSpec))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Bench: b, FD: res.FalseDepRate(), RL: res.FalseDepLatency()})
	}
	return rows, nil
}

// --- Figure 2 -------------------------------------------------------

// Figure2Row holds the three bars of Figure 2 per benchmark: IPC under
// NAS/NO, NAS/ORACLE and NAS/NAV on the 128-entry machine.
type Figure2Row struct {
	Bench             string
	NO, Oracle, Naive float64
	NaiveMisspec      float64 // Table 4 "NAV" column
}

// Figure2 reproduces Figure 2 (§3.3) and Table 4's NAV column.
func Figure2(ctx context.Context, r *Runner) ([]Figure2Row, error) {
	benches := r.opt.benchmarks()
	if err := r.prefetch(ctx, benches, nas(config.NoSpec), nas(config.Oracle), nas(config.Naive)); err != nil {
		return nil, err
	}
	rows := make([]Figure2Row, 0, len(benches))
	for _, b := range benches {
		no, err := r.Run(ctx, b, nas(config.NoSpec))
		if err != nil {
			return nil, err
		}
		or, err := r.Run(ctx, b, nas(config.Oracle))
		if err != nil {
			return nil, err
		}
		nv, err := r.Run(ctx, b, nas(config.Naive))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure2Row{
			Bench: b, NO: no.IPC(), Oracle: or.IPC(), Naive: nv.IPC(),
			NaiveMisspec: nv.MisspecRate(),
		})
	}
	return rows, nil
}

// --- Figure 3 -------------------------------------------------------

// Figure3Row compares AS/NAV against AS/NO at scheduler latencies 0, 1
// and 2 cycles. Rel[i] is the paper's part (a): the relative performance
// of AS/NAV over AS/NO at latency i (each against its own-latency base);
// BaseIPC is part (b): AS/NO IPC at latency 0.
type Figure3Row struct {
	Bench   string
	Rel     [3]float64
	NoIPC   [3]float64
	NavIPC  [3]float64
	BaseIPC float64
}

// Figure3 reproduces Figure 3 (§3.4).
func Figure3(ctx context.Context, r *Runner) ([]Figure3Row, error) {
	benches := r.opt.benchmarks()
	var cfgs []config.Machine
	for lat := 0; lat <= 2; lat++ {
		cfgs = append(cfgs, as(config.NoSpec, lat), as(config.Naive, lat))
	}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure3Row, 0, len(benches))
	for _, b := range benches {
		row := Figure3Row{Bench: b}
		for lat := 0; lat <= 2; lat++ {
			no, err := r.Run(ctx, b, as(config.NoSpec, lat))
			if err != nil {
				return nil, err
			}
			nv, err := r.Run(ctx, b, as(config.Naive, lat))
			if err != nil {
				return nil, err
			}
			row.NoIPC[lat] = no.IPC()
			row.NavIPC[lat] = nv.IPC()
			row.Rel[lat] = nv.IPC()/no.IPC() - 1
		}
		row.BaseIPC = row.NoIPC[0]
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Figure 4 -------------------------------------------------------

// Figure4Row compares, relative to the 0-cycle AS/NO configuration:
// NAS/ORACLE and AS/NAV at scheduler latencies 0, 1, 2 (§3.4.1).
type Figure4Row struct {
	Bench  string
	Oracle float64 // NAS/ORACLE vs AS/NO(0)
	Nav    [3]float64
}

// Figure4 reproduces Figure 4.
func Figure4(ctx context.Context, r *Runner) ([]Figure4Row, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{as(config.NoSpec, 0), nas(config.Oracle),
		as(config.Naive, 0), as(config.Naive, 1), as(config.Naive, 2)}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure4Row, 0, len(benches))
	for _, b := range benches {
		base, err := r.Run(ctx, b, as(config.NoSpec, 0))
		if err != nil {
			return nil, err
		}
		or, err := r.Run(ctx, b, nas(config.Oracle))
		if err != nil {
			return nil, err
		}
		row := Figure4Row{Bench: b, Oracle: or.IPC()/base.IPC() - 1}
		for lat := 0; lat <= 2; lat++ {
			nv, err := r.Run(ctx, b, as(config.Naive, lat))
			if err != nil {
				return nil, err
			}
			row.Nav[lat] = nv.IPC()/base.IPC() - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Figure 5 -------------------------------------------------------

// Figure5Row compares selective (NAS/SEL) and store-barrier (NAS/STORE)
// speculation against naive speculation (NAS/NAV), with NAS/ORACLE for
// reference (§3.5).
type Figure5Row struct {
	Bench            string
	Sel, Store       float64 // relative to NAS/NAV
	OracleRel        float64
	SelIPC, StoreIPC float64
}

// Figure5 reproduces Figure 5.
func Figure5(ctx context.Context, r *Runner) ([]Figure5Row, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{nas(config.Naive), nas(config.Selective), nas(config.StoreBarrier), nas(config.Oracle)}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure5Row, 0, len(benches))
	for _, b := range benches {
		nv, err := r.Run(ctx, b, nas(config.Naive))
		if err != nil {
			return nil, err
		}
		sel, err := r.Run(ctx, b, nas(config.Selective))
		if err != nil {
			return nil, err
		}
		st, err := r.Run(ctx, b, nas(config.StoreBarrier))
		if err != nil {
			return nil, err
		}
		or, err := r.Run(ctx, b, nas(config.Oracle))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5Row{
			Bench: b,
			Sel:   sel.IPC()/nv.IPC() - 1, Store: st.IPC()/nv.IPC() - 1,
			OracleRel: or.IPC()/nv.IPC() - 1,
			SelIPC:    sel.IPC(), StoreIPC: st.IPC(),
		})
	}
	return rows, nil
}

// --- Figure 6 and Table 4 ------------------------------------------

// Figure6Row compares speculation/synchronization (NAS/SYNC) against
// NAS/NAV, with NAS/ORACLE for reference (§3.6); the misspeculation
// rates are Table 4.
type Figure6Row struct {
	Bench       string
	SyncRel     float64 // NAS/SYNC vs NAS/NAV
	OracleRel   float64 // NAS/ORACLE vs NAS/NAV
	NavMisspec  float64 // Table 4 NAV column
	SyncMisspec float64 // Table 4 SYNC column
	SyncIPC     float64
}

// Figure6 reproduces Figure 6 and Table 4.
func Figure6(ctx context.Context, r *Runner) ([]Figure6Row, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{nas(config.Naive), nas(config.Sync), nas(config.Oracle)}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure6Row, 0, len(benches))
	for _, b := range benches {
		nv, err := r.Run(ctx, b, nas(config.Naive))
		if err != nil {
			return nil, err
		}
		sy, err := r.Run(ctx, b, nas(config.Sync))
		if err != nil {
			return nil, err
		}
		or, err := r.Run(ctx, b, nas(config.Oracle))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure6Row{
			Bench:       b,
			SyncRel:     sy.IPC()/nv.IPC() - 1,
			OracleRel:   or.IPC()/nv.IPC() - 1,
			NavMisspec:  nv.MisspecRate(),
			SyncMisspec: sy.MisspecRate(),
			SyncIPC:     sy.IPC(),
		})
	}
	return rows, nil
}

// --- Figure 7 / §3.7 ------------------------------------------------

// Figure7Row contrasts the continuous and split windows on the same
// hardware: misspeculation rates and IPC under 0-cycle AS/NAV and under
// NAS/NAV, per benchmark plus the Figure 7 recurrence kernel.
type Figure7Row struct {
	Bench                 string
	ContASMisspec         float64
	SplitASMisspec        float64
	ContNavMisspec        float64
	SplitNavMisspec       float64
	ContASIPC, SplitASIPC float64
}

// splitUnits is the §3.7 model's sub-window count.
const splitUnits = 4

// Figure7 reproduces the §3.7 discussion quantitatively.
func Figure7(ctx context.Context, r *Runner) ([]Figure7Row, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{
		as(config.Naive, 0),
		as(config.Naive, 0).WithSplitWindow(splitUnits),
		nas(config.Naive),
		nas(config.Naive).WithSplitWindow(splitUnits),
	}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	rows := make([]Figure7Row, 0, len(benches))
	for _, b := range benches {
		var res [4]*stats.Run
		for i, c := range cfgs {
			x, err := r.Run(ctx, b, c)
			if err != nil {
				return nil, err
			}
			res[i] = x
		}
		rows = append(rows, Figure7Row{
			Bench:           b,
			ContASMisspec:   res[0].MisspecRate(),
			SplitASMisspec:  res[1].MisspecRate(),
			ContNavMisspec:  res[2].MisspecRate(),
			SplitNavMisspec: res[3].MisspecRate(),
			ContASIPC:       res[0].IPC(),
			SplitASIPC:      res[1].IPC(),
		})
	}
	return rows, nil
}

// --- §4 summary -----------------------------------------------------

// SummaryRow is one of the paper's §4 average-speedup findings, with the
// paper's reported numbers alongside the measured ones.
type SummaryRow struct {
	Finding           string
	IntMeasured       float64
	FPMeasured        float64
	IntPaper, FPPaper float64
}

// Summary computes the paper's §4 average speedups (arithmetic mean over
// the int and fp subsets).
func Summary(ctx context.Context, r *Runner) ([]SummaryRow, error) {
	benches := r.opt.benchmarks()
	cfgs := []config.Machine{nas(config.NoSpec), nas(config.Naive), nas(config.Sync),
		nas(config.Oracle), as(config.NoSpec, 0), as(config.Naive, 0)}
	if err := r.prefetch(ctx, benches, cfgs...); err != nil {
		return nil, err
	}
	ipc := func(b string, c config.Machine) float64 {
		res, err := r.Run(ctx, b, c)
		if err != nil {
			return 0
		}
		return res.IPC()
	}
	speedup := func(num, den config.Machine) func(string) float64 {
		return func(b string) float64 { return ipc(b, num)/ipc(b, den) - 1 }
	}
	var rows []SummaryRow
	add := func(name string, f func(string) float64, intPaper, fpPaper float64) {
		im, fm := meansByClass(benches, f)
		rows = append(rows, SummaryRow{Finding: name, IntMeasured: im, FPMeasured: fm,
			IntPaper: intPaper, FPPaper: fpPaper})
	}
	add("NAS/ORACLE over NAS/NO", speedup(nas(config.Oracle), nas(config.NoSpec)), 0.55, 1.54)
	add("NAS/NAV over NAS/NO", speedup(nas(config.Naive), nas(config.NoSpec)), 0.29, 1.13)
	add("AS/NAV over AS/NO (0-cycle)", speedup(as(config.Naive, 0), as(config.NoSpec, 0)), 0.046, 0.053)
	add("NAS/SYNC over NAS/NAV", speedup(nas(config.Sync), nas(config.Naive)), 0.197, 0.191)
	add("NAS/ORACLE over NAS/NAV", speedup(nas(config.Oracle), nas(config.Naive)), 0.209, 0.204)
	return rows, nil
}

// workloadClass returns "int" or "fp" for a benchmark name.
func workloadClass(bench string) string {
	for _, n := range workload.FPNames() {
		if n == bench {
			return "fp"
		}
	}
	return "int"
}

var _ = fmt.Sprintf // keep fmt imported for renderers in this package
