package experiments

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// journalRecord fabricates a plausible completed-run record for journal
// tests without paying for a simulation.
func journalRecord(bench string, cfg config.Machine, insts int64) RunRecord {
	res := &stats.Run{
		Config: cfg.Name(), Workload: bench,
		Cycles: 2 * insts, Committed: insts,
	}
	rec := NewRunRecord(bench, cfg, insts, 123*time.Millisecond, res)
	rec.Attempts = 1
	return rec
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []RunRecord{
		journalRecord("126.gcc", nas(config.Naive), 1000),
		journalRecord("126.gcc", nas(config.Sync), 1000),
		journalRecord("102.swim", nas(config.Naive), 1000),
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Provenance != want[i].Provenance || *rec.Stats != *want[i].Stats {
			t.Errorf("record %d differs after round trip:\ngot:  %+v\nwant: %+v", i, rec, want[i])
		}
	}
}

// TestJournalTornTail: a crash mid-append leaves a truncated frame; the
// next open must replay every intact entry, drop the torn one, and
// truncate the file so appends continue on a frame boundary.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: chop half of the last frame off.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := int64(len(data)) - 40
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Config != "NAS/NAV" {
		t.Fatalf("after torn tail replayed %v, want just NAS/NAV", recs)
	}
	// The journal must stay appendable after truncation.
	if err := j2.Append(journalRecord("102.swim", nas(config.Oracle), 1000)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err = OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after append-past-torn-tail replayed %d records, want 2", len(recs))
	}
}

// TestJournalChecksumCorruption: a bit flip inside a frame's payload
// must end the replay at the last intact frame, never parse the
// corrupted entry.
func TestJournalChecksumCorruption(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0xFF // flip bits inside the last frame's payload
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Config != "NAS/NAV" {
		t.Fatalf("after corruption replayed %v, want just the intact NAS/NAV entry", recs)
	}
}

// TestJournalMetaMismatch: a journal written under different sweep
// options must be rejected with a descriptive error, not silently
// replayed into the wrong sweep.
func TestJournalMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, Options{Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, _, err = OpenJournal(dir, Options{Insts: 2000})
	if err == nil {
		t.Fatal("journal with mismatched insts accepted")
	}
	if !strings.Contains(err.Error(), "fresh -resume directory") {
		t.Errorf("mismatch error should tell the user what to do: %v", err)
	}

	_, _, err = OpenJournal(dir, Options{Insts: 1000, Sampled: true, TimingWindow: 500})
	if err == nil {
		t.Fatal("journal with mismatched sampling accepted")
	}
}

// TestJournalDedup: if the same cell was journaled twice (e.g. two
// crash-resume cycles that both re-ran it), the last entry wins and the
// replay still yields one record per cell.
func TestJournalDedup(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := journalRecord("126.gcc", nas(config.Naive), 1000)
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.WallSeconds = 9.9
	if err := j.Append(second); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 after dedup", len(recs))
	}
	if recs[0].WallSeconds != 9.9 {
		t.Errorf("dedup kept WallSeconds %v, want the last entry (9.9)", recs[0].WallSeconds)
	}
}

// TestJournalRejectsForeignFile: pointing -resume at a directory whose
// runs.journal is not a journal must fail loudly.
func TestJournalRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(`{"not":"a journal"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(dir, Options{Insts: 1000})
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign file accepted or wrong error: %v", err)
	}
}

// writeLease plants a lease file for segment id with the given
// heartbeat age, as a crashed (or live) foreign owner would leave it.
func writeLease(t *testing.T, dir, id string, pid int, hbAge time.Duration) {
	t.Helper()
	now := time.Now().Add(-hbAge).Unix()
	data, err := json.Marshal(leaseInfo{Owner: id, PID: pid, AcquiredUnix: now, HeartbeatUnix: now})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leasePath(dir, id), data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// readLease parses segment id's lease file.
func readLease(t *testing.T, dir, id string) leaseInfo {
	t.Helper()
	data, err := os.ReadFile(leasePath(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	var info leaseInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("lease %s unparsable: %v", leasePath(dir, id), err)
	}
	return info
}

// TestJournalSegmentLeaseExclusive: a segment is single-writer — a
// second open of the same id while the lease is fresh must be refused
// with ErrLeaseHeld, a different id must coexist, and Close must
// release the lease so a successor takes over without waiting.
func TestJournalSegmentLeaseExclusive(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j0, recs, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh segment replayed %d records", len(recs))
	}
	if got := readLease(t, dir, "w0"); got.Owner != "w0" || got.PID != os.Getpid() {
		t.Errorf("lease = %+v, want owner w0 pid %d", got, os.Getpid())
	}

	_, _, err = OpenJournalSegment(dir, "w0", opt, 0)
	var held *ErrLeaseHeld
	if !errors.As(err, &held) {
		t.Fatalf("double-open of a leased segment: err = %v, want ErrLeaseHeld", err)
	}
	if held.PID != os.Getpid() {
		t.Errorf("ErrLeaseHeld.PID = %d, want %d", held.PID, os.Getpid())
	}

	j1, _, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatalf("sibling segment refused: %v", err)
	}
	j1.Close()

	if err := j0.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leasePath(dir, "w0")); !os.IsNotExist(err) {
		t.Fatalf("Close left the lease behind: %v", err)
	}
	j0b, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatalf("reopen after clean release: %v", err)
	}
	j0b.Close()
}

// TestJournalSegmentStaleLeaseReclaim: a lease whose heartbeat is older
// than the TTL belongs to a dead writer and must be reclaimed; an
// unparsable (torn) lease is equally evidence of death.
func TestJournalSegmentStaleLeaseReclaim(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	writeLease(t, dir, "w0", 99999, time.Hour)
	j, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatalf("stale lease not reclaimed: %v", err)
	}
	if got := readLease(t, dir, "w0"); got.PID != os.Getpid() {
		t.Errorf("reclaimed lease pid = %d, want %d", got.PID, os.Getpid())
	}
	j.Close()

	if err := os.WriteFile(leasePath(dir, "w1"), []byte("torn{"), 0o666); err != nil {
		t.Fatal(err)
	}
	j1, _, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatalf("torn lease not reclaimed: %v", err)
	}
	j1.Close()

	// A fresh heartbeat, however stale the acquire time, means alive.
	writeLease(t, dir, "w2", 99999, 0)
	if _, _, err := OpenJournalSegment(dir, "w2", opt, 0); err == nil {
		t.Fatal("fresh foreign lease was stolen")
	}
}

// TestJournalHeartbeat: Heartbeat must rewrite the lease with a fresh
// liveness timestamp; on the legacy unleased journal it is a no-op.
func TestJournalHeartbeat(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Age the on-disk lease, then heartbeat: the timestamp must recover.
	writeLease(t, dir, "w0", os.Getpid(), time.Hour)
	if err := j.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if got := readLease(t, dir, "w0"); time.Since(time.Unix(got.HeartbeatUnix, 0)) > time.Minute {
		t.Errorf("heartbeat did not refresh the lease: %+v", got)
	}

	legacy, _, err := OpenJournal(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := legacy.Heartbeat(); err != nil {
		t.Errorf("Heartbeat on unleased journal: %v", err)
	}
}

// TestBreakLease: the supervisor's force-release (used only after
// waitpid proves the owner dead) must let a successor reacquire
// immediately, without waiting out the TTL.
func TestBreakLease(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	writeLease(t, dir, "w0", 99999, 0) // fresh: unreclaimable by TTL
	if _, _, err := OpenJournalSegment(dir, "w0", opt, 0); err == nil {
		t.Fatal("fresh lease acquired without BreakLease")
	}
	if err := BreakLease(dir, "w0"); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatalf("reacquire after BreakLease: %v", err)
	}
	j.Close()

	// Breaking a lease that is not there is not an error (the worker
	// may have released it on a clean exit).
	if err := BreakLease(dir, "w0"); err != nil {
		t.Errorf("BreakLease on released lease: %v", err)
	}
	if err := BreakLease(dir, "../evil"); err == nil {
		t.Error("BreakLease accepted a path-escaping id")
	}
}

// TestJournalSegmentIDValidation: ids are filename tokens; anything
// that could escape the directory or collide with runs.journal is
// rejected.
func TestJournalSegmentIDValidation(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"", "a/b", "..", "w 0", "w.0"} {
		if _, _, err := OpenJournalSegment(dir, id, Options{Insts: 1000}, 0); err == nil {
			t.Errorf("segment id %q accepted", id)
		}
	}
}

// TestReplayJournalDirMerges: the merged replay spans the legacy
// runs.journal and every segment, deduplicating per cell with the
// lexically-last copy winning.
func TestReplayJournalDirMerges(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	legacy, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	shared := journalRecord("126.gcc", nas(config.Naive), 1000)
	shared.WallSeconds = 1.0
	if err := legacy.Append(shared); err != nil {
		t.Fatal(err)
	}
	legacy.Close()

	w0, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	dup := shared
	dup.WallSeconds = 2.0
	if err := w0.Append(dup); err != nil {
		t.Fatal(err)
	}
	if err := w0.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	w0.Close()

	w1, _, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(journalRecord("102.swim", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	recs, err := ReplayJournalDir(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("merged replay has %d records, want 3 deduplicated cells", len(recs))
	}
	// runs.journal sorts before runs.w0.journal, so the segment's copy
	// of the shared cell wins.
	if recs[0].Bench != "126.gcc" || recs[0].WallSeconds != 2.0 {
		t.Errorf("shared cell = %+v, want the lexically-last (segment) copy", recs[0])
	}

	// A segment under a different fingerprint poisons the whole merge.
	foreign, _, err := openJournalFile(SegmentPath(dir, "w2"), Options{Insts: 2000}.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	foreign.Close()
	if _, err := ReplayJournalDir(dir, opt); err == nil {
		t.Error("merge accepted a segment with a foreign fingerprint")
	}
}

// TestReplayJournalDirSkipsForeignTornTail: another writer's torn tail
// is either a live append or their crash to repair — the merge must
// skip it without truncating their file.
func TestReplayJournalDirSkipsForeignTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	w0, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Append(journalRecord("126.gcc", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := w0.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	w0.Close()

	path := SegmentPath(dir, "w0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := int64(len(data)) - 40
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	w1, recs, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1.Close()
	if len(recs) != 1 || recs[0].Config != "NAS/NAV" {
		t.Fatalf("merge past foreign torn tail replayed %v, want just NAS/NAV", recs)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != torn {
		t.Errorf("foreign segment was truncated: size %d, want %d", fi.Size(), torn)
	}

	// The owner's own reopen is the one that repairs the tear.
	w0b, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	w0b.Close()
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= torn {
		t.Errorf("owner reopen did not truncate the torn tail: size %d", fi.Size())
	}
}
