package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// journalRecord fabricates a plausible completed-run record for journal
// tests without paying for a simulation.
func journalRecord(bench string, cfg config.Machine, insts int64) RunRecord {
	res := &stats.Run{
		Config: cfg.Name(), Workload: bench,
		Cycles: 2 * insts, Committed: insts,
	}
	rec := NewRunRecord(bench, cfg, insts, 123*time.Millisecond, res)
	rec.Attempts = 1
	return rec
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []RunRecord{
		journalRecord("126.gcc", nas(config.Naive), 1000),
		journalRecord("126.gcc", nas(config.Sync), 1000),
		journalRecord("102.swim", nas(config.Naive), 1000),
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Provenance != want[i].Provenance || *rec.Stats != *want[i].Stats {
			t.Errorf("record %d differs after round trip:\ngot:  %+v\nwant: %+v", i, rec, want[i])
		}
	}
}

// TestJournalTornTail: a crash mid-append leaves a truncated frame; the
// next open must replay every intact entry, drop the torn one, and
// truncate the file so appends continue on a frame boundary.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: chop half of the last frame off.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := int64(len(data)) - 40
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Config != "NAS/NAV" {
		t.Fatalf("after torn tail replayed %v, want just NAS/NAV", recs)
	}
	// The journal must stay appendable after truncation.
	if err := j2.Append(journalRecord("102.swim", nas(config.Oracle), 1000)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs, err = OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after append-past-torn-tail replayed %d records, want 2", len(recs))
	}
}

// TestJournalChecksumCorruption: a bit flip inside a frame's payload
// must end the replay at the last intact frame, never parse the
// corrupted entry.
func TestJournalChecksumCorruption(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Naive), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("126.gcc", nas(config.Sync), 1000)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0xFF // flip bits inside the last frame's payload
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Config != "NAS/NAV" {
		t.Fatalf("after corruption replayed %v, want just the intact NAS/NAV entry", recs)
	}
}

// TestJournalMetaMismatch: a journal written under different sweep
// options must be rejected with a descriptive error, not silently
// replayed into the wrong sweep.
func TestJournalMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, Options{Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, _, err = OpenJournal(dir, Options{Insts: 2000})
	if err == nil {
		t.Fatal("journal with mismatched insts accepted")
	}
	if !strings.Contains(err.Error(), "fresh -resume directory") {
		t.Errorf("mismatch error should tell the user what to do: %v", err)
	}

	_, _, err = OpenJournal(dir, Options{Insts: 1000, Sampled: true, TimingWindow: 500})
	if err == nil {
		t.Fatal("journal with mismatched sampling accepted")
	}
}

// TestJournalDedup: if the same cell was journaled twice (e.g. two
// crash-resume cycles that both re-ran it), the last entry wins and the
// replay still yields one record per cell.
func TestJournalDedup(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Insts: 1000}

	j, _, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	first := journalRecord("126.gcc", nas(config.Naive), 1000)
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.WallSeconds = 9.9
	if err := j.Append(second); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 after dedup", len(recs))
	}
	if recs[0].WallSeconds != 9.9 {
		t.Errorf("dedup kept WallSeconds %v, want the last entry (9.9)", recs[0].WallSeconds)
	}
}

// TestJournalRejectsForeignFile: pointing -resume at a directory whose
// runs.journal is not a journal must fail loudly.
func TestJournalRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(`{"not":"a journal"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(dir, Options{Insts: 1000})
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign file accepted or wrong error: %v", err)
	}
}
