package experiments

import (
	"strings"
	"testing"

	"mdspec/internal/config"
)

// testRunner uses a small subset and budget so the whole file stays fast.
func testRunner() *Runner {
	return NewRunner(Options{
		Insts:      15_000,
		Benchmarks: []string{"129.compress", "126.gcc", "102.swim"},
	})
}

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	a, err := r.Run(bg, "126.gcc", nas(config.NoSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(bg, "126.gcc", nas(config.NoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs should return the memoized result")
	}
	c, err := r.Run(bg, "126.gcc", nas(config.Oracle))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different configs must not share results")
	}
}

func TestRunnerUnknownBenchmark(t *testing.T) {
	r := testRunner()
	if _, err := r.Run(bg, "999.bogus", nas(config.NoSpec)); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestFigure1Shape(t *testing.T) {
	rows, err := Figure1(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Oracle128 < r.NO128 {
			t.Errorf("%s: oracle (%.3f) must not lose to no-speculation (%.3f)",
				r.Bench, r.Oracle128, r.NO128)
		}
		if r.Oracle128 < r.Oracle64 {
			t.Errorf("%s: 128-entry oracle should not lose to 64-entry", r.Bench)
		}
		if r.Speedup128 < r.Speedup64-0.05 {
			t.Errorf("%s: oracle speedup should grow (or hold) with window size: %.3f vs %.3f",
				r.Bench, r.Speedup128, r.Speedup64)
		}
	}
	out := RenderFigure1(rows)
	if !strings.Contains(out, "129.compress") || !strings.Contains(out, "Figure 1") {
		t.Error("render output missing expected content")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FD < 0 || r.FD > 1 {
			t.Errorf("%s: FD %.3f out of range", r.Bench, r.FD)
		}
		if r.FD > 0 && r.RL <= 0 {
			t.Errorf("%s: delayed loads but zero resolution latency", r.Bench)
		}
	}
	// swim must be false-dependence dominated (paper: 91%).
	for _, r := range rows {
		if r.Bench == "102.swim" && r.FD < 0.5 {
			t.Errorf("swim FD = %.3f, should be large", r.FD)
		}
	}
	if !strings.Contains(RenderTable3(rows), "Table 3") {
		t.Error("render output missing title")
	}
}

func TestFigure2Ordering(t *testing.T) {
	rows, err := Figure2(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Oracle < r.NO {
			t.Errorf("%s: ORACLE %.3f < NO %.3f", r.Bench, r.Oracle, r.NO)
		}
		if r.Oracle+1e-9 < r.Naive {
			t.Errorf("%s: ORACLE %.3f < NAV %.3f", r.Bench, r.Oracle, r.Naive)
		}
	}
}

func TestFigure3SchedulerLatencyMonotone(t *testing.T) {
	rows, err := Figure3(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Higher scheduler latency must not improve AS/NAV.
		if r.NavIPC[2] > r.NavIPC[0]*1.01 {
			t.Errorf("%s: AS/NAV got faster with a slower scheduler: %v", r.Bench, r.NavIPC)
		}
		if r.BaseIPC <= 0 {
			t.Errorf("%s: base IPC missing", r.Bench)
		}
	}
}

func TestFigure4OracleCompetitive(t *testing.T) {
	rows, err := Figure4(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The 2-cycle scheduler must not beat the 0-cycle one.
		if r.Nav[2] > r.Nav[0]+0.01 {
			t.Errorf("%s: AS/NAV+2 above AS/NAV+0: %v", r.Bench, r.Nav)
		}
	}
}

func TestFigure6SyncApproachesOracle(t *testing.T) {
	rows, err := Figure6(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SyncMisspec > r.NavMisspec {
			t.Errorf("%s: SYNC misspec %.4f above NAV %.4f", r.Bench, r.SyncMisspec, r.NavMisspec)
		}
		if r.SyncRel < -0.05 {
			t.Errorf("%s: SYNC loses badly to NAV (%.3f)", r.Bench, r.SyncRel)
		}
	}
	if !strings.Contains(RenderTable4(rows), "Table 4") {
		t.Error("table 4 render missing title")
	}
}

func TestFigure7SplitMisspeculates(t *testing.T) {
	rows, err := Figure7(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	anySplit := false
	for _, r := range rows {
		if r.ContASMisspec > 0.001 {
			t.Errorf("%s: continuous AS/NAV misspec %.4f should be ~0", r.Bench, r.ContASMisspec)
		}
		if r.SplitASMisspec > 0 {
			anySplit = true
		}
		if r.SplitNavMisspec+1e-12 < r.ContNavMisspec*0.5 {
			t.Errorf("%s: split NAS/NAV misspec (%.4f) collapsed below continuous (%.4f)",
				r.Bench, r.SplitNavMisspec, r.ContNavMisspec)
		}
	}
	if !anySplit {
		t.Error("no benchmark misspeculated under the split window with AS/NAV")
	}
}

func TestSummaryAllFindings(t *testing.T) {
	rows, err := Summary(bg, testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("findings = %d, want 5", len(rows))
	}
	// The qualitative orderings of §4 must hold even on a tiny budget.
	byName := map[string]SummaryRow{}
	for _, r := range rows {
		byName[r.Finding] = r
	}
	oracle := byName["NAS/ORACLE over NAS/NO"]
	nav := byName["NAS/NAV over NAS/NO"]
	if oracle.IntMeasured < nav.IntMeasured-0.02 || oracle.FPMeasured < nav.FPMeasured-0.02 {
		t.Errorf("oracle should dominate naive: %+v vs %+v", oracle, nav)
	}
	sync := byName["NAS/SYNC over NAS/NAV"]
	if sync.IntMeasured <= 0 {
		t.Errorf("SYNC should beat NAV on int codes: %+v", sync)
	}
	out := RenderSummary(rows)
	if !strings.Contains(out, "paper") {
		t.Error("summary render should include paper reference columns")
	}
}

func TestAblationsRun(t *testing.T) {
	r := NewRunner(Options{Insts: 10_000, Benchmarks: []string{"129.compress"}})
	if rows, err := AblationMDPTSize(bg, r); err != nil || len(rows) == 0 {
		t.Fatalf("mdpt ablation: %v (%d rows)", err, len(rows))
	} else if !strings.Contains(RenderMDPTSize(rows), "MDPT") {
		t.Error("mdpt render missing")
	}
	if rows, err := AblationFlush(bg, r); err != nil || len(rows) == 0 {
		t.Fatalf("flush ablation: %v", err)
	} else if !strings.Contains(RenderFlush(rows), "flush") {
		t.Error("flush render missing")
	}
	if rows, err := AblationWindow(bg, r); err != nil || len(rows) == 0 {
		t.Fatalf("window ablation: %v", err)
	} else if !strings.Contains(RenderWindow(rows), "window") {
		t.Error("window render missing")
	}
	if rows, err := AblationStoreSets(bg, r); err != nil || len(rows) == 0 {
		t.Fatalf("store-set ablation: %v", err)
	} else if !strings.Contains(RenderStoreSets(rows), "store-set") {
		t.Error("store-set render missing")
	}
}

func TestWindowAblationGrowsOracleGain(t *testing.T) {
	r := NewRunner(Options{Insts: 20_000, Benchmarks: []string{"102.swim"}})
	rows, err := AblationWindow(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	gain := map[int]float64{}
	for _, row := range rows {
		gain[row.Window] = row.Oracle/row.NO - 1
	}
	// §3.2: the benefit of exploiting load/store parallelism grows with
	// the window.
	if gain[256] < gain[32] {
		t.Errorf("oracle gain should grow with window: 32=%+.3f 256=%+.3f", gain[32], gain[256])
	}
}

func TestPaperOrder(t *testing.T) {
	in := []string{"102.swim", "099.go", "147.vortex"}
	out := paperOrder(in)
	want := []string{"099.go", "147.vortex", "102.swim"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("paperOrder = %v, want %v", out, want)
		}
	}
}

func TestWorkloadClass(t *testing.T) {
	if workloadClass("126.gcc") != "int" || workloadClass("102.swim") != "fp" {
		t.Error("workloadClass misclassifies")
	}
}

func TestAblationBPred(t *testing.T) {
	r := NewRunner(Options{Insts: 15_000, Benchmarks: []string{"129.compress"}})
	rows, err := AblationBPred(bg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 predictor kinds", len(rows))
	}
	byKind := map[string]BPredRow{}
	for _, row := range rows {
		byKind[row.Kind] = row
	}
	if byKind["static-taken"].BMissRate <= byKind["combined"].BMissRate {
		t.Error("static prediction should miss far more than the combined predictor")
	}
	if byKind["static-taken"].OracleRel >= byKind["combined"].OracleRel {
		t.Error("misprediction stalls should shrink the oracle's advantage")
	}
	if !strings.Contains(RenderBPred(rows), "McFarling") {
		t.Error("render missing title")
	}
}
