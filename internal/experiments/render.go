package experiments

import (
	"fmt"
	"strings"

	"mdspec/internal/stats"
	"mdspec/internal/workload"
)

func pct(v float64) string  { return fmt.Sprintf("%+.1f%%", 100*v) }
func pct2(v float64) string { return fmt.Sprintf("%.4f%%", 100*v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }

// RenderFigure1 formats Figure 1 like the paper's bar chart, one row per
// benchmark with the oracle speedups, plus int/fp averages.
func RenderFigure1(rows []Figure1Row) string {
	t := &stats.Table{Header: []string{"bench", "64/NO", "64/ORACLE", "spdup64", "128/NO", "128/ORACLE", "spdup128"}}
	var int64s, fp64s, int128s, fp128s []float64
	for _, r := range rows {
		t.Add(r.Bench, f3(r.NO64), f3(r.Oracle64), pct(r.Speedup64),
			f3(r.NO128), f3(r.Oracle128), pct(r.Speedup128))
		if workloadClass(r.Bench) == "int" {
			int64s, int128s = append(int64s, r.Speedup64), append(int128s, r.Speedup128)
		} else {
			fp64s, fp128s = append(fp64s, r.Speedup64), append(fp128s, r.Speedup128)
		}
	}
	var b strings.Builder
	b.WriteString("Figure 1: IPC with (NAS/ORACLE) and without (NAS/NO) exploiting load/store parallelism\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "averages: 64-entry int %s fp %s | 128-entry int %s fp %s (paper: ~+55%% int, ~+154%% fp at 128)\n",
		pct(stats.Mean(int64s)), pct(stats.Mean(fp64s)), pct(stats.Mean(int128s)), pct(stats.Mean(fp128s)))
	return b.String()
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Table3Row) string {
	t := &stats.Table{Header: []string{"bench", "FD", "RL (cycles)"}}
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprintf("%.1f%%", 100*r.FD), fmt.Sprintf("%.1f", r.RL))
	}
	return "Table 3: loads delayed by false dependences (128-entry NAS/NO)\n" + t.String()
}

// RenderFigure2 formats Figure 2.
func RenderFigure2(rows []Figure2Row) string {
	t := &stats.Table{Header: []string{"bench", "NAS/NO", "NAS/ORACLE", "NAS/NAV", "NAV vs NO", "NAV misspec"}}
	var iv, fv []float64
	for _, r := range rows {
		rel := r.Naive/r.NO - 1
		t.Add(r.Bench, f3(r.NO), f3(r.Oracle), f3(r.Naive), pct(rel), pct2(r.NaiveMisspec))
		if workloadClass(r.Bench) == "int" {
			iv = append(iv, rel)
		} else {
			fv = append(fv, rel)
		}
	}
	var b strings.Builder
	b.WriteString("Figure 2: naive memory dependence speculation without an address scheduler\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "NAS/NAV over NAS/NO averages: int %s fp %s (paper: +29%% int, +113%% fp)\n",
		pct(stats.Mean(iv)), pct(stats.Mean(fv)))
	return b.String()
}

// RenderFigure3 formats Figure 3 (parts a and b).
func RenderFigure3(rows []Figure3Row) string {
	t := &stats.Table{Header: []string{"bench", "rel@0cyc", "rel@1cyc", "rel@2cyc", "AS/NO-0 IPC"}}
	for _, r := range rows {
		t.Add(r.Bench, pct(r.Rel[0]), pct(r.Rel[1]), pct(r.Rel[2]), f3(r.BaseIPC))
	}
	return "Figure 3: AS/NAV relative to AS/NO at address-scheduler latency 0/1/2 (a), base AS/NO IPC (b)\n" + t.String()
}

// RenderFigure4 formats Figure 4.
func RenderFigure4(rows []Figure4Row) string {
	t := &stats.Table{Header: []string{"bench", "NAS/ORACLE", "AS/NAV+0", "AS/NAV+1", "AS/NAV+2"}}
	for _, r := range rows {
		t.Add(r.Bench, pct(r.Oracle), pct(r.Nav[0]), pct(r.Nav[1]), pct(r.Nav[2]))
	}
	return "Figure 4: relative to 0-cycle AS/NO — oracle disambiguation vs address scheduling + naive speculation\n" + t.String()
}

// RenderFigure5 formats Figure 5.
func RenderFigure5(rows []Figure5Row) string {
	t := &stats.Table{Header: []string{"bench", "NAS/SEL vs NAV", "NAS/STORE vs NAV", "NAS/ORACLE vs NAV"}}
	for _, r := range rows {
		t.Add(r.Bench, pct(r.Sel), pct(r.Store), pct(r.OracleRel))
	}
	return "Figure 5: selective and store-barrier speculation relative to naive speculation\n" + t.String()
}

// RenderFigure6 formats Figure 6 together with Table 4.
func RenderFigure6(rows []Figure6Row) string {
	t := &stats.Table{Header: []string{"bench", "SYNC vs NAV", "ORACLE vs NAV", "NAV misspec", "SYNC misspec"}}
	var iv, fv []float64
	for _, r := range rows {
		t.Add(r.Bench, pct(r.SyncRel), pct(r.OracleRel), pct2(r.NavMisspec), pct2(r.SyncMisspec))
		if workloadClass(r.Bench) == "int" {
			iv = append(iv, r.SyncRel)
		} else {
			fv = append(fv, r.SyncRel)
		}
	}
	var b strings.Builder
	b.WriteString("Figure 6 + Table 4: speculation/synchronization relative to naive speculation\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "NAS/SYNC over NAS/NAV averages: int %s fp %s (paper: +19.7%% int, +19.1%% fp)\n",
		pct(stats.Mean(iv)), pct(stats.Mean(fv)))
	return b.String()
}

// RenderTable4 formats just the Table 4 misspeculation rates.
func RenderTable4(rows []Figure6Row) string {
	t := &stats.Table{Header: []string{"bench", "NAV", "SYNC"}}
	for _, r := range rows {
		t.Add(r.Bench, pct2(r.NavMisspec), pct2(r.SyncMisspec))
	}
	return "Table 4: memory dependence misspeculation rates (over committed loads)\n" + t.String()
}

// RenderFigure7 formats the §3.7 comparison.
func RenderFigure7(rows []Figure7Row) string {
	t := &stats.Table{Header: []string{"bench", "AS/NAV cont", "AS/NAV split", "NAS/NAV cont", "NAS/NAV split", "IPC cont", "IPC split"}}
	for _, r := range rows {
		t.Add(r.Bench, pct2(r.ContASMisspec), pct2(r.SplitASMisspec),
			pct2(r.ContNavMisspec), pct2(r.SplitNavMisspec), f3(r.ContASIPC), f3(r.SplitASIPC))
	}
	return fmt.Sprintf("Figure 7 / §3.7: misspeculation rates, continuous vs %d-unit split window\n", splitUnits) + t.String()
}

// RenderSummary formats the §4 summary with paper-vs-measured columns.
func RenderSummary(rows []SummaryRow) string {
	t := &stats.Table{Header: []string{"finding", "int measured", "int paper", "fp measured", "fp paper"}}
	for _, r := range rows {
		t.Add(r.Finding, pct(r.IntMeasured), pct(r.IntPaper), pct(r.FPMeasured), pct(r.FPPaper))
	}
	return "Summary (§4): average speedups, measured vs paper\n" + t.String()
}

// orderRows sorts rows to the paper's Table 1 order; experiments already
// iterate in that order, so this is a no-op guard for custom benchmark
// subsets.
func paperOrder(benches []string) []string {
	idx := make(map[string]int)
	for i, n := range workload.Names() {
		idx[n] = i
	}
	out := append([]string(nil), benches...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && idx[out[j]] < idx[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
