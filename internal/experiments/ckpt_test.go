package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdspec/internal/ckpt"
	"mdspec/internal/config"
	"mdspec/internal/emu"
	"mdspec/internal/parsim"
	"mdspec/internal/workload"
)

// ckptOpt is a sampled geometry small enough for tests but with a
// multi-segment decomposition, so checkpoints actually exist.
func ckptOpt() Options {
	return Options{Insts: 24_000, Sampled: true,
		TimingWindow: 3_000, FunctionalWindow: 6_000, SegmentPeriods: 2}
}

// ckptFile returns the single .mdckpt file in dir (or fails).
func ckptFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.mdckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one .mdckpt in %s, got %v (%v)", dir, files, err)
	}
	return files[0]
}

// TestRunnerCheckpointsBitIdentical is the acceptance criterion at the
// runner layer: a sampled cell simulated with warm-state checkpoints —
// in-memory, freshly captured to disk, or reopened from another
// runner's file — must be bit-identical to the plain interval-parallel
// run without any checkpoints.
func TestRunnerCheckpointsBitIdentical(t *testing.T) {
	const bench = "129.compress"
	cfg := nas(config.Sync)
	opt := ckptOpt()

	// Ground truth: parsim without checkpoints over a private recording
	// (the determinism contract makes recordings interchangeable).
	p, err := workload.Build(bench)
	if err != nil {
		t.Fatal(err)
	}
	want, err := parsim.Run(bg, cfg, emu.NewRecording(emu.New(p)), parsim.Options{
		TotalTiming: opt.Insts, TimingInsts: opt.timingWindow(),
		FunctionalInsts: opt.functionalWindow(), SegmentPeriods: opt.SegmentPeriods,
	})
	if err != nil {
		t.Fatal(err)
	}
	want.Workload = bench

	// In-memory checkpoints (no RecordingDir).
	mem := NewRunner(opt)
	res, err := mem.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Errorf("in-memory checkpointed stats differ:\nwant %+v\ngot  %+v", want, res)
	}
	if c := mem.Counters(); c.CheckpointMisses != 1 || c.CheckpointHits != 0 {
		t.Errorf("in-memory counters = %+v, want 1 checkpoint miss", c)
	}

	// First runner over an empty RecordingDir captures and publishes.
	dir := t.TempDir()
	o := opt
	o.RecordingDir = dir
	a := NewRunner(o)
	defer a.Close()
	res, err = a.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Error("disk-captured checkpointed stats differ from the plain run")
	}
	ca := a.Counters()
	if ca.CheckpointMisses != 1 || ca.CheckpointHits != 0 || ca.CheckpointBytes == 0 {
		t.Errorf("capture counters = %+v, want 1 miss with bytes published", ca)
	}
	if ca.RecordingMisses != 1 || ca.RecordingHits != 0 {
		t.Errorf("capture counters = %+v, want 1 recording miss", ca)
	}
	path := ckptFile(t, dir)

	// Second runner reopens both caches.
	b := NewRunner(o)
	defer b.Close()
	res, err = b.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Error("stats resumed from the shared on-disk checkpoint differ")
	}
	cb := b.Counters()
	if cb.CheckpointHits != 1 || cb.CheckpointMisses != 0 || cb.CheckpointBytes == 0 {
		t.Errorf("reopen counters = %+v, want 1 checkpoint hit", cb)
	}
	if cb.RecordingHits != 1 || cb.RecordingMisses != 0 || cb.RecordingBytes == 0 {
		t.Errorf("reopen counters = %+v, want 1 recording hit", cb)
	}

	// A policy ablation shares the same warm class: no second set.
	if _, err := b.Run(bg, bench, nas(config.Naive)); err != nil {
		t.Fatal(err)
	}
	if c := b.Counters(); c.CheckpointHits != 1 || c.CheckpointMisses != 0 {
		t.Errorf("counters after policy ablation = %+v, want no new set", c)
	}

	// A corrupted file silently falls back to functional fast-forward
	// (identical stats) and is re-captured as a valid file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewRunner(o)
	defer c.Close()
	res, err = c.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Error("stats after checkpoint corruption differ — corruption must never change results")
	}
	if cc := c.Counters(); cc.CheckpointMisses != 1 || cc.CheckpointHits != 0 {
		t.Errorf("corruption counters = %+v, want a re-capture miss", cc)
	}
	set, err := ckpt.OpenFile(path, emu.ProgramFingerprint(p), ckpt.WarmConfigOf(cfg).Hash())
	if err != nil {
		t.Fatalf("corrupted checkpoint file was not re-captured: %v", err)
	}
	if len(set.Frames) == 0 {
		t.Error("re-captured checkpoint file has no frames")
	}
}

// TestRunnerPhaseSampled: PhaseSampled sweeps are deterministic across
// runners, simulate at most Phases representative segments per
// benchmark, and carry the phase count in the journal fingerprint so
// phase-weighted journals never prime exhaustive sweeps.
func TestRunnerPhaseSampled(t *testing.T) {
	const bench = "102.swim"
	cfg := nas(config.Sync)
	opt := ckptOpt()
	opt.PhaseSampled = true
	opt.Phases = 2

	a := NewRunner(opt)
	res1, err := a.Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := a.phasePlan(bench)
	if len(plan) == 0 || len(plan) > opt.Phases {
		t.Fatalf("plan = %v, want 1..%d representatives", plan, opt.Phases)
	}
	var weight int64
	for _, ws := range plan {
		weight += ws.Weight
	}
	// 8 periods at 2 periods/segment → 4 segments to cover.
	if weight != 4 {
		t.Errorf("plan weights sum to %d, want 4 (every segment accounted for)", weight)
	}
	// The weighted estimate still spans the full budget.
	if res1.Committed < opt.Insts {
		t.Errorf("phase-weighted Committed = %d, want >= %d", res1.Committed, opt.Insts)
	}

	res2, err := NewRunner(opt).Run(bg, bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Error("phase-sampled results differ across runners — the plan must be deterministic")
	}

	if fp := opt.Fingerprint(); fp.Phases != 2 {
		t.Errorf("Fingerprint.Phases = %d, want 2", fp.Phases)
	}
	plain := ckptOpt()
	if fp := plain.Fingerprint(); fp.Phases != 0 {
		t.Errorf("non-phase Fingerprint.Phases = %d, want 0", fp.Phases)
	}
}

// TestCountersExposeCacheFields: the cache counters must survive JSON
// round-tripping under their documented names — mdserve /v1/metrics
// serves exactly this struct.
func TestCountersExposeCacheFields(t *testing.T) {
	b, err := json.Marshal(Counters{RecordingHits: 1, RecordingBytes: 2, CheckpointHits: 3, CheckpointBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recording_hits", "recording_misses", "recording_bytes",
		"checkpoint_hits", "checkpoint_misses", "checkpoint_bytes"} {
		if _, ok := m[key]; !ok {
			t.Errorf("Counters JSON missing %q", key)
		}
	}
}
