package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// sweepJobs is the small real-simulation sweep the resume tests run.
func sweepJobs() []job {
	return []job{
		{"129.compress", nas(config.Naive)},
		{"129.compress", nas(config.Sync)},
		{"102.swim", nas(config.Naive)},
		{"102.swim", nas(config.Sync)},
	}
}

// runSweep executes the jobs and returns the per-cell stats keyed by
// (bench, config hash).
func runSweep(t *testing.T, r *Runner, jobs []job) map[runKeyID]*stats.Run {
	t.Helper()
	out := make(map[runKeyID]*stats.Run)
	for _, j := range jobs {
		res, err := r.Run(bg, j.bench, j.cfg)
		if err != nil {
			t.Fatalf("%s under %s: %v", j.bench, j.cfg.Name(), err)
		}
		out[runKeyID{j.bench, j.cfg.Hash()}] = res
	}
	return out
}

// TestResumeBitIdentical is the library-level kill-resume equivalence
// proof: a sweep journaled to completion, "killed" (journal reopened as
// a crash would leave it), and resumed must produce per-cell statistics
// bit-identical to an uninterrupted run — with the already-finished
// cells replayed from the journal instead of re-simulated.
func TestResumeBitIdentical(t *testing.T) {
	opt := Options{Insts: 6_000, Sampled: true, TimingWindow: 1_000, FunctionalWindow: 2_000}
	jobs := sweepJobs()

	// Reference: one uninterrupted sweep.
	ref := runSweep(t, NewRunner(opt), jobs)

	// "Crashed" sweep: journal only the first half, then abandon the
	// runner (as SIGKILL would — no flush beyond the per-append fsync).
	dir := t.TempDir()
	j1, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	opt1 := opt
	opt1.Journal = j1
	r1 := NewRunner(opt1)
	runSweep(t, r1, jobs[:2])
	j1.Close()

	// Resume: replay the journal, prime a fresh runner, run the full
	// sweep. The first half must be served from the journal.
	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt2 := opt
	opt2.Journal = j2
	r2 := NewRunner(opt2)
	if n := r2.Prime(recs); n != 2 {
		t.Fatalf("Prime accepted %d records, want 2", n)
	}
	resumed := runSweep(t, r2, jobs)

	if got := r2.Counters().Replayed; got != 2 {
		t.Errorf("Replayed = %d, want 2 cells served from the journal", got)
	}
	if got := r2.Counters().JobsStarted; got != 2 {
		t.Errorf("JobsStarted = %d, want only the 2 unfinished cells simulated", got)
	}
	for k, want := range ref {
		got, ok := resumed[k]
		if !ok {
			t.Fatalf("resumed sweep missing cell %v", k)
		}
		if *got != *want {
			t.Errorf("cell %v differs after resume:\nref:     %+v\nresumed: %+v", k, *want, *got)
		}
	}
	if err := r2.JournalErr(); err != nil {
		t.Errorf("JournalErr = %v", err)
	}

	// The resumed sweep journaled its two new cells; a third open must
	// replay all four.
	j2.Close()
	_, recs, err = OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("journal holds %d cells after resume, want 4", len(recs))
	}
}

// TestConcurrentSegmentsCrashRecovery is the multi-writer analogue of
// TestResumeBitIdentical: two writers journal disjoint halves of a
// sweep into their own leased segments concurrently; one is "SIGKILLed"
// mid-append (its segment gets a torn tail, its lease is left behind
// with a dead heartbeat). Recovery must reclaim the stale lease,
// truncate exactly the torn tail of the dead writer's own segment —
// not a byte of anyone else's — and replay every other cell from both
// segments bit-identically, re-simulating only the torn one.
func TestConcurrentSegmentsCrashRecovery(t *testing.T) {
	opt := Options{Insts: 6_000, Sampled: true, TimingWindow: 1_000, FunctionalWindow: 2_000}
	jobs := sweepJobs()

	// Reference: one uninterrupted single-writer sweep.
	ref := runSweep(t, NewRunner(opt), jobs)

	dir := t.TempDir()
	j0, _, err := OpenJournalSegment(dir, "w0", opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	j1, _, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Writer w0 journals its half from a second goroutine while w1 works
	// below — the two segments fill concurrently, as fleet workers do.
	opt0 := opt
	opt0.Journal = j0
	r0 := NewRunner(opt0)
	w0done := make(chan error, 1)
	go func() {
		for _, jb := range jobs[:2] {
			if _, err := r0.Run(bg, jb.bench, jb.cfg); err != nil {
				w0done <- err
				return
			}
		}
		w0done <- nil
	}()

	// Writer w1 journals its half one cell at a time so the test can
	// record its segment's frame boundaries.
	opt1 := opt
	opt1.Journal = j1
	r1 := NewRunner(opt1)
	seg1 := SegmentPath(dir, "w1")
	var sizes []int64
	for _, jb := range jobs[2:] {
		if _, err := r1.Run(bg, jb.bench, jb.cfg); err != nil {
			t.Fatalf("%s under %s: %v", jb.bench, jb.cfg.Name(), err)
		}
		fi, err := os.Stat(seg1)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	if err := <-w0done; err != nil {
		t.Fatalf("concurrent writer w0: %v", err)
	}
	j0.Close()

	// "SIGKILL" w1 mid-append: drop the file handle without releasing
	// the lease, tear its last frame, and age the lease past any TTL.
	j1.f.Close()
	if err := os.Truncate(seg1, sizes[1]-11); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-time.Hour).Unix()
	data, err := json.Marshal(leaseInfo{Owner: "w1", PID: os.Getpid(), AcquiredUnix: stale, HeartbeatUnix: stale})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leasePath(dir, "w1"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	w0size, err := os.Stat(SegmentPath(dir, "w0"))
	if err != nil {
		t.Fatal(err)
	}

	// Recovery: w1's successor reclaims the stale lease and repairs its
	// own segment — truncated to exactly the last intact frame.
	j1b, recs, err := OpenJournalSegment(dir, "w1", opt, 0)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if fi, serr := os.Stat(seg1); serr != nil {
		t.Fatal(serr)
	} else if fi.Size() != sizes[0] {
		t.Errorf("torn tail truncated to %d bytes, want exactly the intact prefix %d", fi.Size(), sizes[0])
	}
	if fi, serr := os.Stat(SegmentPath(dir, "w0")); serr != nil {
		t.Fatal(serr)
	} else if fi.Size() != w0size.Size() {
		t.Errorf("recovery modified w0's segment: %d bytes, was %d", fi.Size(), w0size.Size())
	}
	if len(recs) != 3 {
		t.Fatalf("merged replay has %d cells, want 3 (both of w0's, w1's intact first)", len(recs))
	}

	// Resume the full sweep: only the torn cell re-simulates, and every
	// cell's statistics match the uninterrupted reference bit for bit.
	optR := opt
	optR.Journal = j1b
	r2 := NewRunner(optR)
	if n := r2.Prime(recs); n != 3 {
		t.Fatalf("Prime accepted %d records, want 3", n)
	}
	resumed := runSweep(t, r2, jobs)
	if got := r2.Counters().Replayed; got != 3 {
		t.Errorf("Replayed = %d, want 3 cells served from the merged segments", got)
	}
	if got := r2.Counters().JobsStarted; got != 1 {
		t.Errorf("JobsStarted = %d, want only the torn cell re-simulated", got)
	}
	for k, want := range ref {
		got, ok := resumed[k]
		if !ok {
			t.Fatalf("resumed sweep missing cell %v", k)
		}
		if *got != *want {
			t.Errorf("cell %v differs after multi-segment recovery:\nref:     %+v\nresumed: %+v", k, *want, *got)
		}
	}
	j1b.Close()

	// After recovery the directory holds all four cells again.
	recs, err = ReplayJournalDir(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("directory replays %d cells after recovery, want 4", len(recs))
	}
}

// TestPrimeSkipsForeignRecords: records from a different runner version
// or budget must not prime the cache.
func TestPrimeSkipsForeignRecords(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	good := journalRecord("126.gcc", nas(config.Naive), 1000)
	wrongInsts := journalRecord("126.gcc", nas(config.Sync), 2000)
	wrongRunner := journalRecord("102.swim", nas(config.Naive), 1000)
	wrongRunner.Runner = "mdspec-runner/0"
	noStats := journalRecord("102.swim", nas(config.Sync), 1000)
	noStats.Stats = nil

	if n := r.Prime([]RunRecord{good, wrongInsts, wrongRunner, noStats}); n != 1 {
		t.Fatalf("Prime accepted %d records, want 1", n)
	}

	// The primed cell is served without simulation...
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return nil, errors.New("should not simulate a primed cell")
	}
	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if *res != *good.Stats {
		t.Errorf("primed cell returned %+v, want the journaled stats", res)
	}
	if r.Counters().Replayed != 1 {
		t.Errorf("Replayed = %d, want 1", r.Counters().Replayed)
	}
	// ...and appears in Records with its original provenance.
	recs := r.Records()
	if len(recs) != 1 || recs[0].WallSeconds != good.WallSeconds {
		t.Errorf("Records() = %+v, want the journaled record verbatim", recs)
	}

	// The rejected cells would simulate (and here, fail).
	if _, err := r.Run(bg, "126.gcc", nas(config.Sync)); err == nil {
		t.Error("cell with mismatched budget was served from the journal")
	}
}
