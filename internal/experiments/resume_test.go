package experiments

import (
	"context"
	"errors"
	"testing"

	"mdspec/internal/config"
	"mdspec/internal/stats"
)

// sweepJobs is the small real-simulation sweep the resume tests run.
func sweepJobs() []job {
	return []job{
		{"129.compress", nas(config.Naive)},
		{"129.compress", nas(config.Sync)},
		{"102.swim", nas(config.Naive)},
		{"102.swim", nas(config.Sync)},
	}
}

// runSweep executes the jobs and returns the per-cell stats keyed by
// (bench, config hash).
func runSweep(t *testing.T, r *Runner, jobs []job) map[runKeyID]*stats.Run {
	t.Helper()
	out := make(map[runKeyID]*stats.Run)
	for _, j := range jobs {
		res, err := r.Run(bg, j.bench, j.cfg)
		if err != nil {
			t.Fatalf("%s under %s: %v", j.bench, j.cfg.Name(), err)
		}
		out[runKeyID{j.bench, j.cfg.Hash()}] = res
	}
	return out
}

// TestResumeBitIdentical is the library-level kill-resume equivalence
// proof: a sweep journaled to completion, "killed" (journal reopened as
// a crash would leave it), and resumed must produce per-cell statistics
// bit-identical to an uninterrupted run — with the already-finished
// cells replayed from the journal instead of re-simulated.
func TestResumeBitIdentical(t *testing.T) {
	opt := Options{Insts: 6_000, Sampled: true, TimingWindow: 1_000, FunctionalWindow: 2_000}
	jobs := sweepJobs()

	// Reference: one uninterrupted sweep.
	ref := runSweep(t, NewRunner(opt), jobs)

	// "Crashed" sweep: journal only the first half, then abandon the
	// runner (as SIGKILL would — no flush beyond the per-append fsync).
	dir := t.TempDir()
	j1, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	opt1 := opt
	opt1.Journal = j1
	r1 := NewRunner(opt1)
	runSweep(t, r1, jobs[:2])
	j1.Close()

	// Resume: replay the journal, prime a fresh runner, run the full
	// sweep. The first half must be served from the journal.
	j2, recs, err := OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	opt2 := opt
	opt2.Journal = j2
	r2 := NewRunner(opt2)
	if n := r2.Prime(recs); n != 2 {
		t.Fatalf("Prime accepted %d records, want 2", n)
	}
	resumed := runSweep(t, r2, jobs)

	if got := r2.Counters().Replayed; got != 2 {
		t.Errorf("Replayed = %d, want 2 cells served from the journal", got)
	}
	if got := r2.Counters().JobsStarted; got != 2 {
		t.Errorf("JobsStarted = %d, want only the 2 unfinished cells simulated", got)
	}
	for k, want := range ref {
		got, ok := resumed[k]
		if !ok {
			t.Fatalf("resumed sweep missing cell %v", k)
		}
		if *got != *want {
			t.Errorf("cell %v differs after resume:\nref:     %+v\nresumed: %+v", k, *want, *got)
		}
	}
	if err := r2.JournalErr(); err != nil {
		t.Errorf("JournalErr = %v", err)
	}

	// The resumed sweep journaled its two new cells; a third open must
	// replay all four.
	j2.Close()
	_, recs, err = OpenJournal(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("journal holds %d cells after resume, want 4", len(recs))
	}
}

// TestPrimeSkipsForeignRecords: records from a different runner version
// or budget must not prime the cache.
func TestPrimeSkipsForeignRecords(t *testing.T) {
	r := NewRunner(Options{Insts: 1000})
	good := journalRecord("126.gcc", nas(config.Naive), 1000)
	wrongInsts := journalRecord("126.gcc", nas(config.Sync), 2000)
	wrongRunner := journalRecord("102.swim", nas(config.Naive), 1000)
	wrongRunner.Runner = "mdspec-runner/0"
	noStats := journalRecord("102.swim", nas(config.Sync), 1000)
	noStats.Stats = nil

	if n := r.Prime([]RunRecord{good, wrongInsts, wrongRunner, noStats}); n != 1 {
		t.Fatalf("Prime accepted %d records, want 1", n)
	}

	// The primed cell is served without simulation...
	r.sim = func(ctx context.Context, bench string, cfg config.Machine) (*stats.Run, error) {
		return nil, errors.New("should not simulate a primed cell")
	}
	res, err := r.Run(bg, "126.gcc", nas(config.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if *res != *good.Stats {
		t.Errorf("primed cell returned %+v, want the journaled stats", res)
	}
	if r.Counters().Replayed != 1 {
		t.Errorf("Replayed = %d, want 1", r.Counters().Replayed)
	}
	// ...and appears in Records with its original provenance.
	recs := r.Records()
	if len(recs) != 1 || recs[0].WallSeconds != good.WallSeconds {
		t.Errorf("Records() = %+v, want the journaled record verbatim", recs)
	}

	// The rejected cells would simulate (and here, fail).
	if _, err := r.Run(bg, "126.gcc", nas(config.Sync)); err == nil {
		t.Error("cell with mismatched budget was served from the journal")
	}
}
